package rfprism_test

// Solver and batch throughput benchmarks: the speedup trajectory of
// the concurrent disentangling pipeline. Run with -cpu to compare
// serial vs parallel on multi-core machines; cmd/rfprism-bench emits
// the same measurements as BENCH_solver.json for the repo record.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"rfprism"
	"rfprism/internal/core"
	"rfprism/internal/geom"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// benchObs2D builds a fixed, fitted observation set by running one
// simulated window through the pipeline front-end.
func benchObs2D(b *testing.B) ([]core.Observation, core.Bounds) {
	b.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), 11)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		b.Fatal(err)
	}
	tag := scene.NewTag("bench2d")
	none, err := rf.MaterialByName("none")
	if err != nil {
		b.Fatal(err)
	}
	win := scene.CollectWindow(tag, scene.Place(geom.Vec3{X: 0.8, Y: 1.3}, 0.4, none))
	res, err := sys.ProcessWindow(win)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]core.Observation, 0, len(scene.Antennas))
	for i, ant := range scene.Antennas {
		obs = append(obs, core.Observation{
			ID: ant.ID, Pos: ant.Pos, Frame: ant.Frame(), Line: res.Lines[i],
		})
	}
	return obs, rfprism.Bounds2D(sim.PaperRegion())
}

// BenchmarkSolve2D measures the 2D disentangler at parallelism 1 and
// GOMAXPROCS.
func BenchmarkSolve2D(b *testing.B) {
	obs, bounds := benchObs2D(b)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve2D(obs, bounds, core.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchObs3D(b *testing.B) ([]core.Observation, core.Bounds) {
	b.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas3D(nil), rf.CleanSpace(), sim.DefaultConfig(), 12)
	if err != nil {
		b.Fatal(err)
	}
	bounds := rfprism.Bounds2D(sim.PaperRegion())
	bounds.ZMin, bounds.ZMax = 0, 0.8
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), bounds, rfprism.WithMode3D())
	if err != nil {
		b.Fatal(err)
	}
	tag := scene.NewTag("bench3d")
	none, err := rf.MaterialByName("none")
	if err != nil {
		b.Fatal(err)
	}
	pl := sim.Static{
		Pos:          geom.Vec3{X: 0.9, Y: 1.4, Z: 0.3},
		Polarization: rf.TagPolarization3D(0.7, 0.3),
		Material:     none,
		Attach:       rf.Attach(none, rf.AttachmentJitter{}, nil),
	}
	res, err := sys.ProcessWindow(scene.CollectWindow(tag, pl))
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]core.Observation, 0, len(scene.Antennas))
	for i, ant := range scene.Antennas {
		obs = append(obs, core.Observation{
			ID: ant.ID, Pos: ant.Pos, Frame: ant.Frame(), Line: res.Lines[i],
		})
	}
	return obs, bounds
}

// BenchmarkSolve3D measures the seven-unknown solver at parallelism 1
// and GOMAXPROCS.
func BenchmarkSolve3D(b *testing.B) {
	obs, bounds := benchObs3D(b)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve3D(obs, bounds, core.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProcessWindowsBatch measures end-to-end batch throughput
// (windows/sec) with a serial-loop baseline and the pooled batch API.
func BenchmarkProcessWindowsBatch(b *testing.B) {
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), 13)
	if err != nil {
		b.Fatal(err)
	}
	tag := scene.NewTag("bench-batch")
	none, err := rf.MaterialByName("none")
	if err != nil {
		b.Fatal(err)
	}
	const nWindows = 16
	wins := make([]rfprism.Window, nWindows)
	for i := range wins {
		pos := geom.Vec3{X: 0.4 + 0.08*float64(i), Y: 1.0 + 0.07*float64(i)}
		wins[i] = rfprism.Window{Readings: scene.CollectWindow(tag, scene.Place(pos, 0.3, none))}
	}
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas),
				rfprism.Bounds2D(sim.PaperRegion()), rfprism.WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := sys.ProcessWindows(context.Background(), wins)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			winPerSec := float64(nWindows) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(winPerSec, "windows/sec")
		})
	}
}
