// Tracking3d demonstrates the §VII extension: with a fourth antenna
// the seven-unknown 3D model resolves the tag's full position
// (x, y, z) and its 3D polarization direction simultaneously.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rfprism"
	"rfprism/internal/core"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracking3d:", err)
		os.Exit(1)
	}
}

func run() error {
	hwRng := rand.New(rand.NewSource(43))
	scene, err := sim.NewScene(sim.PaperAntennas3D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), 44)
	if err != nil {
		return err
	}
	bounds := rfprism.Bounds2D(sim.PaperRegion())
	bounds.ZMin, bounds.ZMax = 0, 0.8
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), bounds, rfprism.WithMode3D())
	if err != nil {
		return err
	}

	tag := scene.NewTag("drone-tag")
	none, err := rf.MaterialByName("none")
	if err != nil {
		return err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5, Z: 0}
	var calWin []sim.Reading
	for i := 0; i < 5; i++ {
		calWin = append(calWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return err
	}

	// A tag floating above the working plane with a tilted
	// polarization — e.g. on a robot arm's wrist.
	truth := geom.Vec3{X: 1.0, Y: 1.4, Z: 0.2}
	az, el := mathx.Rad(40), mathx.Rad(25)
	placement := sim.Static{
		Pos:          truth,
		Polarization: rf.TagPolarization3D(az, el),
		Material:     none,
		Attach:       rf.Attach(none, rf.DefaultAttachmentJitter(), scene.Rand()),
	}
	res, err := sys.ProcessWindow(scene.CollectWindow(tag, placement))
	if err != nil {
		return err
	}
	est := res.Estimate
	fmt.Printf("3D estimate:\n")
	fmt.Printf("  position (%.2f, %.2f, %.2f) m  [truth (%.2f, %.2f, %.2f), error %.1f cm]\n",
		est.Pos.X, est.Pos.Y, est.Pos.Z, truth.X, truth.Y, truth.Z, 100*est.Pos.Dist(truth))
	polErr := core.PolarizationError(est.Azimuth, est.Elevation, az, el)
	fmt.Printf("  polarization az=%.1f el=%.1f deg  [truth az=%.1f el=%.1f, angular error %.1f deg]\n",
		mathx.Deg(est.Azimuth), mathx.Deg(est.Elevation), mathx.Deg(az), mathx.Deg(el), mathx.Deg(polErr))
	return nil
}
