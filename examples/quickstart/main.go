// Quickstart: deploy the paper's three-antenna testbed, calibrate,
// read one tagged object and print everything RF-Prism disentangles
// from a single hop round — location, orientation and the material
// parameters (k_t, b_t).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Deploy: three circularly-polarized antennas facing a
	//    2 m x 2 m working region (random hardware offsets, as in any
	//    real deployment).
	hwRng := rand.New(rand.NewSource(1))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), 2)
	if err != nil {
		return err
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		return err
	}

	// 2. Calibrate once (Sec. IV-C): a bare tag at a surveyed pose.
	tag := scene.NewTag("E280-1160-6000-0207-23AA-4312")
	none, err := rf.MaterialByName("none")
	if err != nil {
		return err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	var calWin []sim.Reading
	for i := 0; i < 5; i++ {
		calWin = append(calWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return err
	}

	// 3. Sense: the tag is now on a water bottle somewhere in the
	//    region, rotated 60 degrees.
	water, err := rf.MaterialByName("water")
	if err != nil {
		return err
	}
	truth := geom.Vec3{X: 0.7, Y: 1.2}
	window := scene.CollectWindow(tag, scene.Place(truth, mathx.Rad(60), water))

	res, err := sys.ProcessWindow(window)
	if err != nil {
		return err
	}
	est := res.Estimate
	fmt.Printf("tag %s:\n", tag.EPC)
	fmt.Printf("  position    (%.2f, %.2f) m   [truth (%.2f, %.2f), error %.1f cm]\n",
		est.Pos.X, est.Pos.Y, truth.X, truth.Y, 100*est.Pos.Dist(truth))
	fmt.Printf("  orientation %.1f deg          [truth 60.0]\n", mathx.Deg(est.Alpha))
	fmt.Printf("  material    kt=%.2e rad/Hz, bt=%.2f rad (feed these to a trained classifier)\n",
		est.Kt, est.Bt0)
	fmt.Printf("  solver cost %.3g; per-antenna line residuals:", est.Cost)
	for _, l := range res.Lines {
		fmt.Printf(" %.3f", l.ResidStd)
	}
	fmt.Println(" rad")
	return nil
}
