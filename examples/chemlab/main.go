// Chemlab is the paper's §I motivating scenario: inventory management
// in a chemical lab. Bottles with different contents share shelf
// positions over time, so neither "where is the alcohol?" nor "what
// is at slot 3?" can be answered by a system that senses only one
// factor. RF-Prism answers both from the same hop rounds.
//
// The example trains a material classifier from labeled windows, then
// audits a shelf of unlabeled bottles: for every bottle it reports
// the slot it sits in and the liquid it contains.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rfprism"
	"rfprism/internal/classify"
	"rfprism/internal/geom"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// slot positions on the virtual shelf (the working plane).
var slots = []geom.Vec3{
	{X: 0.4, Y: 0.9}, {X: 0.9, Y: 0.9}, {X: 1.4, Y: 0.9},
	{X: 0.4, Y: 1.7}, {X: 0.9, Y: 1.7}, {X: 1.4, Y: 1.7},
}

var liquids = []string{"water", "milk", "oil", "alcohol"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chemlab:", err)
		os.Exit(1)
	}
}

func run() error {
	hwRng := rand.New(rand.NewSource(21))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), 22)
	if err != nil {
		return err
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		return err
	}
	tag := scene.NewTag("lab-tag")
	none, err := rf.MaterialByName("none")
	if err != nil {
		return err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	var calWin, tagWin []sim.Reading
	for i := 0; i < 5; i++ {
		calWin = append(calWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
		tagWin = append(tagWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return err
	}
	if err := sys.CalibrateTag(tag.EPC, tagWin, calPos, 0); err != nil {
		return err
	}

	// Train the liquid classifier from labeled bottles at random
	// shelf positions (16 windows per liquid).
	rng := scene.Rand()
	train := classify.Dataset{}
	fmt.Println("training liquid classifier...")
	for label, name := range liquids {
		m, err := rf.MaterialByName(name)
		if err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			slot := slots[rng.Intn(len(slots))]
			res, err := sys.ProcessWindow(scene.CollectWindow(tag, scene.Place(slot, rng.Float64()*3.14, m)))
			if err != nil {
				continue
			}
			feats, err := sys.MaterialFeatures(tag.EPC, res)
			if err != nil {
				continue
			}
			train.X = append(train.X, feats)
			train.Y = append(train.Y, label)
		}
	}
	tree := &classify.Tree{MaxDepth: 12, MinLeaf: 2}
	if err := tree.Fit(train); err != nil {
		return err
	}

	// Audit a shuffled shelf in ONE inventory round: four bottles,
	// each with its own tag, share the reader's slots (framed slotted
	// ALOHA); the window is split by EPC and every bottle is
	// disentangled independently. Nobody tells the system which bottle
	// went where or what it contains.
	fmt.Println("\nauditing shelf in one inventory pass (hidden truth in brackets):")
	perm := rng.Perm(len(slots))
	type bottle struct {
		tag     sim.Tag
		slotIdx int
		truth   string
	}
	var bottles []bottle
	var tracked []sim.TrackedTag
	for i := 0; i < 4; i++ {
		truthLiquid := liquids[i%len(liquids)]
		m, err := rf.MaterialByName(truthLiquid)
		if err != nil {
			return err
		}
		bt := scene.NewTag(fmt.Sprintf("bottle-%d", i))
		// Each bottle's tag gets its one-time device calibration.
		calWin := scene.CollectWindow(bt, scene.Place(calPos, 0, none))
		if err := sys.CalibrateTag(bt.EPC, calWin, calPos, 0); err != nil {
			return err
		}
		bottles = append(bottles, bottle{tag: bt, slotIdx: perm[i], truth: truthLiquid})
		tracked = append(tracked, sim.TrackedTag{
			Tag:    bt,
			Motion: scene.Place(slots[perm[i]], rng.Float64()*3.14, m),
		})
	}
	// Three hop rounds (~30 s of reader time): the slots are shared
	// by four tags, so one round alone leaves each channel with too
	// few reads per tag for clean material features.
	var window []sim.Reading
	for round := 0; round < 3; round++ {
		w, err := scene.CollectInventoryWindow(tracked)
		if err != nil {
			return err
		}
		window = append(window, w...)
	}
	byEPC := sim.SplitByEPC(window)
	correct := 0
	for i, b := range bottles {
		res, err := sys.ProcessWindow(byEPC[b.tag.EPC])
		if err != nil {
			fmt.Printf("  bottle %d: window rejected (%v)\n", i, err)
			continue
		}
		feats, err := sys.MaterialFeatures(b.tag.EPC, res)
		if err != nil {
			return err
		}
		pred, err := tree.Predict(feats)
		if err != nil {
			return err
		}
		nearest := nearestSlot(res.Estimate.Pos)
		if liquids[pred] == b.truth && nearest == b.slotIdx {
			correct++
		}
		fmt.Printf("  bottle %d: slot %d, %-8s  [truth: slot %d, %s]\n",
			i, nearest, liquids[pred], b.slotIdx, b.truth)
	}
	fmt.Printf("\n%d/4 bottles fully identified (slot AND content) from one inventory pass\n", correct)
	return nil
}

// nearestSlot snaps an estimated position to the closest shelf slot.
func nearestSlot(p geom.Vec3) int {
	best, bestD := 0, p.Dist(slots[0])
	for i, s := range slots[1:] {
		if d := p.Dist(s); d < bestD {
			best, bestD = i+1, d
		}
	}
	return best
}
