// Conveyor models an automatic production line (one of the paper's
// Fig. 1 scenarios): tagged items ride a belt through the working
// region and stop at an inspection station. Windows collected while
// an item is still moving mix distances and orientations; the error
// detector (§V-C) must reject them, and accept the stationary ones.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conveyor:", err)
		os.Exit(1)
	}
}

func run() error {
	hwRng := rand.New(rand.NewSource(31))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), 32)
	if err != nil {
		return err
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		return err
	}
	tag := scene.NewTag("belt-item")
	none, err := rf.MaterialByName("none")
	if err != nil {
		return err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	var calWin []sim.Reading
	for i := 0; i < 5; i++ {
		calWin = append(calWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return err
	}

	// Phase 1: the item moves along the belt (0.25 m/s) while the
	// reader hops. Each of these windows must be rejected.
	fmt.Println("item moving along the belt:")
	rejectedAll := true
	for i := 0; i < 3; i++ {
		start := sim.Placement(scene.Place(geom.Vec3{X: 0.3, Y: 1.0 + 0.3*float64(i)}, 0, none))
		motion := sim.LinearMotion{Start: start, Velocity: geom.Vec3{X: 0.25}, AngularRate: 0.2}
		_, err := sys.ProcessWindow(scene.CollectWindow(tag, motion))
		switch {
		case errors.Is(err, rfprism.ErrWindowRejected):
			fmt.Printf("  window %d: rejected by error detector (correct)\n", i)
		case err != nil:
			return err
		default:
			fmt.Printf("  window %d: ACCEPTED while moving - detector missed it\n", i)
			rejectedAll = false
		}
	}

	// Phase 2: the belt stops at the inspection station; the next
	// window is clean and must be accepted.
	station := geom.Vec3{X: 1.1, Y: 1.6}
	fmt.Println("item stopped at the inspection station:")
	res, err := sys.ProcessWindow(scene.CollectWindow(tag, scene.Place(station, mathx.Rad(30), none)))
	if err != nil {
		return fmt.Errorf("stationary window rejected: %w", err)
	}
	est := res.Estimate
	fmt.Printf("  position (%.2f, %.2f) m  [station (%.2f, %.2f), error %.1f cm]\n",
		est.Pos.X, est.Pos.Y, station.X, station.Y, 100*est.Pos.Dist(station))
	fmt.Printf("  orientation %.1f deg [truth 30.0]\n", mathx.Deg(est.Alpha))
	if rejectedAll {
		fmt.Println("error detector: all moving windows rejected, stationary window accepted")
	}
	return nil
}
