// Package rfprism is a Go reproduction of "RF-Prism: Versatile
// RFID-based Sensing through Phase Disentangling" (ICDCS 2021).
//
// RF-Prism disentangles the phase of a backscattered RFID signal into
// its propagation, orientation and material components by combining
// frequency diversity (the reader's 50-channel hop sequence) with
// spatial diversity (3–4 antennas), enabling simultaneous
// calibration-free localization, orientation sensing and material
// identification from a single hop round of phase readings.
//
// The high-level entry point is System: configure it with the
// deployment geometry, feed it the raw readings of one hop round
// (from the bundled testbed simulator or any source producing the
// same tuples), and receive the disentangled estimate.
//
//	ants := sim.PaperAntennas2D(nil)
//	sys, _ := rfprism.NewSystem(rfprism.DeploymentFromSim(ants), rfprism.Bounds2D(sim.PaperRegion()))
//	res, err := sys.ProcessWindow(readings)
//	// res.Estimate.Pos, res.Estimate.Alpha, res.Estimate.Kt, ...
package rfprism

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rfprism/internal/core"
	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// ErrWindowRejected is returned by ProcessWindow when the error
// detector (§V-C) flags the window as collected from a moving or
// rotating tag (or as too corrupted to trust).
var ErrWindowRejected = errors.New("rfprism: window rejected by error detector")

// AntennaGeometry is the surveyed geometry of one reader antenna.
type AntennaGeometry struct {
	ID        int
	Pos       geom.Vec3
	Boresight geom.Vec3
}

// DeploymentFromSim converts simulator antennas to their surveyed
// geometry (what the sensing side is allowed to know: positions and
// directions, not hardware offsets).
func DeploymentFromSim(ants []sim.Antenna) []AntennaGeometry {
	out := make([]AntennaGeometry, len(ants))
	for i, a := range ants {
		out[i] = AntennaGeometry{ID: a.ID, Pos: a.Pos, Boresight: a.Boresight}
	}
	return out
}

// Bounds re-exports the solver search bounds.
type Bounds = core.Bounds

// Bounds2D builds solver bounds from a working region.
func Bounds2D(r sim.WorkingRegion) Bounds {
	return Bounds{XMin: r.XMin, XMax: r.XMax, YMin: r.YMin, YMax: r.YMax}
}

// Estimate re-exports the disentangled state of one window.
type Estimate = core.Estimate

// Result is the full output of processing one window.
type Result struct {
	// Estimate is the disentangled tag state.
	Estimate Estimate
	// Lines are the per-antenna phase-vs-frequency fits of the
	// antennas that contributed, in deployment order (Health reports
	// which antennas those are).
	Lines []fit.Line
	// Linearity are the per-antenna error-detector reports, aligned
	// with Lines.
	Linearity []fit.LinearityReport
	// Spectra are the preprocessed per-antenna spectra, aligned with
	// Lines.
	Spectra []preprocess.Spectrum
	// Health is the window's degradation report: every deployed
	// antenna's fate plus the degraded flag.
	Health *Health
}

// Option configures a System.
type Option func(*System)

// WithMode3D switches the solver to the four-antenna 3D model; the
// bounds must then include a Z range.
func WithMode3D() Option {
	return func(s *System) { s.mode3D = true }
}

// WithSolverOptions overrides the disentangler options.
func WithSolverOptions(o core.Options) Option {
	return func(s *System) { s.solver = o }
}

// WithDetectorOptions overrides the error-detector thresholds.
func WithDetectorOptions(o fit.DetectorOptions) Option {
	return func(s *System) { s.detector = o }
}

// WithRobustOptions overrides the outlier-trimming fit used by the
// calibration paths.
func WithRobustOptions(o fit.RobustOptions) Option {
	return func(s *System) { s.robust = o }
}

// WithMultipathOptions overrides the model-based multipath
// suppression fit (implies WithModelSuppression).
func WithMultipathOptions(o fit.MultipathOptions) Option {
	return func(s *System) { s.multipath = o; s.modelSuppression = true }
}

// WithModelSuppression replaces the default §V-D channel selection
// (RSSI fade masking + absolute residual trimming) with the
// model-based echo-removal fit — effective against *static*
// long-delay multipath, see fit.FitLineMultipath.
func WithModelSuppression() Option {
	return func(s *System) { s.modelSuppression = true }
}

// WithoutChannelSelection disables the multipath suppression (§V-D),
// fitting all channels — the "Multipath" bar of Fig. 12.
func WithoutChannelSelection() Option {
	return func(s *System) { s.noSelection = true }
}

// WithoutErrorDetector disables the mobility error detector (§V-C).
func WithoutErrorDetector() Option {
	return func(s *System) { s.noDetector = true }
}

// System is a deployed RF-Prism instance: geometry, calibration state
// and solver configuration.
type System struct {
	antennas         []AntennaGeometry
	bounds           Bounds
	mode3D           bool
	solver           core.Options
	detector         fit.DetectorOptions
	robust           fit.RobustOptions
	multipath        fit.MultipathOptions
	modelSuppression bool
	noSelection      bool
	noDetector       bool
	parallelism      int
	retryAttempts    int
	retryBackoff     time.Duration
	processHook      func(Window)

	antennaCal core.AntennaCal
	tagCals    map[string]TagCal
}

// NewSystem builds a System for the given deployment. 2D needs ≥3
// antennas; 3D (WithMode3D) needs ≥4.
func NewSystem(antennas []AntennaGeometry, bounds Bounds, opts ...Option) (*System, error) {
	s := &System{
		antennas: append([]AntennaGeometry(nil), antennas...),
		bounds:   bounds,
		tagCals:  make(map[string]TagCal),
	}
	for _, o := range opts {
		o(s)
	}
	need := 3
	if s.mode3D {
		need = 4
	}
	if len(s.antennas) < need {
		return nil, fmt.Errorf("rfprism: %d antennas configured, need %d", len(s.antennas), need)
	}
	return s, nil
}

// need returns the minimum usable antenna count the active solver
// model accepts (3 for 2D, 4 for 3D).
func (s *System) need() int { return core.MinAntennas(s.mode3D) }

// windowObs is the front-end output of one window: fitted
// observations for the surviving antennas in deployment order, their
// detector reports and spectra, plus the health ledger covering every
// deployed antenna.
type windowObs struct {
	obs     []core.Observation
	reports []fit.LinearityReport
	spectra []preprocess.Spectrum
	health  *Health
}

// dropObserved removes the observation at index i (an antenna the
// error detector rejected), recording the reason in the health ledger.
func (wo *windowObs) dropObserved(i int, reason DropReason) {
	if slot := wo.health.entry(wo.obs[i].ID); slot != nil {
		slot.Used = false
		slot.Reason = reason
	}
	wo.obs = append(wo.obs[:i], wo.obs[i+1:]...)
	wo.reports = append(wo.reports[:i], wo.reports[i+1:]...)
	wo.spectra = append(wo.spectra[:i], wo.spectra[i+1:]...)
}

// observe preprocesses a window and fits each antenna's line. It
// degrades instead of aborting: silent antennas and failed fits are
// recorded in the health ledger and dropped, and only when fewer than
// need() antennas survive does it fail — with a WindowError that
// wraps the typed causes (ErrAntennaSilent, ErrAntennaFit) under
// ErrWindowRejected and carries the health snapshot.
func (s *System) observe(readings []sim.Reading) (*windowObs, error) {
	h := newHealth(s.antennas)
	wo := &windowObs{health: h}
	spectra, err := preprocess.BuildSpectra(readings, preprocess.Options{})
	if err != nil {
		h.finalize()
		return nil, &WindowError{Health: h, err: fmt.Errorf(
			"%w: %w: preprocess: %v", ErrWindowRejected, ErrAntennaSilent, err)}
	}
	byID := make(map[int]preprocess.Spectrum, len(spectra))
	for _, sp := range spectra {
		byID[sp.Antenna] = sp
	}
	var silent, failed int
	for _, ant := range s.antennas {
		slot := h.entry(ant.ID)
		sp, ok := byID[ant.ID]
		if !ok {
			silent++ // slot stays DropSilent
			continue
		}
		slot.ChannelsTotal = len(sp.Samples)
		freqs, phases := sp.Freqs(), sp.Phases()
		var line fit.Line
		switch {
		case s.noSelection:
			line, err = fit.FitLine(freqs, phases)
		case s.modelSuppression:
			line, err = fit.FitLineMultipath(freqs, phases, s.multipath)
		default:
			line, err = fit.FitLineRobust(freqs, phases, sp.RSSIs(), s.robust)
		}
		if err != nil {
			slot.Reason = DropFit
			failed++
			continue
		}
		rep := fit.CheckLinearity(line, len(freqs), s.detector)
		slot.Used = true
		slot.Reason = DropNone
		slot.ChannelsKept = line.NumUsed
		slot.ResidStd = rep.ResidStd
		slot.KeptFraction = rep.KeptFraction
		usedF, usedP := usedSamples(line, freqs, phases)
		wo.obs = append(wo.obs, core.Observation{
			ID:     ant.ID,
			Pos:    ant.Pos,
			Frame:  geom.NewFrame(ant.Boresight),
			Line:   line,
			Freqs:  usedF,
			Phases: usedP,
		})
		wo.reports = append(wo.reports, rep)
		wo.spectra = append(wo.spectra, sp)
	}
	h.finalize()
	if len(wo.obs) < s.need() {
		cause := ErrAntennaSilent
		switch {
		case silent > 0 && failed > 0:
			cause = errors.Join(ErrAntennaSilent, ErrAntennaFit)
		case failed > 0:
			cause = ErrAntennaFit
		}
		return nil, &WindowError{Health: h, err: fmt.Errorf(
			"%w: only %d of %d antennas usable, need %d: %w",
			ErrWindowRejected, len(wo.obs), len(s.antennas), s.need(), cause)}
	}
	return wo, nil
}

func usedSamples(line fit.Line, freqs, phases []float64) ([]float64, []float64) {
	f := make([]float64, 0, len(freqs))
	p := make([]float64, 0, len(phases))
	for i := range freqs {
		if i < len(line.Used) && line.Used[i] {
			f = append(f, freqs[i])
			p = append(p, phases[i])
		}
	}
	return f, p
}

// ProcessWindow runs the full RF-Prism pipeline on the raw readings
// of one hop round: preprocessing, per-antenna robust line fitting,
// the error detector, antenna-offset correction and the phase
// disentangler. It returns ErrWindowRejected (wrapped in a
// WindowError carrying the Health report) when the window fails the
// error detector or too few antennas survive.
//
// Deployments with spare antennas degrade instead of failing: as long
// as 3 (2D) / 4 (3D) of the deployed antennas yield clean fits, the
// solver runs on the surviving subset and the Result's Health report
// says which antennas were dropped and why.
//
// ProcessWindow only reads System state, so it is safe to call
// concurrently (ProcessWindows does) as long as the calibration
// methods are not running at the same time.
func (s *System) ProcessWindow(readings []sim.Reading) (*Result, error) {
	wo, err := s.observe(readings)
	if err != nil {
		return nil, err
	}
	h := wo.health
	if !s.noDetector {
		clean := 0
		for _, rep := range wo.reports {
			if rep.Linear {
				clean++
			}
		}
		if clean < s.need() {
			// Too few static-looking antennas: mobility (or pervasive
			// corruption), the window as a whole is untrustworthy.
			for i, rep := range wo.reports {
				if !rep.Linear {
					return nil, &WindowError{Health: h, err: fmt.Errorf(
						"%w: antenna %d resid %.3f rad, kept %.0f%%",
						ErrWindowRejected, wo.obs[i].ID, rep.ResidStd, rep.KeptFraction*100)}
				}
			}
		}
		// Enough clean antennas remain: shed the non-linear ones
		// (per-antenna multipath or local disturbance) and solve on
		// the subset.
		for i := len(wo.reports) - 1; i >= 0; i-- {
			if !wo.reports[i].Linear {
				wo.dropObserved(i, DropDetector)
			}
		}
		h.finalize()
	}
	obs := s.antennaCal.Apply(wo.obs)

	var est Estimate
	if s.mode3D {
		est, err = core.Solve3D(obs, s.bounds, s.solver)
	} else {
		est, err = core.Solve2D(obs, s.bounds, s.solver)
	}
	if err != nil {
		return nil, &WindowError{Health: h, err: fmt.Errorf("rfprism: solve: %w", err)}
	}
	lines := make([]fit.Line, len(obs))
	for i, o := range obs {
		lines[i] = o.Line
	}
	return &Result{Estimate: est, Lines: lines, Linearity: wo.reports, Spectra: wo.spectra, Health: h}, nil
}

// CalibrateAntennas performs the pre-deployment antenna correction of
// §IV-C from a window collected with a bare tag at a known position
// and known polarization angle. Subsequent ProcessWindow calls apply
// the correction automatically.
func (s *System) CalibrateAntennas(readings []sim.Reading, truthPos geom.Vec3, truthAlpha float64) error {
	wo, err := s.calibrationObserve(readings)
	if err != nil {
		return err
	}
	cal, err := core.CalibrateAntennas(wo.obs, truthPos, truthAlpha)
	if err != nil {
		return err
	}
	s.antennaCal = cal
	return nil
}

// calibrationObserve is observe with the degraded path closed off:
// a calibration window that misses any antenna would silently leave
// that antenna uncorrected, so calibration demands the full set.
func (s *System) calibrationObserve(readings []sim.Reading) (*windowObs, error) {
	wo, err := s.observe(readings)
	if err != nil {
		return nil, err
	}
	if wo.health.Degraded {
		return nil, &WindowError{Health: wo.health, err: fmt.Errorf(
			"%w: calibration requires all %d antennas, dropped %v",
			ErrAntennaSilent, len(s.antennas), wo.health.DroppedAntennas())}
	}
	return wo, nil
}

// TagCal is the per-tag device calibration of §V-B: the reader-tag
// pair's own phase line θ_device0, measured once with the bare tag at
// a known position/orientation and subtracted from every subsequent
// material measurement.
type TagCal struct {
	EPC string
	// Kd and Bd0 are the fitted per-tag line (slope rad/Hz,
	// band-center intercept rad).
	Kd, Bd0 float64
	// PerChannel is θ_device0 per channel (wrapped), NaN where the
	// calibration window had no usable sample.
	PerChannel []float64
}

// CalibrateTag measures and stores a tag's device calibration from a
// bare-tag window at a known position and polarization angle. It must
// run after CalibrateAntennas.
func (s *System) CalibrateTag(epc string, readings []sim.Reading, truthPos geom.Vec3, truthAlpha float64) error {
	wo, err := s.calibrationObserve(readings)
	if err != nil {
		return err
	}
	obs := s.antennaCal.Apply(wo.obs)
	dev := s.devicePhases(obs, truthPos, truthAlpha)
	// Fit the per-tag line on the unwrapped usable channels. The
	// channel table is shared and read-only; it is indexed, never
	// mutated, here.
	var freqs, phases []float64
	chs := rf.ChannelTable()
	for ch, v := range dev {
		if !math.IsNaN(v) {
			freqs = append(freqs, chs[ch])
			phases = append(phases, v)
		}
	}
	if len(freqs) < 10 {
		return fmt.Errorf("rfprism: tag calibration has only %d usable channels", len(freqs))
	}
	phases = mathx.Unwrap(phases)
	line, err := fit.FitLineRobust(freqs, phases, nil, s.robust)
	if err != nil {
		return fmt.Errorf("rfprism: tag calibration fit: %w", err)
	}
	s.tagCals[epc] = TagCal{EPC: epc, Kd: line.K, Bd0: mathx.Wrap2Pi(line.B0), PerChannel: dev}
	return nil
}

// AntennaCalibration returns the current antenna correction (§IV-C);
// baselines consuming the same windows reuse it.
func (s *System) AntennaCalibration() core.AntennaCal { return s.antennaCal }

// TagCalibration returns the stored calibration for a tag.
func (s *System) TagCalibration(epc string) (TagCal, bool) {
	c, ok := s.tagCals[epc]
	return c, ok
}

// devicePhases computes the per-channel device phase (wrapped): the
// observed phase minus the propagation and orientation components at
// the given tag state, circularly averaged across antennas.
func (s *System) devicePhases(obs []core.Observation, pos geom.Vec3, alpha float64) []float64 {
	w := rf.TagPolarization2D(alpha)
	sums := make([]complex128, rf.NumChannels)
	for _, o := range obs {
		d := o.Pos.Dist(pos)
		orient := rf.OrientationPhase(o.Frame, w)
		for j, f := range o.Freqs {
			ch := int(math.Round((f - rf.FirstChannelHz) / rf.ChannelSpacingHz))
			if ch < 0 || ch >= rf.NumChannels {
				continue
			}
			dev := o.Phases[j] - rf.PropagationPhase(d, f) - orient
			sums[ch] += complex(math.Cos(dev), math.Sin(dev))
		}
	}
	out := make([]float64, rf.NumChannels)
	for ch := range out {
		if sums[ch] == 0 {
			out[ch] = math.NaN()
			continue
		}
		out[ch] = mathx.Wrap2Pi(math.Atan2(imag(sums[ch]), real(sums[ch])))
	}
	return out
}

// FeatureDim is the dimensionality of the material feature vector
// F = (k_t, b_t, θmaterial(f₁)...θmaterial(f₅₀)) — Eq. (9).
const FeatureDim = 2 + rf.NumChannels

// MaterialFeatures extracts the 52-dimensional material feature
// vector of Eq. (9) from a processed window, compensating the per-tag
// device diversity with the stored calibration. The per-channel terms
// are the frequency-selective residuals of θmaterial(f) after
// removing the window's own fitted line: the paper uses the raw
// θdevice(f) − θdevice0(f) differences, but those carry the window's
// position-estimate error as a common-mode offset (38 rad/m at f₀);
// the line-residual form keeps exactly the frequency-selective
// information Eq. (9) adds while being immune to that error (see
// DESIGN.md §2).
func (s *System) MaterialFeatures(epc string, res *Result) ([]float64, error) {
	cal, ok := s.tagCals[epc]
	if !ok {
		return nil, fmt.Errorf("rfprism: tag %q has no calibration", epc)
	}
	obs, err := s.resultObservations(res)
	if err != nil {
		return nil, err
	}
	est := res.Estimate
	dev := s.devicePhases(obs, est.Pos, est.Alpha)

	ktFeat := est.Kt - cal.Kd
	btFeat := mathx.Wrap2Pi(est.Bt0 - cal.Bd0)
	features := make([]float64, FeatureDim)
	features[0] = ktFeat
	features[1] = btFeat
	chs := rf.ChannelTable()
	for ch := 0; ch < rf.NumChannels; ch++ {
		if math.IsNaN(dev[ch]) || math.IsNaN(cal.PerChannel[ch]) {
			features[2+ch] = 0
			continue
		}
		mat := mathx.WrapPi(dev[ch] - cal.PerChannel[ch] - ktFeat*(chs[ch]-rf.CenterFrequencyHz) - btFeat)
		features[2+ch] = mat
	}
	return features, nil
}

// resultObservations rebuilds calibrated observations from a stored
// result's spectra (used by feature extraction, which needs the
// per-channel phases). Degraded results rebuild only the antennas
// that contributed — Lines/Spectra are aligned with the Health
// report's used set, not the full deployment.
func (s *System) resultObservations(res *Result) ([]core.Observation, error) {
	contributed := s.antennas
	if res.Health != nil {
		contributed = make([]AntennaGeometry, 0, len(s.antennas))
		for _, ant := range s.antennas {
			if slot := res.Health.entry(ant.ID); slot == nil || slot.Used {
				contributed = append(contributed, ant)
			}
		}
	}
	obs := make([]core.Observation, 0, len(contributed))
	for i, ant := range contributed {
		if i >= len(res.Spectra) || i >= len(res.Lines) {
			return nil, fmt.Errorf("rfprism: result missing spectra for antenna %d", ant.ID)
		}
		sp := res.Spectra[i]
		freqs, phases := sp.Freqs(), sp.Phases()
		usedF, usedP := usedSamples(res.Lines[i], freqs, phases)
		obs = append(obs, core.Observation{
			ID:     ant.ID,
			Pos:    ant.Pos,
			Frame:  geom.NewFrame(ant.Boresight),
			Line:   res.Lines[i],
			Freqs:  usedF,
			Phases: usedP,
		})
	}
	// Lines in a Result are already calibrated, but the spectra are
	// raw: re-apply the per-channel part of the antenna correction.
	calObs := make([]core.Observation, len(obs))
	copy(calObs, obs)
	for i := range calObs {
		dk := s.antennaCal.DK[calObs[i].ID]
		db := s.antennaCal.DB[calObs[i].ID]
		if dk == 0 && db == 0 {
			continue
		}
		ph := make([]float64, len(calObs[i].Phases))
		for j, p := range calObs[i].Phases {
			ph[j] = p - dk*(calObs[i].Freqs[j]-rf.CenterFrequencyHz) - db
		}
		calObs[i].Phases = ph
	}
	return calObs, nil
}
