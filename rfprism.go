// Package rfprism is a Go reproduction of "RF-Prism: Versatile
// RFID-based Sensing through Phase Disentangling" (ICDCS 2021).
//
// RF-Prism disentangles the phase of a backscattered RFID signal into
// its propagation, orientation and material components by combining
// frequency diversity (the reader's 50-channel hop sequence) with
// spatial diversity (3–4 antennas), enabling simultaneous
// calibration-free localization, orientation sensing and material
// identification from a single hop round of phase readings.
//
// The high-level entry point is System: configure it with the
// deployment geometry, feed it the raw readings of one hop round
// (from the bundled testbed simulator or any source producing the
// same tuples), and receive the disentangled estimate.
//
//	ants := sim.PaperAntennas2D(nil)
//	sys, _ := rfprism.NewSystem(rfprism.DeploymentFromSim(ants), rfprism.Bounds2D(sim.PaperRegion()))
//	res, err := sys.ProcessWindow(readings)
//	// res.Estimate.Pos, res.Estimate.Alpha, res.Estimate.Kt, ...
package rfprism

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rfprism/internal/core"
	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// ErrWindowRejected is returned by ProcessWindow when the error
// detector (§V-C) flags the window as collected from a moving or
// rotating tag (or as too corrupted to trust).
var ErrWindowRejected = errors.New("rfprism: window rejected by error detector")

// AntennaGeometry is the surveyed geometry of one reader antenna.
type AntennaGeometry struct {
	ID        int
	Pos       geom.Vec3
	Boresight geom.Vec3
}

// DeploymentFromSim converts simulator antennas to their surveyed
// geometry (what the sensing side is allowed to know: positions and
// directions, not hardware offsets).
func DeploymentFromSim(ants []sim.Antenna) []AntennaGeometry {
	out := make([]AntennaGeometry, len(ants))
	for i, a := range ants {
		out[i] = AntennaGeometry{ID: a.ID, Pos: a.Pos, Boresight: a.Boresight}
	}
	return out
}

// Bounds re-exports the solver search bounds.
type Bounds = core.Bounds

// Bounds2D builds solver bounds from a working region.
func Bounds2D(r sim.WorkingRegion) Bounds {
	return Bounds{XMin: r.XMin, XMax: r.XMax, YMin: r.YMin, YMax: r.YMax}
}

// Estimate re-exports the disentangled state of one window.
type Estimate = core.Estimate

// Confidence re-exports the likelihood-level quality block of one
// estimate (covariance, per-axis CIs, normalized log-likelihood,
// 2π-ambiguity margin); see core.Confidence and WithConfidence.
type Confidence = core.Confidence

// Result is the full output of processing one window.
type Result struct {
	// Estimate is the disentangled tag state.
	Estimate Estimate
	// Lines are the per-antenna phase-vs-frequency fits of the
	// antennas that contributed, in deployment order (Health reports
	// which antennas those are).
	Lines []fit.Line
	// Linearity are the per-antenna error-detector reports, aligned
	// with Lines.
	Linearity []fit.LinearityReport
	// Spectra are the preprocessed per-antenna spectra, aligned with
	// Lines.
	Spectra []preprocess.Spectrum
	// Spans are the per-stage trace spans of the attempt that produced
	// this result (nil unless the System has a Tracer, see WithTracer).
	Spans []Span
	// Confidence is the likelihood-level quality block (nil unless the
	// System runs WithConfidence and the post-pass succeeded).
	Confidence *Confidence

	health *Health
}

// Health returns the window's degradation report: every deployed
// antenna's fate plus the degraded flag. It has the same accessor shape
// as WindowResult.Health, so callers branch identically whether they
// hold a Result from ProcessWindow or a WindowResult from the batch
// paths.
func (r *Result) Health() *Health { return r.health }

// Attempts returns the number of processing attempts the window
// consumed (0 when it never took the retry-aware batch path), mirroring
// WindowResult.Attempts.
func (r *Result) Attempts() int {
	if r.health == nil {
		return 0
	}
	return r.health.Attempts
}

// System is a deployed RF-Prism instance: geometry, calibration state
// and solver configuration.
type System struct {
	antennas []AntennaGeometry
	bounds   Bounds
	cfg      Config

	antennaCal core.AntennaCal
	tagCals    map[string]TagCal

	// fastpath is the per-tag warm/cache state (nil when the fast path
	// is disabled); solveStats counts its outcomes either way.
	fastpath   *solveCache
	solveStats solveStats
}

// Config returns the System's effective configuration.
func (s *System) Config() Config { return s.cfg }

// NewSystem builds a System for the given deployment. 2D needs ≥3
// antennas; 3D (WithMode3D) needs ≥4.
func NewSystem(antennas []AntennaGeometry, bounds Bounds, opts ...Option) (*System, error) {
	s := &System{
		antennas: append([]AntennaGeometry(nil), antennas...),
		bounds:   bounds,
		tagCals:  make(map[string]TagCal),
	}
	for _, o := range opts {
		o(s)
	}
	need := 3
	if s.cfg.Pipeline.Mode3D {
		need = 4
	}
	if len(s.antennas) < need {
		return nil, fmt.Errorf("rfprism: %d antennas configured, need %d", len(s.antennas), need)
	}
	if s.cfg.Runtime.FastPath.enabled() {
		s.fastpath = newSolveCache(s.cfg.Runtime.FastPath)
	}
	return s, nil
}

// need returns the minimum usable antenna count the active solver
// model accepts (3 for 2D, 4 for 3D).
func (s *System) need() int { return core.MinAntennas(s.cfg.Pipeline.Mode3D) }

// windowObs is the front-end output of one window: fitted
// observations for the surviving antennas in deployment order, their
// detector reports and spectra, plus the health ledger covering every
// deployed antenna.
type windowObs struct {
	obs     []core.Observation
	reports []fit.LinearityReport
	spectra []preprocess.Spectrum
	health  *Health
}

// dropObserved removes the observation at index i (an antenna the
// error detector rejected), recording the reason in the health ledger.
func (wo *windowObs) dropObserved(i int, reason DropReason) {
	if slot := wo.health.entry(wo.obs[i].ID); slot != nil {
		slot.Used = false
		slot.Reason = reason
	}
	wo.obs = append(wo.obs[:i], wo.obs[i+1:]...)
	wo.reports = append(wo.reports[:i], wo.reports[i+1:]...)
	wo.spectra = append(wo.spectra[:i], wo.spectra[i+1:]...)
}

// observe preprocesses a window and fits each antenna's line. It
// degrades instead of aborting: silent antennas and failed fits are
// recorded in the health ledger and dropped, and only when fewer than
// need() antennas survive does it fail — with a WindowError that
// wraps the typed causes (ErrAntennaSilent, ErrAntennaFit) under
// ErrWindowRejected and carries the health snapshot.
//
// tb, when non-nil, receives spectra/fit/select/observe spans; every
// recording site is gated on the nil check so untraced runs pay only
// the branch.
func (s *System) observe(tb *traceBuf, readings []sim.Reading) (*windowObs, error) {
	var obsStart time.Time
	if tb != nil {
		obsStart = time.Now()
	}
	h := newHealth(s.antennas)
	wo := &windowObs{health: h}
	var t0 time.Time
	if tb != nil {
		t0 = time.Now()
	}
	spectra, err := preprocess.BuildSpectra(readings, preprocess.Options{})
	if tb != nil {
		tb.add(Span{Stage: StageSpectra, Antenna: -1, Start: t0, Duration: time.Since(t0), Err: errString(err)})
	}
	if err != nil {
		h.finalize()
		if tb != nil {
			tb.add(Span{Stage: StageObserve, Antenna: -1, Start: obsStart, Duration: time.Since(obsStart), Err: err.Error()})
		}
		return nil, &WindowError{Health: h, err: fmt.Errorf(
			"%w: %w: preprocess: %v", ErrWindowRejected, ErrAntennaSilent, err)}
	}
	byID := make(map[int]preprocess.Spectrum, len(spectra))
	for _, sp := range spectra {
		byID[sp.Antenna] = sp
	}
	var silent, failed int
	for _, ant := range s.antennas {
		slot := h.entry(ant.ID)
		sp, ok := byID[ant.ID]
		if !ok {
			silent++ // slot stays DropSilent
			continue
		}
		slot.ChannelsTotal = len(sp.Samples)
		freqs, phases := sp.Freqs(), sp.Phases()
		if tb != nil {
			t0 = time.Now()
		}
		var line fit.Line
		switch {
		case s.cfg.Pipeline.NoChannelSelection:
			line, err = fit.FitLine(freqs, phases)
		case s.cfg.Pipeline.ModelSuppression:
			line, err = fit.FitLineMultipath(freqs, phases, s.cfg.Pipeline.Multipath)
		default:
			line, err = fit.FitLineRobust(freqs, phases, sp.RSSIs(), s.cfg.Pipeline.Robust)
		}
		if tb != nil {
			fitSpan := Span{Stage: StageFit, Antenna: ant.ID, Start: t0, Duration: time.Since(t0),
				Err: errString(err), ChannelsTotal: len(sp.Samples)}
			if err != nil {
				fitSpan.Drop = DropFit.String()
			}
			tb.add(fitSpan)
		}
		if err != nil {
			slot.Reason = DropFit
			failed++
			continue
		}
		if tb != nil {
			t0 = time.Now()
		}
		rep := fit.CheckLinearity(line, len(freqs), s.cfg.Pipeline.Detector)
		slot.Used = true
		slot.Reason = DropNone
		slot.ChannelsKept = line.NumUsed
		slot.ResidStd = rep.ResidStd
		slot.KeptFraction = rep.KeptFraction
		usedF, usedP := usedSamples(line, freqs, phases)
		if tb != nil {
			tb.add(Span{Stage: StageSelect, Antenna: ant.ID, Start: t0, Duration: time.Since(t0),
				ChannelsKept: line.NumUsed, ChannelsTotal: len(sp.Samples)})
		}
		wo.obs = append(wo.obs, core.Observation{
			ID:     ant.ID,
			Pos:    ant.Pos,
			Frame:  geom.NewFrame(ant.Boresight),
			Line:   line,
			Freqs:  usedF,
			Phases: usedP,
		})
		wo.reports = append(wo.reports, rep)
		wo.spectra = append(wo.spectra, sp)
	}
	h.finalize()
	if len(wo.obs) < s.need() {
		cause := ErrAntennaSilent
		switch {
		case silent > 0 && failed > 0:
			cause = errors.Join(ErrAntennaSilent, ErrAntennaFit)
		case failed > 0:
			cause = ErrAntennaFit
		}
		werr := &WindowError{Health: h, err: fmt.Errorf(
			"%w: only %d of %d antennas usable, need %d: %w",
			ErrWindowRejected, len(wo.obs), len(s.antennas), s.need(), cause)}
		if tb != nil {
			tb.add(Span{Stage: StageObserve, Antenna: -1, Start: obsStart, Duration: time.Since(obsStart), Err: werr.Error()})
		}
		return nil, werr
	}
	if tb != nil {
		tb.add(Span{Stage: StageObserve, Antenna: -1, Start: obsStart, Duration: time.Since(obsStart)})
	}
	return wo, nil
}

func usedSamples(line fit.Line, freqs, phases []float64) ([]float64, []float64) {
	f := make([]float64, 0, len(freqs))
	p := make([]float64, 0, len(phases))
	for i := range freqs {
		if i < len(line.Used) && line.Used[i] {
			f = append(f, freqs[i])
			p = append(p, phases[i])
		}
	}
	return f, p
}

// ProcessWindow runs the full RF-Prism pipeline on the raw readings
// of one hop round: preprocessing, per-antenna robust line fitting,
// the error detector, antenna-offset correction and the phase
// disentangler. It returns ErrWindowRejected (wrapped in a
// WindowError carrying the Health report) when the window fails the
// error detector or too few antennas survive.
//
// Deployments with spare antennas degrade instead of failing: as long
// as 3 (2D) / 4 (3D) of the deployed antennas yield clean fits, the
// solver runs on the surviving subset and the Result's Health report
// says which antennas were dropped and why.
//
// ProcessWindow only reads System state, so it is safe to call
// concurrently (ProcessWindows does) as long as the calibration
// methods are not running at the same time.
func (s *System) ProcessWindow(readings []sim.Reading) (*Result, error) {
	return s.processWindow("", 1, readings)
}

// processWindow is ProcessWindow with the window's caller-side tag and
// the processing attempt number attached (the batch paths supply both);
// it owns the trace lifecycle: one traceBuf per attempt, spans attached
// to whichever side of the outcome carries them, and one
// Tracer.RecordWindow call per attempt.
func (s *System) processWindow(tag string, attempt int, readings []sim.Reading) (*Result, error) {
	var tb *traceBuf
	if s.cfg.Runtime.Tracer != nil {
		tb = newTraceBuf(tag, attempt)
	}
	res, err := s.processWindowStages(tb, tag, readings)
	if tb != nil {
		var h *Health
		if res != nil {
			h = res.health
		} else if eh, ok := HealthFromError(err); ok {
			h = eh
		}
		tb.endWindow(err, h)
		if res != nil {
			res.Spans = tb.spans
		}
		var we *WindowError
		if errors.As(err, &we) {
			we.Spans = tb.spans
		}
		s.cfg.Runtime.Tracer.RecordWindow(tag, tb.spans)
	}
	return res, err
}

// processWindowStages is the pipeline body: observe → detector → solve.
// tag keys the solver fast path (warm seeds and the stationary-tag
// cache are per-tag state); an empty tag always solves cold.
func (s *System) processWindowStages(tb *traceBuf, tag string, readings []sim.Reading) (*Result, error) {
	wo, err := s.observe(tb, readings)
	if err != nil {
		return nil, err
	}
	h := wo.health
	if !s.cfg.Pipeline.NoErrorDetector {
		var t0 time.Time
		if tb != nil {
			t0 = time.Now()
		}
		clean := 0
		for _, rep := range wo.reports {
			if rep.Linear {
				clean++
			}
		}
		if clean < s.need() {
			// Too few static-looking antennas: mobility (or pervasive
			// corruption), the window as a whole is untrustworthy.
			for i, rep := range wo.reports {
				if !rep.Linear {
					werr := &WindowError{Health: h, err: fmt.Errorf(
						"%w: antenna %d resid %.3f rad, kept %.0f%%",
						ErrWindowRejected, wo.obs[i].ID, rep.ResidStd, rep.KeptFraction*100)}
					if tb != nil {
						tb.add(Span{Stage: StageDetector, Antenna: -1, Start: t0, Duration: time.Since(t0), Err: werr.Error()})
					}
					return nil, werr
				}
			}
		}
		// Enough clean antennas remain. Under the likelihood layer the
		// non-linear antennas stay in the solve at a fractional weight
		// derived from their fit residuals; otherwise they are shed
		// outright (per-antenna multipath or local disturbance) and the
		// solver runs on the subset.
		shed := 0
		if s.cfg.Pipeline.Confidence {
			shed = softWeightObserved(wo)
		} else {
			for i := len(wo.reports) - 1; i >= 0; i-- {
				if !wo.reports[i].Linear {
					wo.dropObserved(i, DropDetector)
					shed++
				}
			}
		}
		h.finalize()
		if tb != nil {
			tb.add(Span{Stage: StageDetector, Antenna: -1, Start: t0, Duration: time.Since(t0), Shed: shed})
		}
	}
	obs := s.antennaCal.Apply(wo.obs)

	var t0 time.Time
	if tb != nil {
		t0 = time.Now()
	}
	est, err := s.solveEstimate(tag, obs)
	if tb != nil {
		tb.add(Span{Stage: StageSolve, Antenna: -1, Start: t0, Duration: time.Since(t0), Err: errString(err)})
	}
	if err != nil {
		return nil, &WindowError{Health: h, err: fmt.Errorf("rfprism: solve: %w", err)}
	}
	var conf *Confidence
	if s.cfg.Pipeline.Confidence {
		if tb != nil {
			t0 = time.Now()
		}
		c, cerr := core.EvaluateConfidence(obs, est, s.cfg.Pipeline.Mode3D, s.bounds, s.cfg.Pipeline.Solver)
		if cerr == nil {
			conf = c
		}
		if tb != nil {
			tb.add(Span{Stage: StageConfidence, Antenna: -1, Start: t0, Duration: time.Since(t0), Err: errString(cerr)})
		}
	}
	lines := make([]fit.Line, len(obs))
	for i, o := range obs {
		lines[i] = o.Line
	}
	return &Result{Estimate: est, Lines: lines, Linearity: wo.reports, Spectra: wo.spectra, Confidence: conf, health: h}, nil
}

// Soft-weight bounds: a detector-flagged antenna never outweighs half
// a clean one, and never vanishes entirely (it still anchors the
// geometry it uniquely observes).
const (
	minSoftWeight = 0.02
	maxSoftWeight = 0.5
)

// softWeightObserved implements the likelihood layer's replacement for
// detector shedding: every surviving antenna keeps contributing, with
// the non-linear ones down-weighted by how far their fit residual
// sits above the clean antennas' median — the per-antenna noise model
// σ_i from the linearity reports turned into relative weights
// (σ_ref/σ_i)², scaled by the surviving-channel fraction. Returns how
// many antennas were down-weighted (the detector span's Shed count).
func softWeightObserved(wo *windowObs) (down int) {
	ref := 0.0
	n := 0
	resids := make([]float64, 0, len(wo.reports))
	for _, rep := range wo.reports {
		if rep.Linear {
			resids = append(resids, rep.ResidStd)
			n++
		}
	}
	if n > 0 {
		ref = mathx.Median(resids)
	}
	if ref < 0.04 {
		ref = 0.04 // the solver's default σ_B floor
	}
	for i := range wo.obs {
		rep := wo.reports[i]
		slot := wo.health.entry(wo.obs[i].ID)
		if rep.Linear {
			wo.obs[i].Weight = 1
			if slot != nil {
				slot.Weight = 1
			}
			continue
		}
		w := maxSoftWeight
		if rep.ResidStd > ref {
			r := ref / rep.ResidStd
			w = r * r
		}
		if rep.KeptFraction > 0 && rep.KeptFraction < 1 {
			w *= rep.KeptFraction
		}
		if w < minSoftWeight {
			w = minSoftWeight
		}
		if w > maxSoftWeight {
			w = maxSoftWeight
		}
		wo.obs[i].Weight = w
		if slot != nil {
			slot.Weight = w
			slot.Reason = DropDetector // records *why* the weight is partial
		}
		down++
	}
	return down
}

// CalibrateAntennas performs the pre-deployment antenna correction of
// §IV-C from a window collected with a bare tag at a known position
// and known polarization angle. Subsequent ProcessWindow calls apply
// the correction automatically.
func (s *System) CalibrateAntennas(readings []sim.Reading, truthPos geom.Vec3, truthAlpha float64) error {
	wo, err := s.calibrationObserve(readings)
	if err != nil {
		return err
	}
	cal, err := core.CalibrateAntennas(wo.obs, truthPos, truthAlpha)
	if err != nil {
		return err
	}
	s.antennaCal = cal
	return nil
}

// calibrationObserve is observe with the degraded path closed off:
// a calibration window that misses any antenna would silently leave
// that antenna uncorrected, so calibration demands the full set.
func (s *System) calibrationObserve(readings []sim.Reading) (*windowObs, error) {
	wo, err := s.observe(nil, readings)
	if err != nil {
		return nil, err
	}
	if wo.health.Degraded {
		return nil, &WindowError{Health: wo.health, err: fmt.Errorf(
			"%w: calibration requires all %d antennas, dropped %v",
			ErrAntennaSilent, len(s.antennas), wo.health.DroppedAntennas())}
	}
	return wo, nil
}

// TagCal is the per-tag device calibration of §V-B: the reader-tag
// pair's own phase line θ_device0, measured once with the bare tag at
// a known position/orientation and subtracted from every subsequent
// material measurement.
type TagCal struct {
	EPC string
	// Kd and Bd0 are the fitted per-tag line (slope rad/Hz,
	// band-center intercept rad).
	Kd, Bd0 float64
	// PerChannel is θ_device0 per channel (wrapped), NaN where the
	// calibration window had no usable sample.
	PerChannel []float64
}

// CalibrateTag measures and stores a tag's device calibration from a
// bare-tag window at a known position and polarization angle. It must
// run after CalibrateAntennas.
func (s *System) CalibrateTag(epc string, readings []sim.Reading, truthPos geom.Vec3, truthAlpha float64) error {
	wo, err := s.calibrationObserve(readings)
	if err != nil {
		return err
	}
	obs := s.antennaCal.Apply(wo.obs)
	dev := s.devicePhases(obs, truthPos, truthAlpha)
	// Fit the per-tag line on the unwrapped usable channels. The
	// channel table is shared and read-only; it is indexed, never
	// mutated, here.
	var freqs, phases []float64
	chs := rf.ChannelTable()
	for ch, v := range dev {
		if !math.IsNaN(v) {
			freqs = append(freqs, chs[ch])
			phases = append(phases, v)
		}
	}
	if len(freqs) < 10 {
		return fmt.Errorf("rfprism: tag calibration has only %d usable channels", len(freqs))
	}
	phases = mathx.Unwrap(phases)
	line, err := fit.FitLineRobust(freqs, phases, nil, s.cfg.Pipeline.Robust)
	if err != nil {
		return fmt.Errorf("rfprism: tag calibration fit: %w", err)
	}
	s.tagCals[epc] = TagCal{EPC: epc, Kd: line.K, Bd0: mathx.Wrap2Pi(line.B0), PerChannel: dev}
	return nil
}

// AntennaCalibration returns the current antenna correction (§IV-C);
// baselines consuming the same windows reuse it.
func (s *System) AntennaCalibration() core.AntennaCal { return s.antennaCal }

// TagCalibration returns the stored calibration for a tag.
func (s *System) TagCalibration(epc string) (TagCal, bool) {
	c, ok := s.tagCals[epc]
	return c, ok
}

// devicePhases computes the per-channel device phase (wrapped): the
// observed phase minus the propagation and orientation components at
// the given tag state, circularly averaged across antennas.
func (s *System) devicePhases(obs []core.Observation, pos geom.Vec3, alpha float64) []float64 {
	w := rf.TagPolarization2D(alpha)
	sums := make([]complex128, rf.NumChannels)
	for _, o := range obs {
		d := o.Pos.Dist(pos)
		orient := rf.OrientationPhase(o.Frame, w)
		for j, f := range o.Freqs {
			ch := int(math.Round((f - rf.FirstChannelHz) / rf.ChannelSpacingHz))
			if ch < 0 || ch >= rf.NumChannels {
				continue
			}
			dev := o.Phases[j] - rf.PropagationPhase(d, f) - orient
			sums[ch] += complex(math.Cos(dev), math.Sin(dev))
		}
	}
	out := make([]float64, rf.NumChannels)
	for ch := range out {
		if sums[ch] == 0 {
			out[ch] = math.NaN()
			continue
		}
		out[ch] = mathx.Wrap2Pi(math.Atan2(imag(sums[ch]), real(sums[ch])))
	}
	return out
}

// FeatureDim is the dimensionality of the material feature vector
// F = (k_t, b_t, θmaterial(f₁)...θmaterial(f₅₀)) — Eq. (9).
const FeatureDim = 2 + rf.NumChannels

// MaterialFeatures extracts the 52-dimensional material feature
// vector of Eq. (9) from a processed window, compensating the per-tag
// device diversity with the stored calibration. The per-channel terms
// are the frequency-selective residuals of θmaterial(f) after
// removing the window's own fitted line: the paper uses the raw
// θdevice(f) − θdevice0(f) differences, but those carry the window's
// position-estimate error as a common-mode offset (38 rad/m at f₀);
// the line-residual form keeps exactly the frequency-selective
// information Eq. (9) adds while being immune to that error (see
// DESIGN.md §2).
func (s *System) MaterialFeatures(epc string, res *Result) ([]float64, error) {
	cal, ok := s.tagCals[epc]
	if !ok {
		return nil, fmt.Errorf("rfprism: tag %q has no calibration", epc)
	}
	obs, err := s.resultObservations(res)
	if err != nil {
		return nil, err
	}
	est := res.Estimate
	dev := s.devicePhases(obs, est.Pos, est.Alpha)

	ktFeat := est.Kt - cal.Kd
	btFeat := mathx.Wrap2Pi(est.Bt0 - cal.Bd0)
	features := make([]float64, FeatureDim)
	features[0] = ktFeat
	features[1] = btFeat
	chs := rf.ChannelTable()
	for ch := 0; ch < rf.NumChannels; ch++ {
		if math.IsNaN(dev[ch]) || math.IsNaN(cal.PerChannel[ch]) {
			features[2+ch] = 0
			continue
		}
		mat := mathx.WrapPi(dev[ch] - cal.PerChannel[ch] - ktFeat*(chs[ch]-rf.CenterFrequencyHz) - btFeat)
		features[2+ch] = mat
	}
	return features, nil
}

// resultObservations rebuilds calibrated observations from a stored
// result's spectra (used by feature extraction, which needs the
// per-channel phases). Degraded results rebuild only the antennas
// that contributed — Lines/Spectra are aligned with the Health
// report's used set, not the full deployment.
func (s *System) resultObservations(res *Result) ([]core.Observation, error) {
	contributed := s.antennas
	if res.health != nil {
		contributed = make([]AntennaGeometry, 0, len(s.antennas))
		for _, ant := range s.antennas {
			if slot := res.health.entry(ant.ID); slot == nil || slot.Used {
				contributed = append(contributed, ant)
			}
		}
	}
	obs := make([]core.Observation, 0, len(contributed))
	for i, ant := range contributed {
		if i >= len(res.Spectra) || i >= len(res.Lines) {
			return nil, fmt.Errorf("rfprism: result missing spectra for antenna %d", ant.ID)
		}
		sp := res.Spectra[i]
		freqs, phases := sp.Freqs(), sp.Phases()
		usedF, usedP := usedSamples(res.Lines[i], freqs, phases)
		obs = append(obs, core.Observation{
			ID:     ant.ID,
			Pos:    ant.Pos,
			Frame:  geom.NewFrame(ant.Boresight),
			Line:   res.Lines[i],
			Freqs:  usedF,
			Phases: usedP,
		})
	}
	// Lines in a Result are already calibrated, but the spectra are
	// raw: re-apply the per-channel part of the antenna correction.
	calObs := make([]core.Observation, len(obs))
	copy(calObs, obs)
	for i := range calObs {
		dk := s.antennaCal.DK[calObs[i].ID]
		db := s.antennaCal.DB[calObs[i].ID]
		if dk == 0 && db == 0 {
			continue
		}
		ph := make([]float64, len(calObs[i].Phases))
		for j, p := range calObs[i].Phases {
			ph[j] = p - dk*(calObs[i].Freqs[j]-rf.CenterFrequencyHz) - db
		}
		calObs[i].Phases = ph
	}
	return calObs, nil
}
