package rfprism

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"rfprism/internal/core"
	"rfprism/internal/mathx"
)

// FastPathConfig configures the solver fast path for the tagged batch
// and stream entry points (ProcessWindows / ProcessStream): warm-started
// solves seeded from each tag's previous estimate, and a stationary-tag
// cache that skips the solve entirely when a tag's spectra have not
// moved. Both features key on Window.Tag — untagged windows always take
// the cold path. The zero value disables the fast path.
//
// The fast path is an accelerator, never an oracle: warm solves fall
// back to the full cold multistart when a consistency guard fails, and
// cached estimates are served only after re-verifying them against the
// current window's joint objective. See DESIGN.md §11.
type FastPathConfig struct {
	// WarmStart seeds each tagged solve from the tag's previous
	// estimate (see core.Options.WarmStart), collapsing the multistart
	// to a basin-local set when the tag moved little since the last
	// window.
	WarmStart bool
	// CacheSize > 0 enables the stationary-tag cache: an LRU over the
	// last CacheSize tags. A window whose per-antenna fitted lines
	// match the tag's previous window within CacheDK/CacheDB is served
	// the cached estimate (after verification) without solving at all.
	CacheSize int
	// CacheDK is the per-antenna slope tolerance (rad/Hz) for the
	// stationary match. The default 2e-9 is ≈5 cm of radial motion —
	// several times the slope's own window-to-window noise but far
	// inside the solver's wrap basin.
	CacheDK float64
	// CacheDB is the per-antenna intercept tolerance (rad) for the
	// stationary match. Intercepts move ≈38 rad/m of radial motion, so
	// the default 0.08 rad is a millimeter-scale gate.
	CacheDB float64
	// CacheGuardFactor bounds how much worse the cached estimate's
	// verified joint cost may be than max(cached cost, the well-fit
	// floor 2N) before the cache refuses to serve it. Default 3.
	CacheGuardFactor float64
}

// enabled reports whether any part of the fast path is on.
func (c FastPathConfig) enabled() bool { return c.WarmStart || c.CacheSize > 0 }

// withDefaults fills the zero tolerances.
func (c FastPathConfig) withDefaults() FastPathConfig {
	if c.CacheDK <= 0 {
		c.CacheDK = 2e-9
	}
	if c.CacheDB <= 0 {
		c.CacheDB = 0.08
	}
	if c.CacheGuardFactor <= 0 {
		c.CacheGuardFactor = 3
	}
	return c
}

// antennaSig is the slim per-antenna fingerprint the stationary match
// compares: which antenna, and its fitted line's slope and intercept.
type antennaSig struct {
	ID    int
	K, B0 float64
}

// tagState is one tag's fast-path memory: the last successful estimate
// and the fingerprint of the window that produced it.
type tagState struct {
	est Estimate
	sig []antennaSig
}

// solveCache is the per-tag LRU behind the fast path. Entries are
// replaced wholesale on put and their fields are never mutated after
// insertion, so get may hand out the stored pointer without copying.
// All methods are safe for concurrent use (batch workers share one).
type solveCache struct {
	cfg FastPathConfig

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *cacheEntry
	byTag map[string]*list.Element
	cap   int
}

type cacheEntry struct {
	tag string
	st  *tagState
}

func newSolveCache(cfg FastPathConfig) *solveCache {
	capacity := cfg.CacheSize
	if capacity <= 0 {
		// Warm start alone still needs per-tag memory; bound it.
		capacity = 64
	}
	return &solveCache{
		cfg:   cfg.withDefaults(),
		ll:    list.New(),
		byTag: make(map[string]*list.Element, capacity),
		cap:   capacity,
	}
}

func (sc *solveCache) get(tag string) *tagState {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	el, ok := sc.byTag[tag]
	if !ok {
		return nil
	}
	sc.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).st
}

func (sc *solveCache) put(tag string, st *tagState) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.byTag[tag]; ok {
		el.Value.(*cacheEntry).st = st
		sc.ll.MoveToFront(el)
		return
	}
	sc.byTag[tag] = sc.ll.PushFront(&cacheEntry{tag: tag, st: st})
	for sc.ll.Len() > sc.cap {
		oldest := sc.ll.Back()
		sc.ll.Remove(oldest)
		delete(sc.byTag, oldest.Value.(*cacheEntry).tag)
	}
}

// signature extracts the stationary-match fingerprint of a window's
// calibrated observations.
func signature(obs []core.Observation) []antennaSig {
	sig := make([]antennaSig, len(obs))
	for i, o := range obs {
		sig[i] = antennaSig{ID: o.ID, K: o.Line.K, B0: o.Line.B0}
	}
	return sig
}

// stationaryDelta reports whether the current window's observations
// fingerprint-match a previous window, and if so by how much the
// common-mode terms drifted. Position enters the per-antenna lines
// *differentially* (each antenna sits at a different distance), while
// the tag terms k_t and b_t enter *common-mode* (identically on every
// antenna) — so a uniform shift of all slopes or all intercepts is
// device/material drift, not motion, and must not break the match.
// The gates therefore apply to the residuals after removing the mean
// slope delta dK and the circular-mean intercept delta dB: same
// antennas in the same order, every slope residual within CacheDK,
// every intercept residual within CacheDB. The caller compensates the
// cached estimate by (dK, dB) before verifying it. A changed antenna
// set always misses — a tag that lost or regained an antenna is not
// "unchanged" even if the survivors agree.
func stationaryDelta(sig []antennaSig, obs []core.Observation, cfg FastPathConfig) (dK, dB float64, ok bool) {
	if len(sig) != len(obs) || len(obs) == 0 {
		return 0, 0, false
	}
	var sk, ss, sc float64
	for i, o := range obs {
		if sig[i].ID != o.ID {
			return 0, 0, false
		}
		sk += o.Line.K - sig[i].K
		s, c := math.Sincos(o.Line.B0 - sig[i].B0)
		ss += s
		sc += c
	}
	dK = sk / float64(len(obs))
	dB = math.Atan2(ss, sc)
	for i, o := range obs {
		if math.Abs(o.Line.K-sig[i].K-dK) > cfg.CacheDK {
			return 0, 0, false
		}
		if math.Abs(mathx.WrapPi(o.Line.B0-sig[i].B0-dB)) > cfg.CacheDB {
			return 0, 0, false
		}
	}
	return dK, dB, true
}

// solveStats aggregates the System's fast-path counters.
type solveStats struct {
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	core        core.SolveStats
}

// SolveStatsSnapshot is a point-in-time copy of the solver fast-path
// counters, see System.SolveStats.
type SolveStatsSnapshot struct {
	// CacheHits counts windows served from the stationary-tag cache
	// without solving.
	CacheHits int64
	// CacheMisses counts tagged fast-path windows that had to solve
	// (no previous state, the tag moved, or verification failed).
	CacheMisses int64
	// WarmAttempts / WarmFallbacks count solves that entered the warm
	// fast path and those that failed a guard and re-ran cold.
	WarmAttempts  int64
	WarmFallbacks int64
	// StartsPruned counts multistart seeds demoted to the short
	// iteration budget by adaptive pruning.
	StartsPruned int64
}

// SolveStats returns a snapshot of the solver fast-path counters. The
// counters are cumulative over the System's lifetime and safe to read
// while windows are being processed.
func (s *System) SolveStats() SolveStatsSnapshot {
	return SolveStatsSnapshot{
		CacheHits:     s.solveStats.cacheHits.Load(),
		CacheMisses:   s.solveStats.cacheMisses.Load(),
		WarmAttempts:  s.solveStats.core.WarmAttempts.Load(),
		WarmFallbacks: s.solveStats.core.WarmFallbacks.Load(),
		StartsPruned:  s.solveStats.core.StartsPruned.Load(),
	}
}

// solveEstimate runs the disentangler for one window, routing through
// the fast path when the System has one and the window is tagged:
//
//  1. If the tag's previous window fingerprint-matches this one
//     (stationaryDelta), compensate the cached estimate for the
//     common-mode k_t/b_t drift, verify it against this window's joint
//     objective, and serve it — no solve at all. The served estimate
//     carries this window's verified cost; the stored fingerprint is
//     deliberately NOT refreshed on a hit, so a tag creeping slowly
//     through the tolerance cannot ratchet the cache along with it —
//     positional drift accumulates against the original fingerprint
//     until it forces a real solve.
//  2. Otherwise solve, warm-seeded from the previous estimate when
//     WarmStart is on (core.Solve2D/3D fall back to the cold path
//     internally if the seed fails its guards).
//  3. Store the fresh estimate + fingerprint for the next window.
//
// Untagged windows and Systems without a fast path solve cold, exactly
// as before.
func (s *System) solveEstimate(tag string, obs []core.Observation) (Estimate, error) {
	opts := s.cfg.Pipeline.Solver
	opts.Stats = &s.solveStats.core

	var prev *tagState
	if s.fastpath != nil && tag != "" {
		prev = s.fastpath.get(tag)
		if prev != nil && s.fastpath.cfg.CacheSize > 0 {
			if dK, dB, ok := stationaryDelta(prev.sig, obs, s.fastpath.cfg); ok {
				est := prev.est
				est.Kt += dK
				est.Bt0 = mathx.Wrap2Pi(est.Bt0 + dB)
				cost := core.VerifyEstimate(obs, est, s.cfg.Pipeline.Mode3D, s.cfg.Pipeline.Solver)
				ceiling := s.fastpath.cfg.CacheGuardFactor *
					math.Max(prev.est.Cost, core.WarmCostFloor(len(obs)))
				if cost <= ceiling {
					s.solveStats.cacheHits.Add(1)
					est.Cost = cost
					return est, nil
				}
			}
		}
		s.solveStats.cacheMisses.Add(1)
		if prev != nil && s.fastpath.cfg.WarmStart {
			warm := prev.est
			opts.WarmStart = &warm
		}
	}

	var est Estimate
	var err error
	if s.cfg.Pipeline.Mode3D {
		est, err = core.Solve3D(obs, s.bounds, opts)
	} else {
		est, err = core.Solve2D(obs, s.bounds, opts)
	}
	if err != nil {
		return Estimate{}, err
	}
	if s.fastpath != nil && tag != "" {
		s.fastpath.put(tag, &tagState{est: est, sig: signature(obs)})
	}
	return est, nil
}
