package rfprism

import (
	"context"
	"errors"
	"math"
	"testing"

	"rfprism/internal/geom"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// collectBatchWindows builds a deterministic mixed batch: several
// clean windows at distinct poses plus one corrupted window (index 2)
// that the error detector must reject.
func collectBatchWindows(t *testing.T, scene *sim.Scene, tag sim.Tag) []Window {
	t.Helper()
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	poses := []struct {
		pos   geom.Vec3
		alpha float64
	}{
		{geom.Vec3{X: 0.7, Y: 1.2}, 0.5},
		{geom.Vec3{X: 1.3, Y: 1.8}, 1.1},
		{geom.Vec3{X: 1.0, Y: 1.5}, 0.0}, // corrupted below
		{geom.Vec3{X: 0.5, Y: 2.0}, 2.0},
		{geom.Vec3{X: 1.6, Y: 1.1}, 0.9},
		{geom.Vec3{X: 0.9, Y: 2.3}, 1.7},
	}
	wins := make([]Window, len(poses))
	for i, p := range poses {
		readings := scene.CollectWindow(tag, scene.Place(p.pos, p.alpha, none))
		if i == 2 {
			// Deterministically scramble the phases: a tag that moved
			// mid-window leaves no phase-frequency line to fit.
			for j := range readings {
				readings[j].Phase = math.Mod(readings[j].Phase+3*math.Sin(float64(j)*12.9898)+7, 2*math.Pi)
			}
		}
		wins[i] = Window{Tag: "batch-tag", Readings: readings}
	}
	return wins
}

// TestProcessWindowsMatchesSerial: the batch API must preserve input
// order, produce bit-identical estimates to per-window serial calls,
// and capture the rejected window's error without failing the batch.
func TestProcessWindowsMatchesSerial(t *testing.T) {
	scene, sys := newTestScene(t, rf.CleanSpace(), 77)
	tag := scene.NewTag("batch")
	wins := collectBatchWindows(t, scene, tag)

	results := sys.ProcessWindows(context.Background(), wins)
	if len(results) != len(wins) {
		t.Fatalf("got %d results for %d windows", len(results), len(wins))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Tag != "batch-tag" {
			t.Errorf("result %d lost its tag: %q", i, r.Tag)
		}
		serialRes, serialErr := sys.ProcessWindow(wins[i].Readings)
		if i == 2 {
			if !errors.Is(r.Err, ErrWindowRejected) {
				t.Errorf("corrupted window: want ErrWindowRejected, got %v", r.Err)
			}
			if serialErr == nil {
				t.Errorf("serial path accepted the corrupted window")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("window %d: unexpected error %v", i, r.Err)
			continue
		}
		if serialErr != nil {
			t.Fatalf("serial window %d: %v", i, serialErr)
		}
		if r.Result.Estimate != serialRes.Estimate {
			t.Errorf("window %d: batch and serial estimates differ:\n%+v\n%+v",
				i, r.Result.Estimate, serialRes.Estimate)
		}
	}
}

// TestProcessWindowsParallelismInvariant: worker count must not
// change results.
func TestProcessWindowsParallelismInvariant(t *testing.T) {
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), 78)
	if err != nil {
		t.Fatal(err)
	}
	mkSys := func(par int) *System {
		sys, err := NewSystem(DeploymentFromSim(scene.Antennas), Bounds2D(sim.PaperRegion()), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	tag := scene.NewTag("batch-par")
	wins := collectBatchWindows(t, scene, tag)
	serial := mkSys(1).ProcessWindows(context.Background(), wins)
	parallel := mkSys(4).ProcessWindows(context.Background(), wins)
	for i := range wins {
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("window %d: error mismatch: %v vs %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Err == nil && serial[i].Result.Estimate != parallel[i].Result.Estimate {
			t.Errorf("window %d: estimates differ across parallelism", i)
		}
	}
}

// TestProcessWindowsCancelled: a cancelled context fails fast with
// per-window context errors instead of hanging or panicking.
func TestProcessWindowsCancelled(t *testing.T) {
	scene, sys := newTestScene(t, rf.CleanSpace(), 79)
	tag := scene.NewTag("batch-cancel")
	wins := collectBatchWindows(t, scene, tag)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := sys.ProcessWindows(ctx, wins)
	if len(results) != len(wins) {
		t.Fatalf("got %d results for %d windows", len(results), len(wins))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("window %d: want context.Canceled, got %v", i, r.Err)
		}
	}
}

// TestProcessWindowsEmpty: an empty batch is a no-op, not a hang.
func TestProcessWindowsEmpty(t *testing.T) {
	_, sys := newTestScene(t, rf.CleanSpace(), 80)
	if got := sys.ProcessWindows(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestProcessStreamPreservesOrder: results come out in arrival order
// with sequential indices even though solves overlap, and the output
// channel closes after the input does.
func TestProcessStreamPreservesOrder(t *testing.T) {
	scene, sys := newTestScene(t, rf.CleanSpace(), 81)
	tag := scene.NewTag("batch-stream")
	wins := collectBatchWindows(t, scene, tag)

	in := make(chan Window)
	go func() {
		defer close(in)
		for _, w := range wins {
			in <- w
		}
	}()
	var results []WindowResult
	for r := range sys.ProcessStream(context.Background(), in) {
		results = append(results, r)
	}
	if len(results) != len(wins) {
		t.Fatalf("got %d results for %d windows", len(results), len(wins))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("stream emitted index %d at position %d", r.Index, i)
		}
		if i == 2 {
			if !errors.Is(r.Err, ErrWindowRejected) {
				t.Errorf("corrupted window: want ErrWindowRejected, got %v", r.Err)
			}
		} else if r.Err != nil {
			t.Errorf("window %d: unexpected error %v", i, r.Err)
		}
	}
}
