package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs builds an easily separable 2D dataset with k Gaussian blobs.
func blobs(rng *rand.Rand, k, perClass int, spread float64) Dataset {
	d := Dataset{}
	for c := 0; c < k; c++ {
		cx := float64(c) * 4
		cy := float64(c%2) * 4
		for i := 0; i < perClass; i++ {
			d.X = append(d.X, []float64{
				cx + rng.NormFloat64()*spread,
				cy + rng.NormFloat64()*spread,
			})
			d.Y = append(d.Y, c)
		}
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	if err := (Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}).Validate(); err == nil {
		t.Fatal("row/label mismatch must error")
	}
	if err := (Dataset{}).Validate(); err == nil {
		t.Fatal("empty must error")
	}
	if err := (Dataset{X: [][]float64{{1, 2}, {3}}, Y: []int{0, 1}}).Validate(); err == nil {
		t.Fatal("ragged rows must error")
	}
	if (Dataset{X: [][]float64{{1}}, Y: []int{4}}).NumClasses() != 5 {
		t.Fatal("NumClasses")
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 100}, {3, 300}}
	s := FitStandardizer(x)
	a := s.Apply([]float64{2, 200})
	if math.Abs(a[0]) > 1e-12 || math.Abs(a[1]) > 1e-12 {
		t.Fatalf("mean not removed: %v", a)
	}
	b := s.Apply([]float64{3, 300})
	if math.Abs(b[0]-b[1]) > 1e-9 {
		t.Fatalf("scales not equalized: %v", b)
	}
	// Constant dimension must not divide by zero.
	s2 := FitStandardizer([][]float64{{5}, {5}})
	if v := s2.Apply([]float64{5}); math.IsNaN(v[0]) || math.IsInf(v[0], 0) {
		t.Fatalf("constant dim: %v", v)
	}
	// Empty standardizer copies.
	e := Standardizer{}
	in := []float64{1, 2}
	out := e.Apply(in)
	out[0] = 9
	if in[0] == 9 {
		t.Fatal("Apply aliased its input")
	}
}

func TestKNNSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := blobs(rng, 4, 30, 0.3)
	test := blobs(rng, 4, 10, 0.3)
	knn := &KNN{K: 3, Standardize: true}
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(knn, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("KNN accuracy %g on separable blobs", acc)
	}
}

func TestKNNNotTrained(t *testing.T) {
	var knn KNN
	if _, err := knn.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	knn := &KNN{K: 50}
	if err := knn.Fit(Dataset{X: [][]float64{{0}, {1}, {2}}, Y: []int{0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	p, err := knn.Predict([]float64{0.1})
	if err != nil || p != 0 {
		t.Fatalf("K>n: %d, %v", p, err)
	}
}

func TestKNNMajorityVote(t *testing.T) {
	knn := &KNN{K: 3}
	d := Dataset{
		X: [][]float64{{0}, {0.1}, {0.2}, {5}},
		Y: []int{1, 1, 0, 0},
	}
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	p, err := knn.Predict([]float64{0.05})
	if err != nil || p != 1 {
		t.Fatalf("majority vote = %d, %v", p, err)
	}
}

func TestSVMSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := blobs(rng, 3, 60, 0.4)
	test := blobs(rng, 3, 20, 0.4)
	svm := &SVM{Seed: 1}
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(svm, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("SVM accuracy %g on separable blobs", acc)
	}
}

func TestSVMDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := blobs(rng, 2, 40, 0.5)
	mk := func() []int {
		svm := &SVM{Seed: 9}
		if err := svm.Fit(train); err != nil {
			t.Fatal(err)
		}
		var out []int
		for _, x := range train.X {
			p, _ := svm.Predict(x)
			out = append(out, p)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SVM not deterministic for a fixed seed")
		}
	}
}

func TestSVMNotTrained(t *testing.T) {
	var svm SVM
	if _, err := svm.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatal(err)
	}
}

func TestTreeXOR(t *testing.T) {
	// XOR is not linearly separable; the tree must still nail it.
	d := Dataset{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := float64(rng.Intn(2))
		y := float64(rng.Intn(2))
		d.X = append(d.X, []float64{x + rng.NormFloat64()*0.1, y + rng.NormFloat64()*0.1})
		d.Y = append(d.Y, int(x)^int(y))
	}
	tree := &Tree{}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(tree, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Fatalf("tree accuracy %g on XOR", acc)
	}
	if tree.Depth() < 2 {
		t.Fatalf("XOR needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreePureLeaf(t *testing.T) {
	tree := &Tree{}
	d := Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{2, 2, 2}}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p, _ := tree.Predict([]float64{99}); p != 2 {
		t.Fatalf("pure dataset prediction = %d", p)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure dataset must be a single leaf, depth %d", tree.Depth())
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := blobs(rng, 4, 50, 1.5)
	tree := &Tree{MaxDepth: 2}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Fatalf("depth %d exceeds MaxDepth 2", tree.Depth())
	}
}

func TestTreeNotTrained(t *testing.T) {
	var tree Tree
	if _, err := tree.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatal(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := blobs(rng, 3, 40, 0.3)
	tree := &Tree{}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := ConfusionMatrix(tree, train, 3)
	if err != nil {
		t.Fatal(err)
	}
	var diag, total int
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
			if i == j {
				diag += m[i][j]
			}
		}
	}
	if total != len(train.X) {
		t.Fatalf("confusion total %d, want %d", total, len(train.X))
	}
	if float64(diag)/float64(total) < 0.95 {
		t.Fatalf("training confusion too off-diagonal: %d/%d", diag, total)
	}
}

// TestClassifiersAgreeOnTrivialProblem: all three classifiers must
// perfectly learn a 1D threshold problem.
func TestClassifiersAgreeOnTrivialProblem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dataset{}
		for i := 0; i < 60; i++ {
			v := rng.Float64()*2 - 1
			label := 0
			if v > 0 {
				label = 1
			}
			d.X = append(d.X, []float64{v})
			d.Y = append(d.Y, label)
		}
		for _, c := range []Classifier{&KNN{K: 1}, &SVM{Seed: seed}, &Tree{}} {
			if err := c.Fit(d); err != nil {
				return false
			}
			if p, err := c.Predict([]float64{0.8}); err != nil || p != 1 {
				return false
			}
			if p, err := c.Predict([]float64{-0.8}); err != nil || p != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
