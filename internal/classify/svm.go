package classify

import (
	"math/rand"
)

// SVM is a multi-class linear support vector machine trained
// one-vs-rest with the Pegasos primal sub-gradient algorithm
// (Shalev-Shwartz et al.). Features are always standardized.
type SVM struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 40).
	Epochs int
	// Seed drives the sampling order for reproducibility.
	Seed int64

	trained bool
	std     Standardizer
	weights [][]float64 // per class, length dim+1 (bias last)
}

var _ Classifier = (*SVM)(nil)

// Fit trains one binary Pegasos SVM per class.
func (s *SVM) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-3
	}
	if s.Epochs <= 0 {
		s.Epochs = 40
	}
	s.std = FitStandardizer(d.X)
	x := make([][]float64, len(d.X))
	for i, row := range d.X {
		x[i] = s.std.Apply(row)
	}
	numClasses := d.NumClasses()
	dim := len(x[0])
	s.weights = make([][]float64, numClasses)
	rng := rand.New(rand.NewSource(s.Seed + 1))
	for c := 0; c < numClasses; c++ {
		s.weights[c] = s.trainBinary(x, d.Y, c, dim, rng)
	}
	s.trained = true
	return nil
}

// trainBinary runs Pegasos for class c vs rest, returning the weight
// vector with the bias appended.
func (s *SVM) trainBinary(x [][]float64, y []int, c, dim int, rng *rand.Rand) []float64 {
	w := make([]float64, dim+1)
	t := 0
	n := len(x)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < s.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			eta := 1 / (s.Lambda * float64(t))
			label := -1.0
			if y[i] == c {
				label = 1
			}
			margin := w[dim] // bias
			for j, v := range x[i] {
				margin += w[j] * v
			}
			margin *= label
			// Regularization shrink (weights only, not bias).
			shrink := 1 - eta*s.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for j := 0; j < dim; j++ {
				w[j] *= shrink
			}
			if margin < 1 {
				for j, v := range x[i] {
					w[j] += eta * label * v
				}
				w[dim] += eta * label
			}
		}
	}
	return w
}

// Predict returns the class with the highest decision value.
func (s *SVM) Predict(x []float64) (int, error) {
	if !s.trained {
		return 0, ErrNotTrained
	}
	q := s.std.Apply(x)
	best, bestScore := 0, 0.0
	for c, w := range s.weights {
		score := w[len(w)-1]
		for j, v := range q {
			if j < len(w)-1 {
				score += w[j] * v
			}
		}
		if c == 0 || score > bestScore {
			best, bestScore = c, score
		}
	}
	return best, nil
}
