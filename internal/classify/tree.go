package classify

import (
	"math"
	"sort"
)

// Tree is a CART decision tree with Gini impurity splits — the
// classifier the paper selects for material identification (87.9%
// overall accuracy in Fig. 13).
type Tree struct {
	// MaxDepth bounds the tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int

	trained bool
	root    *treeNode
}

var _ Classifier = (*Tree)(nil)

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     int // leaf prediction
	leaf      bool
}

// Fit grows the tree.
func (t *Tree) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if t.MaxDepth <= 0 {
		t.MaxDepth = 12
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 2
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	numClasses := d.NumClasses()
	t.root = t.grow(d, idx, 0, numClasses)
	t.trained = true
	return nil
}

func majority(d Dataset, idx []int, numClasses int) int {
	counts := make([]int, numClasses)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		g -= p * p
	}
	return g
}

func (t *Tree) grow(d Dataset, idx []int, depth, numClasses int) *treeNode {
	// Stop when pure, too deep or too small.
	pure := true
	for _, i := range idx[1:] {
		if d.Y[i] != d.Y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return &treeNode{leaf: true, label: majority(d, idx, numClasses)}
	}

	dim := len(d.X[0])
	bestGain := -1.0
	bestFeature, bestSplit := -1, 0.0
	parentCounts := make([]int, numClasses)
	for _, i := range idx {
		parentCounts[d.Y[i]]++
	}
	parentGini := gini(parentCounts, len(idx))

	sorted := make([]int, len(idx))
	leftCounts := make([]int, numClasses)
	for f := 0; f < dim; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return d.X[sorted[a]][f] < d.X[sorted[b]][f] })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		rightCounts := append([]int(nil), parentCounts...)
		for pos := 0; pos < len(sorted)-1; pos++ {
			y := d.Y[sorted[pos]]
			leftCounts[y]++
			rightCounts[y]--
			nl := pos + 1
			nr := len(sorted) - nl
			if nl < t.MinLeaf || nr < t.MinLeaf {
				continue
			}
			v, next := d.X[sorted[pos]][f], d.X[sorted[pos+1]][f]
			if v == next {
				continue // cannot split between equal values
			}
			gain := parentGini - (float64(nl)*gini(leftCounts, nl)+float64(nr)*gini(rightCounts, nr))/float64(len(sorted))
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestSplit = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 || bestGain <= 1e-12 {
		return &treeNode{leaf: true, label: majority(d, idx, numClasses)}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestSplit {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, label: majority(d, idx, numClasses)}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestSplit,
		left:      t.grow(d, left, depth+1, numClasses),
		right:     t.grow(d, right, depth+1, numClasses),
	}
}

// Predict walks the tree.
func (t *Tree) Predict(x []float64) (int, error) {
	if !t.trained {
		return 0, ErrNotTrained
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// Depth returns the depth of the fitted tree (diagnostics).
func (t *Tree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return walk(t.root)
}
