package classify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTWIdentity(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := DTW(a, a, 0); d != 0 {
		t.Fatalf("DTW(a,a) = %g", d)
	}
}

func TestDTWSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 5+rng.Intn(10))
		b := make([]float64, 5+rng.Intn(10))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		return math.Abs(DTW(a, b, 0)-DTW(b, a, 0)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDTWNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 3+rng.Intn(8))
		b := make([]float64, 3+rng.Intn(8))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		return DTW(a, b, 3) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDTWWarpsShifts(t *testing.T) {
	// A time-shifted copy must be much closer under DTW than under a
	// rigid Euclidean distance.
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(float64(i) * 0.4)
		b[i] = math.Sin(float64(i)*0.4 - 0.8) // shifted by 2 samples
	}
	var euclid float64
	for i := range a {
		d := a[i] - b[i]
		euclid += d * d
	}
	euclid = math.Sqrt(euclid)
	if dtw := DTW(a, b, 5); dtw > euclid/2 {
		t.Fatalf("DTW %g did not absorb the shift (euclid %g)", dtw, euclid)
	}
}

func TestDTWEmpty(t *testing.T) {
	if !math.IsInf(DTW(nil, []float64{1}, 0), 1) {
		t.Fatal("empty sequence must give +inf")
	}
}

func TestDTWDifferentLengths(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	if d := DTW(a, b, 2); math.IsInf(d, 0) || d < 0 {
		t.Fatalf("different lengths: %g", d)
	}
}

func TestDTWNNClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mkCurve := func(class int) []float64 {
		out := make([]float64, 30)
		for i := range out {
			base := math.Sin(float64(i)*0.3 + float64(class)*1.5)
			out[i] = base + rng.NormFloat64()*0.1
		}
		return out
	}
	d := Dataset{}
	for c := 0; c < 3; c++ {
		for i := 0; i < 15; i++ {
			d.X = append(d.X, mkCurve(c))
			d.Y = append(d.Y, c)
		}
	}
	nn := &DTWNN{Window: 4}
	if err := nn.Fit(d); err != nil {
		t.Fatal(err)
	}
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		c := i % 3
		p, err := nn.Predict(mkCurve(c))
		if err != nil {
			t.Fatal(err)
		}
		if p == c {
			correct++
		}
	}
	if correct < trials*9/10 {
		t.Fatalf("DTW-NN got %d/%d", correct, trials)
	}
}

func TestDTWNNNotTrained(t *testing.T) {
	var nn DTWNN
	if _, err := nn.Predict([]float64{1}); err == nil {
		t.Fatal("untrained DTWNN must error")
	}
}
