// Package classify provides the from-scratch classifiers RF-Prism's
// material identification is evaluated with (§V-B, Fig. 13): K-nearest
// neighbors, a linear support vector machine, and a CART decision
// tree, plus the dynamic-time-warping distance the Tagtag baseline
// uses. Only the standard library is used.
package classify

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotTrained is returned when Predict is called before Fit.
var ErrNotTrained = errors.New("classify: model not trained")

// Dataset is a labeled feature matrix.
type Dataset struct {
	X [][]float64
	Y []int
}

// Validate checks the dataset's shape.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("classify: %d feature rows vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("classify: empty dataset")
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("classify: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	return nil
}

// NumClasses returns 1 + the maximum label.
func (d Dataset) NumClasses() int {
	max := -1
	for _, y := range d.Y {
		if y > max {
			max = y
		}
	}
	return max + 1
}

// Classifier is the common interface of all models in this package.
type Classifier interface {
	// Fit trains the model on the dataset.
	Fit(d Dataset) error
	// Predict returns the predicted label of one feature vector.
	Predict(x []float64) (int, error)
}

// Standardizer z-scores features using statistics captured at fit
// time. Distance- and margin-based models (KNN, SVM) need it because
// the material feature vector mixes rad/Hz slopes (~1e-8) with radian
// intercepts (~1).
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-dimension statistics.
func FitStandardizer(x [][]float64) Standardizer {
	if len(x) == 0 {
		return Standardizer{}
	}
	dim := len(x[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(x)))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	return Standardizer{Mean: mean, Std: std}
}

// Apply z-scores one vector (allocating a new slice).
func (s Standardizer) Apply(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// --- KNN ---

// KNN is a brute-force K-nearest-neighbors classifier with optional
// feature standardization.
type KNN struct {
	// K is the neighbor count (default 5).
	K int
	// Standardize z-scores features before distance computation.
	Standardize bool

	trained bool
	std     Standardizer
	x       [][]float64
	y       []int
}

var _ Classifier = (*KNN)(nil)

// Fit stores the (optionally standardized) training set.
func (k *KNN) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	if k.Standardize {
		k.std = FitStandardizer(d.X)
	} else {
		k.std = Standardizer{}
	}
	k.x = make([][]float64, len(d.X))
	for i, row := range d.X {
		k.x[i] = k.std.Apply(row)
	}
	k.y = append([]int(nil), d.Y...)
	k.trained = true
	return nil
}

// Predict votes among the K nearest training points.
func (k *KNN) Predict(x []float64) (int, error) {
	if !k.trained {
		return 0, ErrNotTrained
	}
	q := k.std.Apply(x)
	type cand struct {
		dist  float64
		label int
	}
	cands := make([]cand, len(k.x))
	for i, row := range k.x {
		var s float64
		for j, v := range row {
			d := q[j] - v
			s += d * d
		}
		cands[i] = cand{dist: s, label: k.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	n := k.K
	if n > len(cands) {
		n = len(cands)
	}
	votes := make(map[int]int)
	bestLabel, bestVotes := 0, -1
	for i := 0; i < n; i++ {
		votes[cands[i].label]++
		if votes[cands[i].label] > bestVotes {
			bestVotes = votes[cands[i].label]
			bestLabel = cands[i].label
		}
	}
	return bestLabel, nil
}

// Accuracy scores a classifier on a labeled set.
func Accuracy(c Classifier, d Dataset) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	correct := 0
	for i, row := range d.X {
		p, err := c.Predict(row)
		if err != nil {
			return 0, err
		}
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.X)), nil
}

// ConfusionMatrix returns counts[true][predicted] over a labeled set.
func ConfusionMatrix(c Classifier, d Dataset, numClasses int) ([][]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i, row := range d.X {
		p, err := c.Predict(row)
		if err != nil {
			return nil, err
		}
		if d.Y[i] >= 0 && d.Y[i] < numClasses && p >= 0 && p < numClasses {
			m[d.Y[i]][p]++
		}
	}
	return m, nil
}
