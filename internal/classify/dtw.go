package classify

import (
	"errors"
	"math"
)

// DTW computes the dynamic-time-warping distance between two
// sequences with a Sakoe–Chiba band constraint. The Tagtag baseline
// classifies material phase curves with 1-NN under this distance.
func DTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = max(n, m)
	}
	if w := abs(n - m); window < w {
		window = w
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			c := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DTWNN is a 1-nearest-neighbor classifier under the DTW distance —
// the classification engine of the Tagtag baseline.
type DTWNN struct {
	// Window is the Sakoe–Chiba band half-width (default 5).
	Window int

	trained bool
	x       [][]float64
	y       []int
}

var _ Classifier = (*DTWNN)(nil)

// Fit stores the training curves.
func (c *DTWNN) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	c.x = make([][]float64, len(d.X))
	for i, row := range d.X {
		c.x[i] = append([]float64(nil), row...)
	}
	c.y = append([]int(nil), d.Y...)
	c.trained = true
	return nil
}

// Predict returns the label of the DTW-nearest training curve.
func (c *DTWNN) Predict(x []float64) (int, error) {
	if !c.trained {
		return 0, ErrNotTrained
	}
	if len(c.x) == 0 {
		return 0, errors.New("classify: empty DTW training set")
	}
	best, bestDist := 0, math.Inf(1)
	for i, row := range c.x {
		d := DTW(x, row, c.Window)
		if d < bestDist {
			best, bestDist = c.y[i], d
		}
	}
	return best, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
