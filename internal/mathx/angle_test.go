package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWrap2Pi(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{2 * math.Pi, 0},
		{-1, 2*math.Pi - 1},
		{7, 7 - 2*math.Pi},
		{-4 * math.Pi, 0},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := Wrap2Pi(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Wrap2Pi(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestWrapPi(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi / 2, -math.Pi / 2},
		{2 * math.Pi, 0},
		{-0.1, -0.1},
	}
	for _, c := range cases {
		if got := WrapPi(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPi(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestWrapPropertyRanges(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w2 := Wrap2Pi(x)
		wp := WrapPi(x)
		if w2 < 0 || w2 >= 2*math.Pi {
			return false
		}
		if wp <= -math.Pi || wp > math.Pi {
			return false
		}
		// Both must be congruent to x modulo 2π.
		return math.Abs(WrapPi(w2-x)) < 1e-6 && math.Abs(WrapPi(wp-x)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngDiff(t *testing.T) {
	if got := AngDiff(0.1, 2*math.Pi-0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AngDiff across wrap = %g, want 0.2", got)
	}
	if got := AngDiff(1, 2); math.Abs(got+1) > 1e-12 {
		t.Errorf("AngDiff(1,2) = %g, want -1", got)
	}
}

func TestAngDiffPeriod(t *testing.T) {
	// Dipole angles alias every π.
	if got := AngDiffPeriod(0.05, math.Pi-0.05, math.Pi); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AngDiffPeriod = %g, want 0.1", got)
	}
	if got := AngDiffPeriod(3, 0, math.Pi); math.Abs(got-(3-math.Pi)) > 1e-12 {
		t.Errorf("AngDiffPeriod(3,0,π) = %g, want %g", got, 3-math.Pi)
	}
}

func TestAngDiffPeriodProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		d := AngDiffPeriod(a, b, math.Pi)
		if d <= -math.Pi/2-1e-9 || d > math.Pi/2+1e-9 {
			return false
		}
		// a-b-d must be a multiple of π.
		k := (a - b - d) / math.Pi
		return math.Abs(k-math.Round(k)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnwrap(t *testing.T) {
	// A steadily increasing phase wrapped into [0, 2π) must unwrap to
	// a line (up to the initial offset).
	n := 100
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 0.3 + 0.5*float64(i)
		wrapped[i] = Wrap2Pi(truth[i])
	}
	got := Unwrap(wrapped)
	for i := range got {
		if math.Abs(got[i]-truth[i]) > 1e-9 {
			t.Fatalf("Unwrap[%d] = %g, want %g", i, got[i], truth[i])
		}
	}
}

func TestUnwrapEmptyAndSingle(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Errorf("Unwrap(nil) = %v", got)
	}
	if got := Unwrap([]float64{1.5}); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("Unwrap single = %v", got)
	}
}

func TestUnwrapHalfPi(t *testing.T) {
	// A slowly increasing phase with a π flip in the middle must come
	// back smooth.
	in := []float64{0.1, 0.2, 0.3 + math.Pi, 0.4, 0.5}
	got := UnwrapHalfPi(in)
	for i := 1; i < len(got); i++ {
		if d := math.Abs(got[i] - got[i-1]); d > 0.5 {
			t.Fatalf("UnwrapHalfPi left a jump of %g at %d: %v", d, i, got)
		}
	}
}

func TestCircMean(t *testing.T) {
	// Angles straddling the wrap point.
	m := CircMean([]float64{2*math.Pi - 0.1, 0.1})
	if math.Abs(WrapPi(m)) > 1e-9 {
		t.Errorf("CircMean straddling wrap = %g, want 0", m)
	}
	if got := CircMean(nil); got != 0 {
		t.Errorf("CircMean(nil) = %g", got)
	}
	if got := CircMean([]float64{1.25}); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("CircMean single = %g", got)
	}
}

func TestCircStd(t *testing.T) {
	tight := CircStd([]float64{1.0, 1.01, 0.99, 1.0})
	loose := CircStd([]float64{0, 1, 2, 3, 4, 5})
	if tight >= loose {
		t.Errorf("CircStd tight %g >= loose %g", tight, loose)
	}
	if got := CircStd([]float64{1}); got != 0 {
		t.Errorf("CircStd single = %g", got)
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e9 {
			return true
		}
		return math.Abs(Deg(Rad(x))-x) < 1e-9*math.Max(1, math.Abs(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
