package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestLMLinearFit: LM must solve a linear least-squares problem
// exactly in one shot.
func TestLMLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	prob := LMProblem{
		NumResiduals: len(xs),
		NumParams:    2,
		Residuals: func(p, out []float64) {
			for i, x := range xs {
				out[i] = ys[i] - (p[0]*x + p[1])
			}
		},
	}
	res, err := LevenbergMarquardt(prob, []float64{0, 0}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-3) > 1e-6 || math.Abs(res.Params[1]+2) > 1e-6 {
		t.Fatalf("params = %v", res.Params)
	}
	if !res.Converged {
		t.Error("did not report convergence")
	}
}

// TestLMExponentialFit: a genuinely nonlinear problem with noise.
func TestLMExponentialFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const a, b = 2.5, -0.7
	n := 40
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * 0.1
		ys[i] = a*math.Exp(b*xs[i]) + rng.NormFloat64()*0.01
	}
	prob := LMProblem{
		NumResiduals: n,
		NumParams:    2,
		Residuals: func(p, out []float64) {
			for i := range xs {
				out[i] = ys[i] - p[0]*math.Exp(p[1]*xs[i])
			}
		},
	}
	res, err := LevenbergMarquardt(prob, []float64{1, 0}, LMOptions{})
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-a) > 0.05 || math.Abs(res.Params[1]-b) > 0.05 {
		t.Fatalf("params = %v, want ~[%g %g]", res.Params, a, b)
	}
}

// TestLMAnalyticJacobian: providing the Jacobian must give the same
// answer as finite differences.
func TestLMAnalyticJacobian(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2}
	ys := []float64{1, 1.8, 3.1, 5.2, 9.1}
	mk := func(jac func(p []float64, j *Mat)) []float64 {
		prob := LMProblem{
			NumResiduals: len(xs),
			NumParams:    2,
			Jacobian:     jac,
			Residuals: func(p, out []float64) {
				for i := range xs {
					out[i] = ys[i] - p[0]*math.Exp(p[1]*xs[i])
				}
			},
		}
		res, err := LevenbergMarquardt(prob, []float64{1, 0.5}, LMOptions{})
		if err != nil && !errors.Is(err, ErrNoConvergence) {
			t.Fatal(err)
		}
		return res.Params
	}
	numeric := mk(nil)
	analytic := mk(func(p []float64, j *Mat) {
		for i, x := range xs {
			e := math.Exp(p[1] * x)
			j.Set(i, 0, -e)
			j.Set(i, 1, -p[0]*x*e)
		}
	})
	for i := range numeric {
		if math.Abs(numeric[i]-analytic[i]) > 1e-3 {
			t.Fatalf("numeric %v vs analytic %v", numeric, analytic)
		}
	}
}

func TestLMValidation(t *testing.T) {
	prob := LMProblem{NumResiduals: 1, NumParams: 2, Residuals: func(p, out []float64) {}}
	if _, err := LevenbergMarquardt(prob, []float64{1, 2}, LMOptions{}); err == nil {
		t.Fatal("underdetermined problem must error")
	}
	prob2 := LMProblem{NumResiduals: 3, NumParams: 2, Residuals: func(p, out []float64) {}}
	if _, err := LevenbergMarquardt(prob2, []float64{1}, LMOptions{}); err == nil {
		t.Fatal("p0 length mismatch must error")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 10*(x[1]+2)*(x[1]+2)
	}
	best, val := NelderMead(f, []float64{5, 5}, 1, 2000)
	if math.Abs(best[0]-1) > 1e-3 || math.Abs(best[1]+2) > 1e-3 {
		t.Fatalf("NelderMead = %v (val %g)", best, val)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	best, _ := NelderMead(f, []float64{-1.2, 1}, 0.5, 4000)
	if math.Abs(best[0]-1) > 0.05 || math.Abs(best[1]-1) > 0.05 {
		t.Fatalf("Rosenbrock minimum = %v", best)
	}
}

func TestNelderMeadDegenerate(t *testing.T) {
	best, val := NelderMead(func(x []float64) float64 { return 42 }, []float64{1}, 0, 10)
	if len(best) != 1 || val != 42 {
		t.Fatalf("constant objective: %v %g", best, val)
	}
	if got, _ := NelderMead(func(x []float64) float64 { return 0 }, nil, 1, 10); got != nil {
		t.Fatalf("empty x0: %v", got)
	}
}
