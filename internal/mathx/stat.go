package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator) of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// MedianInPlace returns the median of xs, sorting xs as a side effect.
// It computes exactly the same value as Median but allocates nothing —
// the form the solver's per-window scratch paths use.
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return percentileSorted(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is the interpolation shared by Percentile and
// MedianInPlace; sorted must be ascending and non-empty.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of xs (a robust spread
// estimate used by the outlier rejection in the channel selector).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// MinMax returns the minimum and maximum of xs. For an empty slice it
// returns (0, 0).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// CDF holds an empirical cumulative distribution of a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (which is copied).
func NewCDF(sample []float64) *CDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical probability P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// Move past duplicates equal to x.
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value at probability q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Len reports the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Mean returns the sample mean of the CDF's underlying data.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Std returns the sample standard deviation of the underlying data.
func (c *CDF) Std() float64 { return Std(c.sorted) }

// Max returns the sample maximum.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}
