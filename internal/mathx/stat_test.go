package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample std with n-1 denominator.
	if s := Std(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Errorf("Std = %g", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("empty/single edge cases wrong")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %g", m)
	}
	// Percentile must not modify the input.
	if !sort.Float64sAreSorted(xs) {
		// input was unsorted, ensure it stays exactly as given
	}
	if xs[0] != 5 {
		t.Error("Percentile modified its input")
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %g", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("P50 = %g", p)
	}
	if p := Percentile([]float64{1, 2}, 50); math.Abs(p-1.5) > 1e-12 {
		t.Errorf("interpolated P50 = %g", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if m := MAD(xs); m != 1 {
		t.Errorf("MAD = %g, want 1", m)
	}
	if MAD(nil) != 0 {
		t.Error("MAD(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("MinMax(nil)")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("P(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
	if c.Len() != 4 || c.Max() != 4 {
		t.Error("Len/Max wrong")
	}
	if q := c.Quantile(0.5); q != 3 {
		t.Errorf("Quantile(0.5) = %g", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %g", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Errorf("Quantile(1) = %g", q)
	}
	empty := NewCDF(nil)
	if empty.P(1) != 0 || empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Error("empty CDF edge cases")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -30.0; x <= 30; x += 1.5 {
			p := c.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
