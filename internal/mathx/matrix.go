package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero-valued rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFromRows builds a matrix from row slices. All rows must have the
// same length; the data is copied.
func MatFromRows(rows [][]float64) (*Mat, error) {
	if len(rows) == 0 {
		return &Mat{}, nil
	}
	cols := len(rows[0])
	m := NewMat(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·other.
func (m *Mat) Mul(other *Mat) (*Mat, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("mathx: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMat(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Add(i, j, a*other.At(k, j))
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Mat) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("mathx: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// SolveLU solves a·x = b by Gaussian elimination with partial pivoting.
// a must be square; a and b are not modified.
func SolveLU(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: SolveLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: SolveLU rhs length %d, want %d", len(b), n)
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				wp, wc := w.At(pivot, j), w.At(col, j)
				w.Set(pivot, j, wc)
				w.Set(col, j, wp)
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.Add(r, j, -f*w.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// SolveCholesky solves a·x = b for a symmetric positive-definite a.
// It is roughly twice as fast as SolveLU and is what the normal
// equations inside the Levenberg–Marquardt loop use.
func SolveCholesky(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: SolveCholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: SolveCholesky rhs length %d, want %d", len(b), n)
	}
	// Lower-triangular factor L with a·= L·Lᵀ.
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves the overdetermined system a·x ≈ b in the
// least-squares sense via the normal equations with a tiny Tikhonov
// ridge for numerical safety. It returns the solution and the residual
// sum of squares.
func LeastSquares(a *Mat, b []float64) (x []float64, rss float64, err error) {
	if a.Rows < a.Cols {
		return nil, 0, fmt.Errorf("mathx: LeastSquares underdetermined %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, 0, fmt.Errorf("mathx: LeastSquares rhs length %d, want %d", len(b), a.Rows)
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, 0, err
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, 0, err
	}
	// Scale-aware ridge keeps Cholesky stable without biasing results.
	var trace float64
	for i := 0; i < ata.Rows; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-12 * trace / float64(ata.Rows)
	for i := 0; i < ata.Rows; i++ {
		ata.Add(i, i, ridge)
	}
	x, err = SolveCholesky(ata, atb)
	if err != nil {
		return nil, 0, err
	}
	pred, err := a.MulVec(x)
	if err != nil {
		return nil, 0, err
	}
	for i, p := range pred {
		d := b[i] - p
		rss += d * d
	}
	return x, rss, nil
}
