package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("At/Set/Add broken: %+v", m)
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatalf("transpose broken: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestMatFromRows(t *testing.T) {
	m, err := MatFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("MatFromRows content wrong: %+v", m)
	}
	if _, err := MatFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if m, err := MatFromRows(nil); err != nil || m.Rows != 0 {
		t.Fatalf("empty input: %v %+v", err, m)
	}
}

func TestMulAndMulVec(t *testing.T) {
	a, _ := MatFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %+v", c)
			}
		}
	}
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.Mul(NewMat(3, 3)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("vector length mismatch must error")
	}
}

func TestSolveLUKnown(t *testing.T) {
	a, _ := MatFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLU(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("SolveLU = %v, want %v", x, want)
		}
	}
}

func TestSolveLUSingular(t *testing.T) {
	a, _ := MatFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveLUErrors(t *testing.T) {
	if _, err := SolveLU(NewMat(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square must error")
	}
	if _, err := SolveLU(NewMat(2, 2), []float64{1}); err == nil {
		t.Fatal("rhs length mismatch must error")
	}
}

// TestSolveLUProperty: for random well-conditioned systems,
// a·x must reproduce b.
func TestSolveLUProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %g", trial, ax[i]-b[i])
			}
		}
	}
}

func TestSolveCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		// SPD matrix: GᵀG + I.
		g := NewMat(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		gt := g.T()
		a, err := gt.Mul(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := SolveLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				t.Fatalf("trial %d: Cholesky %v vs LU %v", trial, x1, x2)
			}
		}
	}
}

func TestSolveCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := MatFromRows([][]float64{{0, 1}, {1, 0}})
	if _, err := SolveCholesky(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system: y = 2x + 1 sampled 10x.
	a := NewMat(10, 2)
	b := make([]float64, 10)
	for i := 0; i < 10; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	sol, rss, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-2) > 1e-8 || math.Abs(sol[1]-1) > 1e-8 {
		t.Fatalf("LeastSquares = %v", sol)
	}
	if rss > 1e-12 {
		t.Fatalf("rss = %g, want ~0", rss)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, _, err := LeastSquares(NewMat(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("underdetermined must error")
	}
}

// TestLeastSquaresResidualOrthogonality: the residual of an LSQ
// solution must be orthogonal to the column space.
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 8, 3
		a := NewMat(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		pred, err := a.MulVec(x)
		if err != nil {
			return false
		}
		res := make([]float64, m)
		for i := range res {
			res[i] = b[i] - pred[i]
		}
		at := a.T()
		proj, err := at.MulVec(res)
		if err != nil {
			return false
		}
		for _, p := range proj {
			if math.Abs(p) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
