// Package mathx provides the numerical kernels RF-Prism needs and that
// the Go standard library lacks: small dense linear algebra, linear and
// nonlinear least squares, basic optimizers, descriptive statistics and
// circular (angular) statistics.
//
// Everything here is deterministic and allocation-conscious; the solver
// hot paths reuse caller-provided buffers where that matters.
package mathx

import (
	"fmt"
	"math"
)

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// Wrap2Pi wraps x into [0, 2π).
func Wrap2Pi(x float64) float64 {
	x = math.Mod(x, TwoPi)
	if x < 0 {
		x += TwoPi
	}
	return x
}

// WrapPi wraps x into (-π, π].
func WrapPi(x float64) float64 {
	x = math.Mod(x+math.Pi, TwoPi)
	if x <= 0 {
		x += TwoPi
	}
	return x - math.Pi
}

// AngDiff returns the signed minimal angular difference a-b in (-π, π].
func AngDiff(a, b float64) float64 {
	return WrapPi(a - b)
}

// AngDiffPeriod returns the signed minimal difference a-b for angles
// with the given period (e.g. π for dipole orientations that alias
// every 180°). The result lies in (-period/2, period/2].
func AngDiffPeriod(a, b, period float64) float64 {
	d := math.Mod(a-b, period)
	half := period / 2
	if d > half {
		d -= period
	} else if d <= -half {
		d += period
	}
	return d
}

// Unwrap removes 2π jumps from a sequence of wrapped phases, returning
// a new slice. Consecutive samples are assumed to differ by less than π
// in the underlying continuous signal.
func Unwrap(phase []float64) []float64 {
	out := make([]float64, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	offset := 0.0
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		if d > math.Pi {
			offset -= TwoPi
		} else if d < -math.Pi {
			offset += TwoPi
		}
		out[i] = phase[i] + offset
	}
	return out
}

// UnwrapHalfPi is like Unwrap but additionally corrects the "sudden π
// jump" that commodity RFID readers introduce (the reader resolves the
// backscatter constellation only up to a sign, so reported phase can
// hop by exactly π between reads). Any consecutive step closer to π
// than to 0 (mod 2π) is treated as a π artifact and removed.
func UnwrapHalfPi(phase []float64) []float64 {
	out := make([]float64, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	for i := 1; i < len(phase); i++ {
		prev := out[i-1]
		cand := phase[i]
		// Choose among cand + k*π the value closest to prev: this
		// simultaneously undoes 2π folding and π sign flips.
		k := math.Round((prev - cand) / math.Pi)
		out[i] = cand + k*math.Pi
	}
	return out
}

// CircMean returns the circular mean of the given angles in radians,
// wrapped into [0, 2π). For an empty slice it returns 0.
func CircMean(angles []float64) float64 {
	if len(angles) == 0 {
		return 0
	}
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	return Wrap2Pi(math.Atan2(s, c))
}

// CircStd returns the circular standard deviation of the given angles,
// computed from the resultant length R as sqrt(-2 ln R).
func CircStd(angles []float64) float64 {
	if len(angles) < 2 {
		return 0
	}
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	n := float64(len(angles))
	r := math.Hypot(s/n, c/n)
	if r >= 1 {
		return 0
	}
	if r <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(-2 * math.Log(r))
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// FmtDeg renders an angle (radians) as degrees with one decimal — a
// small convenience for diagnostics and examples.
func FmtDeg(rad float64) string {
	d := Deg(Wrap2Pi(rad))
	return fmt.Sprintf("%6.1f", d)
}
