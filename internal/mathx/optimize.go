package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without satisfying its tolerance.
var ErrNoConvergence = errors.New("mathx: no convergence")

// LMProblem describes a nonlinear least-squares problem
// minimize ‖r(p)‖² for the Levenberg–Marquardt solver.
type LMProblem struct {
	// Residuals evaluates the residual vector at parameter vector p,
	// writing into out (length NumResiduals).
	Residuals func(p, out []float64)
	// NumResiduals is the length of the residual vector.
	NumResiduals int
	// NumParams is the length of the parameter vector.
	NumParams int
	// Jacobian optionally fills j (NumResiduals×NumParams) with
	// ∂r_i/∂p_j at p. When nil, a forward-difference approximation
	// is used.
	Jacobian func(p []float64, j *Mat)
	// Step is the finite-difference step per parameter for the
	// numeric Jacobian. When empty, 1e-7 relative steps are used.
	Step []float64
}

// LMResult reports the outcome of a Levenberg–Marquardt run.
type LMResult struct {
	Params     []float64
	RSS        float64 // residual sum of squares at Params
	Iterations int
	Converged  bool
}

// LMOptions tunes the Levenberg–Marquardt solver. The zero value picks
// sensible defaults.
type LMOptions struct {
	MaxIterations int     // default 200
	TolRSS        float64 // relative RSS improvement tolerance, default 1e-12
	TolStep       float64 // parameter step tolerance, default 1e-12
	InitialLambda float64 // initial damping, default 1e-3
}

func (o *LMOptions) defaults() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.TolRSS <= 0 {
		o.TolRSS = 1e-12
	}
	if o.TolStep <= 0 {
		o.TolStep = 1e-12
	}
	if o.InitialLambda <= 0 {
		o.InitialLambda = 1e-3
	}
}

// LevenbergMarquardt minimizes ‖r(p)‖² starting from p0. It returns the
// best parameters found even when reporting ErrNoConvergence so callers
// can decide whether the partial answer is usable.
func LevenbergMarquardt(prob LMProblem, p0 []float64, opts LMOptions) (LMResult, error) {
	opts.defaults()
	if prob.NumParams != len(p0) {
		return LMResult{}, fmt.Errorf("mathx: p0 length %d, want %d", len(p0), prob.NumParams)
	}
	if prob.NumResiduals < prob.NumParams {
		return LMResult{}, fmt.Errorf("mathx: %d residuals cannot determine %d parameters", prob.NumResiduals, prob.NumParams)
	}

	n, m := prob.NumParams, prob.NumResiduals
	p := make([]float64, n)
	copy(p, p0)
	r := make([]float64, m)
	rTrial := make([]float64, m)
	pTrial := make([]float64, n)
	jac := NewMat(m, n)

	prob.Residuals(p, r)
	rss := dot(r, r)
	lambda := opts.InitialLambda

	res := LMResult{Params: p, RSS: rss}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		evalJacobian(prob, p, r, jac)

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = -Jᵀr
		jtj := NewMat(n, n)
		jtr := make([]float64, n)
		for i := 0; i < m; i++ {
			row := jac.Data[i*n : (i+1)*n]
			ri := r[i]
			for a := 0; a < n; a++ {
				jtr[a] += row[a] * ri
				for b := a; b < n; b++ {
					jtj.Add(a, b, row[a]*row[b])
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < a; b++ {
				jtj.Set(a, b, jtj.At(b, a))
			}
		}

		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			damped := jtj.Clone()
			for a := 0; a < n; a++ {
				d := jtj.At(a, a)
				if d == 0 {
					d = 1e-12
				}
				damped.Add(a, a, lambda*d)
			}
			rhs := make([]float64, n)
			for a := 0; a < n; a++ {
				rhs[a] = -jtr[a]
			}
			delta, err := SolveCholesky(damped, rhs)
			if err != nil {
				lambda *= 10
				continue
			}
			for a := 0; a < n; a++ {
				pTrial[a] = p[a] + delta[a]
			}
			prob.Residuals(pTrial, rTrial)
			rssTrial := dot(rTrial, rTrial)
			if rssTrial < rss {
				stepNorm := norm(delta)
				rel := (rss - rssTrial) / math.Max(rss, 1e-300)
				copy(p, pTrial)
				copy(r, rTrial)
				rss = rssTrial
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < opts.TolRSS || stepNorm < opts.TolStep {
					res.Params, res.RSS, res.Converged = p, rss, true
					return res, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			// Damping saturated: we are at a (possibly local) minimum.
			res.Params, res.RSS, res.Converged = p, rss, true
			return res, nil
		}
	}
	res.Params, res.RSS = p, rss
	return res, ErrNoConvergence
}

func evalJacobian(prob LMProblem, p, r []float64, jac *Mat) {
	if prob.Jacobian != nil {
		prob.Jacobian(p, jac)
		return
	}
	n, m := prob.NumParams, prob.NumResiduals
	pt := make([]float64, n)
	rt := make([]float64, m)
	copy(pt, p)
	for j := 0; j < n; j++ {
		h := 1e-7 * math.Max(math.Abs(p[j]), 1)
		if prob.Step != nil && j < len(prob.Step) && prob.Step[j] > 0 {
			h = prob.Step[j]
		}
		pt[j] = p[j] + h
		prob.Residuals(pt, rt)
		pt[j] = p[j]
		inv := 1 / h
		for i := 0; i < m; i++ {
			jac.Set(i, j, (rt[i]-r[i])*inv)
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

// NMOptions tunes NelderMeadOpt beyond the basic iteration budget.
type NMOptions struct {
	// MaxIter is the iteration budget. Default 500.
	MaxIter int
	// Target, when positive, terminates the search as soon as the best
	// simplex value is ≤ Target: callers that only need "good enough"
	// (e.g. a warm-started solve matching its previous window's cost)
	// stop paying for iterations a later fine pass would redo anyway.
	Target float64
	// Stop, when non-nil, is consulted after every completed iteration
	// with the iteration index and the best value found so far;
	// returning true terminates the search early. It must be a pure
	// function of its arguments for runs to stay deterministic.
	Stop func(iter int, best float64) bool
}

// NelderMead minimizes f starting from x0 with the given initial
// simplex scale. It is used for the coarse stages where gradients are
// unreliable (e.g. wrapped-phase objectives far from the optimum).
func NelderMead(f func([]float64) float64, x0 []float64, scale float64, maxIter int) ([]float64, float64) {
	return NelderMeadOpt(f, x0, scale, NMOptions{MaxIter: maxIter})
}

// NelderMeadOpt is NelderMead with an early-termination contract: the
// search additionally stops once opts.Target is reached or opts.Stop
// asks for it (see NMOptions). With a zero NMOptions it is exactly
// NelderMead.
func NelderMeadOpt(f func([]float64) float64, x0 []float64, scale float64, opts NMOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if scale <= 0 {
		scale = 0.1
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}
	// Initial simplex.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := make([]float64, n)
		copy(p, x0)
		if i > 0 {
			p[i-1] += scale
		}
		pts[i] = p
		vals[i] = f(p)
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	order := func() {
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)
	expand := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		order()
		if math.Abs(vals[n]-vals[0]) < 1e-14*(math.Abs(vals[0])+1e-14) {
			break
		}
		if opts.Target > 0 && vals[0] <= opts.Target {
			break
		}
		if opts.Stop != nil && opts.Stop(iter, vals[0]) {
			break
		}
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		// Reflection.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + alpha*(centroid[j]-pts[n][j])
		}
		fr := f(trial)
		switch {
		case fr < vals[0]:
			// Expansion.
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			fe := f(expand)
			if fe < fr {
				copy(pts[n], expand)
				vals[n] = fe
			} else {
				copy(pts[n], trial)
				vals[n] = fr
			}
		case fr < vals[n-1]:
			copy(pts[n], trial)
			vals[n] = fr
		default:
			// Contraction.
			for j := 0; j < n; j++ {
				trial[j] = centroid[j] + rho*(pts[n][j]-centroid[j])
			}
			fc := f(trial)
			if fc < vals[n] {
				copy(pts[n], trial)
				vals[n] = fc
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	order()
	best := make([]float64, n)
	copy(best, pts[0])
	return best, vals[0]
}
