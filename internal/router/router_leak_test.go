package router

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// assertGoroutinesSettle polls until the goroutine count returns to
// the recorded baseline (same contract as the ingest leak tests).
func assertGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		n, base, buf[:runtime.Stack(buf, true)])
}

// slowShard answers every request only when released (or the request
// is cancelled) — the stuck-backend fixture for timeout and cancel
// paths.
type slowShard struct {
	release chan struct{}
	srv     *httptest.Server
}

func newSlowShard(t *testing.T) *slowShard {
	s := &slowShard{release: make(chan struct{})}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.release:
			_, _ = w.Write([]byte(`{"accepted":0,"tags":[]}`))
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() {
		s.releaseAll()
		s.srv.Close()
	})
	return s
}

func (s *slowShard) releaseAll() {
	select {
	case <-s.release:
	default:
		close(s.release)
	}
}

// TestRouterSlowShardTimeoutNoLeak: a shard that never answers trips
// the per-shard timeout — the request finishes with 502/503 instead
// of hanging, and no fan-out goroutines linger. Run under -race.
func TestRouterSlowShardTimeoutNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		rt := New(Config{ShardTimeout: 50 * time.Millisecond})
		slow := newSlowShard(t)
		fast := newStubShard(t)
		if err := rt.AddShard("s0", fast.srv.URL); err != nil {
			t.Fatal(err)
		}
		if err := rt.AddShard("s1", slow.srv.URL); err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(rt.Handler())
		defer front.Close()

		// Scatter-gather read: the slow shard times out, the fast one
		// answers, the result is partial.
		resp, err := http.Get(front.URL + "/v1/tags")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-RFPrism-Partial") != "1" {
			t.Fatalf("slow scatter: status %d partial %q", resp.StatusCode, resp.Header.Get("X-RFPrism-Partial"))
		}

		// Ingest touching the slow shard: the sub-batch times out and
		// the request maps to 502.
		var line string
		for i := 0; ; i++ {
			epc := fmt.Sprintf("urn:epc:slow-%03d", i)
			if owner, _ := rt.Owner(epc); owner.ID == "s1" {
				line = mkLine(t, epc, 0)
				break
			}
		}
		resp, err = http.Post(front.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(line+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("slow ingest: status %d", resp.StatusCode)
		}
		// Tear everything down before the settle check — t.Cleanup runs
		// too late for a leak assertion.
		front.Close()
		slow.releaseAll()
		slow.srv.Close()
		fast.srv.Close()
		rt.cfg.Client.CloseIdleConnections()
	}()
	assertGoroutinesSettle(t, base)
}

// TestRouterClientCancelMidScatterNoLeak: the client walking away
// mid-scatter cancels the in-flight shard sub-requests; nothing
// blocks on the never-answering shard. Run under -race.
func TestRouterClientCancelMidScatterNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		rt := New(Config{ShardTimeout: time.Minute}) // only the client cancels
		slow := newSlowShard(t)
		if err := rt.AddShard("s0", slow.srv.URL); err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(rt.Handler())
		defer front.Close()

		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+"/v1/tags", nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(50 * time.Millisecond) // let the scatter reach the slow shard
		cancel()
		wg.Wait()
		front.Close()
		slow.releaseAll()
		slow.srv.Close()
		rt.cfg.Client.CloseIdleConnections()
	}()
	assertGoroutinesSettle(t, base)
}

// TestRouterBackpressureNoLeak: repeated 429 round-trips leave no
// goroutines behind — the fan-out workers exit on every path, not
// just success. Run under -race.
func TestRouterBackpressureNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		rt := New(Config{ShardTimeout: time.Second})
		stub := newStubShard(t)
		stub.refuseAfter = 0
		stub.refuseStatus = http.StatusTooManyRequests
		stub.refuseCode = "backpressure"
		stub.retryAfterMS = 1000
		if err := rt.AddShard("s0", stub.srv.URL); err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(rt.Handler())
		defer front.Close()
		for i := 0; i < 8; i++ {
			resp, err := http.Post(front.URL+"/v1/ingest", "application/x-ndjson",
				strings.NewReader(mkLine(t, "urn:epc:busy", i)+"\n"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d", resp.StatusCode)
			}
		}
		front.Close()
		stub.srv.Close()
		rt.cfg.Client.CloseIdleConnections()
	}()
	assertGoroutinesSettle(t, base)
}
