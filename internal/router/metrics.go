package router

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rfprism/internal/obs"
)

// ingestLatencyBounds are the histogram bucket upper bounds (seconds)
// for one POST /ingest request through the router: a per-EPC fan-out
// plus the slowest shard's admission. Sub-millisecond when every shard
// queue has room, multi-second when a shard is saturated.
var ingestLatencyBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Metrics is the router tier's own instrument set. It deliberately
// does NOT mirror the shards' rfprismd_* families — those are
// aggregated from the live shard expositions at render time (see
// Router.writeMetrics) — it only measures what the router itself adds:
// routing volume, fan-out outcomes, per-shard availability.
type Metrics struct {
	reg   *obs.Registry
	start time.Time

	IngestOK        *obs.Counter
	IngestBadReport *obs.Counter
	IngestBackpress *obs.Counter
	IngestShardErr  *obs.Counter

	LinesRouted   *obs.Counter
	LinesRejected *obs.Counter
	// LinesOvershoot counts lines accepted by a healthy shard inside a
	// chunk another shard refused: a resume from the advertised line
	// re-delivers them (at-least-once across a propagated refusal; see
	// DESIGN.md §13 degradation matrix).
	LinesOvershoot *obs.Counter

	ScatterOK      *obs.Counter
	ScatterPartial *obs.Counter
	ScatterErr     *obs.Counter

	StreamOK      *obs.Counter
	StreamPartial *obs.Counter
	StreamErr     *obs.Counter
	// Streams counts live relayed SSE streams (rendered as the
	// router_streams gauge).
	Streams atomic.Int64

	HandoffReoffered  *obs.Counter
	HandoffSuppressed *obs.Counter

	// Self-healing transport counters (resilience.go).
	Retries         *obs.Counter // sub-request retry attempts
	HedgesFired     *obs.Counter // hedged reads launched
	HedgesWon       *obs.Counter // hedges that answered first
	BreakerFastFail *obs.Counter // sub-requests failed fast on an open breaker

	ingestLatency *obs.Histogram

	gShards *obs.Gauge
	gUptime *obs.Gauge

	// Per-shard series are minted once per shard ID ever seen, so a
	// shard that leaves and rejoins reuses its series instead of
	// tripping the registry's duplicate panic.
	mu       sync.Mutex
	perShard map[string]*ShardMetrics
}

// ShardMetrics are one shard's routing counters.
type ShardMetrics struct {
	Requests *obs.Counter
	Errors   *obs.Counter
	Up       *obs.Gauge
	// State is the breaker state machine's position: 0 healthy,
	// 1 suspect, 2 open, 3 half-open (resilience.go).
	State *obs.Gauge
}

// NewMetrics builds the router instrument set; start anchors uptime.
func NewMetrics(start time.Time) *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{reg: r, start: start, perShard: make(map[string]*ShardMetrics)}

	m.IngestOK = r.NewCounter("router_ingest_requests_total", "Ingest requests by outcome.", obs.L("outcome", "ok"))
	m.IngestBadReport = r.NewCounter("router_ingest_requests_total", "", obs.L("outcome", "bad_report"))
	m.IngestBackpress = r.NewCounter("router_ingest_requests_total", "", obs.L("outcome", "backpressure"))
	m.IngestShardErr = r.NewCounter("router_ingest_requests_total", "", obs.L("outcome", "shard_error"))

	m.LinesRouted = r.NewCounter("router_lines_total", "Report lines by routing outcome.", obs.L("outcome", "routed"))
	m.LinesRejected = r.NewCounter("router_lines_total", "", obs.L("outcome", "rejected"))
	m.LinesOvershoot = r.NewCounter("router_lines_total", "", obs.L("outcome", "overshoot"))

	m.ScatterOK = r.NewCounter("router_scatter_requests_total", "Scatter-gather reads by outcome.", obs.L("outcome", "ok"))
	m.ScatterPartial = r.NewCounter("router_scatter_requests_total", "", obs.L("outcome", "partial"))
	m.ScatterErr = r.NewCounter("router_scatter_requests_total", "", obs.L("outcome", "error"))

	m.StreamOK = r.NewCounter("router_stream_requests_total", "SSE stream relays by outcome.", obs.L("outcome", "ok"))
	m.StreamPartial = r.NewCounter("router_stream_requests_total", "", obs.L("outcome", "partial"))
	m.StreamErr = r.NewCounter("router_stream_requests_total", "", obs.L("outcome", "error"))
	r.NewGaugeFunc("router_streams", "Live relayed SSE streams.",
		func() float64 { return float64(m.Streams.Load()) })

	m.HandoffReoffered = r.NewCounter("router_handoff_reports_total", "Journal-handoff reports by outcome.", obs.L("outcome", "reoffered"))
	m.HandoffSuppressed = r.NewCounter("router_handoff_reports_total", "", obs.L("outcome", "suppressed"))

	m.Retries = r.NewCounter("router_retries_total", "Shard sub-request retry attempts.")
	m.HedgesFired = r.NewCounter("router_hedged_reads_total", "Hedged scatter reads by outcome.", obs.L("outcome", "fired"))
	m.HedgesWon = r.NewCounter("router_hedged_reads_total", "", obs.L("outcome", "won"))
	m.BreakerFastFail = r.NewCounter("router_breaker_fastfail_total", "Sub-requests failed fast on an open breaker.")

	m.ingestLatency = r.NewHistogram("router_ingest_latency_seconds", "One ingest request through the fan-out.", ingestLatencyBounds)

	m.gShards = r.NewGauge("router_shards", "Shards currently in the ring.")
	m.gUptime = r.NewGauge("router_uptime_seconds", "Seconds since router start.")
	return m
}

// Registry exposes the underlying registry (the debug server attaches
// Go runtime gauges).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Shard returns (minting on first use) the per-shard counter set.
func (m *Metrics) Shard(id string) *ShardMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm := m.perShard[id]
	if sm == nil {
		sm = &ShardMetrics{
			Requests: m.reg.NewCounter("router_shard_requests_total", "Sub-requests sent per shard.", obs.L("shard", id)),
			Errors:   m.reg.NewCounter("router_shard_errors_total", "Failed sub-requests per shard.", obs.L("shard", id)),
			Up:       m.reg.NewGauge("router_shard_up", "1 when the shard answered its last probe.", obs.L("shard", id)),
			State:    m.reg.NewGauge("router_shard_state", "Breaker state: 0 healthy, 1 suspect, 2 open, 3 half-open.", obs.L("shard", id)),
		}
		sm.Up.Set(1)
		m.perShard[id] = sm
	}
	return sm
}

// ObserveIngest records one routed ingest request's latency.
func (m *Metrics) ObserveIngest(d time.Duration) { m.ingestLatency.Observe(d.Seconds()) }

// WriteText stamps the gauges and renders the router's own families.
func (m *Metrics) WriteText(w io.Writer, now time.Time, shards int) {
	m.gUptime.Set(now.Sub(m.start).Seconds())
	m.gShards.SetInt(int64(shards))
	m.reg.WriteText(w)
}
