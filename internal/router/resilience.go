package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Self-healing shard transport.
//
// Every router→shard sub-request flows through a per-shard health
// state machine (DESIGN.md §15):
//
//	healthy → suspect → open → half-open → healthy
//
// Consecutive transport failures push a shard from healthy to
// suspect to open; a windowed timeout ratio trips suspect→open even
// when successes interleave. An open breaker fails sub-requests
// fast — scatter-gather degrades partial, ingest refuses with a fast
// 502 — until OpenFor elapses, after which exactly one request is
// let through as the half-open probe. The probe's outcome settles
// the state: success heals, failure re-opens with a fresh jittered
// window.
//
// On top of the breaker, idempotent sub-requests retry with jittered
// exponential backoff (ingest sub-batches are idempotent because the
// shard deduplicates by stream position — see the stream headers in
// sendBatch), and plain scatter GETs hedge: a second identical
// request fires after an adaptive delay derived from the shard's
// recent p99 latency, and the first answer wins.

// Breaker states, exported as the router_shard_state gauge value.
const (
	stateHealthy  = 0
	stateSuspect  = 1
	stateOpen     = 2
	stateHalfOpen = 3
)

// stateNames render the breaker state in /readyz bodies.
var stateNames = [...]string{"healthy", "suspect", "open", "half-open"}

// errBreakerOpen is the fast-fail a gated sub-request sees.
var errBreakerOpen = errors.New("breaker open")

// ResilienceConfig tunes the self-healing transport. The zero value
// gets conservative serving defaults; Retries: -1 disables retries
// and DisableHedging disables hedged reads (the breaker is always
// on — it only changes behavior when shards actually fail).
type ResilienceConfig struct {
	// Retries bounds extra attempts per idempotent sub-request after
	// the first (default 2; -1 disables).
	Retries int
	// RetryBackoff is the first retry's base pause, doubled per
	// attempt with ±50% jitter (default 25ms).
	RetryBackoff time.Duration
	// MaxBackoff caps one backoff pause (default 1s).
	MaxBackoff time.Duration
	// SuspectAfter consecutive failures mark a shard suspect
	// (default 1).
	SuspectAfter int
	// TripAfter consecutive failures open the breaker (default 4).
	TripAfter int
	// TimeoutRatioTrip opens the breaker when at least this fraction
	// of the recent outcome window (16 sub-requests, min 8 samples)
	// timed out, even if successes interleave (default 0.5).
	TimeoutRatioTrip float64
	// OpenFor is how long an open breaker fails fast before admitting
	// a half-open probe, jittered ±20% per trip (default 2s).
	OpenFor time.Duration
	// HedgeFloor is the minimum hedge delay; the adaptive delay is
	// clamp(p99 of the shard's last 64 latencies, HedgeFloor,
	// ShardTimeout/2) and defaults to ShardTimeout/2 until enough
	// samples exist (default 10ms).
	HedgeFloor time.Duration
	// DisableHedging turns hedged scatter reads off.
	DisableHedging bool
	// Seed feeds the backoff/open-window jitter RNG (default 1).
	Seed int64
}

func (c *ResilienceConfig) defaults() {
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 4
	}
	if c.TimeoutRatioTrip <= 0 || c.TimeoutRatioTrip > 1 {
		c.TimeoutRatioTrip = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 10 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// outcome classifies one sub-request for the health machine.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeFail
	outcomeTimeout
)

const (
	outcomeWindow  = 16 // sliding outcome window for the timeout ratio
	latencyWindow  = 64 // latency samples feeding the hedge delay
	minRatioSample = 8  // outcomes needed before the ratio can trip
)

// breaker is one shard's health state machine plus its latency
// tracker. A fresh breaker is minted per AddShard, so a shard that
// leaves and rejoins starts healthy.
type breaker struct {
	cfg ResilienceConfig
	now func() time.Time
	met *ShardMetrics

	mu       sync.Mutex
	rng      *rand.Rand
	state    int
	consec   int       // consecutive failures
	until    time.Time // open: earliest half-open probe time
	probing  bool      // half-open: a probe is in flight
	outcomes [outcomeWindow]outcome
	nOut     int // outcomes recorded (caps at window)
	iOut     int // ring cursor
	lats     [latencyWindow]time.Duration
	nLat     int
	iLat     int
}

func newBreaker(cfg ResilienceConfig, now func() time.Time, met *ShardMetrics, shardID string) *breaker {
	seed := cfg.Seed
	for _, c := range shardID {
		seed = seed*31 + int64(c)
	}
	b := &breaker{cfg: cfg, now: now, met: met, rng: rand.New(rand.NewSource(seed))}
	met.State.SetInt(stateHealthy)
	return b
}

// acquire asks to send one sub-request. nil means go; errBreakerOpen
// means fail fast. When an open window has elapsed, the first caller
// through becomes the half-open probe.
func (b *breaker) acquire() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		if b.now().Before(b.until) {
			return errBreakerOpen
		}
		b.setState(stateHalfOpen)
		b.probing = true
		return nil
	case stateHalfOpen:
		if b.probing {
			return errBreakerOpen
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// record feeds one sub-request's outcome back into the machine.
func (b *breaker) record(o outcome, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.outcomes[b.iOut] = o
	b.iOut = (b.iOut + 1) % outcomeWindow
	if b.nOut < outcomeWindow {
		b.nOut++
	}
	if b.state == stateHalfOpen {
		b.probing = false
	}
	if o == outcomeOK {
		b.consec = 0
		b.lats[b.iLat] = latency
		b.iLat = (b.iLat + 1) % latencyWindow
		if b.nLat < latencyWindow {
			b.nLat++
		}
		if b.state != stateHealthy {
			b.setState(stateHealthy)
		}
		return
	}
	b.consec++
	switch {
	case b.state == stateHalfOpen:
		b.trip()
	case b.consec >= b.cfg.TripAfter, b.timeoutRatioTripped():
		if b.state != stateOpen {
			b.trip()
		}
	case b.consec >= b.cfg.SuspectAfter && b.state == stateHealthy:
		b.setState(stateSuspect)
	}
}

// trip opens the breaker with a jittered window (callers hold mu).
func (b *breaker) trip() {
	window := time.Duration(float64(b.cfg.OpenFor) * (0.8 + 0.4*b.rng.Float64()))
	b.until = b.now().Add(window)
	b.setState(stateOpen)
}

// timeoutRatioTripped reports whether the sliding outcome window is
// timeout-heavy enough to open the breaker (callers hold mu).
func (b *breaker) timeoutRatioTripped() bool {
	if b.nOut < minRatioSample {
		return false
	}
	timeouts := 0
	for i := 0; i < b.nOut; i++ {
		if b.outcomes[i] == outcomeTimeout {
			timeouts++
		}
	}
	return float64(timeouts)/float64(b.nOut) >= b.cfg.TimeoutRatioTrip
}

func (b *breaker) setState(s int) {
	b.state = s
	b.met.State.SetInt(int64(s))
}

// release frees the half-open probe slot without recording an
// outcome — for attempts abandoned because the CLIENT went away,
// which say nothing about the shard's health.
func (b *breaker) release() {
	b.mu.Lock()
	if b.state == stateHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// stateName renders the current state for /readyz bodies.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return stateNames[b.state]
}

// currentState returns the numeric state (tests, /readyz).
func (b *breaker) currentState() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// hedgeDelay is the adaptive delay before a hedged read fires:
// clamp(recent p99, HedgeFloor, shardTimeout/2). With too few samples
// it stays conservative at shardTimeout/2 so cold shards are not
// double-hit.
func (b *breaker) hedgeDelay(shardTimeout time.Duration) time.Duration {
	ceil := shardTimeout / 2
	if ceil <= 0 {
		ceil = time.Second
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nLat < minRatioSample {
		return ceil
	}
	s := make([]time.Duration, b.nLat)
	copy(s, b.lats[:b.nLat])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > 0 {
		idx--
	}
	d := s[idx]
	if d < b.cfg.HedgeFloor {
		d = b.cfg.HedgeFloor
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// backoff returns the jittered exponential pause before retry
// attempt n (1-based).
func (b *breaker) backoff(attempt int) time.Duration {
	d := b.cfg.RetryBackoff << (attempt - 1)
	if d > b.cfg.MaxBackoff || d <= 0 {
		d = b.cfg.MaxBackoff
	}
	b.mu.Lock()
	jittered := time.Duration(float64(d) * (0.5 + b.rng.Float64()))
	b.mu.Unlock()
	return jittered
}

// sleepCtx pauses for d unless ctx ends first; false means it did.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// --- Retry-After hardening ------------------------------------------

// maxRetryAfter is the ceiling any advertised backpressure pause is
// clamped to, both when the router propagates a shard's Retry-After
// and when RunLoad sleeps on one: a confused (or hostile) upstream
// must not park a client for an hour.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter interprets a Retry-After header value in either
// RFC 9110 form — delta-seconds or an HTTP-date — relative to now.
// ok is false for an unparseable value; negative dates yield 0.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(v); err == nil {
		d := when.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// clampRetryAfter bounds a pause to [0, maxRetryAfter].
func clampRetryAfter(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// --- stream position encoding ---------------------------------------

// Ingest sub-requests carry exactly-once identity so retries are
// safe: X-RFPrism-Stream names the logical client stream and
// X-RFPrism-Stream-Pos carries each non-blank line's 1-based position
// in that stream. The shard keeps a per-stream high-water mark and
// skips positions at or below it, so a re-sent sub-batch (after a
// mid-body reset, a timeout, or a client resume) never duplicates a
// reading. Encoding: "base" alone means contiguous positions
// base, base+1, … for every line; "first,d1,d2,…" gives the first
// position absolute and each later one as a positive delta.

// encodePositions renders a sub-batch's line positions in delta form.
func encodePositions(lines []pendingLine) string {
	var sb []byte
	prev := uint64(0)
	for i, pl := range lines {
		if i == 0 {
			sb = strconv.AppendUint(sb, pl.pos, 10)
		} else {
			sb = append(sb, ',')
			sb = strconv.AppendUint(sb, pl.pos-prev, 10)
		}
		prev = pl.pos
	}
	return string(sb)
}

// mintStream returns a router-local stream ID for requests that
// arrive without one, scoping dedup to the router's own retries
// within this single request.
func (rt *Router) mintStream() string {
	return fmt.Sprintf("r-%s-%d", rt.instance, rt.streamSeq.Add(1))
}
