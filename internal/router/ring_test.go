package router

import (
	"fmt"
	"testing"
)

// keyspace returns a deterministic 10k-EPC keyspace shaped like the
// EPCs the simulator and loadgen mint.
func keyspace(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("urn:epc:tag-%06d", i)
	}
	return out
}

func ownersOf(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) on a populated ring returned none", k)
		}
		owners[k] = o
	}
	return owners
}

// TestRingBalance: with 128 vnodes the load (keys per shard) stays
// within max/mean ≤ 1.25 across every fleet size the sharding tier
// targets. This is the bound DESIGN.md §13 quotes; loosening it means
// hotter hot shards, so the test pins it.
func TestRingBalance(t *testing.T) {
	keys := keyspace(10000)
	for shards := 2; shards <= 16; shards++ {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := NewRing(DefaultVnodes)
			for i := 0; i < shards; i++ {
				r.Add(fmt.Sprintf("shard-%d", i))
			}
			load := make(map[string]int, shards)
			for _, k := range keys {
				o, _ := r.Owner(k)
				load[o]++
			}
			if len(load) != shards {
				t.Fatalf("only %d of %d shards own keys: %v", len(load), shards, load)
			}
			mean := float64(len(keys)) / float64(shards)
			maxLoad := 0
			for _, n := range load {
				if n > maxLoad {
					maxLoad = n
				}
			}
			if ratio := float64(maxLoad) / mean; ratio > 1.25 {
				t.Errorf("max/mean load %.3f > 1.25 (max %d, mean %.1f): %v", ratio, maxLoad, mean, load)
			}
		})
	}
}

// TestRingRemap: adding an (N+1)th shard moves about 1/(N+1) of the
// keyspace to the new shard and nothing between the old shards;
// removing it restores the exact previous assignment. The ≤ 1.6/(N+1)
// ceiling leaves room for vnode variance while still catching a
// broken ring (a modulo hash would remap nearly everything).
func TestRingRemap(t *testing.T) {
	keys := keyspace(10000)
	for shards := 2; shards <= 8; shards++ {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := NewRing(DefaultVnodes)
			for i := 0; i < shards; i++ {
				r.Add(fmt.Sprintf("shard-%d", i))
			}
			before := ownersOf(t, r, keys)

			newShard := fmt.Sprintf("shard-%d", shards)
			r.Add(newShard)
			after := ownersOf(t, r, keys)

			moved := 0
			for _, k := range keys {
				if before[k] == after[k] {
					continue
				}
				moved++
				if after[k] != newShard {
					t.Fatalf("key %q moved %s -> %s, not to the new shard", k, before[k], after[k])
				}
			}
			bound := int(1.6 * float64(len(keys)) / float64(shards+1))
			if moved == 0 || moved > bound {
				t.Errorf("add remapped %d keys, want in (0, %d] (~1/%d of %d)", moved, bound, shards+1, len(keys))
			}

			r.Remove(newShard)
			restored := ownersOf(t, r, keys)
			for _, k := range keys {
				if restored[k] != before[k] {
					t.Fatalf("remove did not restore key %q: %s -> %s", k, before[k], restored[k])
				}
			}
		})
	}
}

// TestRingDeterminism: ownership is a pure function of the membership
// set — registration order must not matter, or a router restart would
// silently re-shard the fleet.
func TestRingDeterminism(t *testing.T) {
	keys := keyspace(1000)
	a := NewRing(DefaultVnodes)
	for _, s := range []string{"s0", "s1", "s2"} {
		a.Add(s)
	}
	b := NewRing(DefaultVnodes)
	for _, s := range []string{"s2", "s0", "s1"} {
		b.Add(s)
	}
	for _, k := range keys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %q: order-dependent ownership %s vs %s", k, oa, ob)
		}
	}
}

// TestRingEmptyAndDuplicates covers the degenerate paths: empty ring
// owns nothing, double-add and remove-unknown are no-ops.
func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("s0")
	r.Add("s0")
	if got := len(r.points); got != 8 {
		t.Fatalf("double Add minted %d points, want 8", got)
	}
	r.Remove("missing")
	if r.Len() != 1 {
		t.Fatalf("remove of unknown shard changed membership: %d", r.Len())
	}
	r.Remove("s0")
	if _, ok := r.Owner("x"); ok || r.Len() != 0 {
		t.Fatal("ring not empty after removing the only shard")
	}
}
