package router

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rfprism/internal/geom"
	"rfprism/internal/ingest"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// Load driver.
//
// RunLoad is the ingest half of the loadgen harness: it streams a
// reading iterator (typically sim.CloneStream over a simulated
// template) into an ingest endpoint as chunked NDJSON, speaking the
// full client protocol — resume-line semantics on backpressure, the
// Retry-After pause, at-most-one-delivery per line — and records the
// per-request latency distribution. It drives an http.Handler
// directly (a Router fronting a shard fleet, or a single rfprismd
// Server), so the measured path is the real multiplexer, decode,
// fan-out and shard round-trips without client-socket noise.

// LoadConfig tunes one RunLoad run.
type LoadConfig struct {
	// ChunkLines is the number of NDJSON lines per POST (default 512,
	// matching the router's own forwarding chunk).
	ChunkLines int
	// Path is the ingest endpoint (default "/v1/ingest").
	Path string
	// MaxRetries bounds consecutive backpressure or transient-fault
	// rounds on a single chunk before RunLoad gives up (default 1000).
	MaxRetries int
	// StreamID names the logical report stream for exactly-once
	// delivery: every POST carries it plus each line's stream position,
	// so a resume after a transient fault never duplicates a reading
	// server-side. Default: a fresh random ID per run.
	StreamID string
	// MaxPause caps one advertised Retry-After pause (default 30s,
	// the shared maxRetryAfter ceiling).
	MaxPause time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Sleep overrides the Retry-After pause (tests). The default
	// honors the server's retry_after_ms, interruptibly.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c *LoadConfig) defaults() {
	if c.ChunkLines <= 0 {
		c.ChunkLines = 512
	}
	if c.Path == "" {
		c.Path = "/v1/ingest"
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 1000
	}
	if c.StreamID == "" {
		id := make([]byte, 8)
		_, _ = crand.Read(id)
		c.StreamID = "load-" + hex.EncodeToString(id)
	}
	if c.MaxPause <= 0 {
		c.MaxPause = maxRetryAfter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// LoadReport summarizes one RunLoad run. The percentile fields are
// over per-POST round-trip latency — each sample covers one chunk's
// full decode + fan-out + shard acknowledgement.
type LoadReport struct {
	Lines   int           // NDJSON lines delivered (accepted exactly once each)
	Posts   int           // HTTP requests issued (including retried ones)
	Retries int           // backpressure rounds (429 → pause → resume)
	Faults  int           // transient 5xx rounds recovered by a stream resume
	Elapsed time.Duration // first request start to last response
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
}

// RunLoad drains the iterator into h. Every yielded reading is
// marshaled once and delivered exactly once: a backpressured chunk is
// resumed from the server's accepted prefix after the advertised
// Retry-After. Any response other than 202 or a resumable 429 aborts
// the run.
func RunLoad(ctx context.Context, h http.Handler, cfg LoadConfig, next func() (sim.Reading, bool)) (LoadReport, error) {
	cfg.defaults()
	var (
		rep   LoadReport
		lats  []time.Duration
		chunk = make([][]byte, 0, cfg.ChunkLines)
		start = cfg.Now()
	)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := postChunk(ctx, h, &cfg, chunk, &rep, &lats); err != nil {
			return err
		}
		rep.Lines += len(chunk)
		chunk = chunk[:0]
		return nil
	}
	for {
		rd, ok := next()
		if !ok {
			break
		}
		b, err := json.Marshal(rd)
		if err != nil {
			return rep, fmt.Errorf("router: marshal reading: %w", err)
		}
		chunk = append(chunk, b)
		if len(chunk) >= cfg.ChunkLines {
			if err := flush(); err != nil {
				return rep, err
			}
		}
	}
	if err := flush(); err != nil {
		return rep, err
	}
	rep.Elapsed = cfg.Now().Sub(start)
	rep.P50 = percentileDuration(lats, 0.50)
	rep.P99 = percentileDuration(lats, 0.99)
	rep.P999 = percentileDuration(lats, 0.999)
	return rep, nil
}

// postChunk delivers one chunk, resuming from the accepted prefix
// across backpressure rounds and transient upstream faults. Every
// POST carries the run's stream identity, so a resume that re-sends
// lines a healthy shard already took (overshoot) deduplicates
// server-side instead of double-counting.
func postChunk(ctx context.Context, h http.Handler, cfg *LoadConfig, chunk [][]byte, rep *LoadReport, lats *[]time.Duration) error {
	sent, retries := 0, 0
	for sent < len(chunk) {
		if err := ctx.Err(); err != nil {
			return err
		}
		body := bytes.Join(chunk[sent:], []byte{'\n'})
		body = append(body, '\n')
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set(ingest.HeaderStream, cfg.StreamID)
		req.Header.Set(ingest.HeaderStreamPos, strconv.Itoa(rep.Lines+sent+1))
		w := &memResponse{header: make(http.Header)}
		t0 := cfg.Now()
		h.ServeHTTP(w, req)
		*lats = append(*lats, cfg.Now().Sub(t0))
		rep.Posts++
		var env struct {
			Error        string `json:"error"`
			Code         string `json:"code"`
			RetryAfterMS int64  `json:"retry_after_ms"`
			Accepted     int    `json:"accepted"`
		}
		if err := json.Unmarshal(w.body.Bytes(), &env); err != nil {
			return fmt.Errorf("router: loadgen: status %d with undecodable body %q", w.status(), w.body.String())
		}
		// The advertised pause: body retry_after_ms first, then the
		// Retry-After header (delta-seconds or HTTP-date), clamped so a
		// confused upstream cannot park the run.
		pause := time.Duration(env.RetryAfterMS) * time.Millisecond
		if pause <= 0 {
			if d, ok := parseRetryAfter(w.header.Get("Retry-After"), cfg.Now()); ok {
				pause = d
			}
		}
		if pause > cfg.MaxPause {
			pause = cfg.MaxPause
		}
		switch {
		case w.status() == http.StatusAccepted:
			if env.Accepted != len(chunk)-sent {
				return fmt.Errorf("router: loadgen: 202 accepted %d of %d lines", env.Accepted, len(chunk)-sent)
			}
			sent = len(chunk)
		case w.status() == http.StatusTooManyRequests:
			sent += env.Accepted
			if retries++; retries > cfg.MaxRetries {
				return fmt.Errorf("router: loadgen: chunk still backpressured after %d rounds", retries-1)
			}
			rep.Retries++
			if pause <= 0 {
				pause = 5 * time.Millisecond
			}
			if err := cfg.Sleep(ctx, pause); err != nil {
				return err
			}
		case transientStatus(w.status(), env.Code):
			// A shard vanished mid-fan-out (partition, reset, open
			// breaker): resume from the accepted prefix once the fault
			// window passes. The stream headers make the re-send safe.
			sent += env.Accepted
			if retries++; retries > cfg.MaxRetries {
				return fmt.Errorf("router: loadgen: chunk still failing after %d rounds: %d %s (%s)",
					retries-1, w.status(), env.Code, env.Error)
			}
			rep.Faults++
			if pause <= 0 {
				pause = 10 * time.Millisecond << uint(min(retries-1, 6))
			}
			if pause > cfg.MaxPause {
				pause = cfg.MaxPause
			}
			if err := cfg.Sleep(ctx, pause); err != nil {
				return err
			}
		default:
			return fmt.Errorf("router: loadgen: %d %s (%s)", w.status(), env.Code, env.Error)
		}
	}
	return nil
}

// transientStatus reports whether a refusal is worth a resume: bad
// gateways and timeouts always are, and 503 is unless the upstream
// is deliberately draining for shutdown.
func transientStatus(status int, code string) bool {
	switch status {
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	case http.StatusServiceUnavailable:
		return code != ingest.CodeDraining
	}
	return false
}

// memResponse is a minimal in-memory http.ResponseWriter, so the load
// driver can call ServeHTTP without dragging httptest into non-test
// builds.
type memResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}

func (m *memResponse) Write(b []byte) (int, error) {
	m.WriteHeader(http.StatusOK)
	return m.body.Write(b)
}

func (m *memResponse) status() int {
	if m.code == 0 {
		return http.StatusOK
	}
	return m.code
}

// LoadTemplate builds the canonical loadgen template: one simulated
// tag's interleaved report stream (seeded scene, paper deployment),
// truncated to maxLines readings (0 keeps the full round). The
// template is what sim.CloneStream scales to an arbitrary tag
// population; truncation keeps the cloned corpus small enough that a
// 100k-tag replay stays in the NDJSON-megabytes range.
func LoadTemplate(seed int64, maxLines int) ([]sim.Reading, error) {
	hwRng := rand.New(rand.NewSource(seed))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), seed+999)
	if err != nil {
		return nil, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	region := sim.PaperRegion()
	pos := geom.Vec3{
		X: region.XMin + 0.4*(region.XMax-region.XMin),
		Y: region.YMin + 0.6*(region.YMax-region.YMin),
	}
	tracked := []sim.TrackedTag{{Tag: scene.NewTag("load"), Motion: scene.Place(pos, 0.3, none)}}
	template, err := scene.CollectStream(tracked, 1)
	if err != nil {
		return nil, err
	}
	if maxLines > 0 && len(template) > maxLines {
		template = template[:maxLines]
	}
	return template, nil
}

// OfflineWindowCount sessionizes the template offline (closed windows
// plus the drained tail) under cfg. Because cloning preserves each
// EPC's subsequence and sessionization is per-EPC, a cloned replay's
// exact expected window total is clones × this count — the loadgen
// harness's loss/duplication check and its windows/sec denominator.
func OfflineWindowCount(template []sim.Reading, cfg ingest.SessionizerConfig) (int, error) {
	z := ingest.NewSessionizer(cfg)
	now := time.Now()
	n := 0
	for i, rd := range template {
		_, closed, err := z.AddSeq(rd, uint64(i), now)
		if err != nil {
			return 0, fmt.Errorf("router: template reading %d rejected: %w", i, err)
		}
		if closed {
			n++
		}
	}
	return n + len(z.Drain(now)), nil
}

// percentileDuration returns the q-quantile (nearest-rank) of samples;
// zero for an empty set. The input is copied before sorting.
func percentileDuration(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
