package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfprism/internal/sim"
)

// stubShard is a scriptable fake rfprismd: it records every ingest
// line it receives and refuses on command, so fan-out semantics are
// testable without daemons or solves.
type stubShard struct {
	t *testing.T

	mu       sync.Mutex
	lines    []string // raw ingest lines in arrival order
	requests int

	// refuseAfter, when ≥ 0, makes ingest accept that many lines of a
	// request and then refuse with refuseStatus/refuseCode.
	refuseAfter  int
	refuseStatus int
	refuseCode   string
	retryAfterMS int64

	tags     []string
	ready    bool
	readyErr int // status for not-ready (default 503)

	metrics string

	srv *httptest.Server
}

func newStubShard(t *testing.T) *stubShard {
	s := &stubShard{t: t, refuseAfter: -1, ready: true, readyErr: http.StatusServiceUnavailable}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/tags", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"tags": s.tags})
	})
	mux.HandleFunc("GET /v1/tags/{epc}", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"epc": r.PathValue("epc"), "from": s.srv.URL})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		ready, status := s.ready, s.readyErr
		s.mu.Unlock()
		if !ready {
			w.WriteHeader(status)
			return
		}
		_, _ = io.WriteString(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, _ = io.WriteString(w, s.metrics)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubShard) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	accepted := 0
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if s.refuseAfter >= 0 && accepted >= s.refuseAfter {
			w.WriteHeader(s.refuseStatus)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": "scripted refusal", "code": s.refuseCode,
				"retry_after_ms": s.retryAfterMS, "accepted": accepted,
			})
			return
		}
		s.lines = append(s.lines, line)
		accepted++
	}
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]any{"accepted": accepted})
}

func (s *stubShard) received() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

// testRouter wires n stub shards behind a fresh router.
func testRouter(t *testing.T, cfg Config, n int) (*Router, []*stubShard) {
	t.Helper()
	rt := New(cfg)
	shards := make([]*stubShard, n)
	for i := range shards {
		shards[i] = newStubShard(t)
		if err := rt.AddShard(fmt.Sprintf("s%d", i), shards[i].srv.URL); err != nil {
			t.Fatal(err)
		}
	}
	return rt, shards
}

// mkLine renders a valid report line for epc with a marker channel.
func mkLine(t *testing.T, epc string, ch int) string {
	t.Helper()
	b, err := json.Marshal(sim.Reading{EPC: epc, Channel: ch, FreqHz: 920e6})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postNDJSON(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) apiError {
	t.Helper()
	var env apiError
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("unparseable envelope %q: %v", w.Body.String(), err)
	}
	return env
}

// TestRouterIngestFanout: every line lands on exactly its ring owner,
// verbatim, with per-EPC order preserved across chunks.
func TestRouterIngestFanout(t *testing.T) {
	rt, shards := testRouter(t, Config{ChunkLines: 4}, 3)
	var body strings.Builder
	sent := make(map[string][]string) // owner shard ID → expected lines
	total := 0
	for i := 0; i < 30; i++ {
		epc := fmt.Sprintf("urn:epc:fan-%02d", i%7)
		line := mkLine(t, epc, i%50)
		body.WriteString(line + "\n")
		owner, ok := rt.Owner(epc)
		if !ok {
			t.Fatal("no owner")
		}
		sent[owner.ID] = append(sent[owner.ID], line)
		total++
	}
	w := postNDJSON(t, rt.Handler(), body.String())
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var reply ingestReply
	if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil || reply.Accepted != total {
		t.Fatalf("accepted %d want %d (%v)", reply.Accepted, total, err)
	}
	for i, s := range shards {
		id := fmt.Sprintf("s%d", i)
		got := s.received()
		want := sent[id]
		if len(got) != len(want) {
			t.Fatalf("shard %s got %d lines, want %d", id, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("shard %s line %d: got %q want %q (order or bytes not preserved)", id, k, got[k], want[k])
			}
		}
	}
	if got := rt.Metrics().LinesRouted.Load(); got != int64(total) {
		t.Errorf("LinesRouted %d want %d", got, total)
	}
}

// TestRouterIngestBackpressure: when shards refuse with 429 the router
// propagates the WORST Retry-After and the longest globally-accepted
// prefix, so a client that resumes at "line" loses nothing.
func TestRouterIngestBackpressure(t *testing.T) {
	rt, shards := testRouter(t, Config{ChunkLines: 100}, 2)
	// Find one EPC per shard so both sub-batches are non-empty.
	epcFor := make(map[string]string)
	for i := 0; len(epcFor) < 2; i++ {
		epc := fmt.Sprintf("urn:epc:bp-%03d", i)
		owner, _ := rt.Owner(epc)
		if _, ok := epcFor[owner.ID]; !ok {
			epcFor[owner.ID] = epc
		}
	}
	for i, s := range shards {
		s.refuseAfter = 1 // take one line, refuse the rest
		s.refuseStatus = http.StatusTooManyRequests
		s.refuseCode = "backpressure"
		s.retryAfterMS = int64(3000 * (i + 1)) // s1 advertises the longer pause
	}
	var body strings.Builder
	for i := 0; i < 3; i++ {
		body.WriteString(mkLine(t, epcFor["s0"], i) + "\n")
		body.WriteString(mkLine(t, epcFor["s1"], i) + "\n")
	}
	w := postNDJSON(t, rt.Handler(), body.String())
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.Code != "backpressure" {
		t.Errorf("code %q", env.Code)
	}
	// Worst Retry-After across shards: 6 s.
	if env.RetryAfterMS != 6000 {
		t.Errorf("retry_after_ms %d want 6000", env.RetryAfterMS)
	}
	if hdr := w.Header().Get("Retry-After"); hdr != "6" {
		t.Errorf("Retry-After header %q want 6", hdr)
	}
	// Each shard took its first line; the global prefix is the first
	// two lines (one per shard), so resume at line 3.
	if env.Accepted != 2 || env.Line != 3 {
		t.Errorf("accepted %d line %d, want 2/3", env.Accepted, env.Line)
	}
}

// TestRouterIngestBadLine: a malformed line is refused locally with
// the resume position, after flushing everything before it.
func TestRouterIngestBadLine(t *testing.T) {
	rt, shards := testRouter(t, Config{ChunkLines: 100}, 2)
	good := mkLine(t, "urn:epc:bad-test", 1)
	body := good + "\n" + good + "\n" + "{not json}\n" + good + "\n"
	w := postNDJSON(t, rt.Handler(), body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.Code != "bad_report" || env.Accepted != 2 || env.Line != 3 {
		t.Errorf("envelope %+v, want bad_report accepted=2 line=3", env)
	}
	delivered := len(shards[0].received()) + len(shards[1].received())
	if delivered != 2 {
		t.Errorf("shards saw %d lines, want the 2 before the bad one", delivered)
	}
}

// TestRouterIngestShardDown: a dead shard turns into 502 with the
// longest safe prefix; lines already accepted by the healthy shard
// past that prefix are counted as overshoot.
func TestRouterIngestShardDown(t *testing.T) {
	rt, shards := testRouter(t, Config{ChunkLines: 100}, 2)
	epcFor := make(map[string]string)
	for i := 0; len(epcFor) < 2; i++ {
		epc := fmt.Sprintf("urn:epc:down-%03d", i)
		owner, _ := rt.Owner(epc)
		if _, ok := epcFor[owner.ID]; !ok {
			epcFor[owner.ID] = epc
		}
	}
	shards[1].srv.Close() // s1 is dead
	var body strings.Builder
	// Line 1 goes to s0 (accepted), line 2 to s1 (dead), line 3 to s0.
	body.WriteString(mkLine(t, epcFor["s0"], 0) + "\n")
	body.WriteString(mkLine(t, epcFor["s1"], 1) + "\n")
	body.WriteString(mkLine(t, epcFor["s0"], 2) + "\n")
	w := postNDJSON(t, rt.Handler(), body.String())
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.Code != CodeShardUnavailable || env.Shard != "s1" {
		t.Errorf("envelope %+v, want shard_unavailable from s1", env)
	}
	if env.Accepted != 1 || env.Line != 2 {
		t.Errorf("accepted %d line %d, want 1/2", env.Accepted, env.Line)
	}
	// s0 accepted line 3 beyond the global prefix: overshoot.
	if got := rt.Metrics().LinesOvershoot.Load(); got != 1 {
		t.Errorf("LinesOvershoot %d want 1", got)
	}
}

// TestRouterIngestNoShards: an empty ring refuses with 503/no_shards.
func TestRouterIngestNoShards(t *testing.T) {
	rt := New(Config{})
	w := postNDJSON(t, rt.Handler(), mkLine(t, "urn:epc:x", 0)+"\n")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != CodeNoShards {
		t.Errorf("code %q", env.Code)
	}
}

// TestRouterTagsScatter: /v1/tags unions shard tag lists; a dead
// shard degrades the answer to partial instead of failing it.
func TestRouterTagsScatter(t *testing.T) {
	rt, shards := testRouter(t, Config{ShardTimeout: time.Second}, 3)
	shards[0].tags = []string{"b", "a"}
	shards[1].tags = []string{"c", "a"}
	shards[2].tags = []string{"d"}

	get := func() (*httptest.ResponseRecorder, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, "/v1/tags", nil)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("unparseable body %q", w.Body.String())
		}
		return w, body
	}

	w, body := get()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if fmt.Sprint(body["tags"]) != "[a b c d]" || body["partial"] != nil {
		t.Fatalf("full scatter body %v", body)
	}

	shards[2].srv.Close()
	w, body = get()
	if w.Code != http.StatusOK || body["partial"] != true {
		t.Fatalf("degraded scatter: status %d body %v", w.Code, body)
	}
	if fmt.Sprint(body["missingShards"]) != "[s2]" {
		t.Fatalf("missingShards %v", body["missingShards"])
	}
	if w.Header().Get("X-RFPrism-Partial") != "1" {
		t.Error("partial header missing")
	}
	if fmt.Sprint(body["tags"]) != "[a b c]" {
		t.Fatalf("degraded tags %v", body["tags"])
	}

	shards[0].srv.Close()
	shards[1].srv.Close()
	w, _ = get()
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead scatter status %d", w.Code)
	}
}

// TestRouterTagProxy: a single-tag read goes to the EPC's owner and
// the shard's reply passes through verbatim; a dead owner is 502.
func TestRouterTagProxy(t *testing.T) {
	rt, shards := testRouter(t, Config{ShardTimeout: time.Second}, 2)
	epc := "urn:epc:proxy-1"
	owner, _ := rt.Owner(epc)
	req := httptest.NewRequest(http.MethodGet, "/v1/tags/"+epc, nil)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var body struct{ From string }
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	var ownerStub *stubShard
	for i, s := range shards {
		if fmt.Sprintf("s%d", i) == owner.ID {
			ownerStub = s
		}
	}
	if body.From != ownerStub.srv.URL {
		t.Fatalf("answered by %s, ring owner is %s (%s)", body.From, owner.ID, ownerStub.srv.URL)
	}
	ownerStub.srv.Close()
	w = httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("dead owner status %d", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != CodeShardUnavailable || env.Shard != owner.ID {
		t.Errorf("envelope %+v", env)
	}
}

// TestRouterReadyz: ready only when every shard is; the body names
// each shard's state.
func TestRouterReadyz(t *testing.T) {
	rt, shards := testRouter(t, Config{ShardTimeout: time.Second}, 3)
	get := func() (*httptest.ResponseRecorder, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		var body map[string]any
		_ = json.Unmarshal(w.Body.Bytes(), &body)
		return w, body
	}
	if w, _ := get(); w.Code != http.StatusOK {
		t.Fatalf("all-ready status %d", w.Code)
	}
	shards[1].mu.Lock()
	shards[1].ready = false
	shards[1].mu.Unlock()
	w, body := get()
	if w.Code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("degraded readyz: %d %v", w.Code, body)
	}
	states := fmt.Sprint(body["shards"])
	if !strings.Contains(states, "not-ready") {
		t.Errorf("shard states %s", states)
	}
	shards[2].srv.Close()
	_, body = get()
	if !strings.Contains(fmt.Sprint(body["shards"]), "down") {
		t.Errorf("dead shard not reported down: %v", body["shards"])
	}
}

// TestRouterMetricsAggregation: /metrics is the fleet sum of the
// shard expositions plus the router's own families.
func TestRouterMetricsAggregation(t *testing.T) {
	rt, shards := testRouter(t, Config{ShardTimeout: time.Second}, 2)
	shards[0].metrics = "# HELP rfprismd_reports_total R.\n# TYPE rfprismd_reports_total counter\nrfprismd_reports_total{outcome=\"accepted\"} 70\n"
	shards[1].metrics = "# HELP rfprismd_reports_total R.\n# TYPE rfprismd_reports_total counter\nrfprismd_reports_total{outcome=\"accepted\"} 30\n"
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	text := w.Body.String()
	if !strings.Contains(text, `rfprismd_reports_total{outcome="accepted"} 100`) {
		t.Errorf("fleet sum missing:\n%s", text)
	}
	if !strings.Contains(text, "router_shards 2") {
		t.Errorf("router families missing:\n%s", text)
	}
}

// TestRouterAdminShards: membership changes over HTTP.
func TestRouterAdminShards(t *testing.T) {
	rt, _ := testRouter(t, Config{}, 1)
	extra := newStubShard(t)
	do := func(method, path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		return w
	}
	if w := do(http.MethodPost, "/admin/shards?id=sX&url="+extra.srv.URL); w.Code != http.StatusOK {
		t.Fatalf("add: %d %s", w.Code, w.Body.String())
	}
	if got := len(rt.Shards()); got != 2 {
		t.Fatalf("%d shards after add", got)
	}
	if w := do(http.MethodDelete, "/admin/shards/sX"); w.Code != http.StatusOK {
		t.Fatalf("remove: %d", w.Code)
	}
	if got := len(rt.Shards()); got != 1 {
		t.Fatalf("%d shards after remove", got)
	}
	if w := do(http.MethodDelete, "/admin/shards/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("remove unknown: %d", w.Code)
	}
}
