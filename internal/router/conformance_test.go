package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/ingest"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// collector is a Sink that records every TagResult a shard emits.
type collector struct {
	mu      sync.Mutex
	results []ingest.TagResult
}

func (c *collector) Emit(r ingest.TagResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, r)
	return nil
}

func (c *collector) Close() error { return nil }

func (c *collector) snapshot() []ingest.TagResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ingest.TagResult(nil), c.results...)
}

// newConformanceSystem builds a freshly calibrated paper-deployment
// System. Called once per daemon so single and sharded topologies
// start from byte-identical solver state: the scene is seeded, so
// every invocation reconstructs the same calibration.
func newConformanceSystem(t *testing.T, seed int64) *rfprism.System {
	t.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	calTag := scene.NewTag("cal")
	var calWin []sim.Reading
	for i := 0; i < 3; i++ {
		calWin = append(calWin, scene.CollectWindow(calTag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		t.Fatal(err)
	}
	return sys
}

// conformanceStream builds the seeded interleaved report stream both
// topologies ingest, rendered once as NDJSON so they see identical
// bytes.
func conformanceStream(t *testing.T, seed int64, nTags, rounds int) (lines int, body []byte, epcs []string) {
	t.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec3{
		{X: 0.6, Y: 1.1}, {X: 1.2, Y: 1.6}, {X: 1.5, Y: 2.0},
		{X: 0.9, Y: 2.2}, {X: 1.8, Y: 1.2}, {X: 0.5, Y: 1.8},
	}
	var tracked []sim.TrackedTag
	for i := 0; i < nTags; i++ {
		p := positions[i%len(positions)]
		tag := scene.NewTag(fmt.Sprintf("urn:epc:conf-%03d", i))
		tracked = append(tracked, sim.TrackedTag{Tag: tag, Motion: scene.Place(p, 0.2*float64(i), none)})
		epcs = append(epcs, tag.EPC)
	}
	stream, err := scene.CollectStream(tracked, rounds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rd := range stream {
		if err := enc.Encode(rd); err != nil {
			t.Fatal(err)
		}
	}
	return len(stream), buf.Bytes(), epcs
}

// resultKey is the cross-topology window identity: (EPC, per-EPC Seq).
// FirstSeq is journal-local (each shard numbers its own journal), so
// it cannot be compared across topologies; Seq is assigned by the
// per-EPC sessionizer stream, which sharding preserves exactly.
func resultKey(r ingest.TagResult) string { return fmt.Sprintf("%s/%d", r.EPC, r.Seq) }

// canonicalResult strips the topology-dependent fields (timestamps,
// latency, journal positions) and renders what must be bit-identical:
// the window's assembly (reason, channels, antennas) and the solve.
func canonicalResult(t *testing.T, r ingest.TagResult) string {
	t.Helper()
	c := struct {
		Reason   string              `json:"reason"`
		Channels int                 `json:"channels"`
		Antennas int                 `json:"antennas"`
		Estimate *ingest.EstimateOut `json:"estimate"`
		Err      string              `json:"err"`
	}{r.Reason, r.Channels, r.Antennas, r.Estimate, r.Err}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// indexResults keys results by (EPC, Seq), failing on any duplicate —
// the zero-duplicate half of the conformance claim.
func indexResults(t *testing.T, label string, results []ingest.TagResult) map[string]string {
	t.Helper()
	out := make(map[string]string, len(results))
	for _, r := range results {
		k := resultKey(r)
		if _, dup := out[k]; dup {
			t.Fatalf("%s: duplicate result for %s", label, k)
		}
		out[k] = canonicalResult(t, r)
	}
	return out
}

// postAll sends the whole NDJSON body in one request and asserts every
// line was accepted (the conformance stream must not hit
// backpressure — a 429 here means the topology under test was
// misconfigured, not that conformance failed).
func postAll(t *testing.T, url string, body []byte, lines int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || reply.Accepted != lines {
		t.Fatalf("ingest: status %d accepted %d/%d (%s)", resp.StatusCode, reply.Accepted, lines, reply.Error)
	}
}

// TestClusterConformance is the sharding acceptance test: the same
// seeded interleaved stream, ingested once through a single journaled
// daemon and once through a 3-shard cluster behind the router, yields
// bit-identical per-(EPC, Seq) results — same windows, same close
// reasons, same estimates to the last bit — with zero duplicates and
// zero loss. Per-EPC invariants survive sharding because one EPC's
// reports always land on one shard in request order.
func TestClusterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves; skipped in -short")
	}
	const seed, nTags, rounds = 42, 6, 2
	lines, body, _ := conformanceStream(t, seed, nTags, rounds)
	sessCfg := ingest.SessionizerConfig{CoverageClose: 45}

	// Topology A: one journaled daemon behind the plain ingest server.
	singleCap := &collector{}
	j, err := ingest.OpenJournal(ingest.JournalConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ring := ingest.NewRingSink(4)
	single := ingest.NewDaemon(newConformanceSystem(t, seed), ingest.Config{
		Sessionizer: sessCfg,
		QueueSize:   256,
		Journal:     j,
	}, singleCap, ring)
	srv := httptest.NewServer(ingest.NewServer(single, ring).Handler())
	postAll(t, srv.URL, body, lines)
	if err := single.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	want := indexResults(t, "single", singleCap.snapshot())
	if len(want) < nTags {
		t.Fatalf("single daemon produced only %d windows", len(want))
	}

	// Topology B: 3 journaled shards behind the router.
	caps := make(map[string]*collector)
	var capsMu sync.Mutex
	cluster, err := NewCluster(ClusterConfig{
		Shards: 3,
		Dir:    t.TempDir(),
		NewProcessor: func(string) ingest.Processor {
			return newConformanceSystem(t, seed)
		},
		NewSinks: func(id string) []ingest.Sink {
			capsMu.Lock()
			defer capsMu.Unlock()
			c := &collector{}
			caps[id] = c
			return []ingest.Sink{c}
		},
		Daemon: ingest.Config{Sessionizer: sessCfg, QueueSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	rsrv := httptest.NewServer(cluster.Handler())
	postAll(t, rsrv.URL, body, lines)
	if err := cluster.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	rsrv.Close()

	var clusterResults []ingest.TagResult
	shardsWithResults := 0
	for _, c := range caps {
		rs := c.snapshot()
		if len(rs) > 0 {
			shardsWithResults++
		}
		clusterResults = append(clusterResults, rs...)
	}
	if shardsWithResults < 2 {
		t.Fatalf("conformance stream exercised only %d shard(s); widen the tag set", shardsWithResults)
	}
	got := indexResults(t, "cluster", clusterResults)

	// Zero loss, zero excess, bit-identical payloads.
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("cluster lost window %s", k)
			continue
		}
		if g != w {
			t.Errorf("window %s drifted across topologies:\n single  %s\n cluster %s", k, w, g)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("cluster invented window %s", k)
		}
	}
}
