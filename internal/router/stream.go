package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"rfprism/internal/api"
	"rfprism/internal/serve"
)

// SSE relay and merge.
//
// The router fronts the shards' serving tier for subscriptions too:
//
//	GET /v1/tags/{epc}/stream  relayed from the EPC's owning shard
//	GET /v1/stream             every shard's firehose merged into one
//
// Per-EPC streams have exactly one possible source (the ring owner),
// so the relay is a transparent byte pipe: frames, epochs and the
// Last-Event-ID resume contract pass through untouched. The firehose
// merge interleaves whole SSE frames from every shard; epochs are
// per-shard there, so the merged stream is a live tail without a
// cross-shard resume cursor (DESIGN.md §14).
//
// Degradation follows the scatter-gather contract: shards that cannot
// be reached when the stream opens set X-RFPrism-Partial and are
// announced with one `event: partial` frame each; a shard dying
// mid-stream emits the same frame while the surviving shards' streams
// stay open.

// streamConnectTimeout caps how long the firehose waits for one
// shard's stream to start before declaring it missing.
const streamConnectTimeout = 5 * time.Second

// partialFrame renders the `event: partial` degradation frame for one
// shard.
func partialFrame(shardID string) []byte {
	data, _ := json.Marshal(map[string]string{"shard": shardID})
	return api.Frame{Event: "partial", Data: data}.Bytes()
}

// acquireStream claims a per-client stream slot when a limiter is
// wired; it replies 429 and returns false when the quota is exhausted.
func (rt *Router) acquireStream(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	lim := rt.cfg.Limiter
	if lim == nil {
		return func() {}, true
	}
	key := serve.ClientKey(r)
	if !lim.AcquireStream(key) {
		rt.met.StreamErr.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Schema: api.Version,
			Error:  "concurrent stream quota exceeded", Code: serve.CodeStreamQuota,
			RetryAfterMS: 1000,
		})
		return nil, false
	}
	return func() { lim.ReleaseStream(key) }, true
}

// handleTagStream relays GET /v1/tags/{epc}/stream from the owning
// shard, byte for byte, flushing each read so events propagate live.
func (rt *Router) handleTagStream(w http.ResponseWriter, r *http.Request) {
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		rt.writeError(w, http.StatusInternalServerError, "no_stream", "streaming unsupported by connection", 0)
		return
	}
	release, ok := rt.acquireStream(w, r)
	if !ok {
		return
	}
	defer release()
	epc := r.PathValue("epc")
	owner, _ := rt.snapshot()
	sh, found := owner(epc)
	if !found {
		rt.met.StreamErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", 0)
		return
	}
	path := sh.BaseURL + "/v1/tags/" + epc + "/stream"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, path, nil)
	if err != nil {
		rt.met.StreamErr.Inc()
		rt.writeError(w, http.StatusInternalServerError, CodeShardUnavailable, err.Error(), 0)
		return
	}
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		req.Header.Set("Last-Event-ID", id)
	}
	// An open breaker fails the subscription fast instead of burning
	// the dial timeout against a partitioned shard.
	if err := sh.ctl.acquire(); err != nil {
		rt.met.BreakerFastFail.Inc()
		rt.met.StreamErr.Inc()
		writeJSON(w, http.StatusBadGateway, apiError{
			Schema: api.Version,
			Error:  fmt.Sprintf("shard %s: %v", sh.ID, err),
			Code:   CodeShardUnavailable, Shard: sh.ID,
		})
		return
	}
	sh.met.Requests.Inc()
	start := rt.cfg.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		sh.met.Errors.Inc()
		sh.met.Up.Set(0)
		rt.recordOutcome(sh, r.Context(), err, start)
		rt.met.StreamErr.Inc()
		writeJSON(w, http.StatusBadGateway, apiError{
			Schema: api.Version,
			Error:  fmt.Sprintf("shard %s: %v", sh.ID, err),
			Code:   CodeShardUnavailable, Shard: sh.ID,
		})
		return
	}
	defer resp.Body.Close()
	sh.met.Up.Set(1)
	sh.ctl.record(outcomeOK, rt.cfg.Now().Sub(start))
	for _, h := range []string{"Content-Type", "Cache-Control", "X-RFPrism-Epoch", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		// Relay the shard's envelope (quota refusal, unknown store, …).
		rt.met.StreamErr.Inc()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		_, _ = w.Write(buf[:n])
		return
	}
	// Push the headers out now: the first shard frame may be a long
	// heartbeat away, and the client needs the stream to be open.
	flusher.Flush()
	rt.met.StreamOK.Inc()
	rt.met.Streams.Add(1)
	defer rt.met.Streams.Add(-1)
	rt.log.Debug("stream relay open", "shard", sh.ID, "epc", epc)

	buf := make([]byte, 16*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			if r.Context().Err() == nil {
				// The shard died under the relay: tell the client which
				// source vanished instead of silently ending the stream.
				sh.met.Up.Set(0)
				rt.met.StreamPartial.Inc()
				_, _ = w.Write(partialFrame(sh.ID))
				flusher.Flush()
				rt.log.Debug("stream relay lost shard", "shard", sh.ID, "epc", epc, "err", err)
			}
			return
		}
	}
}

// shardStream is one shard's live firehose under the merge.
type shardStream struct {
	sh   *shard
	resp *http.Response
	err  error
}

// handleFirehose merges every shard's /v1/stream into one SSE stream.
func (rt *Router) handleFirehose(w http.ResponseWriter, r *http.Request) {
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		rt.writeError(w, http.StatusInternalServerError, "no_stream", "streaming unsupported by connection", 0)
		return
	}
	release, ok := rt.acquireStream(w, r)
	if !ok {
		return
	}
	defer release()
	_, all := rt.snapshot()
	if len(all) == 0 {
		rt.met.StreamErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", 0)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// Connect to every shard in parallel, bounding the header wait so a
	// dead shard degrades the stream instead of stalling its start.
	conns := make([]shardStream, len(all))
	var wg sync.WaitGroup
	for i, sh := range all {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			conns[i] = rt.openShardStream(ctx, sh, r.URL.RawQuery)
		}(i, sh)
	}
	wg.Wait()

	var live []shardStream
	var missing []*shard
	for _, c := range conns {
		if c.err != nil {
			missing = append(missing, c.sh)
			continue
		}
		live = append(live, c)
	}
	defer func() {
		for _, c := range live {
			c.resp.Body.Close()
		}
	}()
	if len(live) == 0 {
		rt.met.StreamErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeAllShardsDown, "every shard refused its stream", 0)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	if len(missing) > 0 {
		h.Set("X-RFPrism-Partial", "1")
		rt.met.StreamPartial.Inc()
	} else {
		rt.met.StreamOK.Inc()
	}
	w.WriteHeader(http.StatusOK)
	for _, sh := range missing {
		_, _ = w.Write(partialFrame(sh.ID))
	}
	flusher.Flush()
	rt.met.Streams.Add(1)
	defer rt.met.Streams.Add(-1)
	rt.log.Debug("firehose open", "live", len(live), "missing", len(missing))

	// Readers push whole SSE frames; the single writer interleaves
	// them. A shard dying mid-merge contributes one final partial
	// frame; the merge itself survives until the client goes away or
	// the last shard does.
	frames := make(chan []byte, 256)
	var readers sync.WaitGroup
	for _, c := range live {
		readers.Add(1)
		go func(c shardStream) {
			defer readers.Done()
			sc := bufio.NewScanner(c.resp.Body)
			sc.Buffer(make([]byte, 0, 16*1024), maxReportLine)
			sc.Split(scanSSEFrame)
			for sc.Scan() {
				frame := append([]byte(nil), sc.Bytes()...)
				select {
				case frames <- frame:
				case <-ctx.Done():
					return
				}
			}
			if ctx.Err() == nil {
				c.sh.met.Up.Set(0)
				rt.met.StreamPartial.Inc()
				select {
				case frames <- partialFrame(c.sh.ID):
				case <-ctx.Done():
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() {
		readers.Wait()
		close(done)
	}()

	for {
		select {
		case frame := <-frames:
			if _, err := w.Write(frame); err != nil {
				return
			}
			// Coalesce any backlog into this flush.
			for drained := false; !drained; {
				select {
				case more := <-frames:
					if _, err := w.Write(more); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
		case <-done:
			// Drain the final frames (each dead shard's partial marker).
			for {
				select {
				case frame := <-frames:
					_, _ = w.Write(frame)
				default:
					flusher.Flush()
					return
				}
			}
		case <-ctx.Done():
			return
		}
	}
}

// openShardStream starts one shard's firehose, bounding only the wait
// for response headers — the body is the live stream.
func (rt *Router) openShardStream(ctx context.Context, sh *shard, rawQuery string) shardStream {
	out := shardStream{sh: sh}
	path := sh.BaseURL + "/v1/stream"
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	if err := sh.ctl.acquire(); err != nil {
		rt.met.BreakerFastFail.Inc()
		out.err = fmt.Errorf("shard %s: %w", sh.ID, err)
		return out
	}
	sh.met.Requests.Inc()
	start := rt.cfg.Now()
	connCtx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(connCtx, http.MethodGet, path, nil)
	if err != nil {
		cancel()
		out.err = err
		return out
	}
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := rt.cfg.Client.Do(req)
		ch <- result{resp, err}
	}()
	t := time.NewTimer(streamConnectTimeout)
	defer t.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			cancel()
			sh.met.Errors.Inc()
			sh.met.Up.Set(0)
			rt.recordOutcome(sh, ctx, res.err, start)
			out.err = res.err
			return out
		}
		if res.resp.StatusCode != http.StatusOK {
			res.resp.Body.Close()
			cancel()
			sh.met.Errors.Inc()
			sh.ctl.record(outcomeOK, rt.cfg.Now().Sub(start))
			out.err = fmt.Errorf("shard %s: stream status %d", sh.ID, res.resp.StatusCode)
			return out
		}
		sh.met.Up.Set(1)
		sh.ctl.record(outcomeOK, rt.cfg.Now().Sub(start))
		out.resp = res.resp
		// cancel is abandoned deliberately: the stream must outlive this
		// call, and the parent ctx still ends it. Wrap the body so the
		// context is released when the stream closes.
		out.resp.Body = &cancelOnClose{ReadCloser: out.resp.Body, cancel: cancel}
		return out
	case <-t.C:
		cancel()
		<-ch // let the dial goroutine finish
		sh.met.Errors.Inc()
		sh.met.Up.Set(0)
		if ctx.Err() == nil {
			sh.ctl.record(outcomeTimeout, rt.cfg.Now().Sub(start))
		} else {
			sh.ctl.release()
		}
		out.err = fmt.Errorf("shard %s: stream connect timed out", sh.ID)
		return out
	}
}

// cancelOnClose releases a request's context cancel when its body is
// closed, so abandoned shard streams do not leak contexts.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	c.cancel()
	return c.ReadCloser.Close()
}

// scanSSEFrame is a bufio.SplitFunc yielding whole SSE frames (through
// the terminating blank line), so merged shard frames never interleave
// mid-event.
func scanSSEFrame(data []byte, atEOF bool) (int, []byte, error) {
	if i := bytes.Index(data, []byte("\n\n")); i >= 0 {
		return i + 2, data[:i+2], nil
	}
	if atEOF && len(data) > 0 {
		return len(data), data, nil
	}
	return 0, nil, nil
}
