package router

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfprism/internal/serve"
)

// sseShard is a scriptable fake rfprismd serving tier: it answers
// /v1/stream and /v1/tags/{epc}/stream with frames pushed through
// send, and dies mid-stream when kill is closed — so the router's
// relay and merge degradation is testable without real daemons.
type sseShard struct {
	srv  *httptest.Server
	send chan string

	mu          sync.Mutex
	kill        chan struct{}
	lastEventID string
	connects    int
}

func newSSEShard(t *testing.T) *sseShard {
	s := &sseShard{send: make(chan string, 16), kill: make(chan struct{})}
	mux := http.NewServeMux()
	stream := func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.connects++
		s.lastEventID = r.Header.Get("Last-Event-ID")
		kill := s.kill
		s.mu.Unlock()
		flusher := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-RFPrism-Epoch", "7")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		for {
			select {
			case frame := <-s.send:
				_, _ = fmt.Fprint(w, frame)
				flusher.Flush()
			case <-kill:
				return // server-side death: the relay sees EOF
			case <-r.Context().Done():
				return
			}
		}
	}
	mux.HandleFunc("GET /v1/stream", stream)
	mux.HandleFunc("GET /v1/tags/{epc}/stream", stream)
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *sseShard) die() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.kill:
	default:
		close(s.kill)
	}
}

func (s *sseShard) resultFrame(epc string, epoch int) {
	s.send <- fmt.Sprintf("id: %d\nevent: result\ndata: {\"epc\":%q,\"seq\":%d}\n\n", epoch, epc, epoch)
}

// routerSSE opens one SSE stream against the router over real HTTP and
// parses frames onto a channel that closes at stream end.
func routerSSE(t *testing.T, url string, hdr map[string]string) (*http.Response, <-chan [2]string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	events := make(chan [2]string, 64) // [event, data]
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var event, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if event != "" || data != "" {
					events <- [2]string{event, data}
				}
				event, data = "", ""
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	return resp, events
}

func nextFrame(t *testing.T, events <-chan [2]string, what string) (event, data string) {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatalf("stream ended waiting for %s", what)
		}
		return ev[0], ev[1]
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	panic("unreachable")
}

func partialShard(t *testing.T, data string) string {
	t.Helper()
	var body struct {
		Shard string `json:"shard"`
	}
	if err := json.Unmarshal([]byte(data), &body); err != nil {
		t.Fatalf("bad partial frame data %q: %v", data, err)
	}
	return body.Shard
}

// TestFirehoseMergeSurvivesMidStreamShardDeath is the degradation
// contract for the merged firehose: a shard dying under an open merge
// is announced with one `event: partial` frame naming it, while the
// surviving shards' frames keep flowing on the same response.
func TestFirehoseMergeSurvivesMidStreamShardDeath(t *testing.T) {
	rt := New(Config{})
	a, b := newSSEShard(t), newSSEShard(t)
	if err := rt.AddShard("s0", a.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard("s1", b.srv.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, events := routerSSE(t, ts.URL+"/v1/stream", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("firehose status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-RFPrism-Partial") != "" {
		t.Fatal("healthy open marked partial")
	}

	a.resultFrame("A", 1)
	b.resultFrame("B", 1)
	seen := map[string]bool{}
	for len(seen) < 2 {
		event, data := nextFrame(t, events, "both shards' results")
		if event != "result" {
			t.Fatalf("unexpected frame %s %s", event, data)
		}
		var res struct {
			EPC string `json:"epc"`
		}
		_ = json.Unmarshal([]byte(data), &res)
		seen[res.EPC] = true
	}
	if !seen["A"] || !seen["B"] {
		t.Fatalf("merge saw %v, want results from both shards", seen)
	}

	// Kill shard s0 mid-stream: the client is told which source
	// vanished, and the merge stays open.
	a.die()
	event, data := nextFrame(t, events, "partial frame for the dead shard")
	if event != "partial" || partialShard(t, data) != "s0" {
		t.Fatalf("death frame = %s %s, want partial for s0", event, data)
	}

	b.resultFrame("B", 2)
	if event, _ := nextFrame(t, events, "survivor's next result"); event != "result" {
		t.Fatalf("survivor frame = %s, want result — merge must stay open", event)
	}
	if rt.Metrics().StreamPartial.Load() == 0 {
		t.Fatal("mid-stream death not counted as a partial stream")
	}
}

// TestFirehoseConnectTimePartial: a shard already dead when the merge
// opens degrades the stream (X-RFPrism-Partial + one partial frame)
// instead of failing it.
func TestFirehoseConnectTimePartial(t *testing.T) {
	rt := New(Config{})
	live := newSSEShard(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on
	if err := rt.AddShard("s0", live.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard("s1", deadURL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, events := routerSSE(t, ts.URL+"/v1/stream", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded firehose status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-RFPrism-Partial") != "1" {
		t.Fatal("missing X-RFPrism-Partial header on a degraded open")
	}
	event, data := nextFrame(t, events, "connect-time partial frame")
	if event != "partial" || partialShard(t, data) != "s1" {
		t.Fatalf("first frame = %s %s, want partial for s1", event, data)
	}
	live.resultFrame("A", 1)
	if event, _ := nextFrame(t, events, "live shard's result"); event != "result" {
		t.Fatalf("live frame = %s, want result", event)
	}
}

func TestFirehoseAllShardsDown(t *testing.T) {
	rt := New(Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	if err := rt.AddShard("s0", deadURL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope apiError
	_ = json.NewDecoder(resp.Body).Decode(&envelope)
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Code != CodeAllShardsDown {
		t.Fatalf("all-dead firehose = %d code %q, want 503 %s", resp.StatusCode, envelope.Code, CodeAllShardsDown)
	}
}

// TestTagStreamRelay: the per-EPC stream is a transparent pipe from
// the owning shard — frames, the epoch header and the Last-Event-ID
// resume contract pass through, and the shard dying mid-relay is
// announced with a partial frame.
func TestTagStreamRelay(t *testing.T) {
	rt := New(Config{})
	sh := newSSEShard(t)
	if err := rt.AddShard("s0", sh.srv.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, events := routerSSE(t, ts.URL+"/v1/tags/X/stream", map[string]string{"Last-Event-ID": "5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relay status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-RFPrism-Epoch"); got != "7" {
		t.Fatalf("X-RFPrism-Epoch = %q, want the shard's 7 relayed", got)
	}
	sh.mu.Lock()
	forwarded := sh.lastEventID
	sh.mu.Unlock()
	if forwarded != "5" {
		t.Fatalf("shard saw Last-Event-ID %q, want 5 forwarded", forwarded)
	}

	sh.resultFrame("X", 8)
	if event, _ := nextFrame(t, events, "relayed result"); event != "result" {
		t.Fatalf("relayed frame = %s, want result", event)
	}

	sh.die()
	event, data := nextFrame(t, events, "relay partial frame")
	if event != "partial" || partialShard(t, data) != "s0" {
		t.Fatalf("relay death frame = %s %s, want partial for s0", event, data)
	}
}

// TestStreamQuotaOnRouter: the router enforces the per-client
// concurrent-stream quota with the serve-tier envelope.
func TestStreamQuotaOnRouter(t *testing.T) {
	lim := serve.NewLimiter(serve.LimiterConfig{MaxStreams: 1})
	rt := New(Config{Limiter: lim})
	sh := newSSEShard(t)
	if err := rt.AddShard("s0", sh.srv.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	hdr := map[string]string{"X-API-Key": "c1"}
	if resp, _ := routerSSE(t, ts.URL+"/v1/stream", hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("first stream status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stream", nil)
	req.Header.Set("X-API-Key", "c1")
	over, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Body.Close()
	var envelope apiError
	_ = json.NewDecoder(over.Body).Decode(&envelope)
	if over.StatusCode != http.StatusTooManyRequests || envelope.Code != serve.CodeStreamQuota {
		t.Fatalf("over-quota = %d code %q, want 429 %s", over.StatusCode, envelope.Code, serve.CodeStreamQuota)
	}
}
