package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/ingest"
	"rfprism/internal/sim"
)

// instantProc solves every window instantly with an empty result —
// cluster mechanics without solver cost.
type instantProc struct{}

func (instantProc) ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult {
	out := make(chan rfprism.WindowResult)
	go func() {
		defer close(out)
		i := 0
		for w := range in {
			r := rfprism.WindowResult{Index: i, Tag: w.Tag, Result: &rfprism.Result{}}
			select {
			case out <- r:
			case <-ctx.Done():
				return
			}
			i++
		}
	}()
	return out
}

// testCluster builds a journaled stub-solver cluster. CoverageClose 3
// keeps windows tiny; the huge dwell keeps deadlines out of the way.
func testCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Shards:       shards,
		Dir:          t.TempDir(),
		NewProcessor: func(string) ingest.Processor { return instantProc{} },
		Daemon: ingest.Config{
			Sessionizer: ingest.SessionizerConfig{CoverageClose: 3, MinAntennas: 1, Dwell: time.Hour},
			RetryAfter:  5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close(context.Background()) })
	return c
}

// offerPartial sends n distinct-channel readings for epc through the
// router — below CoverageClose they leave an open session on the
// EPC's owner shard.
func offerPartial(t *testing.T, h http.Handler, epc string, n int) {
	t.Helper()
	var body strings.Builder
	for ch := 0; ch < n; ch++ {
		b, err := json.Marshal(sim.Reading{EPC: epc, Channel: ch, Antenna: ch % 4, FreqHz: 920e6})
		if err != nil {
			t.Fatal(err)
		}
		body.Write(b)
		body.WriteByte('\n')
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body.String())))
	if w.Code != http.StatusAccepted {
		t.Fatalf("ingest %s: %d %s", epc, w.Code, w.Body.String())
	}
}

// TestClusterRemoveShardHandsOffSessions: cleanly removing a shard
// moves its open sessions to the survivors — the readings are not
// lost, and completing the session afterwards closes the window on
// the new owner.
func TestClusterRemoveShardHandsOffSessions(t *testing.T) {
	c := testCluster(t, 3)
	// Open a 2-reading session (CoverageClose is 3) on each shard.
	epcByShard := make(map[string]string)
	for i := 0; len(epcByShard) < 3; i++ {
		epc := fmt.Sprintf("urn:epc:ho-%03d", i)
		owner, _ := c.Router().Owner(epc)
		if _, ok := epcByShard[owner.ID]; !ok {
			epcByShard[owner.ID] = epc
			offerPartial(t, c.Handler(), epc, 2)
		}
	}
	victim := c.ShardIDs()[0]
	epc := epcByShard[victim]
	if err := c.RemoveShard(context.Background(), victim); err != nil {
		t.Fatal(err)
	}
	// The session moved: its new owner holds 2 buffered readings.
	owner, ok := c.Router().Owner(epc)
	if !ok || owner.ID == victim {
		t.Fatalf("epc %s still owned by removed shard", epc)
	}
	d := c.ShardDaemon(owner.ID)
	if d == nil {
		t.Fatalf("no daemon for new owner %s", owner.ID)
	}
	if got := d.Metrics().ReportsAccepted.Load(); got < 2 {
		t.Fatalf("new owner accepted %d reports, want the 2 handed-off ones", got)
	}
	// One more reading completes the window on the new owner.
	offerPartial(t, c.Handler(), epc, 3) // channels 0..2 → third is new
	waitFor(t, 2*time.Second, "handed-off window to close on the new owner", func() bool {
		return d.Metrics().ResultsOK.Load() >= 1
	})
	if got := c.Router().Metrics().HandoffReoffered.Load(); got < 2 {
		t.Errorf("HandoffReoffered %d, want ≥ 2", got)
	}
}

// TestClusterAddShardMigratesSessions: growing the ring drains the
// remapped EPCs' open sessions from their old owners into the new
// shard, so no session straddles the membership change.
func TestClusterAddShardMigratesSessions(t *testing.T) {
	c := testCluster(t, 2)
	// Open sessions for a spread of EPCs.
	epcs := make([]string, 40)
	for i := range epcs {
		epcs[i] = fmt.Sprintf("urn:epc:grow-%03d", i)
		offerPartial(t, c.Handler(), epcs[i], 2)
	}
	before := make(map[string]string)
	for _, epc := range epcs {
		o, _ := c.Router().Owner(epc)
		before[epc] = o.ID
	}
	newID, err := c.AddShard(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, epc := range epcs {
		o, _ := c.Router().Owner(epc)
		if o.ID != before[epc] {
			if o.ID != newID {
				t.Fatalf("epc %s remapped to %s, not the new shard", epc, o.ID)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Skip("no test EPC remapped to the new shard (possible but vanishingly rare)")
	}
	// Every moved session's readings must now sit in the new shard.
	d := c.ShardDaemon(newID)
	waitFor(t, 2*time.Second, "migrated sessions to arrive", func() bool {
		return d.Metrics().ReportsAccepted.Load() >= int64(2*moved)
	})
	if got := d.Gauges().OpenSessions; got != moved {
		t.Errorf("new shard holds %d open sessions, want %d", got, moved)
	}
}

// TestClusterRemoveShardDeadReoffersJournal: a shard torn down without
// draining leaves its journal behind; RemoveShardDead replays the
// unserved tail into the survivors while the emission ledger
// suppresses what was already delivered.
func TestClusterRemoveShardDeadReoffersJournal(t *testing.T) {
	c := testCluster(t, 3)
	victim := c.ShardIDs()[0]
	// One completed window (→ ledger) and one open session on the
	// victim.
	var servedEPC, openEPC string
	for i := 0; servedEPC == "" || openEPC == ""; i++ {
		epc := fmt.Sprintf("urn:epc:dead-%03d", i)
		if owner, _ := c.Router().Owner(epc); owner.ID != victim {
			continue
		}
		if servedEPC == "" {
			servedEPC = epc
			offerPartial(t, c.Handler(), epc, 3) // full window → solved → ledger
		} else {
			openEPC = epc
			offerPartial(t, c.Handler(), epc, 2) // stays open
		}
	}
	d := c.ShardDaemon(victim)
	waitFor(t, 2*time.Second, "victim to serve its full window", func() bool {
		return d.Metrics().ResultsOK.Load() >= 1
	})

	reoffered, suppressed, err := c.RemoveShardDead(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	// The open session's 2 readings re-home; the served window's 3 are
	// suppressed by its ledger span.
	if reoffered != 2 || suppressed != 3 {
		t.Fatalf("reoffered %d suppressed %d, want 2/3", reoffered, suppressed)
	}
	owner, _ := c.Router().Owner(openEPC)
	nd := c.ShardDaemon(owner.ID)
	if nd == nil {
		t.Fatalf("no daemon owns %s", openEPC)
	}
	waitFor(t, 2*time.Second, "re-homed readings to arrive", func() bool {
		return nd.Metrics().ReportsAccepted.Load() >= 2
	})
	// Completing the re-homed session solves it exactly once, on the
	// survivor.
	offerPartial(t, c.Handler(), openEPC, 3)
	waitFor(t, 2*time.Second, "re-homed window to close", func() bool {
		return nd.Metrics().ResultsOK.Load() >= 1
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
