// Package router is the sharding tier in front of rfprismd: a thin
// HTTP router that consistent-hashes EPCs onto N daemon shards (each
// with its own journal, sessionizer, breaker and recovery domain),
// fans POST /ingest out per EPC with per-shard backpressure, scatter-
// gathers the read endpoints with partial-result degradation, and
// aggregates /metrics and /readyz across the fleet. One EPC always
// lands on one shard, so every per-EPC invariant the single daemon
// guarantees (session contiguity, at-most-once (EPC, FirstSeq) window
// identity, journal recovery) holds per shard without coordination.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard. 128 vnodes keep
// the max/mean key-load ratio under ~1.25 for 2–16 shards (see the
// ring balance tests) while the ring stays small enough to rebuild on
// every membership change.
const DefaultVnodes = 128

// Ring is a consistent-hash ring mapping EPCs to shard IDs. Each
// shard owns Vnodes points on a 64-bit hash circle; a key belongs to
// the first point clockwise from its own hash. Adding or removing a
// shard therefore remaps only the keys adjacent to that shard's
// points — about 1/N of the keyspace — while every other key keeps
// its owner, which is what makes shard membership changes cheap: only
// the moved keys need a session handoff.
//
// Ring is not goroutine-safe; the Router guards it.
type Ring struct {
	vnodes int
	shards map[string]bool
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds an empty ring with the given virtual-node count per
// shard (≤ 0 means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]bool)}
}

// hashKey positions a key (an EPC, or a shard vnode name) on the
// circle: FNV-1a through a splitmix64 finalizer. FNV alone is not
// enough — its trailing-byte diffusion is weak, so sequential EPCs
// ("tag-000041", "tag-000042", …) land within ~1e16 of each other and
// pile onto single vnode arcs. The finalizer's avalanche spreads them
// uniformly. Both stages are deterministic across processes and Go
// versions, which the conformance harness relies on: router and tests
// must agree on ownership without talking to each other.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): a bijective
// avalanche mix, every input bit flips ~half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a shard's vnodes. Adding an existing shard is a no-op.
func (r *Ring) Add(shard string) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:  hashKey(shard + "#" + strconv.Itoa(v)),
			shard: shard,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a shard's vnodes. Removing an unknown shard is a
// no-op.
func (r *Ring) Remove(shard string) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the shard owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].shard, true
}

// Shards returns the member shard IDs, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.shards) }

// Vnodes returns the per-shard virtual-node count.
func (r *Ring) Vnodes() int { return r.vnodes }

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d shards, %d vnodes)", len(r.shards), r.vnodes)
}
