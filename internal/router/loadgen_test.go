package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rfprism/internal/ingest"
	"rfprism/internal/sim"
)

// sliceIter adapts a reading slice to the RunLoad iterator.
func sliceIter(rds []sim.Reading) func() (sim.Reading, bool) {
	i := 0
	return func() (sim.Reading, bool) {
		if i >= len(rds) {
			return sim.Reading{}, false
		}
		rd := rds[i]
		i++
		return rd, true
	}
}

func loadReadings(n int) []sim.Reading {
	out := make([]sim.Reading, n)
	for i := range out {
		out[i] = sim.Reading{EPC: fmt.Sprintf("urn:epc:load-%03d", i), Channel: i % 8, FreqHz: 920e6}
	}
	return out
}

// TestRunLoadResumesOnBackpressure: a server that accepts a prefix and
// then answers 429 must see the remainder re-sent after the advertised
// pause — every line delivered exactly once, in order.
func TestRunLoadResumesOnBackpressure(t *testing.T) {
	var delivered []string
	calls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		lines := strings.Fields(strings.TrimSpace(readBody(t, r)))
		calls++
		if calls == 1 {
			// Take 3 lines, refuse the rest.
			delivered = append(delivered, lines[:3]...)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": "busy", "code": "backpressure", "retry_after_ms": 40, "accepted": 3, "line": 4,
			})
			return
		}
		delivered = append(delivered, lines...)
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]int{"accepted": len(lines)})
	})

	var slept []time.Duration
	cfg := LoadConfig{
		ChunkLines: 64,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	rds := loadReadings(10)
	rep, err := RunLoad(context.Background(), mux, cfg, sliceIter(rds))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lines != 10 || rep.Posts != 2 || rep.Retries != 1 {
		t.Fatalf("report %+v, want 10 lines / 2 posts / 1 retry", rep)
	}
	if len(slept) != 1 || slept[0] != 40*time.Millisecond {
		t.Fatalf("slept %v, want the advertised 40ms", slept)
	}
	if len(delivered) != 10 {
		t.Fatalf("server saw %d lines, want 10", len(delivered))
	}
	for i, raw := range delivered {
		var rd sim.Reading
		if err := json.Unmarshal([]byte(raw), &rd); err != nil {
			t.Fatal(err)
		}
		if rd.EPC != rds[i].EPC {
			t.Fatalf("line %d is %s, want %s — duplicate or reorder across the retry", i, rd.EPC, rds[i].EPC)
		}
	}
}

// TestRunLoadGivesUpAfterMaxRetries: permanent backpressure must
// surface as an error, not an infinite retry loop.
func TestRunLoadGivesUpAfterMaxRetries(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]any{"code": "backpressure", "retry_after_ms": 1, "accepted": 0})
	})
	cfg := LoadConfig{MaxRetries: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	_, err := RunLoad(context.Background(), mux, cfg, sliceIter(loadReadings(2)))
	if err == nil || !strings.Contains(err.Error(), "backpressured") {
		t.Fatalf("err = %v, want a backpressure give-up", err)
	}
}

func readBody(t *testing.T, r *http.Request) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestPercentileDuration: nearest-rank percentiles on a known set.
func TestPercentileDuration(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	if got := percentileDuration(s, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := percentileDuration(s, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := percentileDuration(s, 0.999); got != 100*time.Millisecond {
		t.Errorf("p999 = %v", got)
	}
	if got := percentileDuration(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

// countSink counts emitted results across all shards.
type countSink struct{ n *atomic.Int64 }

func (c countSink) Emit(ingest.TagResult) error { c.n.Add(1); return nil }
func (countSink) Close() error                  { return nil }

// TestLoadgenClusterEndToEnd: CloneStream → RunLoad → 3-shard cluster.
// The expected window count is exact — clones × the template's offline
// window count — because cloning preserves each EPC's subsequence and
// sessionization is per-EPC.
func TestLoadgenClusterEndToEnd(t *testing.T) {
	template, err := LoadTemplate(29, 24)
	if err != nil {
		t.Fatal(err)
	}
	sessCfg := ingest.SessionizerConfig{CoverageClose: 8, MinAntennas: 1, Dwell: time.Hour}
	perClone := offlineWindows(t, template, sessCfg)
	if perClone == 0 {
		t.Fatal("template closes no windows — degenerate")
	}

	var solved atomic.Int64
	c, err := NewCluster(ClusterConfig{
		Shards:       3,
		NewProcessor: func(string) ingest.Processor { return instantProc{} },
		NewSinks:     func(string) []ingest.Sink { return []ingest.Sink{countSink{&solved}} },
		Daemon: ingest.Config{
			Sessionizer: sessCfg,
			QueueSize:   1024,
			RetryAfter:  2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const clones = 200
	rep, err := RunLoad(context.Background(), c.Handler(), LoadConfig{ChunkLines: 256},
		sim.CloneStream(template, clones, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := clones * len(template); rep.Lines != want {
		t.Fatalf("delivered %d lines, want %d", rep.Lines, want)
	}
	if want := int64(clones * perClone); solved.Load() != want {
		t.Fatalf("cluster solved %d windows, want exactly %d (%d clones × %d)", solved.Load(), want, clones, perClone)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.P999 {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
}

func offlineWindows(t *testing.T, template []sim.Reading, cfg ingest.SessionizerConfig) int {
	t.Helper()
	n, err := OfflineWindowCount(template, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
