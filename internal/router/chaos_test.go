package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfprism/internal/ingest"
	"rfprism/internal/netchaos"
	"rfprism/internal/sim"
)

// TestClusterChaosConformance is the network-fault acceptance test:
// the seeded conformance stream, driven through a 3-shard cluster
// whose every router→shard connection crosses a fault-injecting
// netchaos proxy — one shard partitioned mid-run and healed, one
// jittery, one resetting connections mid-reply — still yields
// bit-identical per-(EPC, Seq) results against the clean single-daemon
// baseline: zero lost windows, zero duplicates, and the breaker
// machine walks suspect → open → healthy across the partition.
func TestClusterChaosConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves; skipped in -short")
	}
	const seed, nTags, rounds = 42, 6, 2
	lines, body, _ := conformanceStream(t, seed, nTags, rounds)
	sessCfg := ingest.SessionizerConfig{CoverageClose: 45}

	// Clean baseline: one daemon, no network between client and solve.
	baseCap := &collector{}
	ring := ingest.NewRingSink(4)
	single := ingest.NewDaemon(newConformanceSystem(t, seed), ingest.Config{
		Sessionizer: sessCfg,
		QueueSize:   256,
	}, baseCap, ring)
	srv := httptest.NewServer(ingest.NewServer(single, ring).Handler())
	postAll(t, srv.URL, body, lines)
	if err := single.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	want := indexResults(t, "baseline", baseCap.snapshot())

	// 3 shards behind the router; short sub-request budgets so fault
	// recovery dominates the clock, not timeouts.
	caps := make(map[string]*collector)
	var capsMu sync.Mutex
	cluster, err := NewCluster(ClusterConfig{
		Shards: 3,
		NewProcessor: func(string) ingest.Processor {
			return newConformanceSystem(t, seed)
		},
		NewSinks: func(id string) []ingest.Sink {
			capsMu.Lock()
			defer capsMu.Unlock()
			c := &collector{}
			caps[id] = c
			return []ingest.Sink{c}
		},
		Daemon: ingest.Config{Sessionizer: sessCfg, QueueSize: 256},
		Router: Config{
			ChunkLines:   32,
			ShardTimeout: 300 * time.Millisecond,
			// Per-connection fault plans must bite per-request.
			Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
			Resilience: ResilienceConfig{
				Retries:      1,
				RetryBackoff: 5 * time.Millisecond,
				TripAfter:    2,
				OpenFor:      150 * time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close(context.Background())
	rt := cluster.Router()

	// Interpose a seeded proxy on every shard: re-register each shard
	// at its proxy's address so all router traffic crosses the chaos
	// layer.
	proxies := make(map[string]*netchaos.Proxy)
	for i, id := range cluster.ShardIDs() {
		target := strings.TrimPrefix(cluster.ShardURL(id), "http://")
		p, err := netchaos.New(target, netchaos.Config{}, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		if err := rt.RemoveShard(id); err != nil {
			t.Fatal(err)
		}
		if err := rt.AddShard(id, p.URL()); err != nil {
			t.Fatal(err)
		}
		proxies[id] = p
	}
	// Static toxics for the whole run: s1 answers with jittered
	// latency, s2 resets a quarter of its connections mid-reply (the
	// reply is what carries the ingest verdict — exactly the lost-ack
	// scenario stream dedup exists for).
	proxies["s1"].SetConfig(netchaos.Config{Latency: 2 * time.Millisecond, Jitter: 8 * time.Millisecond})
	proxies["s2"].SetConfig(netchaos.Config{ResetProb: 0.25, ResetAfter: 16})

	rt.mu.RLock()
	s0ctl := rt.shards["s0"].ctl
	rt.mu.RUnlock()

	// Watch s0's breaker walk its states; once it opens, the readiness
	// aggregate must have left the rotation.
	var obsMu sync.Mutex
	observed := make(map[int]bool)
	readyzDuringPartition := 0
	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(time.Millisecond):
			}
			st := s0ctl.currentState()
			obsMu.Lock()
			if st == stateOpen && !observed[stateOpen] && readyzDuringPartition == 0 {
				rw := httptest.NewRecorder()
				rt.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/readyz", nil))
				readyzDuringPartition = rw.Code
			}
			observed[st] = true
			obsMu.Unlock()
		}
	}()

	// Replay the stream through RunLoad, partitioning s0 a quarter of
	// the way in and healing it 700 ms later — while the driver is
	// mid-stream, so recovery happens under load.
	var readings []sim.Reading
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var rd sim.Reading
		if err := dec.Decode(&rd); err != nil {
			t.Fatal(err)
		}
		readings = append(readings, rd)
	}
	if len(readings) != lines {
		t.Fatalf("decoded %d readings, stream has %d", len(readings), lines)
	}
	partitionAt := lines / 4
	idx := 0
	next := func() (sim.Reading, bool) {
		if idx == partitionAt {
			proxies["s0"].SetConfig(netchaos.Config{Blackhole: true})
			go func() {
				time.Sleep(700 * time.Millisecond)
				proxies["s0"].SetConfig(netchaos.Config{})
			}()
		}
		if idx >= len(readings) {
			return sim.Reading{}, false
		}
		rd := readings[idx]
		idx++
		return rd, true
	}
	rep, err := RunLoad(context.Background(), rt.Handler(), LoadConfig{ChunkLines: 32}, next)
	if err != nil {
		t.Fatalf("RunLoad under chaos: %v (report %+v)", err, rep)
	}
	close(stopWatch)
	watch.Wait()

	if rep.Lines != lines {
		t.Fatalf("delivered %d of %d lines", rep.Lines, lines)
	}
	if rep.Faults == 0 {
		t.Fatal("the partition never bit: zero transient-fault rounds")
	}
	if rep.P99 > 10*time.Second {
		t.Fatalf("p99 unbounded under chaos: %v", rep.P99)
	}
	obsMu.Lock()
	if !observed[stateOpen] {
		t.Fatalf("breaker never opened during the partition (observed %v)", observed)
	}
	if readyzDuringPartition != http.StatusServiceUnavailable {
		t.Fatalf("readyz during partition = %d, want 503", readyzDuringPartition)
	}
	obsMu.Unlock()
	if holed := proxies["s0"].Stats().Blackholed; holed == 0 {
		t.Fatal("partition proxy parked no connections")
	}
	for id, p := range proxies {
		if p.Stats().Conns == 0 {
			t.Fatalf("proxy %s saw no connections — traffic bypassed the chaos layer", id)
		}
	}
	if resets := proxies["s2"].Stats().Resets; resets == 0 {
		t.Log("note: seeded run produced no mid-reply resets on s2")
	}

	// Full recovery: the healed shard rejoins the ready set once a
	// half-open probe succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rw := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rw.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered after heal: readyz %d, body %s", rw.Code, rw.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := s0ctl.currentState(); st != stateHealthy {
		t.Fatalf("healed breaker state %d, want healthy", st)
	}

	// Drain the shards and hold the chaos run to the clean baseline:
	// bit-identical windows, zero lost, zero invented. This is also the
	// end-to-end dedup proof — a duplicated offer would renumber Seq
	// and break the index.
	if err := cluster.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	var results []ingest.TagResult
	capsMu.Lock()
	for _, c := range caps {
		results = append(results, c.snapshot()...)
	}
	capsMu.Unlock()
	got := indexResults(t, "chaos", results)
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("chaos run lost window %s", k)
			continue
		}
		if g != w {
			t.Errorf("window %s drifted under chaos:\n baseline %s\n chaos    %s", k, w, g)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("chaos run invented window %s", k)
		}
	}
}
