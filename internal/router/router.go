package router

import (
	"bufio"
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfprism/internal/api"
	"rfprism/internal/ingest"
	"rfprism/internal/obs"
	"rfprism/internal/serve"
	"rfprism/internal/sim"
)

// maxReportLine bounds one NDJSON report line, mirroring the shard
// daemon's own limit.
const maxReportLine = 1 << 20

// Config tunes the router. The zero value gets serving defaults.
type Config struct {
	// Vnodes is the per-shard virtual-node count (DefaultVnodes).
	Vnodes int
	// ChunkLines is the fan-out granularity: the router reads up to
	// this many report lines, flushes them to their shards in
	// parallel, and only then reads more — bounding both memory and
	// the at-least-once overshoot window on a propagated refusal.
	// Default 512.
	ChunkLines int
	// ShardTimeout bounds every sub-request to one shard (ingest
	// sub-batches, scatter-gather reads, readiness probes). A shard
	// that cannot answer within it is treated as down for that
	// request. Default 10 s.
	ShardTimeout time.Duration
	// Client is the HTTP client for shard sub-requests (default: a
	// dedicated pooled client; timeouts come from ShardTimeout).
	Client *http.Client
	// Resilience tunes the self-healing shard transport: per-shard
	// circuit breakers, retry budget, hedged reads (resilience.go).
	Resilience ResilienceConfig
	// Limiter, when set, applies per-client stream quotas to the
	// router's SSE endpoints (the token-bucket half wraps the whole
	// handler via serve.Limiter.Middleware in cmd/rfprism-router).
	Limiter *serve.Limiter
	// Logger receives routing events. Default: discard.
	Logger *slog.Logger
	// Metrics, when set, is shared instrument set to record into.
	Metrics *Metrics
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *Config) defaults() {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.ChunkLines <= 0 {
		c.ChunkLines = 512
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(c.Now())
	}
	c.Resilience.defaults()
}

// ShardInfo describes one ring member.
type ShardInfo struct {
	ID      string `json:"id"`
	BaseURL string `json:"url"`
}

// shard is one ring member plus its minted counters and health
// machine. The breaker is fresh per AddShard: a shard that leaves
// and rejoins starts healthy.
type shard struct {
	ShardInfo
	met *ShardMetrics
	ctl *breaker
}

// Router fans the rfprismd HTTP API out across an EPC-sharded fleet.
// It is stateless apart from ring membership: every report line
// belongs to exactly one shard (Ring.Owner of its EPC), reads
// scatter-gather, and all crash-safety state stays in the shards.
type Router struct {
	cfg Config
	met *Metrics
	log *slog.Logger
	mux *http.ServeMux

	// instance + streamSeq mint stream IDs for ingest requests that
	// arrive without one (resilience.go).
	instance  string
	streamSeq atomic.Int64

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shard
}

// New builds a router with no shards; AddShard populates the ring.
func New(cfg Config) *Router {
	cfg.defaults()
	inst := make([]byte, 6)
	_, _ = crand.Read(inst)
	rt := &Router{
		cfg:      cfg,
		met:      cfg.Metrics,
		log:      cfg.Logger,
		mux:      http.NewServeMux(),
		instance: hex.EncodeToString(inst),
		ring:     NewRing(cfg.Vnodes),
		shards:   make(map[string]*shard),
	}
	for _, prefix := range []string{"/v1", ""} {
		// Unversioned aliases share the handlers but advertise their
		// /v1 successor (Deprecation + Link headers), matching the
		// shard daemons' own surface.
		wrap := func(h http.HandlerFunc) http.HandlerFunc { return h }
		if prefix == "" {
			wrap = api.Deprecated
		}
		rt.mux.HandleFunc("POST "+prefix+"/ingest", wrap(rt.handleIngest))
		rt.mux.HandleFunc("GET "+prefix+"/tags", wrap(rt.handleTags))
		rt.mux.HandleFunc("GET "+prefix+"/tags/{epc}", wrap(rt.handleTag))
		rt.mux.HandleFunc("GET "+prefix+"/tags/{epc}/stream", wrap(rt.handleTagStream))
		rt.mux.HandleFunc("GET "+prefix+"/stream", wrap(rt.handleFirehose))
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /admin/shards", rt.handleAdminList)
	rt.mux.HandleFunc("POST /admin/shards", rt.handleAdminAdd)
	rt.mux.HandleFunc("DELETE /admin/shards/{id}", rt.handleAdminRemove)
	rt.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		rt.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint: %s", r.URL.Path), 0)
	})
	return rt
}

// Handler returns the routing handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics exposes the router's instrument set.
func (rt *Router) Metrics() *Metrics { return rt.met }

// AddShard inserts a shard into the ring. Keys adjacent to its vnodes
// (~1/N of the keyspace) remap to it immediately; callers that need a
// seamless session handover drain the remapped EPCs from their old
// owners first (Cluster.AddShard does).
func (rt *Router) AddShard(id, baseURL string) error {
	if id == "" || baseURL == "" {
		return fmt.Errorf("router: shard needs an id and a base URL")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.shards[id]; dup {
		return fmt.Errorf("router: shard %q already in the ring", id)
	}
	met := rt.met.Shard(id)
	rt.shards[id] = &shard{
		ShardInfo: ShardInfo{ID: id, BaseURL: strings.TrimRight(baseURL, "/")},
		met:       met,
		ctl:       newBreaker(rt.cfg.Resilience, rt.cfg.Now, met, id),
	}
	rt.ring.Add(id)
	rt.log.Info("shard added", "shard", id, "url", baseURL, "shards", len(rt.shards))
	return nil
}

// RemoveShard takes a shard out of the ring. Its keys remap to the
// surviving shards; the shard's own journal/daemon lifecycle is the
// caller's business (Cluster.RemoveShard drains and hands off).
func (rt *Router) RemoveShard(id string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.shards[id]; !ok {
		return fmt.Errorf("router: unknown shard %q", id)
	}
	delete(rt.shards, id)
	rt.ring.Remove(id)
	rt.met.Shard(id).Up.Set(0)
	rt.log.Info("shard removed", "shard", id, "shards", len(rt.shards))
	return nil
}

// Shards lists the ring members, sorted by ID.
func (rt *Router) Shards() []ShardInfo {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]ShardInfo, 0, len(rt.shards))
	for _, s := range rt.shards {
		out = append(out, s.ShardInfo)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Owner returns the shard owning an EPC.
func (rt *Router) Owner(epc string) (ShardInfo, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	id, ok := rt.ring.Owner(epc)
	if !ok {
		return ShardInfo{}, false
	}
	return rt.shards[id].ShardInfo, true
}

// snapshot returns a consistent (ring owner function, shard list)
// view for one request's fan-out.
func (rt *Router) snapshot() (owner func(string) (*shard, bool), all []*shard) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	shards := make(map[string]*shard, len(rt.shards))
	all = make([]*shard, 0, len(rt.shards))
	for id, s := range rt.shards {
		shards[id] = s
		all = append(all, s)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].ID < all[b].ID })
	owner = func(epc string) (*shard, bool) {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		id, ok := rt.ring.Owner(epc)
		if !ok {
			return nil, false
		}
		s, ok := rt.shards[id]
		return s, ok
	}
	return owner, all
}

// --- error envelope -------------------------------------------------

// apiError is the uniform envelope shared with the shard daemons (the
// canonical wire struct; see internal/api). The router stamps the
// failing shard into the Shard field when one shard's failure decided
// the answer.
type apiError = api.Error

// Router-specific error codes (shard codes pass through verbatim).
const (
	CodeNoShards         = "no_shards"          // empty ring
	CodeShardUnavailable = "shard_unavailable"  // transport error or shard 5xx
	CodeAllShardsDown    = "all_shards_down"    // scatter-gather found nobody
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	api.WriteError(w, status, code, msg, retryAfter)
}

// --- ingest fan-out -------------------------------------------------

// ingestReply is the success body, the same wire struct the shard
// daemons answer with, so single-daemon clients work against the
// router unchanged.
type ingestReply = api.IngestReply

// pendingLine is one report line awaiting its shard flush.
type pendingLine struct {
	raw    []byte // the verbatim NDJSON line (forwarded bit-exactly)
	global int    // 1-based position in the request stream
	pos    uint64 // position in the logical dedup stream (resilience.go)
}

// shardBatch accumulates one shard's lines within a chunk.
type shardBatch struct {
	sh    *shard
	lines []pendingLine
}

// subResult is one shard's answer to its sub-batch.
type subResult struct {
	sh       *shard
	sent     int
	accepted int           // prefix of the sub-batch the shard took
	status   int           // HTTP status (0 on transport error)
	code     string        // envelope code ("" when 2xx)
	msg      string        // error detail
	retry    time.Duration // Retry-After on backpressure
	err      error         // transport-level failure
}

// handleIngest fans an NDJSON report stream out per EPC. Lines are
// forwarded verbatim (bit-exact: the conformance suite depends on the
// shards seeing exactly the bytes a single daemon would), grouped into
// per-shard sub-batches and flushed chunk by chunk. Per-EPC order is
// preserved: an EPC's lines always target one shard, sub-batches keep
// request order, and chunks are sequential.
//
// Failure semantics: the reply's "accepted" is the longest fully-
// accepted prefix of the stream, and "line" = accepted+1 is where a
// client resumes. When several shards were mid-chunk, lines past the
// prefix may already sit in a healthy shard — a resume re-delivers
// them (counted in router_lines_total{outcome="overshoot"}; DESIGN.md
// §13). Backpressure propagates the WORST refusal: 429 with the
// maximum Retry-After any shard advertised.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	t0 := rt.cfg.Now()
	owner, _ := rt.snapshot()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)

	committed := 0 // lines in fully-accepted flushed chunks
	global := 0    // current line number
	batches := make(map[string]*shardBatch)
	chunkLines := make([]pendingLine, 0, rt.cfg.ChunkLines)

	fail := func(status int, code, msg, shardID string, retry time.Duration) {
		retry = clampRetryAfter(retry)
		rt.met.ObserveIngest(rt.cfg.Now().Sub(t0))
		switch code {
		case ingest.CodeBackpressure:
			rt.met.IngestBackpress.Inc()
			secs := int((retry + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		case ingest.CodeBadReport, ingest.CodeReportTooLarge:
			rt.met.IngestBadReport.Inc()
		default:
			rt.met.IngestShardErr.Inc()
		}
		rt.log.Debug("ingest refused", "code", code, "accepted", committed, "shard", shardID, "err", msg)
		writeJSON(w, status, apiError{
			Schema: api.Version,
			Error:  msg, Code: code, RetryAfterMS: retry.Milliseconds(),
			Accepted: committed, Line: committed + 1, Shard: shardID,
		})
	}

	// Exactly-once identity: the client's stream headers pass through
	// so the shards' dedup marks make both router-side sub-batch
	// retries and client resume overshoot idempotent. A request that
	// arrives without a stream gets a minted per-request one, scoping
	// dedup to the router's own retries.
	streamID := strings.TrimSpace(r.Header.Get(ingest.HeaderStream))
	var clientPos *ingest.StreamPos
	if streamID == "" {
		streamID = rt.mintStream()
	} else {
		if len(streamID) > ingest.MaxStreamID {
			fail(http.StatusBadRequest, ingest.CodeBadParam,
				fmt.Sprintf("stream ID exceeds %d bytes", ingest.MaxStreamID), "", 0)
			return
		}
		if v := r.Header.Get(ingest.HeaderStreamPos); v != "" {
			sp, err := ingest.ParseStreamPos(v)
			if err != nil {
				fail(http.StatusBadRequest, ingest.CodeBadParam, err.Error(), "", 0)
				return
			}
			clientPos = sp
		}
	}

	flush := func(ctx context.Context) (ok bool, status int, code, msg, shardID string, retry time.Duration) {
		if len(chunkLines) == 0 {
			return true, 0, "", "", "", 0
		}
		ordered := make([]*shardBatch, 0, len(batches))
		for _, b := range batches {
			ordered = append(ordered, b)
		}
		results := make([]subResult, len(ordered))
		var wg sync.WaitGroup
		for i, b := range ordered {
			wg.Add(1)
			go func(i int, b *shardBatch) {
				defer wg.Done()
				results[i] = rt.sendBatch(ctx, b, streamID)
			}(i, b)
		}
		wg.Wait()

		accepted := make(map[int]bool, len(chunkLines))
		allOK := true
		worst := subResult{}
		// Mark each shard's accepted prefix of its own sub-batch.
		for i, res := range results {
			b := ordered[i]
			for k := 0; k < res.accepted && k < len(b.lines); k++ {
				accepted[b.lines[k].global] = true
			}
			if res.err != nil || res.status < 200 || res.status >= 300 {
				allOK = false
				if worse(res, worst) {
					worst = res
				}
			} else if res.code == ingest.CodeBackpressure {
				// A 2xx never carries a refusal code; defensive only.
				allOK = false
			}
		}
		if allOK {
			committed += len(chunkLines)
			chunkLines = chunkLines[:0]
			for id := range batches {
				delete(batches, id)
			}
			return true, 0, "", "", "", 0
		}
		// Longest fully-accepted global prefix of this chunk; anything
		// accepted beyond it is overshoot a resume will re-deliver.
		prefix := 0
		for _, pl := range chunkLines {
			if !accepted[pl.global] {
				break
			}
			prefix++
		}
		overshoot := len(accepted) - prefix
		if overshoot > 0 {
			rt.met.LinesOvershoot.Add(int64(overshoot))
		}
		committed += prefix
		// Backpressure: propagate the worst Retry-After across every
		// refusing shard, not just the first.
		if worst.code == ingest.CodeBackpressure {
			for _, res := range results {
				if res.code == ingest.CodeBackpressure && res.retry > worst.retry {
					worst.retry = res.retry
				}
			}
			return false, http.StatusTooManyRequests, worst.code, worst.msg, worst.sh.ID, worst.retry
		}
		status = worst.status
		code = worst.code
		msg = worst.msg
		if worst.err != nil {
			status = http.StatusBadGateway
			code = CodeShardUnavailable
			msg = worst.err.Error()
		}
		if code == "" {
			code = CodeShardUnavailable
		}
		return false, status, code, msg, worst.sh.ID, 0
	}

	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		global++
		var rd sim.Reading
		if err := json.Unmarshal(raw, &rd); err != nil {
			if ok, status, code, msg, shardID, retry := flush(r.Context()); !ok {
				fail(status, code, msg, shardID, retry)
				return
			}
			rt.met.LinesRejected.Inc()
			fail(http.StatusBadRequest, ingest.CodeBadReport, fmt.Sprintf("line %d: %v", global, err), "", 0)
			return
		}
		if err := ingest.ValidateReading(rd); err != nil {
			if ok, status, code, msg, shardID, retry := flush(r.Context()); !ok {
				fail(status, code, msg, shardID, retry)
				return
			}
			rt.met.LinesRejected.Inc()
			fail(http.StatusBadRequest, ingest.CodeBadReport, fmt.Sprintf("line %d: %v", global, err), "", 0)
			return
		}
		sh, ok := owner(rd.EPC)
		if !ok {
			rt.met.LinesRejected.Inc()
			fail(http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", "", 0)
			return
		}
		b := batches[sh.ID]
		if b == nil {
			b = &shardBatch{sh: sh}
			batches[sh.ID] = b
		}
		pos := uint64(global)
		if clientPos != nil {
			p, err := clientPos.At(global - 1)
			if err != nil {
				if ok, status, code, msg, shardID, retry := flush(r.Context()); !ok {
					fail(status, code, msg, shardID, retry)
					return
				}
				fail(http.StatusBadRequest, ingest.CodeBadParam, err.Error(), "", 0)
				return
			}
			pos = p
		}
		// The raw bytes are only valid until the next Scan: copy.
		pl := pendingLine{raw: append([]byte(nil), raw...), global: global, pos: pos}
		b.lines = append(b.lines, pl)
		chunkLines = append(chunkLines, pl)
		if len(chunkLines) >= rt.cfg.ChunkLines {
			if ok, status, code, msg, shardID, retry := flush(r.Context()); !ok {
				fail(status, code, msg, shardID, retry)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			fail(http.StatusRequestEntityTooLarge, ingest.CodeReportTooLarge,
				fmt.Sprintf("line %d exceeds the %d-byte report line limit", global+1, maxReportLine), "", 0)
			return
		}
		fail(http.StatusBadRequest, ingest.CodeBadReport, err.Error(), "", 0)
		return
	}
	if ok, status, code, msg, shardID, retry := flush(r.Context()); !ok {
		fail(status, code, msg, shardID, retry)
		return
	}
	rt.met.IngestOK.Inc()
	rt.met.LinesRouted.Add(int64(committed))
	rt.met.ObserveIngest(rt.cfg.Now().Sub(t0))
	writeJSON(w, http.StatusAccepted, ingestReply{Schema: api.Version, Accepted: committed})
}

// worse ranks sub-batch failures for the propagated reply: a poisoned
// report beats backpressure beats transport trouble, and among equals
// the earliest-failing shard wins (its refusal pins the resume line).
func worse(a, b subResult) bool {
	if b.sh == nil {
		return true
	}
	rank := func(r subResult) int {
		switch {
		case r.code == ingest.CodeBadReport:
			return 3
		case r.code == ingest.CodeBackpressure:
			return 2
		default:
			return 1
		}
	}
	return rank(a) > rank(b)
}

// sendBatch posts one shard's sub-batch, retrying transport-level
// failures with jittered backoff. Retries are safe because the
// sub-request carries the stream's exactly-once identity: a reply
// lost after the shard offered the lines just deduplicates on the
// re-send. HTTP-level refusals (backpressure, bad report, 5xx) are
// never retried here — they propagate to the client, whose resume
// path owns that recovery.
func (rt *Router) sendBatch(ctx context.Context, b *shardBatch, streamID string) subResult {
	for attempt := 0; ; attempt++ {
		res := rt.sendBatchOnce(ctx, b, streamID)
		if res.err == nil || errors.Is(res.err, errBreakerOpen) ||
			attempt >= rt.cfg.Resilience.Retries || ctx.Err() != nil {
			return res
		}
		rt.met.Retries.Inc()
		if !sleepCtx(ctx, b.sh.ctl.backoff(attempt+1)) {
			return res
		}
	}
}

// sendBatchOnce is one attempt: breaker-gated, stream-stamped, and
// its outcome fed back into the shard's health machine.
func (rt *Router) sendBatchOnce(ctx context.Context, b *shardBatch, streamID string) subResult {
	res := subResult{sh: b.sh, sent: len(b.lines)}
	if err := b.sh.ctl.acquire(); err != nil {
		res.err = fmt.Errorf("shard %s: %w", b.sh.ID, err)
		rt.met.BreakerFastFail.Inc()
		return res
	}
	b.sh.met.Requests.Inc()
	start := rt.cfg.Now()
	var body bytes.Buffer
	for _, pl := range b.lines {
		body.Write(pl.raw)
		body.WriteByte('\n')
	}
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, b.sh.BaseURL+"/v1/ingest", &body)
	if err != nil {
		res.err = err
		b.sh.met.Errors.Inc()
		b.sh.ctl.record(outcomeFail, 0)
		return res
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(ingest.HeaderStream, streamID)
	req.Header.Set(ingest.HeaderStreamPos, encodePositions(b.lines))
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		res.err = err
		b.sh.met.Errors.Inc()
		b.sh.met.Up.Set(0)
		rt.recordOutcome(b.sh, ctx, err, start)
		return res
	}
	defer resp.Body.Close()
	b.sh.met.Up.Set(1)
	res.status = resp.StatusCode
	var env struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
		Accepted     int    `json:"accepted"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env); err != nil {
		res.err = fmt.Errorf("shard %s: unparseable reply (%d): %w", b.sh.ID, resp.StatusCode, err)
		b.sh.met.Errors.Inc()
		rt.recordOutcome(b.sh, ctx, err, start)
		return res
	}
	// Any parseable HTTP reply — including 429 and 5xx — means the
	// wire is healthy: the breaker only tracks transport faults.
	b.sh.ctl.record(outcomeOK, rt.cfg.Now().Sub(start))
	res.accepted = env.Accepted
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		res.code = env.Code
		res.msg = fmt.Sprintf("shard %s: %s", b.sh.ID, env.Error)
		res.retry = clampRetryAfter(time.Duration(env.RetryAfterMS) * time.Millisecond)
		b.sh.met.Errors.Inc()
	}
	return res
}

// recordOutcome classifies a transport error for the breaker. A
// failure caused by the CLIENT going away (parent context done) says
// nothing about the shard: the half-open probe slot is released
// without an outcome.
func (rt *Router) recordOutcome(s *shard, parent context.Context, err error, start time.Time) {
	if parent.Err() != nil {
		s.ctl.release()
		return
	}
	o := outcomeFail
	if errors.Is(err, context.DeadlineExceeded) {
		o = outcomeTimeout
	}
	s.ctl.record(o, rt.cfg.Now().Sub(start))
}

// --- scatter-gather reads -------------------------------------------

// shardFetch is one shard's answer to a scatter-gather GET.
type shardFetch struct {
	sh     *shard
	status int
	header http.Header
	body   []byte
	err    error
}

// scatter fans a GET out to every shard in parallel.
func (rt *Router) scatter(ctx context.Context, all []*shard, path string) []shardFetch {
	out := make([]shardFetch, len(all))
	var wg sync.WaitGroup
	for i, s := range all {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			out[i] = rt.fetch(ctx, s, path)
		}(i, s)
	}
	wg.Wait()
	return out
}

// fetch GETs one shard path with the per-shard timeout, hedging slow
// answers and retrying transport failures (GETs are idempotent).
func (rt *Router) fetch(ctx context.Context, s *shard, path string) shardFetch {
	f := rt.fetchHedged(ctx, s, path)
	for attempt := 1; f.err != nil && !errors.Is(f.err, errBreakerOpen) &&
		attempt <= rt.cfg.Resilience.Retries && ctx.Err() == nil; attempt++ {
		rt.met.Retries.Inc()
		if !sleepCtx(ctx, s.ctl.backoff(attempt)) {
			break
		}
		f = rt.fetchHedged(ctx, s, path)
	}
	return f
}

// fetchHedged races a second identical GET against a slow primary:
// the hedge fires after the shard's adaptive p99-based delay and the
// first answer wins (the loser's context is canceled). Hedging a GET
// is safe — shards serve reads from immutable snapshots.
func (rt *Router) fetchHedged(ctx context.Context, s *shard, path string) shardFetch {
	if rt.cfg.Resilience.DisableHedging {
		return rt.fetchTimeout(ctx, s, path, rt.cfg.ShardTimeout)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type tagged struct {
		f     shardFetch
		hedge bool
	}
	results := make(chan tagged, 2) // buffered: the loser must not leak
	launch := func(hedge bool) {
		go func() { results <- tagged{rt.fetchTimeout(hctx, s, path, rt.cfg.ShardTimeout), hedge} }()
	}
	launch(false)
	timer := time.NewTimer(s.ctl.hedgeDelay(rt.cfg.ShardTimeout))
	defer timer.Stop()
	select {
	case r := <-results:
		return r.f
	case <-timer.C:
		rt.met.HedgesFired.Inc()
		launch(true)
	}
	first := <-results
	if first.f.err == nil {
		if first.hedge {
			rt.met.HedgesWon.Inc()
		}
		return first.f
	}
	// The first answer failed (often the hedge fast-failing on a
	// half-open breaker); give the one still in flight its chance.
	second := <-results
	if second.f.err == nil {
		if second.hedge {
			rt.met.HedgesWon.Inc()
		}
		return second.f
	}
	return first.f
}

// fetchTimeout GETs one shard path with an explicit timeout — a
// long-poll relay must outlive the shard's parked wait, so it cannot
// use the plain sub-request budget. Every read flows through the
// shard's breaker: open fails fast, and the outcome feeds back.
func (rt *Router) fetchTimeout(ctx context.Context, s *shard, path string, timeout time.Duration) shardFetch {
	f := shardFetch{sh: s}
	if err := s.ctl.acquire(); err != nil {
		f.err = fmt.Errorf("shard %s: %w", s.ID, err)
		rt.met.BreakerFastFail.Inc()
		return f
	}
	s.met.Requests.Inc()
	start := rt.cfg.Now()
	tctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, s.BaseURL+path, nil)
	if err != nil {
		f.err = err
		s.met.Errors.Inc()
		s.ctl.record(outcomeFail, 0)
		return f
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		f.err = err
		s.met.Errors.Inc()
		s.met.Up.Set(0)
		rt.recordOutcome(s, ctx, err, start)
		return f
	}
	defer resp.Body.Close()
	s.met.Up.Set(1)
	f.status = resp.StatusCode
	f.header = resp.Header
	f.body, f.err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if f.err != nil {
		s.met.Errors.Inc()
		rt.recordOutcome(s, ctx, f.err, start)
		return f
	}
	s.ctl.record(outcomeOK, rt.cfg.Now().Sub(start))
	return f
}

// handleTags scatter-gathers GET /v1/tags: the union of every live
// shard's EPC list. Dead shards degrade the answer instead of failing
// it — the body carries "partial" plus the missing shard IDs, and the
// X-RFPrism-Partial header flags it for clients that do not parse
// bodies.
func (rt *Router) handleTags(w http.ResponseWriter, r *http.Request) {
	_, all := rt.snapshot()
	if len(all) == 0 {
		rt.met.ScatterErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", 0)
		return
	}
	set := make(map[string]bool)
	var missing []string
	for _, f := range rt.scatter(r.Context(), all, "/v1/tags") {
		if f.err != nil || f.status != http.StatusOK {
			missing = append(missing, f.sh.ID)
			continue
		}
		var body struct {
			Tags []string `json:"tags"`
		}
		if err := json.Unmarshal(f.body, &body); err != nil {
			missing = append(missing, f.sh.ID)
			continue
		}
		for _, epc := range body.Tags {
			set[epc] = true
		}
	}
	if len(missing) == len(all) {
		rt.met.ScatterErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeAllShardsDown, "every shard failed the scatter", 0)
		return
	}
	tags := make([]string, 0, len(set))
	for epc := range set {
		tags = append(tags, epc)
	}
	sort.Strings(tags)
	reply := api.TagList{Schema: api.Version, Tags: tags}
	// Pagination mirrors the shard daemon's (?limit=&cursor= over the
	// merged, sorted union) so clients page the cluster identically.
	q := r.URL.Query()
	if cursor := api.Cursor(q); q.Get("limit") != "" || cursor != "" {
		limit, perr := api.ParseLimit(q)
		if perr != nil {
			rt.writeError(w, http.StatusBadRequest, ingest.CodeBadParam, perr.Error(), 0)
			return
		}
		total := len(tags)
		reply.Tags, reply.Next = ingest.PageEPCs(tags, limit, cursor)
		reply.Count = &total
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		reply.Partial = true
		reply.MissingShards = missing
		w.Header().Set("X-RFPrism-Partial", "1")
		rt.met.ScatterPartial.Inc()
	} else {
		rt.met.ScatterOK.Inc()
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleTag routes a single-EPC read to its owning shard and relays
// the shard's reply verbatim (status and body): the owner is the only
// shard that can hold the tag, so there is nothing to gather.
func (rt *Router) handleTag(w http.ResponseWriter, r *http.Request) {
	epc := r.PathValue("epc")
	owner, _ := rt.snapshot()
	sh, ok := owner(epc)
	if !ok {
		rt.met.ScatterErr.Inc()
		rt.writeError(w, http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", 0)
		return
	}
	path := "/v1/tags/" + epc
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	// A long-poll parks on the shard for its full ?wait= hold: give the
	// relay that budget on top of the normal sub-request timeout so the
	// router does not cut the poll short.
	timeout := rt.cfg.ShardTimeout
	if waitRaw := r.URL.Query().Get("wait"); waitRaw != "" {
		// The shared parser clamps the hold the same way the shard
		// will, so the relay budget and the shard's park agree.
		if wait, perr := api.ParseWait(waitRaw); perr == nil {
			timeout += wait
		}
	}
	f := rt.fetchTimeout(r.Context(), sh, path, timeout)
	if f.err != nil {
		rt.met.ScatterErr.Inc()
		writeJSON(w, http.StatusBadGateway, apiError{
			Schema: api.Version,
			Error:  fmt.Sprintf("shard %s: %v", sh.ID, f.err),
			Code:   CodeShardUnavailable, Shard: sh.ID,
		})
		return
	}
	rt.met.ScatterOK.Inc()
	// Forward the shard's serving-tier headers: the epoch lets clients
	// start subscriptions race-free, Retry-After keeps the backpressure
	// contract intact through the relay.
	for _, h := range []string{"X-RFPrism-Epoch", "Retry-After"} {
		if v := f.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(f.status)
	_, _ = w.Write(f.body)
}

// --- health, readiness, metrics -------------------------------------

// handleHealthz is the router's own liveness: 200 while the process
// serves, with ring membership. It makes no shard calls — a dead
// fleet does not mean the router should be restarted.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	shards := rt.Shards()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"shards": len(shards),
	})
}

// shardHealth is one shard's probed condition.
type shardHealth struct {
	ID      string `json:"id"`
	State   string `json:"state"`   // ready | not-ready | down
	Breaker string `json:"breaker"` // healthy | suspect | open | half-open
}

// probeShards checks every shard's /readyz.
func (rt *Router) probeShards(ctx context.Context, all []*shard) (healths []shardHealth, ready int) {
	fetches := rt.scatter(ctx, all, "/readyz")
	healths = make([]shardHealth, len(fetches))
	for i, f := range fetches {
		h := shardHealth{ID: f.sh.ID, Breaker: f.sh.ctl.stateName()}
		switch {
		case f.err != nil:
			h.State = "down"
		case f.status == http.StatusOK:
			h.State = "ready"
			ready++
		default:
			h.State = "not-ready"
		}
		healths[i] = h
	}
	return healths, ready
}

// handleReadyz aggregates readiness: 200 only when every shard
// answers ready. Anything less is 503 with the per-shard map — a
// degraded cluster must leave the load-balancer rotation even though
// reads still degrade gracefully shard by shard.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	_, all := rt.snapshot()
	if len(all) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, CodeNoShards, "no shards in the ring", 0)
		return
	}
	healths, ready := rt.probeShards(r.Context(), all)
	body := map[string]any{
		"ready":  ready == len(all),
		"shards": healths,
	}
	if ready != len(all) {
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the cluster aggregate: every live shard's
// exposition summed series-by-series (obs.MergeText), with the
// router's own router_* families appended. Shards that fail the
// scrape are skipped — their absence shows in router_shard_up.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, all := rt.snapshot()
	var texts [][]byte
	for _, f := range rt.scatter(r.Context(), all, "/metrics") {
		if f.err == nil && f.status == http.StatusOK {
			texts = append(texts, f.body)
		}
	}
	var own bytes.Buffer
	rt.met.WriteText(&own, rt.cfg.Now(), len(all))
	texts = append(texts, own.Bytes())
	var merged bytes.Buffer
	if err := obs.MergeText(&merged, texts...); err != nil {
		rt.writeError(w, http.StatusInternalServerError, "metrics_merge", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(merged.Bytes())
}

// --- admin ----------------------------------------------------------

func (rt *Router) handleAdminList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.Shards()})
}

// handleAdminAdd registers a shard: POST /admin/shards?id=s3&url=http://...
func (rt *Router) handleAdminAdd(w http.ResponseWriter, r *http.Request) {
	id, url := r.URL.Query().Get("id"), r.URL.Query().Get("url")
	if err := rt.AddShard(id, url); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_shard", err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.Shards()})
}

// handleAdminRemove takes a shard out of the ring (ring membership
// only — drain/handoff is the operator's or the Cluster's job).
func (rt *Router) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	if err := rt.RemoveShard(r.PathValue("id")); err != nil {
		rt.writeError(w, http.StatusNotFound, "bad_shard", err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.Shards()})
}
