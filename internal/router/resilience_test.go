package router

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestBreaker(cfg ResilienceConfig) (*breaker, *fakeClock) {
	cfg.defaults()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	met := NewMetrics(clk.t).Shard("s0")
	return newBreaker(cfg, clk.now, met, "s0"), clk
}

// TestBreakerStateMachine walks the full healthy → suspect → open →
// half-open cycle, both the healing and re-tripping probe outcomes.
func TestBreakerStateMachine(t *testing.T) {
	b, clk := newTestBreaker(ResilienceConfig{TripAfter: 3, OpenFor: time.Second})
	if s := b.currentState(); s != stateHealthy {
		t.Fatalf("initial state %d, want healthy", s)
	}
	b.record(outcomeFail, 0)
	if s := b.currentState(); s != stateSuspect {
		t.Fatalf("after 1 failure: state %d, want suspect", s)
	}
	if err := b.acquire(); err != nil {
		t.Fatalf("suspect must still admit requests: %v", err)
	}
	b.record(outcomeFail, 0)
	b.record(outcomeFail, 0)
	if s := b.currentState(); s != stateOpen {
		t.Fatalf("after TripAfter failures: state %d, want open", s)
	}
	if err := b.acquire(); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("open breaker must fail fast, got %v", err)
	}
	// Window elapses: the first acquire becomes the half-open probe,
	// the second still fails fast.
	clk.t = clk.t.Add(2 * time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("probe acquire: %v", err)
	}
	if s := b.currentState(); s != stateHalfOpen {
		t.Fatalf("probing state %d, want half-open", s)
	}
	if err := b.acquire(); !errBreakerIs(err) {
		t.Fatalf("second acquire during probe must fail fast, got %v", err)
	}
	// Probe fails: straight back to open with a fresh window.
	b.record(outcomeFail, 0)
	if s := b.currentState(); s != stateOpen {
		t.Fatalf("failed probe: state %d, want open", s)
	}
	// Next window's probe succeeds: fully healed.
	clk.t = clk.t.Add(2 * time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("second probe acquire: %v", err)
	}
	b.record(outcomeOK, time.Millisecond)
	if s := b.currentState(); s != stateHealthy {
		t.Fatalf("healed state %d, want healthy", s)
	}
	if err := b.acquire(); err != nil {
		t.Fatalf("healthy acquire: %v", err)
	}
	if got := b.met.State.Load(); got != float64(stateHealthy) {
		t.Fatalf("router_shard_state gauge = %v, want %d", got, stateHealthy)
	}
}

func errBreakerIs(err error) bool { return errors.Is(err, errBreakerOpen) }

// TestBreakerTimeoutRatioTrip: interleaved successes keep the
// consecutive counter low, but a timeout-heavy window still opens the
// breaker.
func TestBreakerTimeoutRatioTrip(t *testing.T) {
	b, _ := newTestBreaker(ResilienceConfig{TripAfter: 100})
	for i := 0; i < 4; i++ {
		b.record(outcomeOK, time.Millisecond)
		b.record(outcomeTimeout, 0)
	}
	if s := b.currentState(); s != stateOpen {
		t.Fatalf("50%% timeouts over %d samples: state %d, want open", 8, s)
	}
}

// TestBreakerRelease: an abandoned half-open probe (client went away)
// frees the probe slot instead of wedging the breaker.
func TestBreakerRelease(t *testing.T) {
	b, clk := newTestBreaker(ResilienceConfig{TripAfter: 1, OpenFor: time.Second})
	b.record(outcomeFail, 0)
	clk.t = clk.t.Add(2 * time.Second)
	if err := b.acquire(); err != nil {
		t.Fatal(err)
	}
	b.release()
	if err := b.acquire(); err != nil {
		t.Fatalf("probe slot must be free after release, got %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if d, ok := parseRetryAfter("7", now); !ok || d != 7*time.Second {
		t.Fatalf("delta-seconds: %v %v", d, ok)
	}
	date := now.Add(90 * time.Second).Format(http.TimeFormat)
	if d, ok := parseRetryAfter(date, now); !ok || d != 90*time.Second {
		t.Fatalf("HTTP-date: %v %v", d, ok)
	}
	past := now.Add(-time.Hour).Format(http.TimeFormat)
	if d, ok := parseRetryAfter(past, now); !ok || d != 0 {
		t.Fatalf("past HTTP-date should clamp to 0: %v %v", d, ok)
	}
	for _, bad := range []string{"", "-3", "soon", "12.5"} {
		if _, ok := parseRetryAfter(bad, now); ok {
			t.Fatalf("parseRetryAfter(%q) should fail", bad)
		}
	}
	if got := clampRetryAfter(time.Hour); got != maxRetryAfter {
		t.Fatalf("clamp(1h) = %v, want %v", got, maxRetryAfter)
	}
	if got := clampRetryAfter(-time.Second); got != 0 {
		t.Fatalf("clamp(-1s) = %v, want 0", got)
	}
}

func TestEncodePositions(t *testing.T) {
	lines := []pendingLine{{pos: 17}, {pos: 20}, {pos: 21}}
	if got := encodePositions(lines); got != "17,3,1" {
		t.Fatalf("encodePositions = %q, want 17,3,1", got)
	}
	if got := encodePositions(lines[:1]); got != "17" {
		t.Fatalf("single line = %q, want 17", got)
	}
}

// TestRouterIngestRetriesTransportError: a connection killed mid-reply
// is retried with the same stream identity, so the request still
// succeeds end to end.
func TestRouterIngestRetriesTransportError(t *testing.T) {
	var mu sync.Mutex
	var calls atomic.Int64
	var streams []string
	var positions []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		streams = append(streams, r.Header.Get("X-RFPrism-Stream"))
		positions = append(positions, r.Header.Get("X-RFPrism-Stream-Pos"))
		mu.Unlock()
		if calls.Add(1) == 1 {
			panic(http.ErrAbortHandler) // resets the connection mid-response
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"accepted":2}`))
	}))
	defer srv.Close()

	rt := New(Config{Resilience: ResilienceConfig{RetryBackoff: time.Millisecond}})
	if err := rt.AddShard("s0", srv.URL); err != nil {
		t.Fatal(err)
	}
	w := postNDJSON(t, rt.Handler(), mkLine(t, "A", 1)+"\n"+mkLine(t, "B", 2)+"\n")
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("shard saw %d attempts, want 2", n)
	}
	if rt.met.Retries.Load() != 1 {
		t.Fatalf("router_retries_total = %v, want 1", rt.met.Retries.Load())
	}
	// Both attempts must carry identical exactly-once identity — that
	// is what makes the blind re-send safe.
	mu.Lock()
	defer mu.Unlock()
	if streams[0] == "" || streams[0] != streams[1] || positions[0] != positions[1] {
		t.Fatalf("attempts carried different stream identity: %v %v", streams, positions)
	}
	if positions[0] != "1,1" {
		t.Fatalf("positions header %q, want 1,1", positions[0])
	}
}

// TestRouterIngestBreakerFastFail: once a shard's breaker opens, the
// next sub-request fails fast — no HTTP attempt, no dial timeout.
func TestRouterIngestBreakerFastFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	rt := New(Config{Resilience: ResilienceConfig{
		Retries: -1, TripAfter: 1, OpenFor: time.Minute,
	}})
	if err := rt.AddShard("s0", srv.URL); err != nil {
		t.Fatal(err)
	}
	srv.Close() // transport errors from here on
	line := mkLine(t, "A", 1) + "\n"
	if w := postNDJSON(t, rt.Handler(), line); w.Code != http.StatusBadGateway {
		t.Fatalf("first post: status %d, want 502", w.Code)
	}
	rt.mu.RLock()
	st := rt.shards["s0"].ctl.currentState()
	rt.mu.RUnlock()
	if st != stateOpen {
		t.Fatalf("breaker state %d, want open", st)
	}
	w := postNDJSON(t, rt.Handler(), line)
	env := decodeEnvelope(t, w)
	if w.Code != http.StatusBadGateway || env.Code != CodeShardUnavailable {
		t.Fatalf("fast-fail: status %d code %q", w.Code, env.Code)
	}
	if rt.met.BreakerFastFail.Load() < 1 {
		t.Fatal("router_breaker_fastfail_total did not move")
	}
	// The readiness aggregate names the breaker state per shard.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rw := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d, want 503", rw.Code)
	}
	if !strings.Contains(rw.Body.String(), `"breaker":"open"`) {
		t.Fatalf("readyz body misses breaker state: %s", rw.Body.String())
	}
}

// TestRouterScatterDegradesOnBadBodies: a shard answering garbage —
// an oversized error envelope on ingest, truncated JSON on the tags
// scatter — degrades that shard only, never the whole merge.
func TestRouterScatterDegradesOnBadBodies(t *testing.T) {
	// Shard 0 is healthy; shard 1 replies 500 with a 2 MB garbage body
	// on ingest (decoded through the 1 MB LimitReader cap) and a
	// truncated JSON body on /v1/tags.
	good := newStubShard(t)
	good.tags = []string{"E-good"}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(strings.Repeat("x", 2<<20)))
		default:
			_, _ = w.Write([]byte(`{"tags": ["E-bad"`)) // truncated
		}
	}))
	defer bad.Close()

	rt := New(Config{Resilience: ResilienceConfig{Retries: -1, DisableHedging: true}})
	if err := rt.AddShard("s0", good.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard("s1", bad.URL); err != nil {
		t.Fatal(err)
	}

	// Find an EPC owned by the bad shard so ingest crosses it.
	epc := ""
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("E%d", i)
		if sh, ok := rt.Owner(cand); ok && sh.ID == "s1" {
			epc = cand
			break
		}
	}
	if epc == "" {
		t.Fatal("no EPC mapped to the bad shard")
	}
	w := postNDJSON(t, rt.Handler(), mkLine(t, epc, 1)+"\n")
	env := decodeEnvelope(t, w)
	if w.Code != http.StatusBadGateway || env.Code != CodeShardUnavailable {
		t.Fatalf("garbage 500 envelope: status %d code %q, want 502 %q", w.Code, env.Code, CodeShardUnavailable)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/tags", nil)
	rw := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("tags status %d, want 200 partial", rw.Code)
	}
	if rw.Header().Get("X-RFPrism-Partial") != "1" {
		t.Fatal("partial header missing")
	}
	body := rw.Body.String()
	if !strings.Contains(body, "E-good") || !strings.Contains(body, `"missingShards":["s1"]`) {
		t.Fatalf("tags body %s", body)
	}
}

// TestRouterHedgedRead: a slow primary answer is beaten by the hedge
// once the shard's latency history makes the hedge delay short.
func TestRouterHedgedRead(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond) // slow primary
		}
		_ = r
		_, _ = w.Write([]byte(`{"tags":["E1"]}`))
	}))
	defer srv.Close()

	rt := New(Config{ShardTimeout: 2 * time.Second})
	if err := rt.AddShard("s0", srv.URL); err != nil {
		t.Fatal(err)
	}
	rt.mu.RLock()
	ctl := rt.shards["s0"].ctl
	rt.mu.RUnlock()
	// Prime the latency window so hedgeDelay drops to its floor.
	for i := 0; i < minRatioSample; i++ {
		ctl.record(outcomeOK, time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/tags", nil)
	rw := httptest.NewRecorder()
	t0 := time.Now()
	rt.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("status %d", rw.Code)
	}
	if elapsed := time.Since(t0); elapsed > 300*time.Millisecond {
		t.Fatalf("hedge did not win: answer took %v", elapsed)
	}
	if rt.met.HedgesFired.Load() < 1 || rt.met.HedgesWon.Load() < 1 {
		t.Fatalf("hedge counters fired=%v won=%v, want >=1 each",
			rt.met.HedgesFired.Load(), rt.met.HedgesWon.Load())
	}
}

// TestRouterIngestTooLargeLine pins the router's own typed 413.
func TestRouterIngestTooLargeLine(t *testing.T) {
	rt, _ := testRouter(t, Config{}, 1)
	huge := mkLine(t, "A", 1) + strings.Repeat(" ", maxReportLine)
	w := postNDJSON(t, rt.Handler(), huge+"\n")
	env := decodeEnvelope(t, w)
	if w.Code != http.StatusRequestEntityTooLarge || env.Code != "report_too_large" {
		t.Fatalf("status %d code %q, want 413 report_too_large", w.Code, env.Code)
	}
}
