package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rfprism/internal/ingest"
	"rfprism/internal/serve"
	"rfprism/internal/sim"
)

// ClusterConfig builds a local N-shard cluster: N in-process rfprismd
// daemons, each serving the full single-daemon HTTP API on its own
// loopback listener, fronted by one Router. It exists for the
// `rfprism-router -local` mode, the conformance suite and the loadgen
// harness — production runs separate rfprismd processes and registers
// them over /admin/shards.
type ClusterConfig struct {
	// Shards is the initial shard count (default 3). Shards are named
	// s0, s1, …
	Shards int
	// Dir, when set, gives every shard a crash-safe journal under
	// Dir/<shard-id>/journal. Empty means journal-less shards.
	Dir string
	// NewProcessor builds one shard's solving backend. Required.
	NewProcessor func(shardID string) ingest.Processor
	// NewSinks builds one shard's extra result sinks (the RingSink
	// behind GET /tags is always attached). Optional.
	NewSinks func(shardID string) []ingest.Sink
	// Daemon is the per-shard daemon config template; Journal and
	// Metrics are overridden per shard.
	Daemon ingest.Config
	// Router tunes the fronting router.
	Router Config
	// RingDepth is each shard's per-tag result history depth
	// (default 16).
	RingDepth int
}

func (c *ClusterConfig) defaults() error {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.NewProcessor == nil {
		return fmt.Errorf("router: ClusterConfig.NewProcessor is required")
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 16
	}
	return nil
}

// localShard is one in-process daemon + HTTP server.
type localShard struct {
	id     string
	dir    string // journal dir ("" without journals)
	daemon *ingest.Daemon
	store  *serve.Store
	ln     net.Listener
	srv    *http.Server
	done   chan struct{} // closed when Serve returns
}

// Cluster owns a local shard fleet and the Router in front of it, and
// implements the membership changes the bare Router leaves to the
// operator: adding a shard drains the remapped EPC sessions from their
// old owners into the new one, and removing a shard hands its open
// sessions (or, for a dead shard, its journal's unserved tail) to the
// survivors.
type Cluster struct {
	cfg ClusterConfig
	rt  *Router

	mu     sync.Mutex
	shards map[string]*localShard
	nextID int
}

// NewCluster starts the initial shards and registers them with a new
// Router.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, rt: New(cfg.Router), shards: make(map[string]*localShard)}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := c.AddShard(context.Background()); err != nil {
			_ = c.Close(context.Background())
			return nil, err
		}
	}
	return c, nil
}

// Router returns the fronting router.
func (c *Cluster) Router() *Router { return c.rt }

// Handler returns the router's HTTP handler.
func (c *Cluster) Handler() http.Handler { return c.rt.Handler() }

// ShardIDs lists the live shard IDs, sorted.
func (c *Cluster) ShardIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.shards))
	for id := range c.shards {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ShardDaemon returns one shard's daemon (tests and diagnostics).
func (c *Cluster) ShardDaemon(id string) *ingest.Daemon {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.shards[id]; s != nil {
		return s.daemon
	}
	return nil
}

// ShardURL returns one shard's base URL ("" for an unknown shard).
func (c *Cluster) ShardURL(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.shards[id]; s != nil {
		return "http://" + s.ln.Addr().String()
	}
	return ""
}

// startShard builds and serves one shard.
func (c *Cluster) startShard(id string) (*localShard, error) {
	s := &localShard{id: id, done: make(chan struct{})}
	dcfg := c.cfg.Daemon
	dcfg.Metrics = nil // each shard gets its own registry
	if c.cfg.Dir != "" {
		s.dir = filepath.Join(c.cfg.Dir, id, "journal")
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, err
		}
		j, err := ingest.OpenJournal(ingest.JournalConfig{Dir: s.dir})
		if err != nil {
			return nil, fmt.Errorf("router: shard %s journal: %w", id, err)
		}
		dcfg.Journal = j
	}
	// Each shard serves reads from its own epoch-swapped snapshot
	// store (fast swaps: local shards back latency-sensitive tests),
	// so SSE/long-poll work per shard and through the router's merge.
	s.store = serve.NewStore(serve.StoreConfig{
		History:      c.cfg.RingDepth,
		SwapInterval: 5 * time.Millisecond,
	})
	sinks := []ingest.Sink{s.store}
	if c.cfg.NewSinks != nil {
		sinks = append(sinks, c.cfg.NewSinks(id)...)
	}
	s.daemon = ingest.NewDaemon(c.cfg.NewProcessor(id), dcfg, sinks...)
	if dcfg.Journal != nil {
		if _, err := s.daemon.Recover(); err != nil {
			_ = s.daemon.Shutdown(context.Background())
			return nil, fmt.Errorf("router: shard %s recover: %w", id, err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = s.daemon.Shutdown(context.Background())
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler: serve.NewServer(s.store, nil, dcfg.Logger).
			Wrap(ingest.NewServer(s.daemon, s.store).Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// AddShard grows the ring by one shard and migrates the remapped EPC
// sessions into it: after the new shard joins, every open session in
// an old shard whose EPC now belongs to the newcomer is extracted and
// re-offered there, so no EPC's window straddles the membership
// change. (The ring joins first — a brief overlap where fresh reports
// for a remapped EPC reach the new shard before its old session tail
// does is harmless: the re-offered readings merge into the same open
// session, and window coverage does not depend on intra-window order.)
func (c *Cluster) AddShard(ctx context.Context) (string, error) {
	c.mu.Lock()
	id := fmt.Sprintf("s%d", c.nextID)
	c.nextID++
	c.mu.Unlock()

	s, err := c.startShard(id)
	if err != nil {
		return "", err
	}
	if err := c.rt.AddShard(id, "http://"+s.ln.Addr().String()); err != nil {
		_ = s.daemon.Shutdown(ctx)
		_ = s.srv.Close()
		return "", err
	}
	c.mu.Lock()
	old := make([]*localShard, 0, len(c.shards))
	for _, o := range c.shards {
		old = append(old, o)
	}
	c.shards[id] = s
	c.mu.Unlock()

	movedTo := func(epc string) bool {
		owner, ok := c.rt.Owner(epc)
		return ok && owner.ID == id
	}
	for _, o := range old {
		for _, hs := range o.daemon.HandoffSessions(movedTo) {
			if err := c.reoffer(ctx, hs.Readings); err != nil {
				return id, fmt.Errorf("router: handoff %s→%s: %w", o.id, id, err)
			}
		}
	}
	return id, nil
}

// RemoveShard retires a shard cleanly: it leaves the ring (stopping
// new traffic), its open sessions are extracted, the daemon drains and
// shuts down (solving its already-closed windows), and the extracted
// sessions are re-offered to their new owners. The shard's journal
// directory stays on disk but is never recovered — the handed-off
// state now lives in the survivors' journals.
func (c *Cluster) RemoveShard(ctx context.Context, id string) error {
	c.mu.Lock()
	s := c.shards[id]
	delete(c.shards, id)
	c.mu.Unlock()
	if s == nil {
		return fmt.Errorf("router: unknown shard %q", id)
	}
	if err := c.rt.RemoveShard(id); err != nil {
		return err
	}
	sessions := s.daemon.HandoffSessions(nil)
	errShut := s.daemon.Shutdown(ctx)
	_ = s.srv.Close()
	<-s.done
	var errs []error
	if errShut != nil {
		errs = append(errs, errShut)
	}
	for _, hs := range sessions {
		if err := c.reoffer(ctx, hs.Readings); err != nil {
			errs = append(errs, fmt.Errorf("router: handoff %s(%s): %w", id, hs.EPC, err))
			break
		}
	}
	return errors.Join(errs...)
}

// RemoveShardDead drops a shard that died without draining (the chaos
// path): it leaves the ring, its server is torn down, and its
// journal's unserved tail — every retained report not covered by the
// emission ledger — is replayed into the survivors through the ring.
// This is the cluster analogue of single-daemon Recover: the same
// served-span suppression, but the reports re-home instead of
// rebuilding locally.
func (c *Cluster) RemoveShardDead(ctx context.Context, id string) (reoffered, suppressed int, err error) {
	c.mu.Lock()
	s := c.shards[id]
	delete(c.shards, id)
	c.mu.Unlock()
	if s == nil {
		return 0, 0, fmt.Errorf("router: unknown shard %q", id)
	}
	if err := c.rt.RemoveShard(id); err != nil {
		return 0, 0, err
	}
	// Tear the shard down hard: no drain, open sessions are abandoned
	// the way a SIGKILL would abandon them. The journal holds the
	// truth.
	_ = s.srv.Close()
	<-s.done
	s.daemon.Kill()
	if s.dir == "" {
		return 0, 0, fmt.Errorf("router: shard %q has no journal; its unserved state is unrecoverable", id)
	}
	return c.ReofferJournal(ctx, s.dir)
}

// ReofferJournal replays a dead shard's journal directory into the
// cluster: unserved reports re-enter through the ring (each to its
// current owner), served reports are suppressed by the emission
// ledger's spans. The crashtest harness calls this against the journal
// of a SIGKILLed child process.
func (c *Cluster) ReofferJournal(ctx context.Context, dir string) (reoffered, suppressed int, err error) {
	j, err := ingest.OpenJournal(ingest.JournalConfig{Dir: dir})
	if err != nil {
		return 0, 0, err
	}
	defer j.Close()
	live, suppressed, err := ingest.UnservedReports(j)
	if err != nil {
		return 0, suppressed, err
	}
	c.rt.met.HandoffSuppressed.Add(int64(suppressed))
	if err := c.reoffer(ctx, live); err != nil {
		return reoffered, suppressed, err
	}
	return len(live), suppressed, nil
}

// reoffer routes readings to their current ring owners' daemons
// directly (no HTTP round-trip — the cluster holds the handles),
// honoring backpressure per shard.
func (c *Cluster) reoffer(ctx context.Context, readings []sim.Reading) error {
	for _, rd := range readings {
		owner, ok := c.rt.Owner(rd.EPC)
		if !ok {
			return fmt.Errorf("router: no shard owns %s", rd.EPC)
		}
		c.mu.Lock()
		s := c.shards[owner.ID]
		c.mu.Unlock()
		if s == nil {
			return fmt.Errorf("router: ring owner %s is not a local shard", owner.ID)
		}
		for {
			err := s.daemon.Offer(rd)
			if err == nil {
				c.rt.met.HandoffReoffered.Inc()
				break
			}
			if !errors.Is(err, ingest.ErrBusy) {
				return fmt.Errorf("router: reoffer to %s: %w", owner.ID, err)
			}
			t := time.NewTimer(s.daemon.RetryAfter())
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	return nil
}

// Close drains every shard and stops its server. Idempotent per shard.
func (c *Cluster) Close(ctx context.Context) error {
	c.mu.Lock()
	shards := make([]*localShard, 0, len(c.shards))
	for _, s := range c.shards {
		shards = append(shards, s)
	}
	c.shards = make(map[string]*localShard)
	c.mu.Unlock()
	var errs []error
	for _, s := range shards {
		_ = c.rt.RemoveShard(s.id)
		if err := s.daemon.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", s.id, err))
		}
		_ = s.srv.Close()
		<-s.done
	}
	return errors.Join(errs...)
}
