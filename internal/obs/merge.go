package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MergeText sums N Prometheus text expositions into one: series with
// the same name and label set have their values added, families keep
// the first HELP/TYPE seen, and the output is rendered families-sorted
// with series in first-seen order. Because every sample the registry
// emits is cumulative — counters, gauge levels, histogram _bucket/
// _sum/_count — summing is the correct fleet aggregate for counters
// and histograms and the fleet total for level gauges (queue depth,
// open sessions). Per-shard values stay reachable by scraping a shard
// directly.
//
// The router tier uses this to serve one /metrics for an N-shard
// cluster without requiring a Prometheus server to learn the shard
// topology.
func MergeText(dst io.Writer, srcs ...[]byte) error {
	type fam struct {
		help, typ string
		order     []string
		val       map[string]float64
	}
	fams := make(map[string]*fam)
	var names []string
	get := func(name string) *fam {
		f := fams[name]
		if f == nil {
			f = &fam{val: make(map[string]float64)}
			fams[name] = f
			names = append(names, name)
		}
		return f
	}
	// familyOf strips the histogram sample suffixes when the base
	// family is known to be a histogram, so x_bucket/x_sum/x_count
	// group under x.
	familyOf := func(sample string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suf)
			if !ok {
				continue
			}
			if f := fams[base]; f != nil && f.typ == "histogram" {
				return base
			}
		}
		return sample
	}
	for _, src := range srcs {
		sc := bufio.NewScanner(bytes.NewReader(src))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			switch {
			case line == "":
			case strings.HasPrefix(line, "# HELP "):
				rest := line[len("# HELP "):]
				name, help, _ := strings.Cut(rest, " ")
				if f := get(name); f.help == "" {
					f.help = help
				}
			case strings.HasPrefix(line, "# TYPE "):
				rest := line[len("# TYPE "):]
				name, typ, _ := strings.Cut(rest, " ")
				if f := get(name); f.typ == "" {
					f.typ = typ
				}
			case strings.HasPrefix(line, "#"):
			default:
				// "name{labels} value" or "name value". The value is the
				// last space-separated token; everything before is the
				// series key. (The registry never emits timestamps.)
				i := strings.LastIndexByte(line, ' ')
				if i < 0 {
					return fmt.Errorf("obs: unparseable sample line %q", line)
				}
				key, raw := line[:i], line[i+1:]
				v, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return fmt.Errorf("obs: bad value in %q: %w", line, err)
				}
				sample := key
				if j := strings.IndexByte(sample, '{'); j >= 0 {
					sample = sample[:j]
				}
				f := get(familyOf(sample))
				if _, seen := f.val[key]; !seen {
					f.order = append(f.order, key)
				}
				f.val[key] += v
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if len(f.order) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(dst, "# HELP %s %s\n", name, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(dst, "# TYPE %s %s\n", name, f.typ)
		}
		for _, key := range f.order {
			fmt.Fprintf(dst, "%s %s\n", key, formatSum(f.val[key]))
		}
	}
	return nil
}

// formatSum renders a merged value: integral sums print as integers
// (counter semantics survive the round-trip), everything else uses the
// registry's shortest-round-trip float form.
func formatSum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatFloat(v)
}
