package obs

import (
	"bytes"
	"strings"
	"testing"
)

// render builds a registry exposition for merge tests.
func render(t *testing.T, build func(r *Registry)) []byte {
	t.Helper()
	r := NewRegistry()
	build(r)
	var buf bytes.Buffer
	r.WriteText(&buf)
	return buf.Bytes()
}

// TestMergeTextSums: same-series values add across expositions,
// including histogram buckets, sums and counts; families keep one
// HELP/TYPE block.
func TestMergeTextSums(t *testing.T) {
	shard := func(reports int64, lat float64) []byte {
		return render(t, func(r *Registry) {
			c := r.NewCounter("d_reports_total", "Reports.", L("outcome", "accepted"))
			c.Add(reports)
			h := r.NewHistogram("d_latency_seconds", "Latency.", []float64{0.1, 1})
			h.Observe(lat)
			g := r.NewGauge("d_queue_depth", "Depth.")
			g.SetInt(reports / 10)
		})
	}
	var out bytes.Buffer
	if err := MergeText(&out, shard(100, 0.05), shard(40, 0.5), shard(60, 2)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`d_reports_total{outcome="accepted"} 200`,
		`d_queue_depth 20`,
		`d_latency_seconds_bucket{le="0.1"} 1`,
		`d_latency_seconds_bucket{le="1"} 2`,
		`d_latency_seconds_bucket{le="+Inf"} 3`,
		`d_latency_seconds_count 3`,
		"# TYPE d_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE d_reports_total"); n != 1 {
		t.Errorf("TYPE comment repeated %d times", n)
	}
	// _sum lines: 0.05 + 0.5 + 2 = 2.55
	if !strings.Contains(text, "d_latency_seconds_sum 2.55") {
		t.Errorf("histogram sums not added:\n%s", text)
	}
}

// TestMergeTextDisjoint: a family present on only one source (the
// ingest daemon registers journal gauges lazily) still renders, and
// families stay contiguous under their own TYPE header.
func TestMergeTextDisjoint(t *testing.T) {
	a := render(t, func(r *Registry) { r.NewCounter("alpha_total", "A.").Add(1) })
	b := render(t, func(r *Registry) {
		r.NewCounter("alpha_total", "A.").Add(2)
		r.NewGauge("journal_next_seq", "Lazy.").SetInt(7)
	})
	var out bytes.Buffer
	if err := MergeText(&out, a, b); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "alpha_total 3") || !strings.Contains(text, "journal_next_seq 7") {
		t.Fatalf("disjoint merge wrong:\n%s", text)
	}
	if strings.Index(text, "# TYPE journal_next_seq gauge") > strings.Index(text, "journal_next_seq 7") {
		t.Fatalf("sample precedes its TYPE header:\n%s", text)
	}
}

// TestMergeTextGolden: the merge of two real registry renders is
// byte-stable — families sorted, first-seen series order, integral
// counters without float formatting.
func TestMergeTextGolden(t *testing.T) {
	a := render(t, func(r *Registry) {
		r.NewCounter("z_total", "Z.").Add(5)
		r.NewCounter("a_total", "A.", L("k", "v")).Add(1)
	})
	var out bytes.Buffer
	if err := MergeText(&out, a, a); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_total A.\n# TYPE a_total counter\na_total{k=\"v\"} 2\n" +
		"# HELP z_total Z.\n# TYPE z_total counter\nz_total 10\n"
	if got := out.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMergeTextBadInput: garbage fails loudly instead of producing a
// silently wrong aggregate.
func TestMergeTextBadInput(t *testing.T) {
	if err := MergeText(&bytes.Buffer{}, []byte("metric_without_value\n")); err == nil {
		t.Fatal("no error for a sample line without a value")
	}
	if err := MergeText(&bytes.Buffer{}, []byte("m 12x\n")); err == nil {
		t.Fatal("no error for an unparseable value")
	}
}
