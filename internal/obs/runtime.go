package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats snapshot for all the
// runtime gauges of a registry. ReadMemStats stops the world, so the
// gauges must not each take their own snapshot on every scrape; a
// sub-second cache keeps a scrape to at most one pause while the
// values stay mutually consistent (heap vs GC counters from the same
// instant).
type memSampler struct {
	mu    sync.Mutex
	ms    runtime.MemStats
	taken time.Time
}

func (s *memSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken.IsZero() || time.Since(s.taken) > time.Second {
		runtime.ReadMemStats(&s.ms)
		s.taken = time.Now()
	}
	return s.ms
}

// RegisterGoRuntime attaches Go runtime health gauges (goroutines,
// heap, GC) to the registry. Call at most once per registry — the
// names collide on a second call by design.
func RegisterGoRuntime(r *Registry) {
	s := &memSampler{}
	r.NewGaugeFunc("go_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.NewGaugeFunc("go_heap_alloc_bytes", "Bytes of live heap objects.", func() float64 {
		return float64(s.sample().HeapAlloc)
	})
	r.NewGaugeFunc("go_heap_sys_bytes", "Heap memory obtained from the OS.", func() float64 {
		return float64(s.sample().HeapSys)
	})
	r.NewGaugeFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", func() float64 {
		return float64(s.sample().PauseTotalNs) / 1e9
	})
	r.NewGaugeFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return float64(s.sample().NumGC)
	})
}
