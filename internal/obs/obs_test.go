package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the full text exposition — family names,
// TYPE lines, label rendering and escaping — so a refactor of the
// registry cannot silently rename or retype a series.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_requests_total", "Requests by outcome.", L("outcome", "ok"))
	c.Add(3)
	r.NewCounter("demo_requests_total", "Requests by outcome.", L("outcome", "error")).Inc()
	g := r.NewGauge("demo_queue_depth", "Windows waiting for a solver.")
	g.SetInt(7)
	r.NewGaugeFunc("demo_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	r.NewCounterFunc("demo_sampled_total", "Counter sampled from a callback at render time.", func() int64 { return 42 })
	h := r.NewHistogram("demo_latency_seconds", "End-to-end latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	// Label escaping: backslash, quote and newline in a value.
	r.NewCounter("demo_escapes_total", "Escaping sanity.", L("path", "a\\b\"c\nd")).Add(1)

	var buf bytes.Buffer
	r.WriteText(&buf)
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: a value equal
// to a bucket's upper bound lands in that bucket, the next larger value
// spills into the following one, and out-of-range samples overflow to
// +Inf without perturbing lower buckets.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "", []float64{0.1, 0.5, 1})
	h.Observe(0.1)  // exactly on the first bound → bucket 0
	h.Observe(0.11) // just past it → bucket 1
	h.Observe(0.5)  // on the second bound → bucket 1
	h.Observe(1.0)  // on the last bound → bucket 2
	h.Observe(2.0)  // past every bound → overflow
	h.Observe(0)    // floor
	if got, want := h.Buckets(), []int64{2, 2, 1, 1}; len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
			}
		}
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	// Non-finite and negative observations clamp to 0 instead of
	// poisoning the sum.
	before := h.Sum()
	h.Observe(-3)
	h.Observe(nan())
	if h.Sum() != before || h.Count() != 8 {
		t.Errorf("clamped observations changed sum: %g → %g (count %d)", before, h.Sum(), h.Count())
	}

	// The rendered buckets are cumulative and end with +Inf.
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`b_seconds_bucket{le="0.1"} 4`,
		`b_seconds_bucket{le="0.5"} 6`,
		`b_seconds_bucket{le="1"} 7`,
		`b_seconds_bucket{le="+Inf"} 8`,
		`b_seconds_count 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestRegistryPanicsOnMisuse: type clashes and duplicate series are
// programming errors and must fail loudly at registration.
func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("x_total", "")
	mustPanic("type clash", func() { r.NewGauge("x_total", "") })
	mustPanic("duplicate series", func() { r.NewCounter("x_total", "") })
	mustPanic("empty histogram", func() { r.NewHistogram("h", "", nil) })
	mustPanic("unsorted bounds", func() { r.NewHistogram("h2", "", []float64{1, 0.5}) })
	// Same family, distinct label set: legal.
	r.NewCounter("x_total", "", L("k", "v"))
}

// TestConcurrentInstruments: instruments take concurrent updates while
// a render is in flight (smoke for the race detector).
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.SetInt(int64(j))
				h.Observe(float64(j % 3))
			}
		}()
	}
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		buf.Reset()
		r.WriteText(&buf)
	}
	wg.Wait()
	if c.Load() != 2000 {
		t.Errorf("counter %d, want 2000", c.Load())
	}
}

// TestGoRuntimeGauges: the runtime gauge set renders live, plausible
// values (a running test has ≥ 1 goroutine and a non-zero heap).
func TestGoRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_gc_pause_seconds_total", "go_gc_cycles_total",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("missing runtime gauge %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "go_goroutines 0\n") {
		t.Error("go_goroutines rendered 0 in a running process")
	}
	if strings.Contains(out, "go_heap_alloc_bytes 0\n") {
		t.Error("go_heap_alloc_bytes rendered 0 in a running process")
	}
}
