// Package obs is the repo's unified observability substrate: a
// dependency-free metrics registry (counters, gauges, histograms) with
// Prometheus text exposition. It was extracted from the hand-rolled
// /metrics page of internal/ingest so every layer — the daemon, the
// batch pipeline's stage tracer, future backends — registers series in
// one place and renders them identically.
//
// Series are identified by a family name plus an ordered label set.
// All instruments are safe for concurrent use; registration normally
// happens at startup but is also safe mid-flight (the ingest daemon
// registers its journal gauges lazily). Registration panics on misuse
// (same family name under two types, or a duplicate name+label set):
// those are programming errors, not runtime conditions.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair of a series' label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series []*series
}

type series struct {
	labels []Label
	sig    string
	write  func(w io.Writer, name, labels string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig is the canonical identity of a label set (labels are kept in
// registration order for rendering, but identity is order-free).
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// register adds one series to its family, creating the family on first
// use. It panics on a type clash or duplicate series.
func (r *Registry) register(name, help, typ string, labels []Label, write func(io.Writer, string, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: family %q registered as %s and %s", name, f.typ, typ))
	}
	sig := labelSig(labels)
	for _, s := range f.series {
		if s.sig == sig {
			panic(fmt.Sprintf("obs: duplicate series %q%v", name, labels))
		}
	}
	f.series = append(f.series, &series{labels: labels, sig: sig, write: write})
}

// Counter is a monotonically increasing int64 series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0 to keep the series
// monotonic; negative deltas are programming errors and are dropped).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// NewCounter registers a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, c.Load())
	})
	return c
}

// NewCounterFunc registers a counter series whose value is sampled
// from fn at render time — for counters owned elsewhere (e.g. the
// solver fast-path statistics, which live on the System so they also
// serve programmatic callers). fn must be safe for concurrent use and
// monotonically non-decreasing; obs renders whatever it returns.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, "counter", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, fn())
	})
}

// Gauge is a settable float64 series.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(g.Load()))
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is sampled from fn at
// render time (e.g. Go runtime stats). fn must be safe for concurrent
// use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// Histogram is a fixed-bucket latency/size distribution. Bucket upper
// bounds use Prometheus "le" semantics: an observation lands in the
// first bucket whose bound is ≥ the value. Non-finite and negative
// observations are clamped to 0 so one corrupted sample cannot poison
// the sum.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []int64 // len(bounds)+1; last is the +Inf overflow
	sum     float64
	count   int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.buckets[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Buckets returns a copy of the per-bucket (non-cumulative) counts;
// the last entry is the overflow bucket.
func (h *Histogram) Buckets() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.buckets...)
}

// NewHistogram registers a histogram series with the given bucket
// upper bounds (must be sorted ascending and non-empty).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
	r.register(name, help, "histogram", labels, func(w io.Writer, n, l string) {
		h.mu.Lock()
		defer h.mu.Unlock()
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", n, mergeLabels(l, "le", formatFloat(b)), cum)
		}
		cum += h.buckets[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", n, mergeLabels(l, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", n, l, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", n, l, h.count)
	})
	return h
}

// WriteText renders every registered family in the Prometheus text
// exposition format: families sorted by name, each with # HELP/# TYPE
// comments, series in a stable label order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		// Series order is pinned by label signature so output is stable
		// across registration-order changes.
		f.seriesSorted(func(s *series) {
			s.write(w, f.name, renderLabels(s.labels))
		})
	}
}

func (f *family) seriesSorted(emit func(*series)) {
	ordered := append([]*series(nil), f.series...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].sig < ordered[b].sig })
	for _, s := range ordered {
		emit(s)
	}
}

// renderLabels formats a label set as {k="v",...} ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends one extra label (the histogram "le") to an
// already-rendered label block.
func mergeLabels(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline only; quotes
// are legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
