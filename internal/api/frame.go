package api

import "fmt"

// Frame is one Server-Sent Events wire frame. The serving tier's
// per-tag and firehose streams, and the router's relay/merge, all
// render frames through it so the byte layout cannot drift between
// tiers:
//
//	id: <epoch>\n        (only when HasID)
//	event: <type>\n      (only when Event is set)
//	data: <payload>\n\n
type Frame struct {
	// ID is the frame's `id:` field — the snapshot epoch, which
	// doubles as the Last-Event-ID resume cursor.
	ID uint64
	// HasID gates the id: line (the router's partial frames carry no
	// epoch — they are per-shard annotations, not resumable events).
	HasID bool
	// Event is the SSE event type (result, resync, dropped, partial).
	Event string
	// Data is the raw JSON payload.
	Data []byte
}

// Append renders the frame onto dst.
func (f Frame) Append(dst []byte) []byte {
	if f.HasID {
		dst = fmt.Appendf(dst, "id: %d\n", f.ID)
	}
	if f.Event != "" {
		dst = fmt.Appendf(dst, "event: %s\n", f.Event)
	}
	return fmt.Appendf(dst, "data: %s\n\n", f.Data)
}

// Bytes renders the frame.
func (f Frame) Bytes() []byte { return f.Append(nil) }

// Comment renders an SSE comment frame (": <text>\n\n") — the
// heartbeat keep-alive shape.
func Comment(text string) []byte {
	return fmt.Appendf(nil, ": %s\n\n", text)
}
