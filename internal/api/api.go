// Package api is the canonical /v1 wire codec shared by every
// RF-Prism HTTP tier (the ingest daemon, the shard router and the
// serving tier). Each tier used to hand-roll its JSON shapes; they
// drifted one field at a time, and a client could not tell from a
// payload which revision of the surface produced it. This package is
// now the single source of truth:
//
//   - TagResult (and its Estimate/Confidence sub-objects) is the one
//     result shape — NDJSON sinks, the journal's emission ledger, the
//     snapshot store, SSE `data:` payloads and the router's merged
//     answers all marshal the same struct.
//   - Error is the uniform error envelope
//     {"error","code","retry_after_ms",...} every non-2xx response
//     carries, across all three tiers.
//   - TagList/TagHistory/WaitReply/IngestReply are the success bodies
//     of the tag surface.
//   - Frame renders SSE wire frames byte-identically across the
//     serving tier and the router's relay/merge.
//
// Every payload is stamped with the schema revision (Version) in a
// leading "schema" field. Old field names are preserved verbatim —
// v1.0 clients keep decoding v1.1 payloads; they just ignore the new
// keys. The checked-in JSON Schema (schema/v1.1.json) is the
// machine-readable contract; the api-conformance CI job validates
// live payloads from a booted daemon and router against it.
package api

import (
	"encoding/json"
	"net/http"
	"time"
)

// Version is the wire schema revision stamped into the "schema" field
// of every /v1 payload.
const Version = "v1.1"

// Estimate is the JSON shape of a successful disentangled estimate.
type Estimate struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Z        float64 `json:"z"`
	AlphaDeg float64 `json:"alphaDeg"`
	Kt       float64 `json:"kt"`
	Bt0      float64 `json:"bt0"`
}

// AntennaWeight is one antenna's soft weight in the likelihood layer's
// joint objective (only antennas kept at partial weight are listed).
type AntennaWeight struct {
	ID     int     `json:"id"`
	Weight float64 `json:"w"`
}

// Confidence is the per-result confidence block the likelihood layer
// attaches when the daemon runs with -confidence: per-axis 90%
// confidence intervals from the Fisher-information covariance, the
// normalized log-likelihood of the fit, and the explicit margin over
// the best 2π-ambiguity alternative basin.
type Confidence struct {
	// SigmaPhase is the per-window phase-noise scale (rad) estimated
	// from the per-antenna fit residuals.
	SigmaPhase float64 `json:"sigmaPhase"`
	// NormLogLik is the per-observation normalized log-likelihood of
	// the accepted solution (0 is a perfect fit; more negative is
	// worse).
	NormLogLik float64 `json:"normLogLik"`
	// PosCI90 is the per-axis 90% confidence half-width (meters), x/y/z.
	PosCI90 [3]float64 `json:"posCi90"`
	// RadialCI90 is the scalar positional confidence radius (meters).
	RadialCI90 float64 `json:"radialCi90"`
	// AlphaCI90Deg is the orientation 90% confidence half-width
	// (degrees).
	AlphaCI90Deg float64 `json:"alphaCi90Deg"`
	// Sigma is the per-parameter standard deviation vector (the square
	// root of the covariance diagonal), in solver parameter order.
	Sigma []float64 `json:"sigma,omitempty"`
	// AmbiguityMargin is the log-likelihood margin of the accepted
	// solution over the best competing 2π-ambiguity basin (larger is
	// more certain; near 0 means a genuinely ambiguous window).
	AmbiguityMargin float64 `json:"ambiguityMargin"`
	// AltBasins counts the distinct alternative basins the ambiguity
	// probes found.
	AltBasins int `json:"altBasins,omitempty"`
	// Weights lists the antennas the likelihood layer kept at partial
	// weight instead of shedding (absent when every antenna ran at
	// full weight).
	Weights []AntennaWeight `json:"antennaWeights,omitempty"`
}

// TagResult is one window's outcome as delivered to sinks and served
// on every tag endpoint: the window assembly metadata, the pipeline
// health summary and either the estimate or the error.
type TagResult struct {
	// Schema is the wire schema revision (Version). Empty only on
	// payloads re-read from pre-v1.1 journals.
	Schema string `json:"schema,omitempty"`
	EPC    string `json:"epc"`
	Seq    int    `json:"seq"`
	// FirstSeq is the journal sequence number of the window's first
	// report — the durable window identity recovery dedups on. Zero
	// when the daemon runs without a journal.
	FirstSeq uint64 `json:"firstSeq,omitempty"`
	// LastSeq is the journal sequence number of the window's last
	// report. Recovery uses it to spot a replayed session growing past
	// the window actually served under this identity and split there.
	LastSeq   uint64    `json:"lastSeq,omitempty"`
	At        time.Time `json:"at"`
	Reason    string    `json:"closeReason"`
	Readings  int       `json:"readings"`
	Channels  int       `json:"channels"`
	Antennas  int       `json:"antennas"`
	LatencyMS float64   `json:"latencyMs"`
	// Attempts is the number of processing attempts the window
	// consumed (> 1 when the daemon retried a transient fault).
	Attempts        int         `json:"attempts,omitempty"`
	Degraded        bool        `json:"degraded,omitempty"`
	DroppedAntennas []int       `json:"droppedAntennas,omitempty"`
	Estimate        *Estimate   `json:"estimate,omitempty"`
	Confidence      *Confidence `json:"confidence,omitempty"`
	Err             string      `json:"error,omitempty"`
	// StageMS is the per-pipeline-stage time (milliseconds, summed
	// across antennas and retries). Present only when the System runs
	// with a tracer installed.
	StageMS map[string]float64 `json:"stageMs,omitempty"`
}

// TagList is the GET /v1/tags body. Without pagination parameters only
// Schema and Tags are present (the legacy shape plus the schema
// stamp); a paged request adds Count (the full list size) and Next
// (the cursor of the following page). The router tier adds
// Partial/MissingShards when dead shards degraded the union.
type TagList struct {
	Schema string   `json:"schema"`
	Tags   []string `json:"tags"`
	// Count is the total EPC count before paging (present only on
	// paged requests; a pointer so an empty paged list still renders
	// "count":0).
	Count *int   `json:"count,omitempty"`
	Next  string `json:"next,omitempty"`
	// Partial marks a degraded scatter-gather: MissingShards lists the
	// shard IDs whose answers are absent from Tags.
	Partial       bool     `json:"partial,omitempty"`
	MissingShards []string `json:"missingShards,omitempty"`
}

// TagHistory is the GET /v1/tags/{epc} body (buffered results, oldest
// first).
type TagHistory struct {
	Schema  string      `json:"schema"`
	EPC     string      `json:"epc"`
	Results []TagResult `json:"results"`
}

// WaitReply is the long-poll (?wait=) response body. Result is present
// only when Changed.
type WaitReply struct {
	Schema  string     `json:"schema"`
	Epoch   uint64     `json:"epoch"`
	Changed bool       `json:"changed"`
	Result  *TagResult `json:"result,omitempty"`
}

// IngestReply is the body of a successful ingest.
type IngestReply struct {
	Schema   string `json:"schema,omitempty"`
	Accepted int    `json:"accepted"`
}

// Error is the uniform JSON error envelope. Every non-2xx response
// from every tier carries it; "retry_after_ms" is non-zero only under
// backpressure. Ingest errors add "accepted"/"line" so clients resume
// from the first unaccepted report; the router adds "shard" when one
// shard's failure decided the answer.
type Error struct {
	Schema       string `json:"schema,omitempty"`
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
	Accepted     int    `json:"accepted,omitempty"`
	Line         int    `json:"line,omitempty"`
	Shard        string `json:"shard,omitempty"`
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the uniform error envelope, stamped with the
// schema version.
func WriteError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	WriteJSON(w, status, Error{
		Schema: Version, Error: msg, Code: code,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// Deprecated wraps the unversioned alias of a /v1 handler: responses
// gain a "Deprecation: true" header and a Link to the versioned
// successor resource, so pre-/v1 clients keep byte-identical bodies
// while tooling discovers the canonical path. The handler itself is
// shared — only the headers differ between /x and /v1/x.
func Deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}
