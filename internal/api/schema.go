package api

import (
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
)

//go:embed schema/v1.1.json
var schemaFS embed.FS

// SchemaJSON returns the checked-in JSON Schema document for the
// current wire revision — the machine-readable /v1 contract.
func SchemaJSON() []byte {
	b, err := schemaFS.ReadFile("schema/v1.1.json")
	if err != nil {
		panic(err) // embedded at build time; cannot fail
	}
	return b
}

// schemaDoc is the parsed schema, loaded once.
var schemaDoc = sync.OnceValue(func() map[string]any {
	var doc map[string]any
	if err := json.Unmarshal(SchemaJSON(), &doc); err != nil {
		panic(fmt.Sprintf("api: embedded schema invalid: %v", err))
	}
	return doc
})

// Validate checks a raw JSON payload against one $defs entry of the
// embedded wire schema ("tagResult", "tagList", "tagHistory",
// "waitReply", "ingestReply", "error"). It implements the subset of
// JSON Schema the contract uses — type, properties, required, items,
// minItems/maxItems, enum, additionalProperties and local $ref — so
// conformance tests and the CI job need no external validator.
func Validate(def string, payload []byte) error {
	root := schemaDoc()
	defs, _ := root["$defs"].(map[string]any)
	schema, ok := defs[def].(map[string]any)
	if !ok {
		return fmt.Errorf("api: schema has no definition %q", def)
	}
	var doc any
	dec := json.NewDecoder(strings.NewReader(string(payload)))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("api: payload is not JSON: %w", err)
	}
	return validate(root, schema, doc, "$")
}

func validate(root map[string]any, schema map[string]any, doc any, path string) error {
	if ref, ok := schema["$ref"].(string); ok {
		resolved, err := resolveRef(root, ref)
		if err != nil {
			return err
		}
		return validate(root, resolved, doc, path)
	}
	if typ, ok := schema["type"].(string); ok {
		if err := checkType(typ, doc, path); err != nil {
			return err
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: value %v not in enum %v", path, doc, enum)
		}
	}
	switch d := doc.(type) {
	case map[string]any:
		props, _ := schema["properties"].(map[string]any)
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := d[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		addl, hasAddl := schema["additionalProperties"]
		for key, val := range d {
			sub, known := props[key].(map[string]any)
			if !known {
				if b, isBool := addl.(bool); isBool && !b {
					return fmt.Errorf("%s: unknown property %q", path, key)
				}
				if m, isMap := addl.(map[string]any); isMap && hasAddl {
					if err := validate(root, m, val, path+"."+key); err != nil {
						return err
					}
				}
				continue
			}
			if err := validate(root, sub, val, path+"."+key); err != nil {
				return err
			}
		}
	case []any:
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range d {
				if err := validate(root, items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
		if min, ok := schemaInt(schema["minItems"]); ok && len(d) < min {
			return fmt.Errorf("%s: %d items, need at least %d", path, len(d), min)
		}
		if max, ok := schemaInt(schema["maxItems"]); ok && len(d) > max {
			return fmt.Errorf("%s: %d items, allow at most %d", path, len(d), max)
		}
	}
	return nil
}

func checkType(typ string, doc any, path string) error {
	ok := false
	switch typ {
	case "object":
		_, ok = doc.(map[string]any)
	case "array":
		_, ok = doc.([]any)
	case "string":
		_, ok = doc.(string)
	case "boolean":
		_, ok = doc.(bool)
	case "number":
		_, ok = doc.(json.Number)
	case "integer":
		if n, isNum := doc.(json.Number); isNum {
			if _, err := n.Int64(); err == nil {
				ok = true
			} else if f, err := n.Float64(); err == nil {
				ok = f == math.Trunc(f)
			}
		}
	case "null":
		ok = doc == nil
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, typ)
	}
	if !ok {
		return fmt.Errorf("%s: %T is not a %s", path, doc, typ)
	}
	return nil
}

func resolveRef(root map[string]any, ref string) (map[string]any, error) {
	const prefix = "#/$defs/"
	if !strings.HasPrefix(ref, prefix) {
		return nil, fmt.Errorf("api: schema $ref %q is not a local $defs reference", ref)
	}
	defs, _ := root["$defs"].(map[string]any)
	target, ok := defs[strings.TrimPrefix(ref, prefix)].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("api: schema $ref %q does not resolve", ref)
	}
	return target, nil
}

func schemaInt(v any) (int, bool) {
	switch n := v.(type) {
	case float64:
		return int(n), true
	case json.Number:
		i, err := n.Int64()
		if err != nil {
			return 0, false
		}
		return int(i), true
	}
	return 0, false
}
