// Package api_test boots the real HTTP tiers — a single daemon wrapped
// by the serving tier, and a 3-shard cluster behind the router — feeds
// both the same seeded report stream, and proves every /v1 payload is
// (a) valid under the checked-in JSON Schema and (b) byte-identical
// across tiers once topology-dependent fields (timestamps, latencies,
// epochs, journal positions) are normalized. The api-conformance CI
// job runs exactly this suite.
package api_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/api"
	"rfprism/internal/geom"
	"rfprism/internal/ingest"
	"rfprism/internal/rf"
	"rfprism/internal/router"
	"rfprism/internal/serve"
	"rfprism/internal/sim"
)

const confSeed = 77

// newSystem builds a freshly calibrated paper-deployment System. The
// scene is seeded, so every call reconstructs identical solver state —
// single and sharded topologies start from the same calibration.
func newSystem(t *testing.T) *rfprism.System {
	t.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), confSeed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	calTag := scene.NewTag("cal")
	var calWin []sim.Reading
	for i := 0; i < 3; i++ {
		calWin = append(calWin, scene.CollectWindow(calTag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		t.Fatal(err)
	}
	return sys
}

// buildStream renders the seeded interleaved NDJSON report stream both
// topologies ingest.
func buildStream(t *testing.T, nTags, rounds int) (lines int, body []byte, epcs []string) {
	t.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), confSeed)
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec3{
		{X: 0.6, Y: 1.1}, {X: 1.2, Y: 1.6}, {X: 1.5, Y: 2.0},
		{X: 0.9, Y: 2.2}, {X: 1.8, Y: 1.2}, {X: 0.5, Y: 1.8},
	}
	var tracked []sim.TrackedTag
	for i := 0; i < nTags; i++ {
		tag := scene.NewTag(fmt.Sprintf("urn:epc:wire-%03d", i))
		tracked = append(tracked, sim.TrackedTag{
			Tag: tag, Motion: scene.Place(positions[i%len(positions)], 0.2*float64(i), none)})
		epcs = append(epcs, tag.EPC)
	}
	stream, err := scene.CollectStream(tracked, rounds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rd := range stream {
		if err := enc.Encode(rd); err != nil {
			t.Fatal(err)
		}
	}
	return len(stream), buf.Bytes(), epcs
}

// singleTier is the daemon + serving-tier stack one shard runs, booted
// standalone: serve.Wrap in front of the ingest handler, backed by the
// epoch-swapped snapshot store.
type singleTier struct {
	daemon *ingest.Daemon
	srv    *httptest.Server
}

func newSingleTier(t *testing.T) *singleTier {
	t.Helper()
	store := serve.NewStore(serve.StoreConfig{History: 8, SwapInterval: 5 * time.Millisecond})
	d := ingest.NewDaemon(newSystem(t), ingest.Config{
		Sessionizer: ingest.SessionizerConfig{CoverageClose: 45},
		QueueSize:   256,
	}, store)
	h := serve.NewServer(store, nil, nil).Wrap(ingest.NewServer(d, store).Handler())
	return &singleTier{daemon: d, srv: httptest.NewServer(h)}
}

func (s *singleTier) close(t *testing.T) {
	t.Helper()
	if err := s.daemon.Shutdown(context.Background()); err != nil {
		t.Error(err)
	}
	s.srv.Close()
}

func newClusterTier(t *testing.T) (*router.Cluster, *httptest.Server) {
	t.Helper()
	cluster, err := router.NewCluster(router.ClusterConfig{
		Shards:       3,
		NewProcessor: func(string) ingest.Processor { return newSystem(t) },
		Daemon: ingest.Config{
			Sessionizer: ingest.SessionizerConfig{CoverageClose: 45},
			QueueSize:   256,
		},
		RingDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, httptest.NewServer(cluster.Handler())
}

func get(t *testing.T, url string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func ingestAll(t *testing.T, baseURL string, body []byte, lines int) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest %s: status %d body %s", baseURL, resp.StatusCode, reply)
	}
	if err := api.Validate("ingestReply", reply); err != nil {
		t.Fatalf("ingest reply violates schema: %v\nbody: %s", err, reply)
	}
	var ir api.IngestReply
	if err := json.Unmarshal(reply, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != lines {
		t.Fatalf("ingest %s accepted %d/%d", baseURL, ir.Accepted, lines)
	}
	return reply
}

// waitForTags polls /v1/tags until every expected EPC is visible.
func waitForTags(t *testing.T, baseURL string, want int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, _, body := get(t, baseURL+"/v1/tags", nil)
		var tl api.TagList
		if err := json.Unmarshal(body, &tl); err == nil && len(tl.Tags) >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, _, body := get(t, baseURL+"/v1/tags", nil)
	t.Fatalf("%s never served %d tags; last body: %s", baseURL, want, body)
}

// normalizeResult zeroes the topology-dependent fields of a TagResult
// so the remaining bytes must match across a single daemon and a
// sharded cluster: wall-clock timestamp, measured latency, per-stage
// timings and journal positions all legitimately differ; everything
// else — the window assembly and the solve — may not.
func normalizeResult(tr *api.TagResult) {
	tr.At = time.Time{}
	tr.LatencyMS = 0
	tr.StageMS = nil
	tr.FirstSeq = 0
	tr.LastSeq = 0
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestV1WireConformance is the api_redesign acceptance suite: all
// three tiers serve the canonical v1.1 wire schema, byte-identically.
func TestV1WireConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("boots full topologies; skipped in -short")
	}
	const nTags, rounds = 6, 2
	lines, stream, epcs := buildStream(t, nTags, rounds)

	single := newSingleTier(t)
	defer single.close(t)
	cluster, clusterSrv := newClusterTier(t)
	defer func() {
		if err := cluster.Close(context.Background()); err != nil {
			t.Error(err)
		}
		clusterSrv.Close()
	}()

	singleReply := ingestAll(t, single.srv.URL, stream, lines)
	clusterReply := ingestAll(t, clusterSrv.URL, stream, lines)
	if !bytes.Equal(singleReply, clusterReply) {
		t.Errorf("ingest replies drifted:\n daemon  %s\n cluster %s", singleReply, clusterReply)
	}
	waitForTags(t, single.srv.URL, nTags)
	waitForTags(t, clusterSrv.URL, nTags)

	t.Run("tags", func(t *testing.T) {
		_, _, sBody := get(t, single.srv.URL+"/v1/tags", nil)
		_, _, cBody := get(t, clusterSrv.URL+"/v1/tags", nil)
		for _, body := range [][]byte{sBody, cBody} {
			if err := api.Validate("tagList", body); err != nil {
				t.Errorf("tag list violates schema: %v\nbody: %s", err, body)
			}
		}
		if !bytes.Equal(sBody, cBody) {
			t.Errorf("tag lists drifted:\n daemon  %s\n cluster %s", sBody, cBody)
		}
	})

	t.Run("tags paged", func(t *testing.T) {
		var walked []string
		cursor := ""
		for page := 0; ; page++ {
			url := "/v1/tags?limit=2"
			if cursor != "" {
				url += "&cursor=" + cursor
			}
			_, _, sBody := get(t, single.srv.URL+url, nil)
			_, _, cBody := get(t, clusterSrv.URL+url, nil)
			if err := api.Validate("tagList", sBody); err != nil {
				t.Fatalf("page %d violates schema: %v\nbody: %s", page, err, sBody)
			}
			if !bytes.Equal(sBody, cBody) {
				t.Fatalf("page %d drifted:\n daemon  %s\n cluster %s", page, sBody, cBody)
			}
			var tl api.TagList
			if err := json.Unmarshal(sBody, &tl); err != nil {
				t.Fatal(err)
			}
			if tl.Count == nil || *tl.Count != nTags {
				t.Fatalf("page %d count %v, want %d", page, tl.Count, nTags)
			}
			walked = append(walked, tl.Tags...)
			if tl.Next == "" {
				break
			}
			cursor = tl.Next
		}
		if len(walked) != nTags {
			t.Fatalf("page walk visited %d tags, want %d", len(walked), nTags)
		}
	})

	t.Run("tag history", func(t *testing.T) {
		for _, epc := range epcs {
			_, _, sBody := get(t, single.srv.URL+"/v1/tags/"+epc, nil)
			_, _, cBody := get(t, clusterSrv.URL+"/v1/tags/"+epc, nil)
			for _, body := range [][]byte{sBody, cBody} {
				if err := api.Validate("tagHistory", body); err != nil {
					t.Fatalf("%s history violates schema: %v\nbody: %s", epc, err, body)
				}
			}
			var sh, ch api.TagHistory
			if err := json.Unmarshal(sBody, &sh); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(cBody, &ch); err != nil {
				t.Fatal(err)
			}
			if len(sh.Results) == 0 {
				t.Fatalf("%s: empty history", epc)
			}
			for i := range sh.Results {
				normalizeResult(&sh.Results[i])
			}
			for i := range ch.Results {
				normalizeResult(&ch.Results[i])
			}
			if s, c := marshal(t, sh), marshal(t, ch); !bytes.Equal(s, c) {
				t.Errorf("%s history drifted after normalization:\n daemon  %s\n cluster %s", epc, s, c)
			}
		}
	})

	t.Run("long poll", func(t *testing.T) {
		epc := epcs[0]
		url := "/v1/tags/" + epc + "?wait=5ms&since=999999999"
		sStatus, _, sBody := get(t, single.srv.URL+url, nil)
		cStatus, _, cBody := get(t, clusterSrv.URL+url, nil)
		if sStatus != http.StatusOK || cStatus != http.StatusOK {
			t.Fatalf("long-poll statuses %d/%d", sStatus, cStatus)
		}
		for _, body := range [][]byte{sBody, cBody} {
			if err := api.Validate("waitReply", body); err != nil {
				t.Errorf("wait reply violates schema: %v\nbody: %s", err, body)
			}
		}
		var sw, cw api.WaitReply
		if err := json.Unmarshal(sBody, &sw); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(cBody, &cw); err != nil {
			t.Fatal(err)
		}
		sw.Epoch, cw.Epoch = 0, 0 // snapshot epochs are topology-local
		if s, c := marshal(t, sw), marshal(t, cw); !bytes.Equal(s, c) {
			t.Errorf("wait replies drifted after normalization:\n daemon  %s\n cluster %s", s, c)
		}
	})

	t.Run("error envelopes", func(t *testing.T) {
		cases := []struct {
			name, url, code string
		}{
			{"bad limit", "/v1/tags?limit=bogus", "bad_param"},
			{"bad wait", "/v1/tags/" + epcs[0] + "?wait=bogus", "bad_param"},
			{"bad since", "/v1/tags/" + epcs[0] + "?wait=5ms&since=bogus", "bad_param"},
		}
		for _, c := range cases {
			sStatus, _, sBody := get(t, single.srv.URL+c.url, nil)
			cStatus, _, cBody := get(t, clusterSrv.URL+c.url, nil)
			if sStatus != http.StatusBadRequest || cStatus != http.StatusBadRequest {
				t.Errorf("%s: statuses %d/%d, want 400", c.name, sStatus, cStatus)
				continue
			}
			for _, body := range [][]byte{sBody, cBody} {
				if err := api.Validate("error", body); err != nil {
					t.Errorf("%s envelope violates schema: %v\nbody: %s", c.name, err, body)
				}
			}
			if !bytes.Equal(sBody, cBody) {
				t.Errorf("%s envelopes drifted:\n daemon  %s\n cluster %s", c.name, sBody, cBody)
			}
			var e api.Error
			if err := json.Unmarshal(sBody, &e); err != nil {
				t.Fatal(err)
			}
			if e.Code != c.code {
				t.Errorf("%s: code %q, want %q", c.name, e.Code, c.code)
			}
		}
	})

	t.Run("413 oversized report", func(t *testing.T) {
		huge := append(bytes.Repeat([]byte("x"), 2<<20), '\n')
		for _, base := range []string{single.srv.URL, clusterSrv.URL} {
			resp, err := http.Post(base+"/v1/ingest", "application/x-ndjson", bytes.NewReader(huge))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s: oversized line got %d body %s", base, resp.StatusCode, body)
			}
			if err := api.Validate("error", body); err != nil {
				t.Errorf("413 envelope violates schema: %v\nbody: %s", err, body)
			}
			var e api.Error
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatal(err)
			}
			if e.Code != ingest.CodeReportTooLarge {
				t.Errorf("%s: 413 code %q, want %q", base, e.Code, ingest.CodeReportTooLarge)
			}
			if e.Accepted != 0 || e.Line != 1 {
				t.Errorf("%s: 413 resume position accepted=%d line=%d, want 0/1", base, e.Accepted, e.Line)
			}
		}
	})

	t.Run("sse stream", func(t *testing.T) {
		epc := epcs[0]
		// A fresh subscriber gets the tag's current state up front.
		frame := readFrames(t, single.srv.URL+"/v1/tags/"+epc+"/stream", nil, 1)[0]
		checkResultFrame(t, frame, epc)

		// Resuming via Last-Event-ID and via ?since= must serve
		// byte-identical replays — the header is just the standard SSE
		// spelling of the query parameter.
		hdrFrames := readFrames(t, single.srv.URL+"/v1/tags/"+epc+"/stream", map[string]string{"Last-Event-ID": "0"}, 1)
		qryFrames := readFrames(t, single.srv.URL+"/v1/tags/"+epc+"/stream?since=0", nil, 1)
		if len(hdrFrames) != len(qryFrames) {
			t.Fatalf("resume frame counts differ: header %d, query %d", len(hdrFrames), len(qryFrames))
		}
		for i := range hdrFrames {
			if hdrFrames[i] != qryFrames[i] {
				t.Errorf("resume frame %d drifted:\n header %q\n query  %q", i, hdrFrames[i], qryFrames[i])
			}
		}

		// The router relays shard frames; data payloads must carry the
		// same schema.
		rFrame := readFrames(t, clusterSrv.URL+"/v1/tags/"+epc+"/stream", nil, 1)[0]
		checkResultFrame(t, rFrame, epc)
	})
}

// readFrames opens an SSE stream and reads the first n frames
// (blank-line delimited), then cancels the request.
func readFrames(t *testing.T, url string, hdr map[string]string, n int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: status %d body %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream %s: content type %q", url, ct)
	}
	var frames []string
	var cur strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			frames = append(frames, cur.String())
			cur.Reset()
			if len(frames) == n {
				return frames
			}
			continue
		}
		cur.WriteString(line)
		cur.WriteString("\n")
	}
	t.Fatalf("stream %s: ended after %d/%d frames (err %v)", url, len(frames), n, sc.Err())
	return nil
}

// checkResultFrame asserts one SSE frame is a schema-valid result
// event for the EPC.
func checkResultFrame(t *testing.T, frame, epc string) {
	t.Helper()
	var data string
	hasID := false
	for _, line := range strings.Split(strings.TrimRight(frame, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "id: "):
			hasID = true
		case strings.HasPrefix(line, "event: "):
			if ev := strings.TrimPrefix(line, "event: "); ev != "result" {
				t.Fatalf("frame event %q, want result:\n%s", ev, frame)
			}
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if !hasID {
		t.Fatalf("result frame lacks an id line:\n%s", frame)
	}
	if data == "" {
		t.Fatalf("result frame lacks data:\n%s", frame)
	}
	if err := api.Validate("tagResult", []byte(data)); err != nil {
		t.Fatalf("SSE data violates schema: %v\ndata: %s", err, data)
	}
	var tr api.TagResult
	if err := json.Unmarshal([]byte(data), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.EPC != epc {
		t.Fatalf("frame for %q, want %q", tr.EPC, epc)
	}
}

// TestV1ThrottleEnvelope: the serving tier's 429 carries the uniform
// envelope plus Retry-After, like every other tier's refusal.
func TestV1ThrottleEnvelope(t *testing.T) {
	store := serve.NewStore(serve.StoreConfig{History: 4, SwapInterval: 5 * time.Millisecond})
	defer store.Close()
	lim := serve.NewLimiter(serve.LimiterConfig{RatePerSec: 0.001, Burst: 1})
	d := ingest.NewDaemon(nullProc{}, ingest.Config{
		Sessionizer: ingest.SessionizerConfig{CoverageClose: 45}}, store)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(serve.NewServer(store, lim, nil).Wrap(ingest.NewServer(d, store).Handler()))
	defer srv.Close()

	status, _, _ := get(t, srv.URL+"/v1/tags", nil)
	if status != http.StatusOK {
		t.Fatalf("first request throttled: %d", status)
	}
	status, hdr, body := get(t, srv.URL+"/v1/tags", nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request not throttled: %d", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if err := api.Validate("error", body); err != nil {
		t.Errorf("429 envelope violates schema: %v\nbody: %s", err, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RetryAfterMS <= 0 {
		t.Errorf("429 envelope retry_after_ms = %d, want > 0", e.RetryAfterMS)
	}
}

// TestV1DeprecationHeaders: unversioned aliases serve byte-identical
// bodies but advertise their /v1 successor.
func TestV1DeprecationHeaders(t *testing.T) {
	store := serve.NewStore(serve.StoreConfig{History: 4, SwapInterval: 5 * time.Millisecond})
	defer store.Close()
	d := ingest.NewDaemon(nullProc{}, ingest.Config{
		Sessionizer: ingest.SessionizerConfig{CoverageClose: 45}}, store)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(serve.NewServer(store, nil, nil).Wrap(ingest.NewServer(d, store).Handler()))
	defer srv.Close()

	_, vHdr, vBody := get(t, srv.URL+"/v1/tags", nil)
	_, lHdr, lBody := get(t, srv.URL+"/tags", nil)
	if !bytes.Equal(vBody, lBody) {
		t.Errorf("alias body drifted from /v1:\n /v1   %s\n alias %s", vBody, lBody)
	}
	if vHdr.Get("Deprecation") != "" {
		t.Error("/v1 path marked deprecated")
	}
	if lHdr.Get("Deprecation") != "true" {
		t.Error("unversioned alias not marked deprecated")
	}
	if link := lHdr.Get("Link"); !strings.Contains(link, "</v1/tags>") || !strings.Contains(link, "successor-version") {
		t.Errorf("alias Link header %q does not advertise /v1 successor", link)
	}
}

// nullProc is an ingest.Processor that discards every window —
// servers under test here only exercise the HTTP surface.
type nullProc struct{}

func (nullProc) ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult {
	out := make(chan rfprism.WindowResult)
	go func() {
		defer close(out)
		for range in {
		}
	}()
	return out
}
