package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSchemaValidatesCodecOutput(t *testing.T) {
	two := 2
	cases := []struct {
		def string
		v   any
	}{
		{"tagResult", TagResult{
			Schema: Version, EPC: "urn:epc:1", Seq: 3, At: time.Unix(100, 0).UTC(),
			Reason: "coverage", Readings: 200, Channels: 50, Antennas: 4, LatencyMS: 12.5,
			Attempts: 1, Degraded: true, DroppedAntennas: []int{2},
			Estimate: &Estimate{X: 1, Y: 2, AlphaDeg: 30, Kt: 1e-9, Bt0: 0.5},
			Confidence: &Confidence{
				SigmaPhase: 0.05, NormLogLik: -0.4, PosCI90: [3]float64{0.02, 0.04, 0},
				RadialCI90: 0.04, AlphaCI90Deg: 3, Sigma: []float64{1, 2, 3, 4, 5},
				AmbiguityMargin: 12, AltBasins: 1,
				Weights: []AntennaWeight{{ID: 2, Weight: 0.2}},
			},
			StageMS: map[string]float64{"solve": 4.2},
		}},
		{"tagList", TagList{Schema: Version, Tags: []string{"a", "b"}}},
		{"tagList", TagList{Schema: Version, Tags: []string{"a"}, Count: &two, Next: "b",
			Partial: true, MissingShards: []string{"s1"}}},
		{"tagHistory", TagHistory{Schema: Version, EPC: "e", Results: []TagResult{}}},
		{"waitReply", WaitReply{Schema: Version, Epoch: 7, Changed: false}},
		{"ingestReply", IngestReply{Schema: Version, Accepted: 42}},
		{"error", Error{Schema: Version, Error: "bad limit \"x\"", Code: "bad_param"}},
		{"error", Error{Schema: Version, Error: "backpressure", Code: "backpressure",
			RetryAfterMS: 1500, Accepted: 7, Line: 8, Shard: "s2"}},
	}
	for _, c := range cases {
		b, err := json.Marshal(c.v)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(c.def, b); err != nil {
			t.Errorf("%s: codec output rejected by own schema: %v\npayload: %s", c.def, err, b)
		}
	}
}

func TestSchemaRejectsDrift(t *testing.T) {
	cases := []struct {
		name, def, payload, wantErr string
	}{
		{"missing required", "tagList", `{"schema":"v1.1"}`, `missing required property "tags"`},
		{"unknown field", "tagList", `{"schema":"v1.1","tags":[],"tag_count":1}`, `unknown property "tag_count"`},
		{"wrong schema rev", "tagList", `{"schema":"v2.0","tags":[]}`, "not in enum"},
		{"wrong type", "waitReply", `{"schema":"v1.1","epoch":"7","changed":false}`, "is not a integer"},
		{"fractional integer", "error", `{"schema":"v1.1","error":"x","code":"y","retry_after_ms":1.5}`, "is not a integer"},
		{"short ci array", "tagResult", `{"schema":"v1.1","epc":"e","seq":1,"at":"t","closeReason":"r","readings":1,"channels":1,"antennas":1,"latencyMs":1,"confidence":{"sigmaPhase":1,"normLogLik":-1,"posCi90":[1,2],"radialCi90":1,"alphaCi90Deg":1,"ambiguityMargin":1}}`, "need at least 3"},
		{"nested ref", "tagHistory", `{"schema":"v1.1","epc":"e","results":[{"epc":"e","seq":1,"at":"t","closeReason":"r","readings":1,"channels":1,"antennas":1,"latencyMs":1,"estimate":{"x":1}}]}`, `missing required property "y"`},
		{"unknown def", "noSuchThing", `{}`, "no definition"},
		{"not json", "tagList", `{`, "not JSON"},
	}
	for _, c := range cases {
		err := Validate(c.def, []byte(c.payload))
		if err == nil {
			t.Errorf("%s: schema accepted invalid payload", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}
