package api

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Shared query-parameter parsing. Every tier used to parse ?limit=,
// ?wait=, ?since= with its own strconv calls; the error strings
// matched only by discipline. These helpers keep the messages (and
// the 400 envelope they end up in, code "bad_param") uniform, and add
// the clamps the hand-rolled versions never had.

const (
	// MaxLimit caps ?limit= — a page larger than this is served
	// clamped, not refused (the next cursor still pages correctly).
	MaxLimit = 100_000
	// MaxWait caps ?wait= long-poll holds so a client cannot park a
	// connection (and, through the router's relay budget, a router
	// connection) indefinitely.
	MaxWait = 5 * time.Minute
)

// ParamError is a rejected query parameter. Render it with the
// uniform 400 envelope and code "bad_param".
type ParamError struct {
	// Param is the offending parameter name.
	Param string
	msg   string
}

// Error implements error.
func (e *ParamError) Error() string { return e.msg }

// ParseLimit parses ?limit=: absent means 0 (no limit), anything not
// a positive integer is rejected, and values above MaxLimit are
// clamped.
func ParseLimit(q url.Values) (int, *ParamError) {
	raw := q.Get("limit")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return 0, &ParamError{Param: "limit", msg: fmt.Sprintf("bad limit %q", raw)}
	}
	if n > MaxLimit {
		n = MaxLimit
	}
	return n, nil
}

// Cursor returns ?cursor= (opaque; the empty string starts at the
// top).
func Cursor(q url.Values) string { return q.Get("cursor") }

// Prefix returns ?prefix= (the firehose EPC filter).
func Prefix(q url.Values) string { return q.Get("prefix") }

// ParseWait parses a ?wait= long-poll hold: it must be a positive
// Go duration; holds above MaxWait are clamped.
func ParseWait(raw string) (time.Duration, *ParamError) {
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, &ParamError{Param: "wait", msg: fmt.Sprintf("bad wait %q", raw)}
	}
	if d > MaxWait {
		d = MaxWait
	}
	return d, nil
}

// ParseSince parses ?since= (an epoch cursor): absent means 0.
func ParseSince(q url.Values) (uint64, *ParamError) {
	raw := q.Get("since")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, &ParamError{Param: "since", msg: fmt.Sprintf("bad since %q", raw)}
	}
	return n, nil
}

// SSEResume resolves a stream client's resume epoch: the standard SSE
// Last-Event-ID reconnect header wins, else ?since=. ok reports
// whether the client asked to resume at all; an unparsable cursor is
// ignored (a reconnecting browser must get a live stream, not a 400).
func SSEResume(r *http.Request) (since uint64, ok bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("since")
	}
	if raw == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
