// Package eval provides the metrics and plain-text renderers the
// experiment harness uses to regenerate the paper's tables and
// figures: error statistics, empirical CDFs, confusion matrices and
// aligned-column tables.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"rfprism/internal/mathx"
)

// ErrorStats summarizes an error sample.
type ErrorStats struct {
	N                 int
	Mean, Std, Median float64
	P90, Max          float64
}

// Summarize computes ErrorStats over a sample.
func Summarize(errs []float64) ErrorStats {
	return ErrorStats{
		N:      len(errs),
		Mean:   mathx.Mean(errs),
		Std:    mathx.Std(errs),
		Median: mathx.Median(errs),
		P90:    mathx.Percentile(errs, 90),
		Max:    mathx.Percentile(errs, 100),
	}
}

// String renders the stats compactly.
func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f median=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Median, s.P90, s.Max)
}

// CDFSeries renders an empirical CDF as (x, P) rows for a figure.
type CDFSeries struct {
	Label  string
	Sample []float64
}

// Rows returns the CDF evaluated at n evenly spaced sample points.
func (c CDFSeries) Rows(n int) [][2]float64 {
	if len(c.Sample) == 0 || n <= 0 {
		return nil
	}
	sorted := append([]float64(nil), c.Sample...)
	sort.Float64s(sorted)
	out := make([][2]float64, 0, n)
	max := sorted[len(sorted)-1]
	for i := 1; i <= n; i++ {
		x := max * float64(i) / float64(n)
		cdf := mathx.NewCDF(sorted)
		out = append(out, [2]float64{x, cdf.P(x)})
	}
	return out
}

// Confusion is a labeled confusion matrix.
type Confusion struct {
	Labels []string
	Counts [][]int
}

// Accuracy returns overall accuracy.
func (c Confusion) Accuracy() float64 {
	var correct, total int
	for i, row := range c.Counts {
		for j, n := range row {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClass returns the per-class recall (the diagonal of the
// row-normalized matrix — what the paper's Fig. 11 shows).
func (c Confusion) PerClass() []float64 {
	out := make([]float64, len(c.Counts))
	for i, row := range c.Counts {
		var total int
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// String renders the row-normalized matrix like the paper's Fig. 11.
func (c Confusion) String() string {
	var b strings.Builder
	width := 9
	fmt.Fprintf(&b, "%*s", width, "")
	for _, l := range c.Labels {
		fmt.Fprintf(&b, "%*s", width, truncate(l, width-1))
	}
	b.WriteByte('\n')
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "%*s", width, truncate(c.Labels[i], width-1))
		var total int
		for _, n := range row {
			total += n
		}
		for _, n := range row {
			frac := 0.0
			if total > 0 {
				frac = float64(n) / float64(total)
			}
			fmt.Fprintf(&b, "%*.2f", width, frac)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Table renders aligned columns for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
