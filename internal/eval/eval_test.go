package eval

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !strings.Contains(s.String(), "mean=3.000") {
		t.Errorf("String() = %q", s.String())
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", empty)
	}
}

func TestCDFSeriesRows(t *testing.T) {
	c := CDFSeries{Label: "x", Sample: []float64{1, 2, 3, 4}}
	rows := c.Rows(4)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone non-decreasing P, ending at 1.
	prev := -1.0
	for _, r := range rows {
		if r[1] < prev {
			t.Fatalf("CDF not monotone: %v", rows)
		}
		prev = r[1]
	}
	if rows[len(rows)-1][1] != 1 {
		t.Fatalf("CDF does not reach 1: %v", rows)
	}
	if (CDFSeries{}).Rows(5) != nil {
		t.Error("empty sample must give nil rows")
	}
}

func testConfusion() Confusion {
	return Confusion{
		Labels: []string{"a", "b"},
		Counts: [][]int{{8, 2}, {1, 9}},
	}
}

func TestConfusionAccuracy(t *testing.T) {
	c := testConfusion()
	if acc := c.Accuracy(); math.Abs(acc-0.85) > 1e-12 {
		t.Fatalf("Accuracy = %g", acc)
	}
	pc := c.PerClass()
	if math.Abs(pc[0]-0.8) > 1e-12 || math.Abs(pc[1]-0.9) > 1e-12 {
		t.Fatalf("PerClass = %v", pc)
	}
	if (Confusion{}).Accuracy() != 0 {
		t.Error("empty confusion accuracy")
	}
}

func TestConfusionString(t *testing.T) {
	s := testConfusion().String()
	if !strings.Contains(s, "0.80") || !strings.Contains(s, "0.90") {
		t.Fatalf("rendered matrix missing normalized values:\n%s", s)
	}
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatalf("rendered matrix missing labels:\n%s", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := Table{Header: []string{"name", "value"}}
	tab.AddRow("x", "1.0")
	tab.AddRow("longer-name", "2.0")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Separator must be dashes.
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing separator:\n%s", out)
	}
	// Columns must be visually aligned: "value" column starts at the
	// same offset in header and rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1.0") && !strings.HasPrefix(lines[3][idx:], "2.0") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}
