package rf

import (
	"math"
	"math/rand"
)

// Impedance phase model.
//
// When a passive tag is attached to an object, the object's
// permittivity and conductivity detune the tag antenna: its impedance
// shifts, which rotates the phase of the backscatter reflection
// coefficient. Across the narrow 902–928 MHz band the rotation is
// very nearly linear in frequency (the paper's Eq. (5) and Fig. 6):
//
//	θdevice(f) = k_t·f + b_t  (mod 2π)
//
// We parameterize the line around the band center f₀ (see DESIGN.md §2
// for why the centered form is the numerically sane one) and add a
// small smooth frequency-selective ripple whose shape is a continuous
// function of the material's electromagnetic properties, so that
// similar materials produce similar 50-channel signatures.

// ktScale converts the material polarizability to a phase-vs-frequency
// slope contribution; the spread across materials matches the several
// radians over the band seen in the paper's Fig. 6.
const (
	ktPolarizScale = 1.5e-8 // rad/Hz per unit polarizability
	ktConductScale = 2.5e-9 // rad/Hz per unit conductivity factor
	btPolarizScale = 5.0    // rad per unit polarizability
	btConductScale = 2.0    // rad per unit conductivity factor
)

// KtPhysicalMean and KtPhysicalSigma summarize the physically
// plausible range of the common slope offset k_t (material slope plus
// residual tag diversity) that the solver may assume as a weak prior:
// materials span [0, ~2e-8] rad/Hz with this model.
const (
	KtPhysicalMean  = 1.0e-8
	KtPhysicalSigma = 1.5e-8
)

// MaterialSignature is the noiseless device-phase line a material
// imprints on an attached tag, centered at CenterFrequencyHz.
type MaterialSignature struct {
	// Kt is the material slope k_t in rad/Hz (Eq. 5).
	Kt float64
	// Bt0 is the material intercept at the band center, in rad.
	Bt0 float64
	// ripple parameters (amplitudes in rad, periods in Hz, phases in
	// rad); see Ripple.
	rippleAmp1, ripplePeriod1, ripplePhase1 float64
	rippleAmp2, ripplePeriod2, ripplePhase2 float64
}

// SignatureOf derives the device-phase signature of a material from
// its electromagnetic properties. The mapping is deterministic and
// continuous: nearby (εr, σ) pairs yield nearby signatures.
func SignatureOf(m Material) MaterialSignature {
	cm := m.polarizability()
	cf := m.conductivityFactor()
	// Ripple amplitudes scale with polarizability so the bare tag
	// ("none", cm = 0) has a perfectly straight device line.
	gate := cm
	if gate > 1 {
		gate = 1
	}
	return MaterialSignature{
		Kt:  ktPolarizScale*cm + ktConductScale*cf,
		Bt0: btPolarizScale*cm + btConductScale*cf,

		rippleAmp1:    gate * (0.18 + 0.20*cf),
		ripplePeriod1: (8 + 10*cm) * 1e6,
		ripplePhase1:  7*cm + 3*cf,

		rippleAmp2:    gate * (0.11 + 0.12*cm),
		ripplePeriod2: (17 + 6*cf) * 1e6,
		ripplePhase2:  2.5*cm + 5*cf,
	}
}

// Ripple returns the frequency-selective deviation from the straight
// line at frequency f, in radians. It models the residual
// frequency-selective fading the paper compensates with the
// θmaterial(f) feature terms (Eq. 9).
func (s MaterialSignature) Ripple(f float64) float64 {
	df := f - CenterFrequencyHz
	return s.rippleAmp1*math.Sin(2*math.Pi*df/s.ripplePeriod1+s.ripplePhase1) +
		s.rippleAmp2*math.Sin(2*math.Pi*df/s.ripplePeriod2+s.ripplePhase2)
}

// Phase returns the noiseless device phase contribution at frequency
// f: the centered line plus ripple (not wrapped).
func (s MaterialSignature) Phase(f float64) float64 {
	return s.Kt*(f-CenterFrequencyHz) + s.Bt0 + s.Ripple(f)
}

// Attachment represents one physical placement of a tag onto an
// object. Each placement perturbs the coupling (air gap, adhesive
// pressure, exact position on the object), which jitters the
// effective signature — this placement-to-placement variability is
// what makes material classification a statistical problem rather
// than a table lookup.
type Attachment struct {
	Sig MaterialSignature
}

// AttachmentJitter controls the placement-to-placement variability.
type AttachmentJitter struct {
	// CouplingStd is the std-dev of the multiplicative jitter on the
	// signature strength (dimensionless, around 1).
	CouplingStd float64
	// PhaseStd is the std-dev of the additive intercept jitter (rad).
	PhaseStd float64
}

// DefaultAttachmentJitter reflects hand-placed paper-substrate tags.
func DefaultAttachmentJitter() AttachmentJitter {
	return AttachmentJitter{CouplingStd: 0.10, PhaseStd: 0.18}
}

// Attach creates a jittered placement of a tag on the material using
// the provided RNG. A nil rng yields the noiseless signature.
func Attach(m Material, jitter AttachmentJitter, rng *rand.Rand) Attachment {
	sig := SignatureOf(m)
	if rng == nil {
		return Attachment{Sig: sig}
	}
	coupling := 1 + rng.NormFloat64()*jitter.CouplingStd
	sig.Kt *= coupling
	sig.Bt0 = sig.Bt0*coupling + rng.NormFloat64()*jitter.PhaseStd
	sig.rippleAmp1 *= coupling
	sig.rippleAmp2 *= coupling
	sig.ripplePhase1 += rng.NormFloat64() * jitter.PhaseStd
	sig.ripplePhase2 += rng.NormFloat64() * jitter.PhaseStd
	return Attachment{Sig: sig}
}

// TagDiversity is the per-tag manufacturing offset θ_device0 of §V-B:
// a constant line per reader-tag pair, removable by the paper's
// one-time calibration.
type TagDiversity struct {
	// Kd is the per-tag slope offset in rad/Hz.
	Kd float64
	// Bd0 is the per-tag intercept at band center in rad.
	Bd0 float64
}

// NewTagDiversity draws a random per-tag hardware offset. The slope
// spread is small (sub-centimeter-equivalent): tag ICs of one product
// line are well matched; the intercept is essentially arbitrary.
func NewTagDiversity(rng *rand.Rand) TagDiversity {
	if rng == nil {
		return TagDiversity{}
	}
	return TagDiversity{
		Kd:  rng.NormFloat64() * 0.25e-8,
		Bd0: rng.Float64() * 2 * math.Pi,
	}
}

// Phase returns the per-tag hardware phase at frequency f.
func (t TagDiversity) Phase(f float64) float64 {
	return t.Kd*(f-CenterFrequencyHz) + t.Bd0
}

// NewReaderOffset draws a random per-antenna-port hardware offset.
// The slope spread is dominated by cable-length differences (a one
// meter cable difference contributes ≈3e-8 rad/Hz), which is why the
// paper requires the pre-deployment antenna calibration (§IV-C).
func NewReaderOffset(rng *rand.Rand) TagDiversity {
	if rng == nil {
		return TagDiversity{}
	}
	return TagDiversity{
		Kd:  rng.NormFloat64() * 3e-8,
		Bd0: rng.Float64() * 2 * math.Pi,
	}
}
