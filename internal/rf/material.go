package rf

import (
	"fmt"
	"math"
	"sort"
)

// Material describes the electromagnetic properties of an object a tag
// can be attached to. The tag-impedance phase model (impedance.go)
// derives the paper's (k_t, b_t) signature and the frequency-selective
// ripple from these properties, so electromagnetically similar
// materials (water vs. skim milk) produce similar signatures — the
// property behind the paper's Fig. 11 confusion structure.
type Material struct {
	// Name is the identifier used throughout the evaluation
	// ("wood", "water", ...).
	Name string
	// Permittivity is the real relative permittivity εr at 915 MHz.
	Permittivity float64
	// Conductivity is the conductivity σ in S/m at 915 MHz.
	Conductivity float64
	// LossDB is the extra one-way link attenuation the object causes.
	LossDB float64
	// NoiseBoost scales the reader phase-noise when the tag is on
	// this object (conductors reflect and bury the backscatter; the
	// paper observes higher errors for metal and conductive liquids).
	NoiseBoost float64
	// Conductor marks metals, whose polarization factor saturates
	// beyond the dielectric Clausius–Mossotti limit.
	Conductor bool
}

// polarizability maps permittivity to the Clausius–Mossotti factor
// (εr−1)/(εr+2) ∈ [0, 1); conductors saturate above the dielectric
// limit because the impedance shift is dominated by image currents.
func (m Material) polarizability() float64 {
	if m.Conductor {
		return 1.15
	}
	return (m.Permittivity - 1) / (m.Permittivity + 2)
}

// conductivityFactor maps conductivity to a bounded [0,1) factor.
func (m Material) conductivityFactor() float64 {
	return math.Tanh(m.Conductivity / 0.5)
}

// The eight materials of the paper's evaluation (§VI-B): four solids
// and four liquids, chosen for their distinct conductivities. Values
// are representative 915 MHz properties.
var builtinMaterials = []Material{
	{Name: "none", Permittivity: 1.0, Conductivity: 0, LossDB: 0, NoiseBoost: 1.0},
	{Name: "wood", Permittivity: 2.1, Conductivity: 0.012, LossDB: 1.0, NoiseBoost: 1.0},
	{Name: "plastic", Permittivity: 2.6, Conductivity: 0.0008, LossDB: 0.5, NoiseBoost: 1.0},
	{Name: "glass", Permittivity: 5.7, Conductivity: 0.003, LossDB: 1.5, NoiseBoost: 1.05},
	{Name: "metal", Permittivity: 1.0, Conductivity: 1e7, LossDB: 4.0, NoiseBoost: 1.45, Conductor: true},
	{Name: "water", Permittivity: 78, Conductivity: 0.18, LossDB: 3.0, NoiseBoost: 1.25},
	{Name: "milk", Permittivity: 71, Conductivity: 0.30, LossDB: 3.0, NoiseBoost: 1.25},
	{Name: "oil", Permittivity: 3.0, Conductivity: 0.0015, LossDB: 0.8, NoiseBoost: 1.05},
	{Name: "alcohol", Permittivity: 28, Conductivity: 0.09, LossDB: 2.5, NoiseBoost: 1.2},
}

// MaterialByName returns the built-in material with the given name.
func MaterialByName(name string) (Material, error) {
	for _, m := range builtinMaterials {
		if m.Name == name {
			return m, nil
		}
	}
	return Material{}, fmt.Errorf("rf: unknown material %q", name)
}

// EvaluationMaterials returns the eight materials of the paper's
// evaluation in its canonical order (wood, plastic, glass, metal,
// water, milk, oil, alcohol).
func EvaluationMaterials() []Material {
	names := []string{"wood", "plastic", "glass", "metal", "water", "milk", "oil", "alcohol"}
	out := make([]Material, 0, len(names))
	for _, n := range names {
		m, err := MaterialByName(n)
		if err != nil {
			continue // unreachable for built-in names
		}
		out = append(out, m)
	}
	return out
}

// AllMaterials returns every built-in material sorted by name
// (including "none", the bare calibration state).
func AllMaterials() []Material {
	out := make([]Material, len(builtinMaterials))
	copy(out, builtinMaterials)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
