// Package rf models the physical layer of a UHF RFID link: the FCC
// channel plan, round-trip propagation phase and RSSI, the
// polarization phase of a circularly-polarized reader antenna reading
// a linearly-polarized tag, the material-dependent tag impedance phase,
// multipath superposition and the reader's measurement imperfections.
//
// It is the substrate that replaces the paper's ImpinJ R420 + Laird
// antenna testbed (see DESIGN.md §2).
package rf

import (
	"fmt"
	"math"
)

const (
	// SpeedOfLight is the propagation speed of EM waves in m/s.
	SpeedOfLight = 2.99792458e8

	// NumChannels is the number of FCC hopping channels used by the
	// ImpinJ R420 in the 902–928 MHz ISM band.
	NumChannels = 50

	// ChannelSpacingHz is the spacing between adjacent channels.
	ChannelSpacingHz = 500e3

	// FirstChannelHz is the center frequency of channel 0.
	FirstChannelHz = 902.75e6

	// CenterFrequencyHz is the band center used by the numerically
	// conditioned "centered intercept" line fit (see DESIGN.md §2).
	CenterFrequencyHz = 915.0e6

	// PhaseQuantum is the reader's phase reporting resolution. The
	// ImpinJ R420 reports phase as a 12-bit angle (2π/4096 rad).
	PhaseQuantum = 2 * math.Pi / 4096

	// RSSIQuantumDB is the reader's RSSI reporting resolution in dB.
	RSSIQuantumDB = 0.5
)

// ChannelFreq returns the center frequency in Hz of channel ch
// (0-based). It panics only through the returned error contract: an
// out-of-range channel yields an error.
func ChannelFreq(ch int) (float64, error) {
	if ch < 0 || ch >= NumChannels {
		return 0, fmt.Errorf("rf: channel %d out of range [0,%d)", ch, NumChannels)
	}
	return FirstChannelHz + float64(ch)*ChannelSpacingHz, nil
}

// channelTable is the memoized channel plan. It is computed once at
// package init; all hot paths read it through ChannelTable.
var channelTable = func() [NumChannels]float64 {
	var out [NumChannels]float64
	for i := range out {
		out[i] = FirstChannelHz + float64(i)*ChannelSpacingHz
	}
	return out
}()

// Channels returns the center frequencies of all hopping channels in
// ascending order. The slice is freshly allocated on every call, so
// callers may mutate it; allocation-sensitive loops should use
// ChannelTable instead.
func Channels() []float64 {
	out := channelTable
	return out[:]
}

// ChannelTable returns the shared channel-frequency table without
// allocating. The returned slice is read-only: callers must not
// modify it (use Channels for a private copy).
func ChannelTable() []float64 {
	return channelTable[:]
}

// Wavelength returns the free-space wavelength at frequency f (Hz).
func Wavelength(f float64) float64 { return SpeedOfLight / f }

// PropagationPhase returns the unwrapped round-trip propagation phase
// θprop = 2π · 2d·f / c for antenna-tag distance d (m) at frequency f
// (Hz) — Eq. (3) of the paper before the mod 2π.
func PropagationPhase(d, f float64) float64 {
	return 4 * math.Pi * d * f / SpeedOfLight
}

// PropagationSlope returns ∂θprop/∂f = 4πd/c, the distance-dependent
// part of the phase-vs-frequency slope k in Eq. (6).
func PropagationSlope(d float64) float64 {
	return 4 * math.Pi * d / SpeedOfLight
}

// DistanceFromSlope inverts PropagationSlope: d = c·k/(4π).
func DistanceFromSlope(k float64) float64 {
	return SpeedOfLight * k / (4 * math.Pi)
}

// QuantizePhase rounds a phase to the reader's reporting resolution
// and wraps it into [0, 2π).
func QuantizePhase(theta float64) float64 {
	q := math.Round(theta/PhaseQuantum) * PhaseQuantum
	q = math.Mod(q, 2*math.Pi)
	if q < 0 {
		q += 2 * math.Pi
	}
	return q
}

// QuantizeRSSI rounds an RSSI value (dBm) to the reader's resolution.
func QuantizeRSSI(dbm float64) float64 {
	return math.Round(dbm/RSSIQuantumDB) * RSSIQuantumDB
}

// RSSI returns the received backscatter power in dBm for a round trip
// over distance d with the given extra attenuation (dB) from the
// tagged material. The model is the monostatic radar form of Friis:
// power decays with d⁴, normalized so that d = 1 m reads refDBm.
func RSSI(d, refDBm, materialLossDB float64) float64 {
	if d < 0.05 {
		d = 0.05
	}
	return refDBm - 40*math.Log10(d) - materialLossDB
}

// DistanceFromRSSI inverts RSSI ignoring material loss; this is the
// coarse compensation the Tagtag baseline uses and is intentionally
// biased when material loss is present.
func DistanceFromRSSI(dbm, refDBm float64) float64 {
	return math.Pow(10, (refDBm-dbm)/40)
}
