package rf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChannelFreq(t *testing.T) {
	f0, err := ChannelFreq(0)
	if err != nil || f0 != 902.75e6 {
		t.Fatalf("channel 0: %g, %v", f0, err)
	}
	fLast, err := ChannelFreq(NumChannels - 1)
	if err != nil || fLast != 927.25e6 {
		t.Fatalf("channel 49: %g, %v", fLast, err)
	}
	if _, err := ChannelFreq(-1); err == nil {
		t.Error("negative channel must error")
	}
	if _, err := ChannelFreq(NumChannels); err == nil {
		t.Error("out-of-range channel must error")
	}
}

func TestChannels(t *testing.T) {
	chs := Channels()
	if len(chs) != NumChannels {
		t.Fatalf("len = %d", len(chs))
	}
	for i := 1; i < len(chs); i++ {
		if math.Abs(chs[i]-chs[i-1]-ChannelSpacingHz) > 1e-6 {
			t.Fatalf("spacing at %d: %g", i, chs[i]-chs[i-1])
		}
	}
	// The band must stay inside the 902–928 MHz ISM band.
	if chs[0] < 902e6 || chs[len(chs)-1] > 928e6 {
		t.Fatalf("band [%g, %g] outside ISM", chs[0], chs[len(chs)-1])
	}
	// Freshly allocated each call.
	chs[0] = 0
	if Channels()[0] == 0 {
		t.Error("Channels aliases internal state")
	}
}

func TestPropagationPhaseSlopeInverse(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || d < 0 || d > 100 {
			return true
		}
		k := PropagationSlope(d)
		return math.Abs(DistanceFromSlope(k)-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropagationPhaseLinearInFreq(t *testing.T) {
	// θprop(f) must be linear in f with slope 4πd/c.
	d := 1.7
	f1, f2 := 905e6, 925e6
	slope := (PropagationPhase(d, f2) - PropagationPhase(d, f1)) / (f2 - f1)
	if math.Abs(slope-PropagationSlope(d)) > 1e-15 {
		t.Fatalf("slope %g vs %g", slope, PropagationSlope(d))
	}
}

func TestPropagationRoundTrip(t *testing.T) {
	// One wavelength of distance is 4π of round-trip phase... i.e.
	// λ/2 of distance is exactly 2π.
	f := 915e6
	lambda := Wavelength(f)
	dphi := PropagationPhase(lambda/2, f)
	if math.Abs(dphi-2*math.Pi) > 1e-9 {
		t.Fatalf("λ/2 phase = %g, want 2π", dphi)
	}
}

func TestQuantizePhase(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.Abs(theta) > 1e9 {
			return true
		}
		q := QuantizePhase(theta)
		if q < 0 || q >= 2*math.Pi {
			return false
		}
		// Quantization error is at most half a quantum (mod 2π).
		diff := math.Mod(q-theta, 2*math.Pi)
		if diff > math.Pi {
			diff -= 2 * math.Pi
		} else if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		return math.Abs(diff) <= PhaseQuantum/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeRSSI(t *testing.T) {
	if got := QuantizeRSSI(-53.26); got != -53.5 {
		t.Errorf("QuantizeRSSI = %g", got)
	}
	if got := QuantizeRSSI(-53.24); got != -53.0 {
		t.Errorf("QuantizeRSSI = %g", got)
	}
}

func TestRSSIMonotone(t *testing.T) {
	// RSSI must decrease with distance and with material loss.
	if RSSI(1, -48, 0) <= RSSI(2, -48, 0) {
		t.Error("RSSI not decreasing with distance")
	}
	if RSSI(1, -48, 0) <= RSSI(1, -48, 3) {
		t.Error("RSSI not decreasing with loss")
	}
	if RSSI(1, -48, 0) != -48 {
		t.Errorf("reference RSSI at 1 m = %g", RSSI(1, -48, 0))
	}
}

func TestDistanceFromRSSIInverse(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || d < 0.1 || d > 10 {
			return true
		}
		rssi := RSSI(d, -48, 0)
		return math.Abs(DistanceFromRSSI(rssi, -48)-d) < 1e-9*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceFromRSSIMaterialBias(t *testing.T) {
	// Material loss must bias the RSS-derived distance upward — the
	// Tagtag weakness the paper exploits.
	d := 1.5
	biased := DistanceFromRSSI(RSSI(d, -48, 6), -48)
	if biased <= d {
		t.Fatalf("loss did not inflate RSS distance: %g <= %g", biased, d)
	}
}
