package rf

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaterialByName(t *testing.T) {
	m, err := MaterialByName("water")
	if err != nil || m.Name != "water" {
		t.Fatalf("water lookup: %+v, %v", m, err)
	}
	if _, err := MaterialByName("unobtainium"); err == nil {
		t.Fatal("unknown material must error")
	}
}

func TestEvaluationMaterials(t *testing.T) {
	mats := EvaluationMaterials()
	if len(mats) != 8 {
		t.Fatalf("want the paper's 8 materials, got %d", len(mats))
	}
	want := []string{"wood", "plastic", "glass", "metal", "water", "milk", "oil", "alcohol"}
	for i, m := range mats {
		if m.Name != want[i] {
			t.Errorf("material %d = %s, want %s", i, m.Name, want[i])
		}
	}
}

func TestAllMaterialsSortedAndIncludesNone(t *testing.T) {
	all := AllMaterials()
	foundNone := false
	for i, m := range all {
		if m.Name == "none" {
			foundNone = true
		}
		if i > 0 && all[i-1].Name > m.Name {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if !foundNone {
		t.Fatal("'none' missing from AllMaterials")
	}
}

func TestSignatureContinuity(t *testing.T) {
	// Electromagnetically similar materials must yield similar
	// signatures (water vs milk), dissimilar ones must not (wood vs
	// water) — the property behind the paper's Fig. 11 confusion
	// structure.
	sig := func(name string) MaterialSignature {
		m, err := MaterialByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return SignatureOf(m)
	}
	dist := func(a, b MaterialSignature) float64 {
		return math.Abs(a.Bt0-b.Bt0) + math.Abs(a.Kt-b.Kt)*5e7
	}
	waterMilk := dist(sig("water"), sig("milk"))
	woodWater := dist(sig("wood"), sig("water"))
	if waterMilk >= woodWater {
		t.Fatalf("water-milk distance %g >= wood-water %g", waterMilk, woodWater)
	}
}

func TestSignatureBareTagIsClean(t *testing.T) {
	none, err := MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	sig := SignatureOf(none)
	if sig.Kt != 0 || sig.Bt0 != 0 {
		t.Fatalf("bare tag signature not zero: %+v", sig)
	}
	for _, f := range Channels() {
		if sig.Ripple(f) != 0 {
			t.Fatalf("bare tag has ripple at %g", f)
		}
	}
}

func TestSignatureKtOrdering(t *testing.T) {
	// Higher-permittivity materials must produce larger kt (the
	// distinct slopes of the paper's Fig. 6).
	kt := func(name string) float64 {
		m, _ := MaterialByName(name)
		return SignatureOf(m).Kt
	}
	if !(kt("wood") < kt("glass") && kt("glass") < kt("water")) {
		t.Fatalf("kt ordering broken: wood %g glass %g water %g",
			kt("wood"), kt("glass"), kt("water"))
	}
	if kt("metal") <= kt("glass") {
		t.Fatal("metal kt must exceed dielectrics")
	}
}

func TestSignaturePhaseIsLinePlusRipple(t *testing.T) {
	m, _ := MaterialByName("glass")
	sig := SignatureOf(m)
	for _, f := range []float64{905e6, 915e6, 925e6} {
		want := sig.Kt*(f-CenterFrequencyHz) + sig.Bt0 + sig.Ripple(f)
		if got := sig.Phase(f); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Phase(%g) = %g, want %g", f, got, want)
		}
	}
}

func TestAttachJitter(t *testing.T) {
	m, _ := MaterialByName("water")
	base := SignatureOf(m)

	// nil RNG → exact signature.
	if got := Attach(m, DefaultAttachmentJitter(), nil); got.Sig != base {
		t.Fatal("nil rng must return the noiseless signature")
	}
	// Jittered placements differ from each other but stay close.
	rng := rand.New(rand.NewSource(5))
	a := Attach(m, DefaultAttachmentJitter(), rng)
	b := Attach(m, DefaultAttachmentJitter(), rng)
	if a.Sig == b.Sig {
		t.Fatal("two placements must differ")
	}
	if rel := math.Abs(a.Sig.Kt-base.Kt) / base.Kt; rel > 0.5 {
		t.Fatalf("jittered Kt off by %.0f%%", rel*100)
	}
	if math.Abs(a.Sig.Bt0-base.Bt0) > 2 {
		t.Fatalf("jittered Bt0 too far: %g vs %g", a.Sig.Bt0, base.Bt0)
	}
}

func TestTagDiversityDeterministicPerSeed(t *testing.T) {
	a := NewTagDiversity(rand.New(rand.NewSource(9)))
	b := NewTagDiversity(rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatal("same seed must give the same diversity")
	}
	if z := NewTagDiversity(nil); z != (TagDiversity{}) {
		t.Fatal("nil rng must give zero diversity")
	}
}

func TestReaderOffsetLargerThanTagDiversity(t *testing.T) {
	// Cable-dominated reader offsets must dwarf per-tag IC matching;
	// otherwise the antenna calibration (§IV-C) would be pointless.
	rng := rand.New(rand.NewSource(10))
	var sumTag, sumReader float64
	for i := 0; i < 200; i++ {
		sumTag += math.Abs(NewTagDiversity(rng).Kd)
		sumReader += math.Abs(NewReaderOffset(rng).Kd)
	}
	if sumReader < 3*sumTag {
		t.Fatalf("reader offsets (%g) not clearly larger than tag diversity (%g)", sumReader, sumTag)
	}
}

func TestTagDiversityPhaseLine(t *testing.T) {
	d := TagDiversity{Kd: 1e-9, Bd0: 0.5}
	if got := d.Phase(CenterFrequencyHz); got != 0.5 {
		t.Fatalf("Phase at center = %g", got)
	}
	if got := d.Phase(CenterFrequencyHz + 1e6); math.Abs(got-0.5-1e-3) > 1e-12 {
		t.Fatalf("Phase slope wrong: %g", got)
	}
}
