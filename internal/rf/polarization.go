package rf

import (
	"math"

	"rfprism/internal/geom"
)

// OrientationPhase returns θorient for a signal propagating from a
// circularly-polarized reader antenna with polarization frame (U, V)
// to a linearly-polarized tag whose polarization vector is w
// (Eq. (4) of the paper):
//
//	tan(θorient) = 2(u·w)(v·w) / ((u·w)² − (v·w)²)
//
// Geometrically this is the angle-doubling of a CP→LP link: if w
// projects onto the antenna's polarization plane at angle φ from U,
// θorient = 2φ. The result is wrapped into [0, 2π). θorient does not
// depend on frequency.
func OrientationPhase(frame geom.Frame, w geom.Vec3) float64 {
	a := frame.U.Dot(w)
	b := frame.V.Dot(w)
	if a == 0 && b == 0 {
		// w is aligned with the boresight: the projection is
		// degenerate and the polarization phase is undefined; by
		// convention return 0 (the link would also be unreadable).
		return 0
	}
	theta := math.Atan2(2*a*b, a*a-b*b)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta
}

// PolarizationLossDB returns the additional link loss (dB) caused by
// the misalignment between the tag's polarization vector and the
// antenna's polarization plane. A CP→LP link loses a constant 3 dB
// regardless of in-plane rotation, plus the projection loss when the
// tag vector leans out of the plane toward the boresight.
func PolarizationLossDB(frame geom.Frame, w geom.Vec3) float64 {
	a := frame.U.Dot(w)
	b := frame.V.Dot(w)
	inPlane := math.Hypot(a, b) / math.Max(w.Norm(), 1e-12)
	if inPlane < 1e-6 {
		inPlane = 1e-6
	}
	return 3 - 20*math.Log10(inPlane)
}

// TagPolarization2D returns the 3D polarization vector of a tag lying
// in the XY working plane with in-plane rotation alpha (radians).
func TagPolarization2D(alpha float64) geom.Vec3 {
	return geom.Vec3{X: math.Cos(alpha), Y: math.Sin(alpha), Z: 0}
}

// TagPolarization3D returns the polarization vector for a tag oriented
// with the given azimuth and elevation angles (radians).
func TagPolarization3D(azimuth, elevation float64) geom.Vec3 {
	return geom.FromSpherical(azimuth, elevation)
}
