package rf

import (
	"math"
	"math/cmplx"

	"rfprism/internal/geom"
)

// Reflector is a specular multipath source modeled by the image
// method: the reflected path antenna→reflector→tag behaves like a
// direct path from the antenna's mirror image, with an amplitude
// reflection coefficient and the conventional π phase shift.
type Reflector struct {
	// Plane point and unit normal defining the reflecting surface.
	Point  geom.Vec3
	Normal geom.Vec3
	// Coefficient is the amplitude reflection coefficient in [0, 1].
	Coefficient float64
}

// mirror returns p mirrored across the reflector plane.
func (r Reflector) mirror(p geom.Vec3) geom.Vec3 {
	n := r.Normal.Unit()
	d := p.Sub(r.Point).Dot(n)
	return p.Sub(n.Scale(2 * d))
}

// PathLength returns the one-way length of the reflected path from a
// to b via the reflector.
func (r Reflector) PathLength(a, b geom.Vec3) float64 {
	return r.mirror(a).Dist(b)
}

// Echo is a long-delay multipath component: the aggregate of
// multi-bounce propagation in a cluttered room (metal shelving,
// trolleys). Unlike a first-order Reflector its amplitude is not tied
// to the image distance — multiple bounces between large surfaces
// keep appreciable energy at long excess delays. Long delays are what
// make the per-channel deviation *frequency-selective within the
// 24.5 MHz band*: an echo with excess path L adds a component with
// period c/L in frequency, so some channels land near destructive
// fades and deviate strongly while the rest stay clean — exactly the
// structure the paper's channel selection (§V-D) exploits.
type Echo struct {
	// ExtraPathM is the excess round-trip path length vs LOS (m).
	ExtraPathM float64
	// Amp is the round-trip amplitude relative to the LOS component.
	Amp float64
	// SwayM and SwayHz describe slow motion of the scattering
	// environment (people shifting their weight, swinging doors): the
	// excess path oscillates by ±SwayM meters at SwayHz. Because the
	// reader visits channels sequentially (200 ms per dwell), each
	// channel samples a different multipath realization — some land
	// on destructive alignments and deviate strongly while others
	// stay clean, the exact structure §V-D's channel selection
	// exploits.
	SwayM, SwayHz float64
	// SwayPhase is the motion's phase offset at t = 0 (rad).
	SwayPhase float64
}

// pathAt returns the echo's excess path at time t (seconds).
func (e Echo) pathAt(tSec float64) float64 {
	if e.SwayM == 0 || e.SwayHz == 0 {
		return e.ExtraPathM
	}
	return e.ExtraPathM + e.SwayM*math.Sin(2*math.Pi*e.SwayHz*tSec+e.SwayPhase)
}

// Environment describes the propagation environment of a scene: the
// set of first-order reflectors and long-delay echoes. An empty
// environment is the paper's "clean space".
type Environment struct {
	Reflectors []Reflector
	Echoes     []Echo
}

// CleanSpace returns an environment with no multipath.
func CleanSpace() Environment { return Environment{} }

// LabMultipath returns an environment resembling the paper's
// multipath setup: cartons and people around the working region plus
// room surfaces, with LOS still dominant ("the LOS propagation is
// still guaranteed", §VI). The mix matters: nearby weak scatterers
// add slowly-varying deviations (slope bias), while the farther
// strong surfaces produce path differences of several meters whose
// deviations oscillate within the 24.5 MHz band — the per-channel
// outliers the channel selection (§V-D) can identify and drop.
func LabMultipath() Environment {
	return Environment{
		Reflectors: []Reflector{
			// A carton stack near the left edge of the region and a
			// person to the right: weak first-order scatterers whose
			// deviation varies slowly over the band (a residual slope
			// bias suppression cannot fully remove).
			{Point: geom.Vec3{X: -1.2}, Normal: geom.Vec3{X: 1}, Coefficient: 0.06},
			{Point: geom.Vec3{X: 3.4}, Normal: geom.Vec3{X: -1}, Coefficient: 0.05},
		},
		Echoes: []Echo{
			// A reverberation tail of multi-bounce components off the
			// room's surfaces: individually weak (LOS stays dominant,
			// §VI), but their wide delay spread makes the aggregate
			// deviation frequency-selective within the band — where
			// several align, a channel sees a deep fade (low RSSI) and
			// a large phase excursion, which is what the channel
			// selection (§V-D) detects and drops.
			{ExtraPathM: 18.0, Amp: 0.13, SwayM: 0.12, SwayHz: 0.45, SwayPhase: 0.7},
			{ExtraPathM: 26.5, Amp: 0.12, SwayM: 0.16, SwayHz: 0.31, SwayPhase: 2.1},
			{ExtraPathM: 33.0, Amp: 0.11, SwayM: 0.10, SwayHz: 0.58, SwayPhase: 4.4},
			{ExtraPathM: 41.0, Amp: 0.10, SwayM: 0.14, SwayHz: 0.39, SwayPhase: 1.3},
			{ExtraPathM: 49.5, Amp: 0.12, SwayM: 0.11, SwayHz: 0.52, SwayPhase: 5.6},
			{ExtraPathM: 58.0, Amp: 0.09, SwayM: 0.15, SwayHz: 0.27, SwayPhase: 3.0},
			{ExtraPathM: 71.0, Amp: 0.10, SwayM: 0.09, SwayHz: 0.63, SwayPhase: 0.2},
			{ExtraPathM: 87.0, Amp: 0.08, SwayM: 0.13, SwayHz: 0.35, SwayPhase: 5.1},
		},
	}
}

// ChannelResponse is ChannelResponseAt at t = 0.
func (e Environment) ChannelResponse(antenna, tag geom.Vec3, f float64) complex128 {
	return e.ChannelResponseAt(antenna, tag, f, 0)
}

// ChannelResponseAt returns the complex baseband channel gain for the
// round trip antenna→tag→antenna at frequency f and time tSec,
// combining the LOS path with every reflected path and the (possibly
// time-varying) reverberation tail. The LOS amplitude is normalized
// to 1; reflected paths are attenuated by their reflection
// coefficient and their extra spreading loss.
//
// The phase of the returned value is the propagation phase the reader
// observes; with an empty environment it equals exactly −θprop(d, f).
func (e Environment) ChannelResponseAt(antenna, tag geom.Vec3, f float64, tSec float64) complex128 {
	dLOS := antenna.Dist(tag)
	if dLOS < 1e-9 {
		dLOS = 1e-9
	}
	// One-way complex gains: LOS plus each reflection.
	type path struct {
		length float64
		amp    float64
		flip   bool // π reflection phase
	}
	paths := make([]path, 0, 1+len(e.Reflectors))
	paths = append(paths, path{length: dLOS, amp: 1})
	for _, r := range e.Reflectors {
		l := r.PathLength(antenna, tag)
		if l < dLOS {
			continue // non-physical (image inside the region)
		}
		// Field amplitude relative to LOS: reflection coefficient
		// times the extra spreading loss of the longer path (field
		// decays as 1/r, so the ratio is dLOS/l).
		amp := r.Coefficient * (dLOS / l)
		paths = append(paths, path{length: l, amp: amp, flip: true})
	}
	// Round-trip gain is the square of the one-way sum (reciprocity:
	// the same paths apply on the downlink and the uplink).
	var oneWay complex128
	k := 2 * math.Pi * f / SpeedOfLight
	for _, p := range paths {
		ph := -k * p.length
		if p.flip {
			ph += math.Pi
		}
		oneWay += complex(p.amp, 0) * cmplx.Exp(complex(0, ph))
	}
	h := oneWay * oneWay
	// Long-delay reverberation, relative to the round-trip LOS.
	for _, echo := range e.Echoes {
		ph := -k * (2*dLOS + echo.pathAt(tSec))
		h += complex(echo.Amp, 0) * cmplx.Exp(complex(0, ph))
	}
	return h
}

// PropagationObservation is PropagationObservationAt at t = 0.
func (e Environment) PropagationObservation(antenna, tag geom.Vec3, f float64) (phase, relPower float64) {
	return e.PropagationObservationAt(antenna, tag, f, 0)
}

// PropagationObservationAt is the multipath-aware propagation phase
// and the relative power (linear, LOS≡1) at frequency f and time t.
func (e Environment) PropagationObservationAt(antenna, tag geom.Vec3, f float64, tSec float64) (phase, relPower float64) {
	h := e.ChannelResponseAt(antenna, tag, f, tSec)
	// The reader measures the conjugate rotation: θprop grows with
	// distance while arg(h) decreases, so negate.
	return -cmplx.Phase(h), cmplx.Abs(h)
}
