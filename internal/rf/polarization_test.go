package rf

import (
	"math"
	"testing"
	"testing/quick"

	"rfprism/internal/geom"
)

func TestOrientationPhaseAngleDoubling(t *testing.T) {
	// For a boresight along +Y the frame is U = (−1,0,0)... use a
	// constructed frame instead: U = X, V = Z, W = Y. A tag vector in
	// the U-V plane at angle φ from U must give θorient = 2φ mod 2π.
	frame := geom.Frame{U: geom.Vec3{X: 1}, V: geom.Vec3{Z: 1}, W: geom.Vec3{Y: 1}}
	for _, phiDeg := range []float64{0, 10, 45, 80, 90, 135, 179} {
		phi := phiDeg * math.Pi / 180
		w := frame.U.Scale(math.Cos(phi)).Add(frame.V.Scale(math.Sin(phi)))
		got := OrientationPhase(frame, w)
		want := math.Mod(2*phi, 2*math.Pi)
		if diff := math.Abs(math.Mod(got-want+3*math.Pi, 2*math.Pi) - math.Pi); diff > 1e-9 {
			t.Errorf("phi=%g°: θorient = %g, want %g", phiDeg, got, want)
		}
	}
}

func TestOrientationPhaseFrequencyIndependent(t *testing.T) {
	// Eq. (4) has no frequency term — the paper's Fig. 5 observation.
	// (The function signature makes this structural; this test pins
	// the sign convention instead: rotating the tag by Δφ in-plane
	// shifts θorient by 2Δφ.)
	frame := geom.NewFrame(geom.Vec3{X: 0.2, Y: 1, Z: -0.5})
	w1 := TagPolarization2D(0.3)
	w2 := TagPolarization2D(0.3 + 0.1)
	d1 := OrientationPhase(frame, w1)
	d2 := OrientationPhase(frame, w2)
	if math.Abs(d1-d2) < 1e-6 {
		t.Error("rotating the tag did not change θorient")
	}
}

func TestOrientationPhaseDipoleSymmetry(t *testing.T) {
	// w and −w are the same dipole: θorient must be identical.
	f := func(az, el, bx, by, bz float64) bool {
		if math.IsNaN(az) || math.IsNaN(el) || math.IsNaN(bx) || math.IsNaN(by) || math.IsNaN(bz) {
			return true
		}
		b := geom.Vec3{X: bx, Y: by, Z: bz}
		if b.Norm() < 1e-3 || b.Norm() > 1e3 {
			return true
		}
		frame := geom.NewFrame(b)
		w := geom.FromSpherical(az, el)
		p1 := OrientationPhase(frame, w)
		p2 := OrientationPhase(frame, w.Scale(-1))
		d := math.Mod(p1-p2+3*math.Pi, 2*math.Pi) - math.Pi
		return math.Abs(d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrientationPhaseRange(t *testing.T) {
	f := func(alpha float64) bool {
		if math.IsNaN(alpha) {
			return true
		}
		frame := geom.NewFrame(geom.Vec3{X: 0.5, Y: 1.5, Z: -1.2})
		p := OrientationPhase(frame, TagPolarization2D(alpha))
		return p >= 0 && p < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrientationPhaseBoresightDegenerate(t *testing.T) {
	frame := geom.NewFrame(geom.Vec3{Y: 1})
	if got := OrientationPhase(frame, geom.Vec3{Y: 1}); got != 0 {
		t.Errorf("boresight-aligned tag: θorient = %g, want 0 by convention", got)
	}
}

func TestPolarizationLossDB(t *testing.T) {
	frame := geom.Frame{U: geom.Vec3{X: 1}, V: geom.Vec3{Z: 1}, W: geom.Vec3{Y: 1}}
	// Perfect in-plane: the CP→LP floor of 3 dB.
	if got := PolarizationLossDB(frame, geom.Vec3{X: 1}); math.Abs(got-3) > 1e-9 {
		t.Errorf("in-plane loss = %g, want 3", got)
	}
	// Leaning out of the plane must cost more.
	leaning := geom.Vec3{X: 0.5, Y: 0.866, Z: 0}
	if got := PolarizationLossDB(frame, leaning); got <= 3 {
		t.Errorf("out-of-plane loss = %g, want > 3", got)
	}
	// Boresight-aligned: huge but finite.
	if got := PolarizationLossDB(frame, geom.Vec3{Y: 1}); math.IsInf(got, 0) || got < 60 {
		t.Errorf("degenerate loss = %g", got)
	}
}

func TestTagPolarization(t *testing.T) {
	w := TagPolarization2D(math.Pi / 2)
	if math.Abs(w.Y-1) > 1e-12 || math.Abs(w.X) > 1e-12 || w.Z != 0 {
		t.Errorf("TagPolarization2D(π/2) = %v", w)
	}
	w3 := TagPolarization3D(0, math.Pi/2)
	if math.Abs(w3.Z-1) > 1e-12 {
		t.Errorf("TagPolarization3D(0, π/2) = %v", w3)
	}
}
