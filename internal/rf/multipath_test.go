package rf

import (
	"math"
	"testing"

	"rfprism/internal/geom"
)

func TestCleanSpaceExactPropagation(t *testing.T) {
	env := CleanSpace()
	ant := geom.Vec3{X: 0, Y: 0, Z: 1}
	tag := geom.Vec3{X: 1, Y: 1.5, Z: 0}
	d := ant.Dist(tag)
	for _, f := range []float64{903e6, 915e6, 927e6} {
		phase, power := env.PropagationObservation(ant, tag, f)
		want := math.Mod(PropagationPhase(d, f), 2*math.Pi)
		diff := math.Mod(phase-want+3*math.Pi, 2*math.Pi) - math.Pi
		if math.Abs(diff) > 1e-9 {
			t.Fatalf("f=%g: phase %g, want %g (mod 2π)", f, phase, want)
		}
		if math.Abs(power-1) > 1e-9 {
			t.Fatalf("LOS-only power = %g, want 1", power)
		}
	}
}

func TestReflectorMirror(t *testing.T) {
	r := Reflector{Point: geom.Vec3{Z: -1}, Normal: geom.Vec3{Z: 1}, Coefficient: 0.3}
	// Path a→floor→b must equal |mirror(a) − b|.
	a := geom.Vec3{X: 0, Y: 0, Z: 1}
	b := geom.Vec3{X: 2, Y: 0, Z: 1}
	want := math.Sqrt(4 + 16) // mirror(a) at z=-3, dz=4, dx=2
	if got := r.PathLength(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PathLength = %g, want %g", got, want)
	}
}

func TestMultipathPerturbsPhaseNonlinearly(t *testing.T) {
	ant := geom.Vec3{X: 1.0, Y: 0, Z: 1.5}
	tag := geom.Vec3{X: 0.5, Y: 1.8, Z: 0}
	clean := CleanSpace()
	lab := LabMultipath()
	// Collect per-channel phase deviations from the LOS-only value.
	var devs []float64
	for _, f := range Channels() {
		pClean, _ := clean.PropagationObservation(ant, tag, f)
		pLab, _ := lab.PropagationObservation(ant, tag, f)
		d := math.Mod(pLab-pClean+3*math.Pi, 2*math.Pi) - math.Pi
		devs = append(devs, d)
	}
	// Multipath must actually perturb the phase...
	var maxDev float64
	for _, d := range devs {
		if math.Abs(d) > maxDev {
			maxDev = math.Abs(d)
		}
	}
	if maxDev < 0.02 {
		t.Fatalf("multipath deviation too small: %g", maxDev)
	}
	// ...and the perturbation must vary across channels (the
	// frequency-selective signature channel selection exploits).
	var min, max float64 = devs[0], devs[0]
	for _, d := range devs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min < 0.01 {
		t.Fatalf("multipath deviation flat across channels: spread %g", max-min)
	}
}

func TestMultipathLOSDominant(t *testing.T) {
	// The lab environment must keep LOS dominant (§VI: "LOS
	// propagation is still guaranteed"): power stays within a few dB
	// of the LOS-only value.
	ant := geom.Vec3{X: 1.0, Y: 0, Z: 1.5}
	lab := LabMultipath()
	for _, tag := range []geom.Vec3{{X: 0.3, Y: 0.8}, {X: 1.7, Y: 2.2}, {X: 1.0, Y: 1.5}} {
		for _, f := range []float64{903e6, 915e6, 927e6} {
			_, power := lab.PropagationObservation(ant, tag, f)
			if power < 0.25 || power > 4 {
				t.Fatalf("tag %v f %g: relative power %g outside LOS-dominant range", tag, f, power)
			}
		}
	}
}

func TestReflectorBehindIsIgnored(t *testing.T) {
	// An image path shorter than LOS is non-physical and must be
	// skipped rather than poison the response.
	env := Environment{Reflectors: []Reflector{{
		Point:       geom.Vec3{Y: 1},
		Normal:      geom.Vec3{Y: 1},
		Coefficient: 0.9,
	}}}
	ant := geom.Vec3{Y: 0.9, Z: 0}
	tag := geom.Vec3{Y: 1.1, Z: 0}
	phase, power := env.PropagationObservation(ant, tag, 915e6)
	if math.IsNaN(phase) || math.IsNaN(power) {
		t.Fatal("NaN from degenerate reflector")
	}
}
