package fit

import (
	"math"

	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// Multipath-aware spectral fit.
//
// A delayed multipath component with excess round-trip path L adds a
// deviation ≈ A·cos(2πfL/c) + B·sin(2πfL/c) to the phase spectrum
// (first order in the component's relative amplitude). Over the
// 24.5 MHz band such a deviation is *smooth*, so residual-threshold
// channel selection cannot separate it from the line — but its shape
// is known, so it can be estimated and removed. MultipathOptions
// configures the estimator; FitLineMultipath performs up to MaxEchoes
// rounds of (line + echo) joint fitting with the echo's delay found
// by grid search, which realizes the *intent* of the paper's §V-D
// suppression (recover the clean line) in a way that works for
// physically smooth deviations. Channels whose final residual still
// exceeds ResidualTol are dropped exactly like §V-D outliers.
type MultipathOptions struct {
	// MinPathM/MaxPathM bound the excess round-trip path grid (m).
	// The minimum keeps the hypothesized sinusoid above one full
	// period across the 24.5 MHz band (L ≥ c/B ≈ 12 m); shorter
	// delays are indistinguishable from the line itself and removing
	// them would steal its slope. Defaults 14 and 60.
	MinPathM, MaxPathM float64
	// StepM is the grid resolution (m). Default 0.25.
	StepM float64
	// MaxEchoes is the number of echo components removed (including
	// harmonics and intermodulation of physical echoes). Default 5.
	MaxEchoes int
	// MinImprovement is the relative RSS reduction an echo must
	// achieve to be accepted. Default 0.1.
	MinImprovement float64
	// ResidualTol drops channels whose residual after echo removal
	// still exceeds this (rad). Default 0.22.
	ResidualTol float64
	// MinChannels is the minimum surviving channels. Default 12.
	MinChannels int
}

func (o *MultipathOptions) defaults() {
	if o.MinPathM <= 0 {
		o.MinPathM = 14
	}
	if o.MaxPathM <= 0 {
		o.MaxPathM = 60
	}
	if o.StepM <= 0 {
		o.StepM = 0.25
	}
	if o.MaxEchoes <= 0 {
		o.MaxEchoes = 5
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.1
	}
	if o.ResidualTol <= 0 {
		o.ResidualTol = 0.22
	}
	if o.MinChannels <= 0 {
		o.MinChannels = 12
	}
}

// FitLineMultipath fits the phase-vs-frequency line while estimating
// and removing delayed-echo deviations (§V-D realized as model-based
// suppression; see the package comment above). The two dominant echo
// delays are found by an exhaustive joint grid search — greedy
// one-at-a-time matching pursuit is unstable when two strong echoes
// beat against each other — and the line is estimated simultaneously
// so the echoes cannot absorb slope. Channels whose final residual
// still exceeds ResidualTol are dropped exactly like §V-D outliers.
func FitLineMultipath(freqs, phases []float64, opts MultipathOptions) (Line, error) {
	opts.defaults()
	line, err := FitLine(freqs, phases)
	if err != nil {
		return Line{}, err
	}
	// Skip the echo search entirely on already-clean spectra.
	if line.ResidStd < 0.05 {
		return finalTrim(freqs, phases, line, opts)
	}

	var rss0 float64
	for _, r := range line.Residuals(freqs, phases) {
		rss0 += r * r
	}
	// Coarse joint search over one or two echo delays.
	coarse := opts.StepM * 4
	bestL1, bestL2, bestRSS := 0.0, 0.0, math.Inf(1)
	for l1 := opts.MinPathM; l1 <= opts.MaxPathM; l1 += coarse {
		for l2 := l1 + coarse; l2 <= opts.MaxPathM+1e-9; l2 += coarse {
			if rss := echoRSS(freqs, phases, l1, l2); rss < bestRSS {
				bestRSS, bestL1, bestL2 = rss, l1, l2
			}
		}
	}
	// Local refinement around the coarse optimum.
	for l1 := bestL1 - coarse; l1 <= bestL1+coarse; l1 += opts.StepM {
		for l2 := bestL2 - coarse; l2 <= bestL2+coarse; l2 += opts.StepM {
			if l1 < opts.MinPathM || l2 <= l1 {
				continue
			}
			if rss := echoRSS(freqs, phases, l1, l2); rss < bestRSS {
				bestRSS, bestL1, bestL2 = rss, l1, l2
			}
		}
	}
	if bestRSS > rss0*(1-opts.MinImprovement) {
		// No echo structure worth removing.
		return finalTrim(freqs, phases, line, opts)
	}
	cleaned, err := removeEchoes(freqs, phases, bestL1, bestL2)
	if err != nil {
		return finalTrim(freqs, phases, line, opts)
	}
	line, err = FitLine(freqs, cleaned)
	if err != nil {
		return Line{}, err
	}
	return finalTrim(freqs, cleaned, line, opts)
}

// finalTrim drops channels whose (median-centered) residual exceeds
// ResidualTol and refits, mirroring §V-D's outlier rejection.
func finalTrim(freqs, phases []float64, line Line, opts MultipathOptions) (Line, error) {
	res := line.Residuals(freqs, phases)
	med := mathx.Median(res)
	mask := make([]bool, len(freqs))
	n := 0
	for i, r := range res {
		if math.Abs(r-med) <= opts.ResidualTol {
			mask[i] = true
			n++
		}
	}
	if n < opts.MinChannels {
		return line, ErrTooFewChannels
	}
	final, err := fitMasked(freqs, phases, mask)
	if err != nil {
		return Line{}, err
	}
	return final, nil
}

// echoDesign builds the joint [x, 1, cosw1, sinw1, cosw2, sinw2]
// design matrix for the given echo delays.
func echoDesign(freqs []float64, l1, l2 float64) *mathx.Mat {
	const xScale = 1.25e7
	design := mathx.NewMat(len(freqs), 6)
	for i, f := range freqs {
		w1 := 2 * math.Pi * f * l1 / rf.SpeedOfLight
		w2 := 2 * math.Pi * f * l2 / rf.SpeedOfLight
		design.Set(i, 0, (f-rf.CenterFrequencyHz)/xScale)
		design.Set(i, 1, 1)
		design.Set(i, 2, math.Cos(w1))
		design.Set(i, 3, math.Sin(w1))
		design.Set(i, 4, math.Cos(w2))
		design.Set(i, 5, math.Sin(w2))
	}
	return design
}

// echoRSS returns the joint line+two-echo least-squares RSS.
func echoRSS(freqs, phases []float64, l1, l2 float64) float64 {
	_, rss, err := mathx.LeastSquares(echoDesign(freqs, l1, l2), phases)
	if err != nil {
		return math.Inf(1)
	}
	return rss
}

// removeEchoes subtracts the jointly fitted echo components (leaving
// the line part untouched).
func removeEchoes(freqs, phases []float64, l1, l2 float64) ([]float64, error) {
	design := echoDesign(freqs, l1, l2)
	sol, _, err := mathx.LeastSquares(design, phases)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(phases))
	for i, f := range freqs {
		w1 := 2 * math.Pi * f * l1 / rf.SpeedOfLight
		w2 := 2 * math.Pi * f * l2 / rf.SpeedOfLight
		out[i] = phases[i] - sol[2]*math.Cos(w1) - sol[3]*math.Sin(w1) -
			sol[4]*math.Cos(w2) - sol[5]*math.Sin(w2)
	}
	return out, nil
}

// fitMaskedPhases is fitMasked on an alternative phase slice.
func fitMaskedPhases(freqs, phases []float64, mask []bool) (Line, error) {
	return fitMasked(freqs, phases, mask)
}
