package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfprism/internal/rf"
)

func line(k, b0 float64) (freqs, phases []float64) {
	freqs = rf.Channels()
	phases = make([]float64, len(freqs))
	for i, f := range freqs {
		phases[i] = k*(f-rf.CenterFrequencyHz) + b0
	}
	return freqs, phases
}

func TestFitLineExact(t *testing.T) {
	k, b0 := 7.3e-8, 2.1
	freqs, phases := line(k, b0)
	l, err := FitLine(freqs, phases)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.K-k) > 1e-15 || math.Abs(l.B0-b0) > 1e-9 {
		t.Fatalf("fit (%g, %g), want (%g, %g)", l.K, l.B0, k, b0)
	}
	if l.ResidStd > 1e-9 || l.NumUsed != rf.NumChannels {
		t.Fatalf("resid %g used %d", l.ResidStd, l.NumUsed)
	}
}

func TestFitLineValidation(t *testing.T) {
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrTooFewChannels) {
		t.Fatalf("want ErrTooFewChannels, got %v", err)
	}
	if _, err := FitLine([]float64{915e6, 915e6, 915e6}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate frequency spread must error")
	}
}

// TestFitLineCovariance: the reported SigmaK must match the Monte
// Carlo spread of the estimator.
func TestFitLineCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const k, b0, noise = 5e-8, 1.0, 0.05
	var ks []float64
	var sigmaK float64
	for trial := 0; trial < 300; trial++ {
		freqs, phases := line(k, b0)
		for i := range phases {
			phases[i] += rng.NormFloat64() * noise
		}
		l, err := FitLine(freqs, phases)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, l.K)
		sigmaK = l.SigmaK
	}
	var mean, varK float64
	for _, v := range ks {
		mean += v
	}
	mean /= float64(len(ks))
	for _, v := range ks {
		varK += (v - mean) * (v - mean)
	}
	empirical := math.Sqrt(varK / float64(len(ks)-1))
	if ratio := empirical / sigmaK; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("SigmaK %g vs empirical %g (ratio %.2f)", sigmaK, empirical, ratio)
	}
}

func TestFitLineRobustRejectsOutliers(t *testing.T) {
	k, b0 := 6e-8, 0.4
	freqs, phases := line(k, b0)
	// Corrupt 8 channels severely (multipath-affected frequencies).
	rng := rand.New(rand.NewSource(9))
	corrupted := map[int]bool{}
	for len(corrupted) < 8 {
		corrupted[rng.Intn(len(phases))] = true
	}
	for i := range corrupted {
		phases[i] += 1.5
	}
	plain, err := FitLine(freqs, phases)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := FitLineRobust(freqs, phases, nil, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust.K-k) > math.Abs(plain.K-k)/2 {
		t.Fatalf("robust slope error %g not clearly better than plain %g",
			robust.K-k, plain.K-k)
	}
	if math.Abs(robust.K-k) > 2e-10 {
		t.Fatalf("robust slope error still %g", robust.K-k)
	}
	// The corrupted channels must be the ones dropped.
	for i, used := range robust.Used {
		if corrupted[i] && used {
			t.Errorf("corrupted channel %d was kept", i)
		}
	}
}

func TestFitLineRobustTooFewSurvivors(t *testing.T) {
	// With most channels corrupted randomly there is no clean line;
	// the fit must either keep enough channels or error — it must
	// not return a fit claiming fewer than MinChannels.
	rng := rand.New(rand.NewSource(10))
	freqs, phases := line(5e-8, 0)
	for i := range phases {
		phases[i] += rng.Float64() * 6
	}
	l, err := FitLineRobust(freqs, phases, nil, RobustOptions{})
	if err == nil && l.NumUsed < 12 {
		t.Fatalf("fit kept %d channels without erroring", l.NumUsed)
	}
}

func TestFitLineRobustFadeMask(t *testing.T) {
	// Channels in deep RSSI fades must be excluded before fitting,
	// even when their phase deviation would survive residual trimming.
	k, b0 := 6e-8, 0.4
	freqs, phases := line(k, b0)
	rssi := make([]float64, len(freqs))
	for i := range rssi {
		rssi[i] = -50
	}
	// Corrupt five consecutive channels moderately (0.18 rad — below
	// the 0.22 rad residual ceiling) and mark them as faded.
	for i := 20; i < 25; i++ {
		phases[i] += 0.18
		rssi[i] = -58
	}
	l, err := FitLineRobust(freqs, phases, rssi, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		if l.Used[i] {
			t.Fatalf("faded channel %d was kept", i)
		}
	}
	if math.Abs(l.K-k) > 1e-10 {
		t.Fatalf("slope error %g after fade masking", l.K-k)
	}
}

func TestFadeMask(t *testing.T) {
	rssi := []float64{-50, -50, -50.5, -56, -49.5}
	mask := FadeMask(rssi, 3)
	want := []bool{true, true, true, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("FadeMask = %v, want %v", mask, want)
		}
	}
	if len(FadeMask(nil, 3)) != 0 {
		t.Fatal("empty input")
	}
}

func TestFitLineRobustCleanDataKeepsEverything(t *testing.T) {
	freqs, phases := line(4e-8, 1)
	rng := rand.New(rand.NewSource(11))
	for i := range phases {
		phases[i] += rng.NormFloat64() * 0.01
	}
	l, err := FitLineRobust(freqs, phases, nil, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumUsed < rf.NumChannels-3 {
		t.Fatalf("over-pruned clean data: kept %d", l.NumUsed)
	}
}

func TestResiduals(t *testing.T) {
	freqs, phases := line(3e-8, 0.5)
	l, err := FitLine(freqs, phases)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range l.Residuals(freqs, phases) {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual %d = %g on exact data", i, r)
		}
	}
}

func TestCheckLinearity(t *testing.T) {
	rep := CheckLinearity(Line{ResidStd: 0.05, NumUsed: 48}, 50, DetectorOptions{})
	if !rep.Linear {
		t.Fatalf("clean fit flagged: %+v", rep)
	}
	rep = CheckLinearity(Line{ResidStd: 0.9, NumUsed: 48}, 50, DetectorOptions{})
	if rep.Linear {
		t.Fatal("high-residual fit passed")
	}
	rep = CheckLinearity(Line{ResidStd: 0.05, NumUsed: 15}, 50, DetectorOptions{})
	if rep.Linear {
		t.Fatal("mostly-rejected fit passed")
	}
	rep = CheckLinearity(Line{ResidStd: 0.05, NumUsed: 10}, 0, DetectorOptions{})
	if rep.Linear {
		t.Fatal("zero-total fit passed")
	}
}

// TestFitLineShiftInvariance: adding a constant to all phases must
// shift B0 by that constant and leave K untouched.
func TestFitLineShiftInvariance(t *testing.T) {
	f := func(shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		freqs, phases := line(5.5e-8, 1)
		shifted := make([]float64, len(phases))
		for i := range phases {
			shifted[i] = phases[i] + shift
		}
		l1, err1 := FitLine(freqs, phases)
		l2, err2 := FitLine(freqs, shifted)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(l1.K-l2.K) < 1e-15 &&
			math.Abs((l2.B0-l1.B0)-shift) < 1e-6*math.Max(1, math.Abs(shift))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
