// Package fit provides the per-antenna phase-vs-frequency line fits at
// the heart of RF-Prism's multi-frequency model (Eq. 6), the robust
// channel-selection variant that suppresses multipath (§V-D), and the
// linearity test behind the mobility error detector (§V-C).
package fit

import (
	"errors"
	"fmt"
	"math"

	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// ErrTooFewChannels is returned when fewer channels survive than a
// line fit needs.
var ErrTooFewChannels = errors.New("fit: too few channels")

// finite reports whether x is a usable sample value. Readers under
// fault (spikes, deep fades, parse glitches) can surface NaN or ±Inf
// phases; every fit treats such samples as absent rather than letting
// them poison the sums.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// checkFinite rejects a fitted line whose parameters overflowed:
// finite but astronomically large inputs can drive the accumulated
// sums past the float64 range without any single sample being
// non-finite.
func checkFinite(l Line) (Line, error) {
	if !finite(l.K) || !finite(l.B0) || !finite(l.SigmaK) || !finite(l.SigmaB0) || !finite(l.ResidStd) {
		return Line{}, fmt.Errorf("fit: numeric overflow")
	}
	return l, nil
}

// Line is a fitted phase-vs-frequency line in the centered
// parameterization θ(f) = K·(f − f₀) + B0 with f₀ = band center
// (see DESIGN.md §2 for why the centered intercept is used instead of
// the paper's f = 0 intercept).
type Line struct {
	// K is the slope in rad/Hz (the paper's k).
	K float64
	// B0 is the phase at the band center in rad. Because the input
	// spectrum carries an arbitrary 2π offset from unwrapping, B0 is
	// meaningful modulo 2π only.
	B0 float64
	// SigmaK and SigmaB0 are the one-sigma parameter uncertainties.
	SigmaK, SigmaB0 float64
	// ResidStd is the standard deviation of the fit residuals (rad).
	ResidStd float64
	// Used flags which input samples were kept by the robust fit.
	Used []bool
	// NumUsed is the number of samples kept.
	NumUsed int
}

// Residuals returns the signed residuals of the fit for all inputs
// (including rejected ones).
func (l Line) Residuals(freqs, phases []float64) []float64 {
	out := make([]float64, len(freqs))
	for i := range freqs {
		out[i] = phases[i] - (l.K*(freqs[i]-rf.CenterFrequencyHz) + l.B0)
	}
	return out
}

// FitLine performs an ordinary least-squares fit of unwrapped phases
// against frequency with parameter covariance. freqs and phases must
// have equal length ≥ 3.
func FitLine(freqs, phases []float64) (Line, error) {
	mask := make([]bool, len(freqs))
	for i := range mask {
		mask[i] = true
	}
	return fitMasked(freqs, phases, mask)
}

func fitMasked(freqs, phases []float64, mask []bool) (Line, error) {
	if len(freqs) != len(phases) {
		return Line{}, fmt.Errorf("fit: %d freqs vs %d phases", len(freqs), len(phases))
	}
	use := func(i int) bool {
		return mask[i] && finite(freqs[i]) && finite(phases[i])
	}
	n := 0
	var sx, sy float64
	for i := range freqs {
		if !use(i) {
			continue
		}
		n++
		sx += freqs[i] - rf.CenterFrequencyHz
		sy += phases[i]
	}
	if n < 3 {
		return Line{}, ErrTooFewChannels
	}
	mx := sx / float64(n)
	my := sy / float64(n)
	var sxx, sxy float64
	for i := range freqs {
		if !use(i) {
			continue
		}
		dx := (freqs[i] - rf.CenterFrequencyHz) - mx
		sxx += dx * dx
		sxy += dx * (phases[i] - my)
	}
	if sxx <= 0 {
		return Line{}, fmt.Errorf("fit: degenerate frequency spread")
	}
	k := sxy / sxx
	// Intercept at the centered origin (f = f₀, i.e. x = 0).
	b0 := my - k*mx

	var rss float64
	used := make([]bool, len(freqs))
	for i := range freqs {
		if !use(i) {
			continue
		}
		used[i] = true
		x := freqs[i] - rf.CenterFrequencyHz
		r := phases[i] - (k*x + b0)
		rss += r * r
	}
	dof := float64(n - 2)
	if dof < 1 {
		dof = 1
	}
	sigma2 := rss / dof
	line := Line{
		K:        k,
		B0:       b0,
		SigmaK:   math.Sqrt(sigma2 / sxx),
		SigmaB0:  math.Sqrt(sigma2 * (1/float64(n) + mx*mx/sxx)),
		ResidStd: math.Sqrt(sigma2),
		Used:     used,
		NumUsed:  n,
	}
	return checkFinite(line)
}

// FitLineWeighted performs a weighted least-squares line fit with
// per-channel weights (e.g. linear RSSI power: fade channels carry
// proportionally larger phase deviations, so power weighting is the
// soft form of the paper's §V-D channel selection).
func FitLineWeighted(freqs, phases, weights []float64) (Line, error) {
	if len(freqs) != len(phases) || len(freqs) != len(weights) {
		return Line{}, fmt.Errorf("fit: mismatched lengths %d/%d/%d", len(freqs), len(phases), len(weights))
	}
	use := func(i int) bool {
		return weights[i] > 0 && finite(weights[i]) && finite(freqs[i]) && finite(phases[i])
	}
	var sw, sx, sy float64
	n := 0
	for i := range freqs {
		if !use(i) {
			continue
		}
		w := weights[i]
		n++
		sw += w
		sx += w * (freqs[i] - rf.CenterFrequencyHz)
		sy += w * phases[i]
	}
	if n < 3 || sw <= 0 {
		return Line{}, ErrTooFewChannels
	}
	mx := sx / sw
	my := sy / sw
	var sxx, sxy float64
	for i := range freqs {
		if !use(i) {
			continue
		}
		w := weights[i]
		dx := (freqs[i] - rf.CenterFrequencyHz) - mx
		sxx += w * dx * dx
		sxy += w * dx * (phases[i] - my)
	}
	if sxx <= 0 {
		return Line{}, fmt.Errorf("fit: degenerate frequency spread")
	}
	k := sxy / sxx
	b0 := my - k*mx
	var rss, wsum float64
	used := make([]bool, len(freqs))
	for i := range freqs {
		if !use(i) {
			continue
		}
		w := weights[i]
		used[i] = true
		x := freqs[i] - rf.CenterFrequencyHz
		r := phases[i] - (k*x + b0)
		rss += w * r * r
		wsum += w
	}
	sigma2 := rss / wsum * float64(n) / math.Max(float64(n-2), 1)
	return checkFinite(Line{
		K:        k,
		B0:       b0,
		SigmaK:   math.Sqrt(sigma2 / sxx * wsum / float64(n)),
		SigmaB0:  math.Sqrt(sigma2 * (1/float64(n) + mx*mx/sxx*wsum/float64(n))),
		ResidStd: math.Sqrt(sigma2),
		Used:     used,
		NumUsed:  n,
	})
}

// PowerWeights converts per-channel RSSI (dBm) into linear power
// weights normalized to a unit median.
func PowerWeights(rssi []float64) []float64 {
	out := make([]float64, len(rssi))
	if len(rssi) == 0 {
		return out
	}
	med := mathx.Median(rssi)
	for i, r := range rssi {
		out[i] = math.Pow(10, (r-med)/10)
	}
	return out
}

// RobustOptions tunes the channel-selection fit (§V-D).
type RobustOptions struct {
	// FadeDropDB drops channels whose RSSI sits this far below the
	// window's median RSSI before fitting: multipath corrupts the
	// phase exactly where destructive superposition also depresses
	// the amplitude, so the fade depth marks the "affected"
	// frequencies. Default 3 dB.
	FadeDropDB float64
	// MaxResid is the absolute residual (rad, after median centering)
	// beyond which a surviving channel is discarded as an outlier
	// (transient interference, residual fades). Default 0.22 rad.
	MaxResid float64
	// MaxIterations bounds the trim-refit loop. Default 3.
	MaxIterations int
	// MinChannels is the minimum channels that must survive.
	// Default 12 ("more than enough for a linear fitting" — §V-D).
	MinChannels int
}

func (o *RobustOptions) defaults() {
	if o.FadeDropDB <= 0 {
		o.FadeDropDB = 3
	}
	if o.MaxResid <= 0 {
		o.MaxResid = 0.22
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 3
	}
	if o.MinChannels <= 0 {
		o.MinChannels = 12
	}
}

// FadeMask flags the channels whose RSSI is within dropBelowDB of the
// median RSSI (true = keep). A nil rssi keeps everything.
func FadeMask(rssi []float64, dropBelowDB float64) []bool {
	mask := make([]bool, len(rssi))
	if len(rssi) == 0 {
		return mask
	}
	med := mathx.Median(rssi)
	for i, r := range rssi {
		mask[i] = r >= med-dropBelowDB
	}
	return mask
}

// FitLineRobust fits a line with the channel selection of §V-D:
// channels in amplitude fades (RSSI far below the window median) are
// dropped first — multipath corrupts phase exactly where it also
// depresses amplitude — and any surviving channel whose
// median-centered residual exceeds an absolute ceiling is trimmed.
// rssi may be nil (no fade information). It returns ErrTooFewChannels
// when fewer than MinChannels survive.
func FitLineRobust(freqs, phases []float64, rssi []float64, opts RobustOptions) (Line, error) {
	opts.defaults()
	if len(freqs) != len(phases) {
		return Line{}, fmt.Errorf("fit: %d freqs vs %d phases", len(freqs), len(phases))
	}
	mask := make([]bool, len(freqs))
	for i := range mask {
		mask[i] = true
	}
	if len(rssi) == len(freqs) {
		fade := FadeMask(rssi, opts.FadeDropDB)
		n := 0
		for i := range mask {
			mask[i] = fade[i]
			if mask[i] {
				n++
			}
		}
		if n < opts.MinChannels {
			// Fades everywhere: fall back to all channels and let the
			// residual trim (and ultimately the error detector) decide.
			for i := range mask {
				mask[i] = true
			}
		}
	}
	line, err := fitMasked(freqs, phases, mask)
	if err != nil {
		return Line{}, err
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res := line.Residuals(freqs, phases)
		var kept []float64
		for i, r := range res {
			if mask[i] {
				kept = append(kept, r)
			}
		}
		// Center on the median: outliers drag the fitted intercept, so
		// the inlier residuals sit at a common offset rather than zero.
		med := mathx.Median(kept)
		changed := false
		nextCount := 0
		next := make([]bool, len(mask))
		for i := range mask {
			keep := mask[i] && math.Abs(res[i]-med) <= opts.MaxResid
			next[i] = keep
			if keep {
				nextCount++
			}
			if keep != mask[i] {
				changed = true
			}
		}
		if nextCount < opts.MinChannels || !changed {
			break
		}
		mask = next
		line, err = fitMasked(freqs, phases, mask)
		if err != nil {
			return Line{}, err
		}
	}
	if line.NumUsed < opts.MinChannels {
		return line, ErrTooFewChannels
	}
	return line, nil
}

// LinearityReport is the outcome of the mobility/error detector.
type LinearityReport struct {
	// Linear is true when the spectrum is consistent with a static
	// tag (phase linear in frequency after channel selection).
	Linear bool
	// ResidStd is the robust-fit residual standard deviation (rad).
	ResidStd float64
	// KeptFraction is the share of channels surviving selection.
	KeptFraction float64
}

// DetectorOptions tunes the error detector (§V-C).
type DetectorOptions struct {
	// MaxResidStd is the residual std (rad) above which the window
	// is declared non-linear (moving/rotating tag). Default 0.25.
	MaxResidStd float64
	// MinKeptFraction is the minimum share of channels that must fit
	// the line. A mobile tag breaks the line everywhere, so little
	// survives selection. Default 0.5.
	MinKeptFraction float64
}

func (o *DetectorOptions) defaults() {
	if o.MaxResidStd <= 0 {
		o.MaxResidStd = 0.25
	}
	if o.MinKeptFraction <= 0 {
		o.MinKeptFraction = 0.5
	}
}

// CheckLinearity runs the error detector on a fitted spectrum: a
// static tag yields a clean line (§V-C); a tag that moved or rotated
// during the hop round does not, and its window must be discarded.
func CheckLinearity(line Line, total int, opts DetectorOptions) LinearityReport {
	opts.defaults()
	frac := 0.0
	if total > 0 {
		frac = float64(line.NumUsed) / float64(total)
	}
	return LinearityReport{
		Linear:       line.ResidStd <= opts.MaxResidStd && frac >= opts.MinKeptFraction,
		ResidStd:     line.ResidStd,
		KeptFraction: frac,
	}
}
