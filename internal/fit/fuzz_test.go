package fit

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// decodeTriples splits fuzz bytes into parallel freq/phase/RSSI
// samples, 24 raw float64 bytes per channel.
func decodeTriples(data []byte) (freqs, phases, rssi []float64) {
	for len(data) >= 24 {
		freqs = append(freqs, math.Float64frombits(binary.LittleEndian.Uint64(data[0:])))
		phases = append(phases, math.Float64frombits(binary.LittleEndian.Uint64(data[8:])))
		rssi = append(rssi, math.Float64frombits(binary.LittleEndian.Uint64(data[16:])))
		data = data[24:]
	}
	return
}

func encodeTriples(freqs, phases, rssi []float64) []byte {
	out := make([]byte, 0, len(freqs)*24)
	var buf [24]byte
	for i := range freqs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(freqs[i]))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(phases[i]))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(rssi[i]))
		out = append(out, buf[:]...)
	}
	return out
}

func seedSpectrum(n int, corrupt func(i int, f, p, r *float64)) []byte {
	freqs := make([]float64, n)
	phases := make([]float64, n)
	rssi := make([]float64, n)
	for i := 0; i < n; i++ {
		freqs[i] = 920e6 + float64(i)*500e3
		phases[i] = 2 + 0.04*float64(i)
		rssi[i] = -55
		if corrupt != nil {
			corrupt(i, &freqs[i], &phases[i], &rssi[i])
		}
	}
	return encodeTriples(freqs, phases, rssi)
}

// FuzzFitLineRobust drives the §V-D channel-selection fit with hostile
// spectra: NaN/Inf phases, duplicate frequencies, overflow-scale
// values, empty and tiny inputs. The fit must never panic, and a nil
// error implies finite parameters with at least MinChannels survivors.
func FuzzFitLineRobust(f *testing.F) {
	f.Add([]byte{}, true)
	f.Add(seedSpectrum(16, nil), true)
	f.Add(seedSpectrum(2, nil), false)
	f.Add(seedSpectrum(16, func(i int, fr, p, r *float64) {
		if i%3 == 0 {
			*p = math.NaN()
		}
	}), true)
	f.Add(seedSpectrum(16, func(i int, fr, p, r *float64) {
		if i%2 == 0 {
			*p = math.Inf(1)
		}
		*r = math.NaN()
	}), true)
	f.Add(seedSpectrum(16, func(i int, fr, p, r *float64) {
		*fr = 920e6 // all channels on one frequency: degenerate spread
	}), true)
	f.Add(seedSpectrum(16, func(i int, fr, p, r *float64) {
		*p = 1e308 // overflow-scale but finite
		*r = 300
	}), true)
	f.Fuzz(func(t *testing.T, data []byte, withRSSI bool) {
		freqs, phases, rssi := decodeTriples(data)
		if !withRSSI {
			rssi = nil
		}
		opts := RobustOptions{}
		line, err := FitLineRobust(freqs, phases, rssi, opts)
		if err == nil {
			opts.defaults()
			if line.NumUsed < opts.MinChannels {
				t.Fatalf("nil error with %d channels (< %d)", line.NumUsed, opts.MinChannels)
			}
			for _, v := range []float64{line.K, line.B0, line.SigmaK, line.SigmaB0, line.ResidStd} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("nil error with non-finite parameters %+v", line)
				}
			}
			if len(line.Used) != len(freqs) {
				t.Fatalf("Used length %d for %d inputs", len(line.Used), len(freqs))
			}
		} else if !errors.Is(err, ErrTooFewChannels) && line.NumUsed != 0 && err.Error() == "" {
			t.Fatal("empty error message")
		}

		// The plain and weighted fits must share the no-panic and
		// finite-on-success guarantees.
		if l, err := FitLine(freqs, phases); err == nil {
			if math.IsNaN(l.K) || math.IsInf(l.K, 0) || math.IsNaN(l.B0) || math.IsInf(l.B0, 0) {
				t.Fatalf("FitLine: nil error with non-finite line %+v", l)
			}
		}
		if withRSSI {
			if l, err := FitLineWeighted(freqs, phases, PowerWeights(rssi)); err == nil {
				if math.IsNaN(l.K) || math.IsInf(l.K, 0) || math.IsNaN(l.B0) || math.IsInf(l.B0, 0) {
					t.Fatalf("FitLineWeighted: nil error with non-finite line %+v", l)
				}
			}
		}
	})
}
