package fit

import (
	"math"
	"testing"

	"rfprism/internal/rf"
)

// TestMultipathFitRemovesStaticEcho is the FitLineMultipath
// regression: a single static long-delay echo must be identified and
// removed almost exactly.
func TestMultipathFitRemovesStaticEcho(t *testing.T) {
	k, b0 := 6e-8, 0.4
	freqs, phases := line(k, b0)
	const L, amp = 16.5, 0.4
	for i, f := range freqs {
		w := 2 * math.Pi * f * (2*1.7 + L) / rf.SpeedOfLight
		phases[i] += amp * math.Sin(w)
	}
	plain, _ := FitLine(freqs, phases)
	mp, err := FitLineMultipath(freqs, phases, MultipathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plainErr := math.Abs(rf.DistanceFromSlope(plain.K) - rf.DistanceFromSlope(k))
	mpErr := math.Abs(rf.DistanceFromSlope(mp.K) - rf.DistanceFromSlope(k))
	if mpErr > 0.005 {
		t.Fatalf("echo removal left %.1f cm of slope bias", mpErr*100)
	}
	if mpErr > plainErr {
		t.Fatalf("echo removal made the fit worse: %.4f vs %.4f m", mpErr, plainErr)
	}
}
