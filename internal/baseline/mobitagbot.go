// Package baseline re-implements the two state-of-the-art systems the
// paper compares against (§VI-B): MobiTagbot, a two-antenna
// multi-channel localization method that cannot cancel the
// orientation/device/material phase offsets, and Tagtag, a material
// identifier that compensates propagation with coarse RSS readings.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"rfprism/internal/core"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// ErrTooFewAntennasForBaseline is returned when fewer than two
// antennas are observed.
var ErrTooFewAntennasForBaseline = errors.New("baseline: MobiTagbot needs two antennas")

// MobiTagbot is the localization baseline: it leverages the
// multi-channel slope exactly like RF-Prism but treats the phase line
// as pure propagation — the material/device slope k_t becomes a
// distance bias, and the orientation term contaminates its
// fine-phase refinement. This is the behaviour the paper's case
// study 1 (Figs. 14–16) characterizes.
type MobiTagbot struct {
	// Bounds is the search region.
	Bounds core.Bounds
	// FineWeight enables the sub-wavelength refinement using the
	// intercepts treated as a common offset plus propagation
	// (default on). The refinement is what orientation variation
	// corrupts.
	DisableFine bool
	// TetherSigma is the allowed refinement displacement scale in
	// meters (default 0.06).
	TetherSigma float64
}

// Locate estimates the 2D tag position from the first and last
// observation (MobiTagbot uses two antennas).
func (m *MobiTagbot) Locate(obs []core.Observation) (geom.Vec3, error) {
	if len(obs) < 2 {
		return geom.Vec3{}, fmt.Errorf("%w: have %d", ErrTooFewAntennasForBaseline, len(obs))
	}
	pair := []core.Observation{obs[0], obs[len(obs)-1]}
	dists := make([]float64, len(pair))
	for i, o := range pair {
		dists[i] = rf.DistanceFromSlope(o.Line.K)
	}
	// Coarse fix: least-squares range intersection over the region.
	cost := func(x, y float64) float64 {
		var c float64
		p := geom.Vec3{X: x, Y: y}
		for i, o := range pair {
			d := o.Pos.Dist(p) - dists[i]
			c += d * d
		}
		return c
	}
	best := math.Inf(1)
	var bx, by float64
	for x := m.Bounds.XMin; x <= m.Bounds.XMax+1e-9; x += 0.04 {
		for y := m.Bounds.YMin; y <= m.Bounds.YMax+1e-9; y += 0.04 {
			if c := cost(x, y); c < best {
				best, bx, by = c, x, y
			}
		}
	}
	refined, _ := mathx.NelderMead(func(v []float64) float64 {
		return cost(clampRange(v[0], m.Bounds.XMin, m.Bounds.XMax), clampRange(v[1], m.Bounds.YMin, m.Bounds.YMax))
	}, []float64{bx, by}, 0.04, 200)
	pos := geom.Vec3{
		X: clampRange(refined[0], m.Bounds.XMin, m.Bounds.XMax),
		Y: clampRange(refined[1], m.Bounds.YMin, m.Bounds.YMax),
	}
	if m.DisableFine {
		return pos, nil
	}
	return m.refineFine(pair, pos), nil
}

// refineFine is MobiTagbot's sub-wavelength step: it fits the
// intercepts as propagation plus one common offset. Because the
// per-antenna orientation phases differ, orientation variation leaks
// into the refined position — MobiTagbot "considers the
// orientation/material-dependent phase change as random noise".
func (m *MobiTagbot) refineFine(pair []core.Observation, coarse geom.Vec3) geom.Vec3 {
	tether := m.TetherSigma
	if tether <= 0 {
		tether = 0.06
	}
	obj := func(v []float64) float64 {
		p := geom.Vec3{X: v[0], Y: v[1]}
		// Common offset profiled circularly.
		var s, c float64
		res := make([]float64, len(pair))
		for i, o := range pair {
			prop := rf.PropagationPhase(o.Pos.Dist(p), rf.CenterFrequencyHz)
			res[i] = o.Line.B0 - prop
			s += math.Sin(res[i])
			c += math.Cos(res[i])
		}
		mu := math.Atan2(s, c)
		var cost float64
		for _, r := range res {
			d := mathx.WrapPi(r - mu)
			cost += d * d
		}
		dx := (v[0] - coarse.X) / tether
		dy := (v[1] - coarse.Y) / tether
		// The tether plays the role of MobiTagbot's coarse prior: the
		// refinement must stay near the slope fix.
		return cost + 0.05*(dx*dx+dy*dy)
	}
	refined, _ := mathx.NelderMead(obj, []float64{coarse.X, coarse.Y}, 0.03, 200)
	return geom.Vec3{
		X: clampRange(refined[0], m.Bounds.XMin, m.Bounds.XMax),
		Y: clampRange(refined[1], m.Bounds.YMin, m.Bounds.YMax),
	}
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
