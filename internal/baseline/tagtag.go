package baseline

import (
	"fmt"
	"math"

	"rfprism/internal/classify"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
)

// Tagtag is the material-identification baseline: it removes the
// propagation component with a coarse RSS-derived distance estimate,
// cancels orientation/device offsets by mean-centering the curve
// (channel hopping makes them a constant), and classifies the
// resulting phase-vs-channel curve with DTW nearest neighbor.
//
// Its weakness, which the paper's case study 2 (Figs. 17–20)
// characterizes, is the RSS distance estimate: material attenuation
// biases RSS, so when the tag-antenna distance varies between
// training and test, the residual propagation tilt varies too and the
// curves drift apart.
type Tagtag struct {
	// RefRSSIDBm is the reference backscatter RSSI at 1 m used to
	// invert RSS into distance.
	RefRSSIDBm float64
	// Window is the DTW band half-width (default 5 channels).
	Window int

	nn classify.DTWNN
}

// Curve extracts Tagtag's feature curve from one antenna's spectrum:
// phase minus RSS-estimated propagation, circularly mean-centered,
// sampled on all 50 channels (missing channels are interpolated).
func (t *Tagtag) Curve(sp preprocess.Spectrum) []float64 {
	dHat := rf.DistanceFromRSSI(sp.MeanRSSI(), t.RefRSSIDBm)
	// Residual per channel, wrapped.
	res := make([]float64, 0, len(sp.Samples))
	chIdx := make([]int, 0, len(sp.Samples))
	for _, s := range sp.Samples {
		r := s.Phase - rf.PropagationPhase(dHat, s.FreqHz)
		res = append(res, r)
		chIdx = append(chIdx, s.Channel)
	}
	// Mean-center circularly: constant offsets (orientation, device
	// intercept) vanish; only the curve shape remains.
	var sSin, sCos float64
	for _, r := range res {
		sSin += math.Sin(r)
		sCos += math.Cos(r)
	}
	mu := math.Atan2(sSin, sCos)
	curve := make([]float64, rf.NumChannels)
	filled := make([]bool, rf.NumChannels)
	for i, r := range res {
		if chIdx[i] >= 0 && chIdx[i] < rf.NumChannels {
			curve[chIdx[i]] = mathx.WrapPi(r - mu)
			filled[chIdx[i]] = true
		}
	}
	fillGaps(curve, filled)
	return curve
}

// fillGaps linearly interpolates unfilled channels from their
// neighbors (edges copy the nearest filled value).
func fillGaps(curve []float64, filled []bool) {
	n := len(curve)
	prev := -1
	for i := 0; i < n; i++ {
		if !filled[i] {
			continue
		}
		if prev < 0 {
			for j := 0; j < i; j++ {
				curve[j] = curve[i]
			}
		} else {
			for j := prev + 1; j < i; j++ {
				f := float64(j-prev) / float64(i-prev)
				curve[j] = curve[prev]*(1-f) + curve[i]*f
			}
		}
		prev = i
	}
	if prev >= 0 {
		for j := prev + 1; j < n; j++ {
			curve[j] = curve[prev]
		}
	}
}

// Train fits the DTW nearest-neighbor model on labeled curves.
func (t *Tagtag) Train(curves [][]float64, labels []int) error {
	t.nn = classify.DTWNN{Window: t.Window}
	if err := t.nn.Fit(classify.Dataset{X: curves, Y: labels}); err != nil {
		return fmt.Errorf("tagtag: %w", err)
	}
	return nil
}

// Classify predicts the material label of a curve.
func (t *Tagtag) Classify(curve []float64) (int, error) {
	return t.nn.Predict(curve)
}
