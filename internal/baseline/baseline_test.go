package baseline

import (
	"math"
	"math/rand"
	"testing"

	"rfprism/internal/core"
	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
)

var (
	bAnts = []geom.Vec3{
		{X: 0.5, Y: 0, Z: 1.0},
		{X: 1.0, Y: 0, Z: 1.5},
		{X: 1.5, Y: 0, Z: 1.2},
	}
	bBounds = core.Bounds{XMin: 0, XMax: 2, YMin: 0.5, YMax: 2.5}
)

// synthObs builds observations with the given extra slope offset
// (material/device kt) and intercept offset per antenna.
func synthObs(pos geom.Vec3, kt float64, orientPhases []float64) []core.Observation {
	obs := make([]core.Observation, len(bAnts))
	for i, a := range bAnts {
		d := a.Dist(pos)
		extra := 0.0
		if orientPhases != nil {
			extra = orientPhases[i]
		}
		obs[i] = core.Observation{
			ID:  i,
			Pos: a,
			Line: fit.Line{
				K:      rf.PropagationSlope(d) + kt,
				B0:     mathx.Wrap2Pi(rf.PropagationPhase(d, rf.CenterFrequencyHz) + extra),
				SigmaK: 4e-10,
			},
		}
	}
	return obs
}

func TestMobiTagbotLocatesCleanTag(t *testing.T) {
	m := &MobiTagbot{Bounds: bBounds}
	truth := geom.Vec3{X: 0.8, Y: 1.4}
	pos, err := m.Locate(synthObs(truth, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Hypot(pos.X-truth.X, pos.Y-truth.Y); d > 0.05 {
		t.Fatalf("clean localization error %.3f m", d)
	}
}

func TestMobiTagbotMaterialBias(t *testing.T) {
	// A material slope kt reads as extra distance: the error must
	// grow roughly like c·kt/(4π) — the paper's Fig. 16 mechanism.
	m := &MobiTagbot{Bounds: bBounds, DisableFine: true}
	truth := geom.Vec3{X: 1.0, Y: 1.2}
	clean, err := m.Locate(synthObs(truth, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	kt := 1.5e-8
	biased, err := m.Locate(synthObs(truth, kt, nil))
	if err != nil {
		t.Fatal(err)
	}
	cleanErr := math.Hypot(clean.X-truth.X, clean.Y-truth.Y)
	biasedErr := math.Hypot(biased.X-truth.X, biased.Y-truth.Y)
	expected := rf.DistanceFromSlope(kt) // ≈ 36 cm
	if biasedErr < cleanErr+expected/3 {
		t.Fatalf("material bias too small: clean %.3f vs biased %.3f (expected ≈%.2f)",
			cleanErr, biasedErr, expected)
	}
}

func TestMobiTagbotOrientationContamination(t *testing.T) {
	// Different per-antenna orientation phases contaminate the fine
	// refinement (Fig. 15): error grows versus the aligned case.
	truth := geom.Vec3{X: 1.0, Y: 1.5}
	m := &MobiTagbot{Bounds: bBounds}
	aligned, err := m.Locate(synthObs(truth, 0, []float64{1.0, 1.0, 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := m.Locate(synthObs(truth, 0, []float64{0.3, 1.2, 2.4}))
	if err != nil {
		t.Fatal(err)
	}
	alignedErr := math.Hypot(aligned.X-truth.X, aligned.Y-truth.Y)
	skewedErr := math.Hypot(skewed.X-truth.X, skewed.Y-truth.Y)
	if skewedErr <= alignedErr {
		t.Fatalf("orientation skew did not degrade: %.4f vs %.4f", alignedErr, skewedErr)
	}
}

func TestMobiTagbotTooFewAntennas(t *testing.T) {
	m := &MobiTagbot{Bounds: bBounds}
	if _, err := m.Locate(nil); err == nil {
		t.Fatal("no observations must error")
	}
	obs := synthObs(geom.Vec3{X: 1, Y: 1}, 0, nil)
	if _, err := m.Locate(obs[:1]); err == nil {
		t.Fatal("one observation must error")
	}
}

// synthSpectrum builds a Tagtag input spectrum with a given device
// curve on top of propagation at distance d, reported with the RSSI
// of material loss lossDB.
func synthSpectrum(d float64, deviceAt func(f float64) float64, lossDB float64) preprocess.Spectrum {
	sp := preprocess.Spectrum{Antenna: 0}
	for ch := 0; ch < rf.NumChannels; ch++ {
		f, _ := rf.ChannelFreq(ch)
		sp.Samples = append(sp.Samples, preprocess.ChannelSample{
			Channel: ch,
			FreqHz:  f,
			Phase:   rf.PropagationPhase(d, f) + deviceAt(f),
			RSSI:    rf.RSSI(d, -48, lossDB),
			Count:   4,
		})
	}
	return sp
}

func TestTagtagCurveRemovesConstantOffsets(t *testing.T) {
	tt := &Tagtag{RefRSSIDBm: -48}
	dev := func(f float64) float64 { return 0.3 * math.Sin((f-902e6)/4e6) }
	a := tt.Curve(synthSpectrum(1.4, dev, 0))
	b := tt.Curve(synthSpectrum(1.4, func(f float64) float64 { return dev(f) + 1.7 }, 0))
	for i := range a {
		if math.Abs(mathx.WrapPi(a[i]-b[i])) > 0.02 {
			t.Fatalf("constant offset leaked into the curve at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestTagtagDistanceCompensation(t *testing.T) {
	// With no material loss, the RSS distance is right and curves at
	// different distances must look alike.
	tt := &Tagtag{RefRSSIDBm: -48}
	dev := func(f float64) float64 { return 0.25 * math.Cos((f-902e6)/5e6) }
	a := tt.Curve(synthSpectrum(1.0, dev, 0))
	b := tt.Curve(synthSpectrum(2.0, dev, 0))
	var maxDiff float64
	for i := range a {
		if d := math.Abs(mathx.WrapPi(a[i] - b[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Fatalf("curves diverge by %.2f rad despite correct RSS compensation", maxDiff)
	}
}

func TestTagtagLossBreaksCompensation(t *testing.T) {
	// Material loss biases the RSS distance, so curves at different
	// distances drift apart — the weakness Fig. 18 exposes.
	tt := &Tagtag{RefRSSIDBm: -48}
	dev := func(f float64) float64 { return 0.25 * math.Cos((f-902e6)/5e6) }
	const lossDB = 6
	a := tt.Curve(synthSpectrum(1.0, dev, lossDB))
	b := tt.Curve(synthSpectrum(2.0, dev, lossDB))
	var maxDiff float64
	for i := range a {
		if d := math.Abs(mathx.WrapPi(a[i] - b[i])); d > maxDiff {
			maxDiff = d
		}
	}
	// 6 dB of loss inflates the RSS distances by 41%, which leaves a
	// ±0.2 rad residual tilt across the band after centering.
	if maxDiff < 0.15 {
		t.Fatalf("loss-biased curves too similar (%.2f rad) — compensation should fail", maxDiff)
	}
}

func TestTagtagTrainClassify(t *testing.T) {
	tt := &Tagtag{RefRSSIDBm: -48, Window: 5}
	rng := rand.New(rand.NewSource(3))
	devFor := func(class int) func(f float64) float64 {
		return func(f float64) float64 {
			return 0.4 * math.Sin((f-902e6)/4e6+float64(class)*1.3)
		}
	}
	var curves [][]float64
	var labels []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			d := 1.0 + rng.Float64()*0.2
			curves = append(curves, tt.Curve(synthSpectrum(d, devFor(c), 0)))
			labels = append(labels, c)
		}
	}
	if err := tt.Train(curves, labels); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		got, err := tt.Classify(tt.Curve(synthSpectrum(1.1, devFor(c), 0)))
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("class %d misclassified as %d", c, got)
		}
	}
}

func TestFillGaps(t *testing.T) {
	curve := []float64{0, 0, 2, 0, 0, 5, 0}
	filled := []bool{false, false, true, false, false, true, false}
	fillGaps(curve, filled)
	want := []float64{2, 2, 2, 3, 4, 5, 5}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-12 {
			t.Fatalf("fillGaps = %v, want %v", curve, want)
		}
	}
	// All-empty input must not panic.
	fillGaps([]float64{0, 0}, []bool{false, false})
}
