// Package netchaos is a seeded, deterministic in-process
// fault-injecting TCP proxy for exercising the cluster's network
// paths. It sits between the router and a shard (or any TCP peer) and
// layers the failure modes a production link actually sees — added
// latency and jitter, bandwidth throttling, connection resets
// mid-body, truncated responses, black-hole partitions, and flaky
// connection drops — on top of an otherwise transparent byte pipe.
//
// The design mirrors sim.FaultInjector at the wire layer: the zero
// Config is a byte-identical passthrough, every probabilistic draw
// comes from one seeded RNG stream so a fault campaign reproduces,
// and a Stats ledger records exactly which faults materialized so a
// test can assert the chaos actually bit.
//
// Faults are drawn per accepted connection (drop / reset-at /
// truncate-at from the Config at accept time); the shaping toxics
// (latency, jitter, bandwidth, blackhole) read the live Config on
// every forwarded chunk, so a Script can partition and heal a link
// under open connections.
package netchaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config enumerates the injectable link faults. The zero value
// injects nothing: the proxy forwards bytes unmodified and its
// observable behavior is identical to connecting directly.
type Config struct {
	// Latency is added once per forwarded response-path chunk
	// (upstream→client), modeling one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform [0,Jitter) draw on top of Latency.
	Jitter time.Duration
	// BandwidthBPS throttles the response path to this many bytes per
	// second (0 = unlimited).
	BandwidthBPS int
	// DropProb is the per-connection probability that an accepted
	// connection is closed immediately without ever reaching the
	// target ("flaky percent": 0.01 drops 1% of connections).
	DropProb float64
	// ResetProb is the per-connection probability that the client
	// side is reset (RST, via SO_LINGER 0) after ResetAfter-bounded
	// response bytes — the classic mid-body connection reset.
	ResetProb float64
	// ResetAfter bounds the response-byte offset of an armed reset:
	// the reset fires at a seeded uniform offset in [1, ResetAfter].
	// Default 512 (inside typical headers or a small JSON body).
	ResetAfter int
	// TruncateProb is the per-connection probability that the
	// response stream ends cleanly (FIN) after TruncateAfter-bounded
	// bytes — a truncated body the peer must detect by framing.
	TruncateProb float64
	// TruncateAfter bounds the truncation offset like ResetAfter.
	// Default 256.
	TruncateAfter int
	// Blackhole, while set, parks every open and new connection
	// without forwarding a byte in either direction — a network
	// partition. Clearing it (SetConfig) heals the link and parked
	// transfers resume.
	Blackhole bool
}

// zero reports whether the config injects nothing.
func (c Config) zero() bool { return c == Config{} }

func (c *Config) defaults() {
	if c.ResetAfter <= 0 {
		c.ResetAfter = 512
	}
	if c.TruncateAfter <= 0 {
		c.TruncateAfter = 256
	}
}

// Stats is the fault ledger: which faults actually materialized.
type Stats struct {
	Conns       int64 // connections accepted
	Dropped     int64 // connections dropped at accept (DropProb)
	DialErrors  int64 // upstream dials that failed
	Resets      int64 // mid-body RSTs fired
	Truncations int64 // response streams truncated
	Blackholed  int64 // chunks parked by an active blackhole
	BytesUp     int64 // client→upstream bytes forwarded
	BytesDown   int64 // upstream→client bytes forwarded
}

// Proxy is one fault-injecting listener in front of one TCP target.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex // guards cfg, rng, conns
	cfg    Config
	rng    *rand.Rand
	conns  map[net.Conn]struct{}
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	conn, dropped, dialErr, resets, truncs, holed, up, down atomic.Int64
}

// New starts a proxy on a fresh loopback port forwarding to target
// (host:port). All probabilistic draws come from the seeded RNG.
func New(target string, cfg Config, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Config returns the live fault configuration.
func (p *Proxy) Config() Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg
}

// SetConfig swaps the fault configuration. Shaping toxics (latency,
// bandwidth, blackhole) apply to in-flight connections from the next
// chunk on; per-connection draws (drop/reset/truncate) apply to
// connections accepted after the swap.
func (p *Proxy) SetConfig(cfg Config) {
	p.mu.Lock()
	p.cfg = cfg
	p.mu.Unlock()
}

// Stats snapshots the fault ledger.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:       p.conn.Load(),
		Dropped:     p.dropped.Load(),
		DialErrors:  p.dialErr.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncs.Load(),
		Blackholed:  p.holed.Load(),
		BytesUp:     p.up.Load(),
		BytesDown:   p.down.Load(),
	}
}

// Close stops the listener and tears down every open connection.
func (p *Proxy) Close() error {
	var err error
	p.once.Do(func() {
		close(p.closed)
		err = p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			_ = c.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
	return err
}

// plan is one connection's fault draw, fixed at accept time.
type plan struct {
	drop    bool
	resetAt int // response-byte offset of the armed RST (-1: none)
	truncAt int // response-byte offset of the truncation (-1: none)
}

// drawPlan rolls this connection's faults from the seeded stream.
func (p *Proxy) drawPlan() plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	cfg := p.cfg
	cfg.defaults()
	pl := plan{resetAt: -1, truncAt: -1}
	if cfg.DropProb > 0 && p.rng.Float64() < cfg.DropProb {
		pl.drop = true
		return pl
	}
	if cfg.ResetProb > 0 && p.rng.Float64() < cfg.ResetProb {
		pl.resetAt = 1 + p.rng.Intn(cfg.ResetAfter)
	}
	if cfg.TruncateProb > 0 && p.rng.Float64() < cfg.TruncateProb {
		pl.truncAt = 1 + p.rng.Intn(cfg.TruncateAfter)
	}
	return pl
}

// jitterDelay draws this chunk's added latency.
func (p *Proxy) jitterDelay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.cfg.Jitter)))
	}
	return d
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(c)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	p.conn.Add(1)
	pl := p.drawPlan()
	if pl.drop {
		p.dropped.Add(1)
		_ = client.Close()
		return
	}
	upstream, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		p.dialErr.Add(1)
		_ = client.Close()
		return
	}
	p.track(client)
	p.track(upstream)
	defer p.untrack(client)
	defer p.untrack(upstream)

	// teardown closes both halves exactly once; reset=true converts
	// the client-side close into an RST via SO_LINGER 0.
	var closeOnce sync.Once
	teardown := func(reset bool) {
		closeOnce.Do(func() {
			if reset {
				if tc, ok := client.(*net.TCPConn); ok {
					_ = tc.SetLinger(0)
				}
			}
			_ = client.Close()
			_ = upstream.Close()
		})
	}
	var pipes sync.WaitGroup
	pipes.Add(2)
	go func() { // request path: client → upstream (blackhole only)
		defer pipes.Done()
		p.pipe(upstream, client, plan{resetAt: -1, truncAt: -1}, false, teardown)
	}()
	go func() { // response path: upstream → client (all toxics)
		defer pipes.Done()
		p.pipe(client, upstream, pl, true, teardown)
	}()
	pipes.Wait()
	teardown(false)
}

// pipe forwards src→dst. The response path (shape=true) applies the
// live latency/bandwidth toxics and the connection's reset/truncate
// plan; both paths honor an active blackhole.
func (p *Proxy) pipe(dst, src net.Conn, pl plan, shape bool, teardown func(reset bool)) {
	buf := make([]byte, 16*1024)
	sent := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if !p.park() {
				teardown(false)
				return
			}
			if shape {
				cfg := p.Config()
				if cfg.Latency > 0 || cfg.Jitter > 0 {
					if !p.sleep(p.jitterDelay()) {
						teardown(false)
						return
					}
				}
				if cfg.BandwidthBPS > 0 {
					pace := time.Duration(float64(len(chunk)) / float64(cfg.BandwidthBPS) * float64(time.Second))
					if !p.sleep(pace) {
						teardown(false)
						return
					}
				}
				if pl.truncAt >= 0 && sent+len(chunk) > pl.truncAt {
					if _, werr := dst.Write(chunk[:pl.truncAt-sent]); werr == nil {
						p.down.Add(int64(pl.truncAt - sent))
					}
					p.truncs.Add(1)
					teardown(false)
					return
				}
				if pl.resetAt >= 0 && sent+len(chunk) > pl.resetAt {
					if _, werr := dst.Write(chunk[:pl.resetAt-sent]); werr == nil {
						p.down.Add(int64(pl.resetAt - sent))
					}
					p.resets.Add(1)
					teardown(true)
					return
				}
			}
			if _, werr := dst.Write(chunk); werr != nil {
				teardown(false)
				return
			}
			sent += len(chunk)
			if shape {
				p.down.Add(int64(len(chunk)))
			} else {
				p.up.Add(int64(len(chunk)))
			}
		}
		if err != nil {
			if err == io.EOF {
				// Half-close: propagate the FIN and let the other
				// direction drain (an echo peer still owes us bytes).
				if tc, ok := dst.(*net.TCPConn); ok {
					_ = tc.CloseWrite()
				}
				return
			}
			teardown(false)
			return
		}
	}
}

// park blocks while the link is blackholed; false means the proxy
// closed while parked.
func (p *Proxy) park() bool {
	first := true
	for p.Config().Blackhole {
		if first {
			p.holed.Add(1)
			first = false
		}
		select {
		case <-p.closed:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
	return true
}

// sleep waits d unless the proxy closes first.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}
