package netchaos

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer accepts one connection at a time and echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T, target string, cfg Config, seed int64) *Proxy {
	t.Helper()
	p, err := New(target, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPassthroughByteIdentical: the zero config forwards every byte
// unmodified in both directions and records zero faults.
func TestPassthroughByteIdentical(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{}, 1)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := bytes.Repeat([]byte("rfprism-netchaos-passthrough "), 4096)
	go func() {
		_, _ = conn.Write(payload)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(got) != sha256.Sum256(payload) {
		t.Fatalf("echoed %d bytes differ from the %d sent", len(got), len(payload))
	}
	st := p.Stats()
	if st.Conns != 1 || st.Dropped != 0 || st.Resets != 0 || st.Truncations != 0 || st.Blackholed != 0 {
		t.Fatalf("zero config recorded faults: %+v", st)
	}
	if st.BytesUp != int64(len(payload)) || st.BytesDown != int64(len(payload)) {
		t.Fatalf("byte ledger %+v, want %d each way", st, len(payload))
	}
}

// TestLatencyToxic: a configured latency delays the round trip.
func TestLatencyToxic(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{Latency: 60 * time.Millisecond}, 1)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	t0 := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 60*time.Millisecond {
		t.Fatalf("round trip %v, want >= the 60ms latency toxic", el)
	}
}

// TestDropToxic: DropProb 1 closes every connection at accept.
func TestDropToxic(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{DropProb: 1}, 1)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded through a dropped connection")
	}
	if st := p.Stats(); st.Dropped != 1 {
		t.Fatalf("stats %+v, want 1 drop", st)
	}
}

// TestResetToxic: an HTTP response through a reset-armed proxy dies
// with a transport error, not a clean body.
func TestResetToxic(t *testing.T) {
	big := strings.Repeat("x", 1<<20)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, big)
	}))
	defer srv.Close()
	p := newProxy(t, strings.TrimPrefix(srv.URL, "http://"), Config{ResetProb: 1, ResetAfter: 64}, 1)

	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	resp, err := cl.Get(p.URL())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("request through a reset-armed proxy succeeded")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v, want 1 reset", st)
	}
}

// TestTruncateToxic: the response stream ends cleanly short of the
// advertised Content-Length.
func TestTruncateToxic(t *testing.T) {
	big := strings.Repeat("y", 1<<20)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, big)
	}))
	defer srv.Close()
	p := newProxy(t, strings.TrimPrefix(srv.URL, "http://"), Config{TruncateProb: 1, TruncateAfter: 200}, 1)

	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	resp, err := cl.Get(p.URL())
	var n int
	if err == nil {
		var body []byte
		body, err = io.ReadAll(resp.Body)
		n = len(body)
		resp.Body.Close()
	}
	if err == nil && n == len(big) {
		t.Fatal("full body survived a truncating proxy")
	}
	if st := p.Stats(); st.Truncations != 1 {
		t.Fatalf("stats %+v, want 1 truncation", st)
	}
}

// TestBlackholeAndHeal: a blackholed request parks; healing the link
// lets it complete.
func TestBlackholeAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "alive")
	}))
	defer srv.Close()
	p := newProxy(t, strings.TrimPrefix(srv.URL, "http://"), Config{Blackhole: true}, 1)

	type result struct {
		body string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		cl := &http.Client{Timeout: 10 * time.Second}
		resp, err := cl.Get(p.URL())
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- result{body: string(b), err: err}
	}()
	select {
	case r := <-ch:
		t.Fatalf("request finished through an active blackhole: %+v", r)
	case <-time.After(150 * time.Millisecond):
	}
	p.SetConfig(Config{}) // heal
	select {
	case r := <-ch:
		if r.err != nil || r.body != "alive" {
			t.Fatalf("healed request: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed after heal")
	}
	if st := p.Stats(); st.Blackholed == 0 {
		t.Fatalf("stats %+v, want blackholed chunks recorded", st)
	}
}

// TestScriptAppliesStepsInOrder: RunScript swaps configs at their
// offsets and returns after the last step.
func TestScriptAppliesStepsInOrder(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Config{}, 1)
	err := p.RunScript(context.Background(), []Step{
		{After: 30 * time.Millisecond, Cfg: Config{}},
		{After: 10 * time.Millisecond, Cfg: Config{Blackhole: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Config(); !got.zero() {
		t.Fatalf("final config %+v, want the last step's zero config", got)
	}
}

// TestSeededDeterminism: two proxies with the same seed make the same
// per-connection fault draws over the same serial workload.
func TestSeededDeterminism(t *testing.T) {
	outcomes := func(seed int64) string {
		ln := echoServer(t)
		p := newProxy(t, ln.Addr().String(), Config{DropProb: 0.5}, seed)
		var sb strings.Builder
		for i := 0; i < 32; i++ {
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
			_, _ = conn.Write([]byte("d"))
			_, err = conn.Read(make([]byte, 1))
			if err != nil {
				sb.WriteByte('x') // dropped
			} else {
				sb.WriteByte('.')
			}
			conn.Close()
		}
		return sb.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Fatalf("same seed diverged:\n a %s\n b %s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("degenerate draw %s — want a mix of drops and passes", a)
	}
	if c := outcomes(8); c == a {
		t.Logf("seed 7 and 8 coincide (possible but unlikely): %s", a)
	}
}

func TestConfigZero(t *testing.T) {
	if !(Config{}).zero() {
		t.Fatal("zero config not zero")
	}
	if (Config{Latency: time.Millisecond}).zero() {
		t.Fatal("latency config considered zero")
	}
	if fmt.Sprint(Config{}) == "" {
		t.Fatal("unprintable config")
	}
}
