package netchaos

import (
	"context"
	"sort"
	"time"
)

// Fault scripts.
//
// A Script is a seeded chaos timeline: an ordered list of config
// swaps applied to one proxy at fixed offsets from the script start.
// Scripts make a whole fault campaign — partition at t=100ms, heal at
// t=1s, jitter for the rest of the run — a declarative value the
// conformance suite can replay.

// Step is one timed config swap.
type Step struct {
	// After is the offset from the script start at which Cfg applies.
	After time.Duration
	// Cfg replaces the proxy's whole configuration at that instant.
	Cfg Config
}

// RunScript applies the steps in offset order, blocking until the
// last one has been applied or ctx ends. Steps share one clock, so
// the gap between steps is After[i+1]-After[i] regardless of how long
// each swap takes.
func (p *Proxy) RunScript(ctx context.Context, steps []Step) error {
	ordered := append([]Step(nil), steps...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].After < ordered[b].After })
	start := time.Now()
	for _, st := range ordered {
		wait := st.After - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-p.closed:
				t.Stop()
				return nil
			}
		}
		p.SetConfig(st.Cfg)
	}
	return nil
}
