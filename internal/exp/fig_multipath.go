package exp

import (
	"context"
	"fmt"
	"strings"

	"rfprism"
	"rfprism/internal/eval"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// Fig12Result compares the system across environments (paper:
// localization 7.61/9.21/14.82 cm, orientation 8.59/10.98/19.33°,
// material accuracy 0.88/0.82/0.65 for clean / multipath with
// suppression / multipath without suppression).
type Fig12Result struct {
	Scenarios []string
	LocCM     []float64
	OrientDeg []float64
	MatAcc    []float64
	Rejected  []int
}

// RunFig12 runs a reduced localization+material campaign in each of
// the three scenarios. reps controls the per-position repetitions of
// the localization part; spec sizes the material part.
func RunFig12(cfg Config, reps int, spec MatSpec) (*Fig12Result, error) {
	multipath := rf.LabMultipath()
	scenarios := []struct {
		name string
		env  rf.Environment
		opts []rfprism.Option
	}{
		{name: "clean space", env: cfg.env()},
		{name: "multipath + suppression", env: multipath},
		{name: "multipath (no suppression)", env: multipath, opts: []rfprism.Option{
			rfprism.WithoutChannelSelection(), rfprism.WithoutErrorDetector(),
		}},
	}
	out := &Fig12Result{}
	for i, sc := range scenarios {
		env := sc.env
		scCfg := cfg
		scCfg.Seed = cfg.Seed + int64(i)*1000
		scCfg.Env = &env
		scCfg.SysOpts = append(append([]rfprism.Option{}, cfg.SysOpts...), sc.opts...)

		s, err := NewSetup(scCfg)
		if err != nil {
			return nil, err
		}
		none, err := rf.MaterialByName("none")
		if err != nil {
			return nil, err
		}
		var locErrs, orientErrs []float64
		rejected := 0
		rng := s.Scene.Rand()
		// Serial collection (the alpha draws and window synthesis share
		// the scene RNG), parallel disentangling.
		var specs []TrialSpec
		for _, pos := range s.GridPositions() {
			for r := 0; r < reps; r++ {
				alpha := mathx.Rad(float64(PaperDegrees[rng.Intn(len(PaperDegrees))]))
				specs = append(specs, s.CollectTrial(pos, alpha, none))
			}
		}
		for _, o := range s.ProcessTrials(context.Background(), specs) {
			if o.Err != nil {
				rejected++
				continue
			}
			locErrs = append(locErrs, o.Trial.LocErrM*100)
			orientErrs = append(orientErrs, o.Trial.OrientErrDeg)
		}

		matCampaign, err := RunMatCampaign(scCfg, spec)
		if err != nil {
			return nil, err
		}
		fig10, err := RunFig10And11(matCampaign)
		if err != nil {
			return nil, err
		}

		out.Scenarios = append(out.Scenarios, sc.name)
		out.LocCM = append(out.LocCM, mathx.Mean(locErrs))
		out.OrientDeg = append(out.OrientDeg, mathx.Mean(orientErrs))
		out.MatAcc = append(out.MatAcc, fig10.OverallAcc)
		out.Rejected = append(out.Rejected, rejected+matCampaign.Rejected)
	}
	return out, nil
}

// String renders Fig. 12.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12: system performance in different environments\n")
	t := eval.Table{Header: []string{"scenario", "loc err (cm)", "orient err (deg)", "material acc", "rejected"}}
	paperLoc := []string{"7.61", "9.21", "14.82"}
	paperOri := []string{"8.59", "10.98", "19.33"}
	paperAcc := []string{"0.88", "0.82", "0.65"}
	for i, sc := range r.Scenarios {
		t.AddRow(sc,
			fmt.Sprintf("%.2f (paper %s)", r.LocCM[i], paperLoc[i]),
			fmt.Sprintf("%.2f (paper %s)", r.OrientDeg[i], paperOri[i]),
			fmt.Sprintf("%.2f (paper %s)", r.MatAcc[i], paperAcc[i]),
			fmt.Sprintf("%d", r.Rejected[i]))
	}
	b.WriteString(t.String())
	return b.String()
}
