package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"rfprism"
	"rfprism/internal/core"
	"rfprism/internal/eval"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// Study3DResult evaluates the §VII extension: four antennas, seven
// unknowns, full 3D position and 3D polarization. The paper leaves
// this to future work; the study quantifies what the bundled
// deployment achieves.
type Study3DResult struct {
	PosCM    eval.ErrorStats
	PolDeg   eval.ErrorStats
	Mirrored int // trials whose polarization landed > 45° away
	Rejected int
}

// RunStudy3D runs n random 3D tag states through the 4-antenna
// pipeline.
func RunStudy3D(cfg Config, n int) (*Study3DResult, error) {
	if n <= 0 {
		n = 24
	}
	hwRng := rand.New(rand.NewSource(cfg.Seed))
	ants := sim.PaperAntennas3D(hwRng)
	scene, err := sim.NewScene(ants, cfg.env(), cfg.simConfig(), cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("exp: scene: %w", err)
	}
	bounds := rfprism.Bounds2D(sim.PaperRegion())
	bounds.ZMin, bounds.ZMax = 0, 0.8
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), bounds, rfprism.WithMode3D())
	if err != nil {
		return nil, err
	}
	tag := scene.NewTag("study3d")
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	var calWin []sim.Reading
	for i := 0; i < 5; i++ {
		calWin = append(calWin, scene.CollectWindow(tag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return nil, err
	}

	rng := scene.Rand()
	out := &Study3DResult{}
	var posErrs, polErrs []float64
	for i := 0; i < n; i++ {
		truth := geom.Vec3{
			X: 0.3 + rng.Float64()*1.4,
			Y: 0.8 + rng.Float64()*1.2,
			Z: rng.Float64() * 0.6,
		}
		az := rng.Float64() * 2 * 3.14159265
		el := (rng.Float64() - 0.5) * 3.14159265 * 0.6
		pl := sim.Static{
			Pos:          truth,
			Polarization: rf.TagPolarization3D(az, el),
			Material:     none,
			Attach:       rf.Attach(none, rf.DefaultAttachmentJitter(), rng),
		}
		res, err := sys.ProcessWindow(scene.CollectWindow(tag, pl))
		if err != nil {
			out.Rejected++
			continue
		}
		est := res.Estimate
		posErrs = append(posErrs, 100*est.Pos.Dist(truth))
		pe := mathx.Deg(core.PolarizationError(est.Azimuth, est.Elevation, az, el))
		polErrs = append(polErrs, pe)
		if pe > 45 {
			out.Mirrored++
		}
	}
	out.PosCM = eval.Summarize(posErrs)
	out.PolDeg = eval.Summarize(polErrs)
	return out, nil
}

// String renders the study.
func (r *Study3DResult) String() string {
	var b strings.Builder
	b.WriteString("3D extension study (Sec. VII: 4 antennas, 7 unknowns)\n")
	t := eval.Table{Header: []string{"metric", "value"}}
	t.AddRow("3D position error (cm)", fmt.Sprintf("mean %.1f median %.1f p90 %.1f", r.PosCM.Mean, r.PosCM.Median, r.PosCM.P90))
	t.AddRow("polarization error (deg)", fmt.Sprintf("mean %.1f median %.1f p90 %.1f", r.PolDeg.Mean, r.PolDeg.Median, r.PolDeg.P90))
	t.AddRow("mirror-ambiguity trials", fmt.Sprintf("%d / %d", r.Mirrored, r.PosCM.N))
	t.AddRow("rejected windows", fmt.Sprintf("%d", r.Rejected))
	b.WriteString(t.String())
	return b.String()
}
