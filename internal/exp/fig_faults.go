package exp

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"rfprism"
	"rfprism/internal/eval"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// Fault-sweep campaign (DESIGN.md §7): the same grid of ground-truth
// positions is measured twice on a four-antenna redundant 2D
// deployment — once clean, once through a seeded sim.FaultInjector —
// and the two error distributions are compared. The campaign proves
// the degraded-mode claim: with one dead antenna and burst reading
// loss the pipeline keeps localizing from the surviving subset, no
// window hard-fails without a Health report, and the median error
// stays within a small factor of the fault-free baseline.

// FaultSweepSpec parameterizes the fault sweep.
type FaultSweepSpec struct {
	// Grid is the side of the Grid×Grid ground-truth position grid
	// (default 3).
	Grid int
	// Reps is the number of windows per position (default 2).
	Reps int
	// Faults is the injected fault profile.
	Faults sim.FaultConfig
	// FaultSeed drives the injector RNG (default 1234).
	FaultSeed int64
	// RetryAttempts bounds the per-window retry of transient faults
	// (default 3).
	RetryAttempts int
}

func (s *FaultSweepSpec) defaults() {
	if s.Grid <= 0 {
		s.Grid = 3
	}
	if s.Reps <= 0 {
		s.Reps = 2
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 1234
	}
	if s.RetryAttempts <= 0 {
		s.RetryAttempts = 3
	}
}

// DefaultFaultSweepSpec is the acceptance profile: one dead antenna
// out of four plus 10% burst reading loss.
func DefaultFaultSweepSpec() FaultSweepSpec {
	return FaultSweepSpec{
		Faults: sim.FaultConfig{
			DeadAntennas:  []int{3},
			BurstLossProb: sim.BurstLossEntryProb(0.10, 20),
			MeanBurstLen:  20,
		},
	}
}

// FaultSweepResult summarizes the paired clean/faulted campaign.
type FaultSweepResult struct {
	// Baseline and Faulted are the localization error stats (cm) of
	// the clean and the fault-injected passes.
	Baseline, Faulted eval.ErrorStats
	// Windows is the number of faulted windows attempted.
	Windows int
	// Solved counts faulted windows that produced an estimate.
	Solved int
	// Degraded counts solved windows whose Health is degraded (the
	// estimate came from an antenna subset).
	Degraded int
	// Rejected counts faulted windows that still failed after
	// retries.
	Rejected int
	// Retried counts faulted windows that consumed more than one
	// attempt.
	Retried int
	// MissingHealth counts failures without a Health report — the
	// hard-fail class the degraded pipeline is meant to eliminate;
	// must be zero.
	MissingHealth int
	// Stats are the injector's materialized fault counters.
	Stats sim.FaultStats
}

// RunFaultSweep runs the paired clean/faulted campaign. The
// deployment is the 2D layout plus one redundant antenna
// (sim.PaperAntennas2DRedundant) so a single dead antenna leaves the
// 2D minimum of three.
func RunFaultSweep(cfg Config, spec FaultSweepSpec) (*FaultSweepResult, error) {
	spec.defaults()
	if cfg.Deploy == nil {
		cfg.Deploy = sim.PaperAntennas2DRedundant
	}
	cfg.SysOpts = append(append([]rfprism.Option(nil), cfg.SysOpts...),
		rfprism.WithWindowRetry(spec.RetryAttempts, time.Millisecond))
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	positions := s.Region.GridPoints(spec.Grid, spec.Grid)

	// Clean pass: the fault-free baseline on the same deployment and
	// calibration.
	var specs []TrialSpec
	for _, pos := range positions {
		for r := 0; r < spec.Reps; r++ {
			alpha := mathx.Rad(float64(30 * r))
			specs = append(specs, s.CollectTrial(pos, alpha, none))
		}
	}
	out := &FaultSweepResult{}
	var baseErrs []float64
	for _, o := range s.ProcessTrials(context.Background(), specs) {
		if o.Err != nil {
			continue
		}
		baseErrs = append(baseErrs, o.Trial.LocErrM*100)
	}
	if len(baseErrs) == 0 {
		return nil, fmt.Errorf("exp: fault sweep: no clean baseline window solved")
	}
	out.Baseline = eval.Summarize(baseErrs)

	// Faulted pass: same positions through the injector. Initial
	// windows are collected serially, in trial order, so the campaign
	// stays a pure function of its seed at any parallelism; Collect is
	// only the *retry* source, whose rare re-collections the injector
	// serializes for the concurrent workers.
	fi, err := sim.NewFaultInjector(s.Scene, spec.Faults, spec.FaultSeed)
	if err != nil {
		return nil, err
	}
	wins := make([]rfprism.Window, 0, len(positions)*spec.Reps)
	truths := make([]geom.Vec3, 0, len(positions)*spec.Reps)
	for _, pos := range positions {
		for r := 0; r < spec.Reps; r++ {
			alpha := mathx.Rad(float64(30 * r))
			pl := s.Scene.Place(pos, alpha, none)
			wins = append(wins, rfprism.Window{
				Readings: fi.CollectWindow(s.Tag, pl),
				Collect:  fi.Source(s.Tag, pl),
			})
			truths = append(truths, pos)
		}
	}
	out.Windows = len(wins)
	var faultErrs []float64
	for i, r := range s.Sys.ProcessWindows(context.Background(), wins) {
		health := r.Health()
		if health != nil && health.Attempts > 1 {
			out.Retried++
		}
		if r.Err != nil {
			out.Rejected++
			if health == nil {
				out.MissingHealth++
			}
			continue
		}
		out.Solved++
		if health != nil && health.Degraded {
			out.Degraded++
		}
		est := r.Result.Estimate
		faultErrs = append(faultErrs,
			100*math.Hypot(est.Pos.X-truths[i].X, est.Pos.Y-truths[i].Y))
	}
	if len(faultErrs) > 0 {
		out.Faulted = eval.Summarize(faultErrs)
	}
	out.Stats = fi.Stats()
	return out, nil
}

// String renders the sweep as a table plus the fault ledger.
func (r *FaultSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: dead antenna + burst loss on the redundant 2D deployment\n")
	t := eval.Table{Header: []string{"pass", "mean cm", "median cm", "p90 cm"}}
	t.AddRow("clean", fmt.Sprintf("%.2f", r.Baseline.Mean),
		fmt.Sprintf("%.2f", r.Baseline.Median), fmt.Sprintf("%.2f", r.Baseline.P90))
	t.AddRow("faulted", fmt.Sprintf("%.2f", r.Faulted.Mean),
		fmt.Sprintf("%.2f", r.Faulted.Median), fmt.Sprintf("%.2f", r.Faulted.P90))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "windows %d: solved %d (degraded %d), rejected %d, retried %d, missing-health %d\n",
		r.Windows, r.Solved, r.Degraded, r.Rejected, r.Retried, r.MissingHealth)
	fmt.Fprintf(&b, "injected: %d silenced antenna-windows, %d burst-lost readings, %d restarts\n",
		r.Stats.SilencedAntennaWindows, r.Stats.BurstLostReadings, r.Stats.Restarts)
	return b.String()
}
