package exp

import (
	"math"
	"strings"
	"testing"

	"rfprism/internal/geom"
	"rfprism/internal/rf"
)

func TestNewSetupCalibrates(t *testing.T) {
	s, err := NewSetup(Config{Seed: 1, CalWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sys.TagCalibration(s.Tag.EPC); !ok {
		t.Fatal("tag calibration missing after setup")
	}
	cal := s.Sys.AntennaCalibration()
	if len(cal.DK) != 3 {
		t.Fatalf("antenna calibration for %d ports", len(cal.DK))
	}
}

func TestRunTrialAccuracy(t *testing.T) {
	s, err := NewSetup(Config{Seed: 2, CalWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.RunTrial(geom.Vec3{X: 0.8, Y: 0.9}, 0.7, none)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LocErrM > 0.3 {
		t.Fatalf("trial localization error %.2f m", tr.LocErrM)
	}
	if tr.Region != geom.RegionNear {
		t.Fatalf("(0.8, 0.9) classified as %v", tr.Region)
	}
}

func TestRegionBucketsCoverRegion(t *testing.T) {
	s, err := NewSetup(Config{Seed: 3, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Region]int{}
	for _, p := range s.GridPositions() {
		seen[s.RegionOf(p)]++
	}
	for _, r := range []geom.Region{geom.RegionNear, geom.RegionMedium, geom.RegionFar} {
		if seen[r] == 0 {
			t.Fatalf("no grid point in region %v (got %v)", r, seen)
		}
	}
}

func TestRandomPositionInsideRegion(t *testing.T) {
	s, err := NewSetup(Config{Seed: 4, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := s.RandomPosition()
		if !s.Region.Contains(p.X, p.Y) {
			t.Fatalf("random position %v outside region", p)
		}
	}
}

func TestFig4SlopesGrowWithDistance(t *testing.T) {
	r, err := RunFig4(Config{Seed: 5, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("%d series", len(r.Series))
	}
	if !(r.Series[0].Line.K < r.Series[1].Line.K && r.Series[1].Line.K < r.Series[2].Line.K) {
		t.Fatalf("slopes not increasing with distance: %g %g %g",
			r.Series[0].Line.K, r.Series[1].Line.K, r.Series[2].Line.K)
	}
	if !strings.Contains(r.String(), "Fig. 4") {
		t.Error("renderer missing title")
	}
}

func TestFig5SlopesOrientationInvariant(t *testing.T) {
	r, err := RunFig5(Config{Seed: 6, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Rotating the tag must not change the slope (Fig. 5)...
	for _, s := range r.Series[1:] {
		if rel := math.Abs(s.Line.K-r.Series[0].Line.K) / r.Series[0].Line.K; rel > 0.02 {
			t.Fatalf("slope changed by %.1f%% under rotation", rel*100)
		}
	}
	// ...but the intercept must move.
	b0 := r.Series[0].Line.B0
	moved := false
	for _, s := range r.Series[1:] {
		if math.Abs(s.Line.B0-b0) > 0.3 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("intercept did not respond to rotation")
	}
}

func TestFig6SlopesMaterialDependent(t *testing.T) {
	r, err := RunFig6(Config{Seed: 7, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wood, glass, plastic at the same spot: slopes must differ
	// (glass has the largest polarizability of the three).
	kWood, kGlass, kPlastic := r.Series[0].Line.K, r.Series[1].Line.K, r.Series[2].Line.K
	if !(kGlass > kWood && kGlass > kPlastic) {
		t.Fatalf("glass slope %g not the largest (wood %g, plastic %g)", kGlass, kWood, kPlastic)
	}
}

func TestMobilityLinearityGap(t *testing.T) {
	static, moving, err := MobilityLinearity(Config{Seed: 8, CalWindows: 1}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if moving < 4*static {
		t.Fatalf("mobility residual %.3f not clearly above static %.3f", moving, static)
	}
}

func TestSmallLocCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too slow for -short")
	}
	c, err := RunLocCampaign(Config{Seed: 9, CalWindows: 2}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.DegreeTrials) < 100 {
		t.Fatalf("only %d trials (rejected %d)", len(c.DegreeTrials), c.Rejected)
	}
	f8 := Fig8(c)
	if f8.OverallCM <= 0 || f8.OverallCM > 25 {
		t.Fatalf("overall localization %.1f cm implausible", f8.OverallCM)
	}
	f9 := Fig9(c)
	if f9.OverallDeg <= 0 || f9.OverallDeg > 45 {
		t.Fatalf("overall orientation %.1f deg implausible", f9.OverallDeg)
	}
	if !strings.Contains(f8.String(), "Fig. 8") || !strings.Contains(f9.String(), "Fig. 9") {
		t.Error("renderers missing titles")
	}
}

func TestSmallMatCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too slow for -short")
	}
	spec := MatSpec{FixedTrials: 6, MovedTrials0: 8, MovedTrials90: 4}
	c, err := RunMatCampaign(Config{Seed: 10, CalWindows: 2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Materials) != 8 {
		t.Fatalf("%d materials", len(c.Materials))
	}
	f10, err := RunFig10And11(c)
	if err != nil {
		t.Fatal(err)
	}
	// With tiny training sets the accuracy is depressed, but it must
	// beat chance (12.5%) by a wide margin.
	if f10.OverallAcc < 0.4 {
		t.Fatalf("material accuracy %.2f barely above chance", f10.OverallAcc)
	}
	f13, err := RunFig13(c)
	if err != nil {
		t.Fatal(err)
	}
	if f13.TreeAcc < 0.4 {
		t.Fatalf("tree accuracy %.2f", f13.TreeAcc)
	}
	if !strings.Contains(f13.String(), "DecisionTree") {
		t.Error("Fig. 13 renderer broken")
	}
}

func TestSubsampleChannels(t *testing.T) {
	s, err := NewSetup(Config{Seed: 11, CalWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	win := s.Window(geom.Vec3{X: 1, Y: 1.2}, 0, none)
	sub := subsampleChannels(win, 10)
	seen := map[int]bool{}
	for _, r := range sub {
		seen[r.Channel] = true
	}
	if len(seen) < 9 || len(seen) > 12 {
		t.Fatalf("subsampled to %d channels, want ≈10", len(seen))
	}
	if got := subsampleChannels(win, 0); len(got) != len(win) {
		t.Error("n=0 must be a no-op")
	}
}

func TestStudy3DRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("3D solve too slow for -short")
	}
	r, err := RunStudy3D(Config{Seed: 12, CalWindows: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.PosCM.N+r.Rejected != 4 {
		t.Fatalf("trials unaccounted: %d + %d != 4", r.PosCM.N, r.Rejected)
	}
	if r.PosCM.N > 0 && r.PosCM.Mean > 30 {
		t.Fatalf("3D position error %.1f cm implausible", r.PosCM.Mean)
	}
	if !strings.Contains(r.String(), "3D extension study") {
		t.Error("renderer broken")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep too slow for -short")
	}
	// A minimal ablation pass: every variant must produce results and
	// the slope-only variant must not beat the full system.
	r, err := RunAblations(Config{Seed: 13, CalWindows: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 6 {
		t.Fatalf("%d variants", len(r.Variants))
	}
	byName := map[string]AblationResult{}
	for _, v := range r.Variants {
		byName[v.Name] = v
		if v.LocCM.N == 0 {
			t.Fatalf("variant %q produced no trials", v.Name)
		}
	}
	// Cross-variant ordering needs large campaigns (each variant runs
	// its own seed); at reps=1 we only assert sanity per variant.
	for name, v := range byName {
		if v.LocCM.Mean > 40 || v.OrientDeg.Mean > 50 {
			t.Fatalf("variant %q implausible: %.1f cm / %.1f°", name, v.LocCM.Mean, v.OrientDeg.Mean)
		}
	}
	if !strings.Contains(r.String(), "full system") {
		t.Error("renderer broken")
	}
}
