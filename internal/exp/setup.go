// Package exp implements the paper's measurement campaigns (§VI-B):
// one runner per figure/table of the evaluation, shared between the
// rfprism CLI, the benchmark suite and EXPERIMENTS.md. Every runner is
// deterministic given its seed.
package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// Region thresholds (meters of mean tag-antenna distance) splitting
// the working area into the paper's near/medium/far buckets.
const (
	NearMax   = 1.75
	MediumMax = 2.15
)

// Config parameterizes a campaign.
type Config struct {
	// Seed drives all randomness (hardware offsets, noise, jitter).
	Seed int64
	// Env is the propagation environment (default clean space).
	Env *rf.Environment
	// Sim overrides the reader configuration.
	Sim *sim.Config
	// SysOpts are extra System options (e.g. disable suppression).
	SysOpts []rfprism.Option
	// CalWindows is the number of averaged calibration windows
	// (default 5).
	CalWindows int
	// Deploy overrides the antenna deployment builder (default
	// sim.PaperAntennas2D); the rng draws the per-antenna hardware
	// offsets. The fault sweep uses sim.PaperAntennas2DRedundant.
	Deploy func(*rand.Rand) []sim.Antenna
}

func (c Config) env() rf.Environment {
	if c.Env == nil {
		return rf.CleanSpace()
	}
	return *c.Env
}

func (c Config) simConfig() sim.Config {
	if c.Sim == nil {
		return sim.DefaultConfig()
	}
	return *c.Sim
}

// Setup is a deployed-and-calibrated testbed ready to run trials.
type Setup struct {
	Scene  *sim.Scene
	Sys    *rfprism.System
	Tag    sim.Tag
	Region sim.WorkingRegion
	// CalPos/CalAlpha are the surveyed calibration pose.
	CalPos   geom.Vec3
	CalAlpha float64
}

// NewSetup deploys the paper's three-antenna testbed with random
// hardware offsets, builds the sensing system and runs the antenna
// calibration (§IV-C) and the tag calibration (§V-B).
func NewSetup(cfg Config) (*Setup, error) {
	if cfg.CalWindows <= 0 {
		cfg.CalWindows = 5
	}
	// Antenna hardware offsets come from a seed-derived RNG so the
	// whole campaign is a function of one seed.
	hwRng := rand.New(rand.NewSource(cfg.Seed))
	deploy := cfg.Deploy
	if deploy == nil {
		deploy = sim.PaperAntennas2D
	}
	ants := deploy(hwRng)
	scene, err := sim.NewScene(ants, cfg.env(), cfg.simConfig(), cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("exp: scene: %w", err)
	}
	// The sensing side works from the *surveyed* geometry: antenna
	// coordinates and directions measured by hand during deployment.
	surveyed := sim.PerturbSurvey(scene.Antennas, hwRng, 0.006, 0.02)
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(surveyed),
		rfprism.Bounds2D(sim.PaperRegion()), cfg.SysOpts...)
	if err != nil {
		return nil, fmt.Errorf("exp: system: %w", err)
	}
	s := &Setup{
		Scene:    scene,
		Sys:      sys,
		Tag:      scene.NewTag("exp-tag"),
		Region:   sim.PaperRegion(),
		CalPos:   geom.Vec3{X: 1.0, Y: 1.5},
		CalAlpha: 0,
	}
	if err := s.recalibrate(cfg.CalWindows); err != nil {
		return nil, err
	}
	return s, nil
}

// recalibrate runs the antenna and tag calibrations.
func (s *Setup) recalibrate(windows int) error {
	none, err := rf.MaterialByName("none")
	if err != nil {
		return err
	}
	pl := sim.Static{
		Pos:          s.CalPos,
		Polarization: rf.TagPolarization2D(s.CalAlpha),
		Material:     none,
		Attach:       rf.Attach(none, rf.AttachmentJitter{}, nil),
	}
	var win []sim.Reading
	for i := 0; i < windows; i++ {
		win = append(win, s.Scene.CollectWindow(s.Tag, pl)...)
	}
	if err := s.Sys.CalibrateAntennas(win, s.CalPos, s.CalAlpha); err != nil {
		return fmt.Errorf("exp: antenna calibration: %w", err)
	}
	var tagWin []sim.Reading
	for i := 0; i < windows; i++ {
		tagWin = append(tagWin, s.Scene.CollectWindow(s.Tag, pl)...)
	}
	if err := s.Sys.CalibrateTag(s.Tag.EPC, tagWin, s.CalPos, s.CalAlpha); err != nil {
		return fmt.Errorf("exp: tag calibration: %w", err)
	}
	return nil
}

// Window collects one hop round with the tag at pos, in-plane
// polarization alpha, attached to material m (with placement jitter).
func (s *Setup) Window(pos geom.Vec3, alpha float64, m rf.Material) []sim.Reading {
	return s.Scene.CollectWindow(s.Tag, s.Scene.Place(pos, alpha, m))
}

// Trial is one processed measurement with its ground truth.
type Trial struct {
	Pos      geom.Vec3
	Alpha    float64
	Material string
	Result   *rfprism.Result
	// LocErrM is the 2D localization error in meters.
	LocErrM float64
	// OrientErrDeg is the orientation error in degrees (mod 180°).
	OrientErrDeg float64
	// Region is the near/medium/far bucket of the true position.
	Region geom.Region
}

// RunTrial collects and processes one window, returning the trial or
// an error (e.g. the detector rejected the window).
func (s *Setup) RunTrial(pos geom.Vec3, alpha float64, m rf.Material) (*Trial, error) {
	res, err := s.Sys.ProcessWindow(s.Window(pos, alpha, m))
	if err != nil {
		return nil, err
	}
	return s.makeTrial(pos, alpha, m, res), nil
}

func (s *Setup) makeTrial(pos geom.Vec3, alpha float64, m rf.Material, res *rfprism.Result) *Trial {
	est := res.Estimate
	return &Trial{
		Pos:          pos,
		Alpha:        alpha,
		Material:     m.Name,
		Result:       res,
		LocErrM:      math.Hypot(est.Pos.X-pos.X, est.Pos.Y-pos.Y),
		OrientErrDeg: mathx.Deg(math.Abs(mathx.AngDiffPeriod(est.Alpha, alpha, math.Pi))),
		Region:       s.RegionOf(pos),
	}
}

// TrialSpec is one collected-but-unprocessed campaign measurement:
// the ground truth plus the window's raw readings.
type TrialSpec struct {
	Pos      geom.Vec3
	Alpha    float64
	Material rf.Material
	Readings []sim.Reading
}

// CollectTrial synthesizes the window for one trial *now* — window
// collection consumes the scene's single RNG stream, so campaigns
// must collect serially, in trial order, to stay a pure function of
// their seed — and returns the spec for later batch processing.
func (s *Setup) CollectTrial(pos geom.Vec3, alpha float64, m rf.Material) TrialSpec {
	return TrialSpec{Pos: pos, Alpha: alpha, Material: m, Readings: s.Window(pos, alpha, m)}
}

// TrialOutcome pairs a processed spec's Trial with its per-window
// error; exactly one of the two is set.
type TrialOutcome struct {
	Trial *Trial
	Err   error
}

// ProcessTrials disentangles already-collected trials through the
// system's bounded worker pool (rfprism.System.ProcessWindows).
// Outcomes are in spec order; a rejected window surfaces in its
// outcome's Err without affecting the rest of the batch.
func (s *Setup) ProcessTrials(ctx context.Context, specs []TrialSpec) []TrialOutcome {
	wins := make([]rfprism.Window, len(specs))
	for i, sp := range specs {
		wins[i] = rfprism.Window{Readings: sp.Readings}
	}
	results := s.Sys.ProcessWindows(ctx, wins)
	out := make([]TrialOutcome, len(specs))
	for i, r := range results {
		if r.Err != nil {
			out[i] = TrialOutcome{Err: r.Err}
			continue
		}
		sp := specs[i]
		out[i] = TrialOutcome{Trial: s.makeTrial(sp.Pos, sp.Alpha, sp.Material, r.Result)}
	}
	return out
}

// RegionOf buckets a position into near/medium/far by mean antenna
// distance.
func (s *Setup) RegionOf(pos geom.Vec3) geom.Region {
	return geom.ClassifyRegion(sim.MeanAntennaDistance(s.Scene.Antennas, pos), NearMax, MediumMax)
}

// GridPositions returns the paper's 25 ground-truth points.
func (s *Setup) GridPositions() []geom.Vec3 {
	return s.Region.GridPoints(5, 5)
}

// RandomPosition draws a uniform position inside the working region
// (inset 10% from its border).
func (s *Setup) RandomPosition() geom.Vec3 {
	rng := s.Scene.Rand()
	insetX := (s.Region.XMax - s.Region.XMin) * 0.1
	insetY := (s.Region.YMax - s.Region.YMin) * 0.1
	return geom.Vec3{
		X: s.Region.XMin + insetX + rng.Float64()*(s.Region.XMax-s.Region.XMin-2*insetX),
		Y: s.Region.YMin + insetY + rng.Float64()*(s.Region.YMax-s.Region.YMin-2*insetY),
	}
}

// PaperDegrees are the tag rotations of the localization campaign.
var PaperDegrees = []int{0, 30, 60, 90, 120, 150}
