package exp

import (
	"strings"
	"testing"
)

// TestFaultSweepAcceptance is the ISSUE acceptance criterion for the
// degraded pipeline: with one dead antenna out of four and 10% burst
// reading loss, every window still produces either an estimate or a
// Health-carrying rejection, and the median localization error stays
// within 2× of the fault-free baseline.
func TestFaultSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("paired campaign too slow for -short")
	}
	r, err := RunFaultSweep(Config{Seed: 42}, DefaultFaultSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows == 0 {
		t.Fatal("no faulted windows attempted")
	}
	if r.MissingHealth != 0 {
		t.Fatalf("%d windows hard-failed without a Health report", r.MissingHealth)
	}
	if r.Rejected != 0 {
		t.Fatalf("%d windows rejected despite degraded mode", r.Rejected)
	}
	if r.Solved != r.Windows {
		t.Fatalf("solved %d of %d windows", r.Solved, r.Windows)
	}
	if r.Degraded == 0 {
		t.Fatal("dead antenna injected but no window reported degraded")
	}
	if r.Stats.SilencedAntennaWindows == 0 || r.Stats.BurstLostReadings == 0 {
		t.Fatalf("faults not materialized: %+v", r.Stats)
	}
	if r.Faulted.Median > 2*r.Baseline.Median {
		t.Fatalf("faulted median %.2f cm exceeds 2x baseline %.2f cm",
			r.Faulted.Median, r.Baseline.Median)
	}
	if !strings.Contains(r.String(), "Fault sweep") {
		t.Error("renderer missing title")
	}
}

// TestFaultSweepRejectsBadProfile covers the config validation path.
func TestFaultSweepRejectsBadProfile(t *testing.T) {
	spec := DefaultFaultSweepSpec()
	spec.Faults.BurstLossProb = 1.5
	if _, err := RunFaultSweep(Config{Seed: 1, CalWindows: 1}, spec); err == nil {
		t.Fatal("invalid fault profile accepted")
	}
}
