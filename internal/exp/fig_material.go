package exp

import (
	"context"
	"fmt"
	"strings"

	"rfprism/internal/baseline"
	"rfprism/internal/classify"
	"rfprism/internal/eval"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// MatTrial is one material-identification measurement: the RF-Prism
// feature vector (Eq. 9) and the Tagtag baseline curve extracted from
// the same window.
type MatTrial struct {
	Label    int
	Material string
	Degree   int
	Region   geom.Region
	Features []float64
	Curve    []float64
}

// MatCampaignResult is the output of a material campaign.
type MatCampaignResult struct {
	Materials []string
	// Fixed are trials at the fixed training position (0°).
	Fixed []*MatTrial
	// Moved0 are trials at random positions, 0°.
	Moved0 []*MatTrial
	// Moved90 are trials at random positions, rotated.
	Moved90 []*MatTrial
	// Rejected counts detector-discarded windows.
	Rejected int
}

// MatSpec sizes a material campaign. The paper uses 150 trials per
// material (100 at 0°, 50 at 90°).
type MatSpec struct {
	// FixedTrials per material at the fixed position, 0°.
	FixedTrials int
	// MovedTrials0 per material at random positions, 0°.
	MovedTrials0 int
	// MovedTrials90 per material at random positions, 90°.
	MovedTrials90 int
}

// DefaultMatSpec mirrors the paper's §VI-B campaign sizes.
func DefaultMatSpec() MatSpec {
	return MatSpec{FixedTrials: 50, MovedTrials0: 50, MovedTrials90: 50}
}

// RunMatCampaign measures every evaluation material under the spec.
func RunMatCampaign(cfg Config, spec MatSpec) (*MatCampaignResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	tagtag := &baseline.Tagtag{RefRSSIDBm: s.Scene.Cfg.RefRSSIDBm}
	mats := rf.EvaluationMaterials()
	out := &MatCampaignResult{}
	for _, m := range mats {
		out.Materials = append(out.Materials, m.Name)
	}
	fixedPos := geom.Vec3{X: 1.0, Y: 1.3}

	// Collection stays serial and in the original trial order: the
	// random-position draws and the window synthesis share the scene's
	// RNG stream, so this interleaving is what the seed reproduces.
	type matSpec struct {
		TrialSpec
		label  int
		deg    int
		bucket *[]*MatTrial
	}
	var specs []matSpec
	for label, m := range mats {
		for i := 0; i < spec.FixedTrials; i++ {
			specs = append(specs, matSpec{s.CollectTrial(fixedPos, 0, m), label, 0, &out.Fixed})
		}
		for i := 0; i < spec.MovedTrials0; i++ {
			specs = append(specs, matSpec{s.CollectTrial(s.RandomPosition(), 0, m), label, 0, &out.Moved0})
		}
		for i := 0; i < spec.MovedTrials90; i++ {
			deg := 90
			specs = append(specs, matSpec{s.CollectTrial(s.RandomPosition(), mathx.Rad(float64(deg)), m), label, deg, &out.Moved90})
		}
	}

	// Disentangling fans out across the worker pool; feature
	// extraction walks the order-preserving results.
	plain := make([]TrialSpec, len(specs))
	for i := range specs {
		plain[i] = specs[i].TrialSpec
	}
	for i, o := range s.ProcessTrials(context.Background(), plain) {
		if o.Err != nil {
			out.Rejected++
			continue
		}
		feats, err := s.Sys.MaterialFeatures(s.Tag.EPC, o.Trial.Result)
		if err != nil {
			out.Rejected++
			continue
		}
		sp := specs[i]
		*sp.bucket = append(*sp.bucket, &MatTrial{
			Label:    sp.label,
			Material: sp.Material.Name,
			Degree:   sp.deg,
			Region:   s.RegionOf(sp.Pos),
			Features: feats,
			Curve:    tagtag.Curve(o.Trial.Result.Spectra[0]),
		})
	}
	return out, nil
}

// split returns alternating halves of a trial list (per material, to
// keep the class balance).
func split(trials []*MatTrial) (train, test []*MatTrial) {
	perClass := make(map[int]int)
	for _, t := range trials {
		if perClass[t.Label]%2 == 0 {
			train = append(train, t)
		} else {
			test = append(test, t)
		}
		perClass[t.Label]++
	}
	return train, test
}

func featureSet(trials []*MatTrial) classify.Dataset {
	d := classify.Dataset{}
	for _, t := range trials {
		d.X = append(d.X, t.Features)
		d.Y = append(d.Y, t.Label)
	}
	return d
}

func curveSet(trials []*MatTrial) classify.Dataset {
	d := classify.Dataset{}
	for _, t := range trials {
		d.X = append(d.X, t.Curve)
		d.Y = append(d.Y, t.Label)
	}
	return d
}

// NewPaperTree returns the decision-tree classifier configured as in
// the paper's final system.
func NewPaperTree() *classify.Tree { return &classify.Tree{MaxDepth: 12, MinLeaf: 2} }

// Fig10Result is material identification accuracy by region and by
// orientation (paper: 88.6/87.5/87.5% near/medium/far; 88.0/87.8% at
// 0°/90° with 0°-only training).
type Fig10Result struct {
	ByRegion   map[geom.Region]float64
	ByDegree   map[int]float64
	PerClass   map[string]float64
	OverallAcc float64
	Confusion  eval.Confusion
}

// RunFig10And11 trains the paper's decision tree on half the 0°
// moved trials and evaluates by region, orientation and class.
func RunFig10And11(c *MatCampaignResult) (*Fig10Result, error) {
	train, test0 := split(c.Moved0)
	tree := NewPaperTree()
	if err := tree.Fit(featureSet(train)); err != nil {
		return nil, err
	}
	test := append(append([]*MatTrial{}, test0...), c.Moved90...)

	r := &Fig10Result{
		ByRegion: make(map[geom.Region]float64),
		ByDegree: make(map[int]float64),
		PerClass: make(map[string]float64),
	}
	type bucket struct{ correct, total int }
	regions := make(map[geom.Region]*bucket)
	degrees := make(map[int]*bucket)
	classes := make(map[string]*bucket)
	counts := make([][]int, len(c.Materials))
	for i := range counts {
		counts[i] = make([]int, len(c.Materials))
	}
	var correct, total int
	for _, t := range test {
		pred, err := tree.Predict(t.Features)
		if err != nil {
			return nil, err
		}
		ok := pred == t.Label
		if regions[t.Region] == nil {
			regions[t.Region] = &bucket{}
		}
		if degrees[t.Degree] == nil {
			degrees[t.Degree] = &bucket{}
		}
		if classes[t.Material] == nil {
			classes[t.Material] = &bucket{}
		}
		for _, b := range []*bucket{regions[t.Region], degrees[t.Degree], classes[t.Material]} {
			b.total++
			if ok {
				b.correct++
			}
		}
		counts[t.Label][pred]++
		total++
		if ok {
			correct++
		}
	}
	for reg, b := range regions {
		r.ByRegion[reg] = float64(b.correct) / float64(b.total)
	}
	for deg, b := range degrees {
		r.ByDegree[deg] = float64(b.correct) / float64(b.total)
	}
	for m, b := range classes {
		r.PerClass[m] = float64(b.correct) / float64(b.total)
	}
	if total > 0 {
		r.OverallAcc = float64(correct) / float64(total)
	}
	r.Confusion = eval.Confusion{Labels: c.Materials, Counts: counts}
	return r, nil
}

// String renders Figs. 10 and 11.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10: material identification accuracy; overall %.1f%% (paper: 87.9%%)\n", r.OverallAcc*100)
	t1 := eval.Table{Header: []string{"region", "accuracy"}}
	for _, reg := range []geom.Region{geom.RegionNear, geom.RegionMedium, geom.RegionFar} {
		t1.AddRow(reg.String(), fmt.Sprintf("%.1f%%", r.ByRegion[reg]*100))
	}
	b.WriteString(t1.String())
	t2 := eval.Table{Header: []string{"degree", "accuracy"}}
	for _, deg := range []int{0, 90} {
		t2.AddRow(fmt.Sprintf("%d", deg), fmt.Sprintf("%.1f%%", r.ByDegree[deg]*100))
	}
	b.WriteString(t2.String())
	b.WriteString("Fig. 11: confusion matrix (row = truth, col = prediction)\n")
	b.WriteString(r.Confusion.String())
	return b.String()
}

// Fig13Result compares the three classifiers (paper: KNN 75.6%, SVM
// 83.5%, decision tree 87.9%).
type Fig13Result struct {
	KNNAcc, SVMAcc, TreeAcc float64
}

// RunFig13 trains KNN, SVM and the decision tree on the same split
// and scores them on the same test set.
func RunFig13(c *MatCampaignResult) (*Fig13Result, error) {
	train, test0 := split(c.Moved0)
	test := append(append([]*MatTrial{}, test0...), c.Moved90...)
	trainSet, testSet := featureSet(train), featureSet(test)

	// KNN works in natural units (radians; the slope rescaled into a
	// comparable range) rather than per-dimension adaptive scaling —
	// on the 52-dimensional mixed feature vector this is what the
	// paper's Fig. 13 discussion calls KNN's high-dimensionality
	// weakness.
	knnTrain := classify.Dataset{X: knnScale(trainSet.X), Y: trainSet.Y}
	knnTest := classify.Dataset{X: knnScale(testSet.X), Y: testSet.Y}
	knn := &classify.KNN{K: 5}
	svm := &classify.SVM{Lambda: 8e-3, Epochs: 15, Seed: 7}
	tree := NewPaperTree()
	r := &Fig13Result{}
	if err := knn.Fit(knnTrain); err != nil {
		return nil, err
	}
	acc, err := classify.Accuracy(knn, knnTest)
	if err != nil {
		return nil, err
	}
	r.KNNAcc = acc
	for _, c := range []struct {
		model classify.Classifier
		out   *float64
	}{{svm, &r.SVMAcc}, {tree, &r.TreeAcc}} {
		if err := c.model.Fit(trainSet); err != nil {
			return nil, err
		}
		acc, err := classify.Accuracy(c.model, testSet)
		if err != nil {
			return nil, err
		}
		*c.out = acc
	}
	return r, nil
}

// knnScale converts the slope feature into a radian-comparable unit
// so Euclidean distance is meaningful without per-dimension
// adaptation.
func knnScale(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := append([]float64(nil), row...)
		if len(r) > 0 {
			r[0] *= 5e7
		}
		for j := 2; j < len(r); j++ {
			r[j] *= 1.2
		}
		out[i] = r
	}
	return out
}

// String renders Fig. 13.
func (r *Fig13Result) String() string {
	t := eval.Table{Header: []string{"classifier", "accuracy", "paper"}}
	t.AddRow("KNN", fmt.Sprintf("%.1f%%", r.KNNAcc*100), "75.6%")
	t.AddRow("SVM", fmt.Sprintf("%.1f%%", r.SVMAcc*100), "83.5%")
	t.AddRow("DecisionTree", fmt.Sprintf("%.1f%%", r.TreeAcc*100), "87.9%")
	return "Fig. 13: classifier comparison\n" + t.String()
}
