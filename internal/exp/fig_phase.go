package exp

import (
	"fmt"
	"strings"

	"rfprism/internal/eval"
	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// PhaseSeries is one unwrapped phase-vs-frequency curve with its fit,
// as plotted in the paper's Figs. 4–6.
type PhaseSeries struct {
	Label  string
	Freqs  []float64
	Phases []float64
	Line   fit.Line
}

// PhaseFigResult is the output of the Fig. 4/5/6 verification
// experiments.
type PhaseFigResult struct {
	Title  string
	Series []PhaseSeries
}

// String renders the fitted slopes and intercepts per series.
func (r *PhaseFigResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	tab := eval.Table{Header: []string{"series", "slope k (rad/MHz)", "intercept b0 (rad)", "resid std (rad)"}}
	for _, s := range r.Series {
		tab.AddRow(s.Label,
			fmt.Sprintf("%.4f", s.Line.K*1e6),
			fmt.Sprintf("%.3f", mathx.Wrap2Pi(s.Line.B0)),
			fmt.Sprintf("%.4f", s.Line.ResidStd))
	}
	b.WriteString(tab.String())
	return b.String()
}

// collectSeries collects one window for the given placement and
// returns the first antenna's unwrapped spectrum with its line fit.
func collectSeries(s *Setup, label string, pos geom.Vec3, alpha float64, m rf.Material) (PhaseSeries, error) {
	win := s.Window(pos, alpha, m)
	spectra, err := preprocess.BuildSpectra(win, preprocess.Options{})
	if err != nil {
		return PhaseSeries{}, err
	}
	sp := spectra[0]
	line, err := fit.FitLineRobust(sp.Freqs(), sp.Phases(), sp.RSSIs(), fit.RobustOptions{})
	if err != nil {
		return PhaseSeries{}, err
	}
	return PhaseSeries{Label: label, Freqs: sp.Freqs(), Phases: sp.Phases(), Line: line}, nil
}

// RunFig4 reproduces Fig. 4 (θprop vs f): the phase line at three
// antenna-tag distances with other factors constant. The slopes must
// be distinct and proportional to distance.
func RunFig4(cfg Config) (*PhaseFigResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	glass, err := rf.MaterialByName("glass")
	if err != nil {
		return nil, err
	}
	res := &PhaseFigResult{Title: "Fig. 4: theta_prop vs frequency (distance sweep, glass, 0 deg)"}
	// Direct line from antenna 0 outward; distances measured from
	// antenna 0 like the paper's d.
	ant := s.Scene.Antennas[0]
	for _, d := range []float64{0.5, 1.5, 2.5} {
		dir := geom.Vec3{X: 0.3, Y: 1.0, Z: (0 - ant.Pos.Z)}.Unit()
		pos := ant.Pos.Add(dir.Scale(d))
		pos.Z = 0 // keep the tag on the working plane
		series, err := collectSeries(s, fmt.Sprintf("%.1fm + glass", d), pos, 0, glass)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// RunFig5 reproduces Fig. 5 (θorient vs f): rotating the tag shifts
// the line vertically but leaves the slope unchanged.
func RunFig5(cfg Config) (*PhaseFigResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	glass, err := rf.MaterialByName("glass")
	if err != nil {
		return nil, err
	}
	res := &PhaseFigResult{Title: "Fig. 5: theta_orient vs frequency (orientation sweep, fixed position)"}
	pos := geom.Vec3{X: 1.0, Y: 1.5}
	for _, deg := range []float64{0, 30, 45} {
		series, err := collectSeries(s, fmt.Sprintf("%.0f degree", deg), pos, mathx.Rad(deg), glass)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// RunFig6 reproduces Fig. 6 (θdevice vs f): changing the attached
// material changes both the slope and the intercept of the line.
func RunFig6(cfg Config) (*PhaseFigResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	res := &PhaseFigResult{Title: "Fig. 6: theta_device vs frequency (material sweep, 1.5 m, 0 deg)"}
	pos := geom.Vec3{X: 1.0, Y: 1.3}
	for _, name := range []string{"wood", "glass", "plastic"} {
		m, err := rf.MaterialByName(name)
		if err != nil {
			return nil, err
		}
		series, err := collectSeries(s, "1.5m + "+name, pos, 0, m)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// MobilityLinearity demonstrates the error-detector premise (§V-C): a
// static tag produces a linear spectrum, a moving tag does not. It
// returns the robust-fit residual std for both cases.
func MobilityLinearity(cfg Config, speed float64) (staticResid, movingResid float64, err error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return 0, 0, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return 0, 0, err
	}
	pos := geom.Vec3{X: 0.8, Y: 1.4}
	resid := func(motion sim.Motion) (float64, error) {
		win := s.Scene.CollectWindow(s.Tag, motion)
		spectra, err := preprocess.BuildSpectra(win, preprocess.Options{})
		if err != nil {
			return 0, err
		}
		line, err := fit.FitLine(spectra[0].Freqs(), spectra[0].Phases())
		if err != nil {
			return 0, err
		}
		return line.ResidStd, nil
	}
	static := s.Scene.Place(pos, 0, none)
	staticResid, err = resid(static)
	if err != nil {
		return 0, 0, err
	}
	moving := sim.LinearMotion{
		Start:    sim.Placement(static),
		Velocity: geom.Vec3{X: speed, Y: speed / 2},
	}
	movingResid, err = resid(moving)
	if err != nil {
		return 0, 0, err
	}
	return staticResid, movingResid, nil
}
