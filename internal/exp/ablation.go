package exp

import (
	"context"
	"fmt"
	"strings"

	"rfprism"
	"rfprism/internal/core"
	"rfprism/internal/eval"
	"rfprism/internal/fit"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// AblationResult reports localization/orientation accuracy for one
// solver variant.
type AblationResult struct {
	Name      string
	LocCM     eval.ErrorStats
	OrientDeg eval.ErrorStats
	Rejected  int
}

// AblationSuiteResult is the full ablation sweep of DESIGN.md §5.
type AblationSuiteResult struct {
	Variants []AblationResult
}

// RunAblations evaluates the design-choice ablations: the joint
// fine-phase stage, the maximum-likelihood polish, the k_t prior and
// reduced channel counts.
func RunAblations(cfg Config, reps int) (*AblationSuiteResult, error) {
	variants := []struct {
		name     string
		opts     []rfprism.Option
		channels int
	}{
		{name: "full system"},
		{name: "no fine-phase (slope-only)", opts: []rfprism.Option{
			rfprism.WithSolverOptions(core.Options{DisableFinePhase: true})}},
		{name: "with ML polish", opts: []rfprism.Option{
			rfprism.WithSolverOptions(core.Options{MLPolish: true})}},
		{name: "no kt prior", opts: []rfprism.Option{
			rfprism.WithSolverOptions(core.Options{NoKtPrior: true})}},
		{name: "25 channels", channels: 25},
		// 10 channels sits below the default MinChannels guard, so the
		// variant relaxes it ("more than enough for a linear fitting"
		// no longer holds — that is the point of the ablation).
		{name: "10 channels", channels: 10, opts: []rfprism.Option{
			rfprism.WithRobustOptions(fit.RobustOptions{MinChannels: 6})}},
	}
	out := &AblationSuiteResult{}
	for vi, v := range variants {
		vCfg := cfg
		vCfg.Seed = cfg.Seed + int64(vi)*977
		vCfg.SysOpts = append(append([]rfprism.Option{}, cfg.SysOpts...), v.opts...)
		s, err := NewSetup(vCfg)
		if err != nil {
			return nil, err
		}
		none, err := rf.MaterialByName("none")
		if err != nil {
			return nil, err
		}
		var locErrs, orientErrs []float64
		rejected := 0
		rng := s.Scene.Rand()
		// Collect serially (alpha draws and window synthesis share the
		// scene RNG; channel subsampling is applied at collect time),
		// then disentangle the batch on the worker pool.
		var specs []TrialSpec
		for _, pos := range s.GridPositions() {
			for r := 0; r < reps; r++ {
				alpha := mathx.Rad(float64(PaperDegrees[rng.Intn(len(PaperDegrees))]))
				sp := s.CollectTrial(pos, alpha, none)
				if v.channels > 0 {
					sp.Readings = subsampleChannels(sp.Readings, v.channels)
				}
				specs = append(specs, sp)
			}
		}
		for i, o := range s.ProcessTrials(context.Background(), specs) {
			if o.Err != nil {
				rejected++
				continue
			}
			est := o.Trial.Result.Estimate
			locErrs = append(locErrs, 100*est.Pos.Dist(specs[i].Pos))
			orientErrs = append(orientErrs,
				mathx.Deg(abs(mathx.AngDiffPeriod(est.Alpha, specs[i].Alpha, mathx.Rad(180)))))
		}
		out.Variants = append(out.Variants, AblationResult{
			Name:      v.name,
			LocCM:     eval.Summarize(locErrs),
			OrientDeg: eval.Summarize(orientErrs),
			Rejected:  rejected,
		})
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// subsampleChannels keeps every k-th channel so that about n channels
// survive — the channel-count ablation.
func subsampleChannels(win []sim.Reading, n int) []sim.Reading {
	if n <= 0 || n >= rf.NumChannels {
		return win
	}
	stride := rf.NumChannels / n
	if stride < 1 {
		stride = 1
	}
	out := win[:0:0]
	for _, r := range win {
		if r.Channel%stride == 0 {
			out = append(out, r)
		}
	}
	return out
}

// String renders the ablation table.
func (r *AblationSuiteResult) String() string {
	var b strings.Builder
	b.WriteString("Ablations (localization cm / orientation deg)\n")
	t := eval.Table{Header: []string{"variant", "loc mean", "loc p90", "orient mean", "orient p90", "rejected"}}
	for _, v := range r.Variants {
		t.AddRow(v.Name,
			fmt.Sprintf("%.2f", v.LocCM.Mean), fmt.Sprintf("%.2f", v.LocCM.P90),
			fmt.Sprintf("%.2f", v.OrientDeg.Mean), fmt.Sprintf("%.2f", v.OrientDeg.P90),
			fmt.Sprintf("%d", v.Rejected))
	}
	b.WriteString(t.String())
	return b.String()
}
