package exp

import (
	"fmt"
	"math"
	"strings"

	"rfprism/internal/baseline"
	"rfprism/internal/classify"
	"rfprism/internal/core"
	"rfprism/internal/eval"
	"rfprism/internal/fit"
	"rfprism/internal/mathx"
	"rfprism/internal/preprocess"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// CaseStudy1Result compares RF-Prism and MobiTagbot localization
// under the three setups of Figs. 14–16: fixed orientation+material,
// varying orientation, varying orientation+material.
type CaseStudy1Result struct {
	// Samples hold the per-setup error samples in cm.
	Prism, Mobi map[string][]float64
}

// caseStudy1Setups are the three setups in figure order.
var caseStudy1Setups = []string{"fixed (Fig.14)", "orientation varies (Fig.15)", "orientation+material vary (Fig.16)"}

// RunCaseStudy1 runs reps trials per grid position per setup.
func RunCaseStudy1(cfg Config, reps int) (*CaseStudy1Result, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	mobi := &baseline.MobiTagbot{Bounds: rfBounds(s)}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	mats := rf.EvaluationMaterials()
	out := &CaseStudy1Result{
		Prism: make(map[string][]float64),
		Mobi:  make(map[string][]float64),
	}
	rng := s.Scene.Rand()
	for si, setup := range caseStudy1Setups {
		for _, pos := range s.GridPositions() {
			for r := 0; r < reps; r++ {
				alpha := 0.0
				m := none
				if si >= 1 {
					alpha = mathx.Rad(float64(PaperDegrees[rng.Intn(len(PaperDegrees))]))
				}
				if si >= 2 {
					m = mats[rng.Intn(len(mats))]
				}
				win := s.Window(pos, alpha, m)
				res, err := s.Sys.ProcessWindow(win)
				if err != nil {
					continue
				}
				est := res.Estimate
				out.Prism[setup] = append(out.Prism[setup],
					100*math.Hypot(est.Pos.X-pos.X, est.Pos.Y-pos.Y))
				// MobiTagbot consumes the same window through its own
				// two-antenna pipeline (antenna hardware calibrated the
				// same way — it also calibrates its reader).
				obs, err := observationsFor(s, win)
				if err != nil {
					continue
				}
				mp, err := mobi.Locate(obs)
				if err != nil {
					continue
				}
				out.Mobi[setup] = append(out.Mobi[setup],
					100*math.Hypot(mp.X-pos.X, mp.Y-pos.Y))
			}
		}
	}
	return out, nil
}

func rfBounds(s *Setup) core.Bounds {
	return core.Bounds{
		XMin: s.Region.XMin, XMax: s.Region.XMax,
		YMin: s.Region.YMin, YMax: s.Region.YMax,
	}
}

// observationsFor rebuilds calibrated per-antenna observations from a
// raw window (shared by the baselines, which consume the same fits).
func observationsFor(s *Setup, win []sim.Reading) ([]core.Observation, error) {
	spectra, err := preprocess.BuildSpectra(win, preprocess.Options{})
	if err != nil {
		return nil, err
	}
	cal := s.Sys.AntennaCalibration()
	obs := make([]core.Observation, 0, len(spectra))
	for i, sp := range spectra {
		line, err := fit.FitLineRobust(sp.Freqs(), sp.Phases(), sp.RSSIs(), fit.RobustOptions{})
		if err != nil {
			return nil, err
		}
		ant := s.Scene.Antennas[i]
		obs = append(obs, core.Observation{
			ID:    ant.ID,
			Pos:   ant.Pos,
			Frame: ant.Frame(),
			Line:  line,
		})
	}
	return cal.Apply(obs), nil
}

// String renders the three CDF summaries (mean/std like the paper's
// Fig. 14–16 annotations).
func (r *CaseStudy1Result) String() string {
	var b strings.Builder
	b.WriteString("Case study 1: localization vs MobiTagbot (cm)\n")
	t := eval.Table{Header: []string{"setup", "RF-Prism mean", "std", "MobiTagbot mean", "std", "paper (P/M)"}}
	paper := []string{"7.33 / 8.25", "7.34 / 9.95", "7.61 / 24.94"}
	for i, setup := range caseStudy1Setups {
		p := eval.Summarize(r.Prism[setup])
		m := eval.Summarize(r.Mobi[setup])
		t.AddRow(setup,
			fmt.Sprintf("%.2f", p.Mean), fmt.Sprintf("%.2f", p.Std),
			fmt.Sprintf("%.2f", m.Mean), fmt.Sprintf("%.2f", m.Std),
			paper[i])
	}
	b.WriteString(t.String())
	return b.String()
}

// CDF returns the empirical CDF series of one system/setup, for
// regenerating the figure curves.
func (r *CaseStudy1Result) CDF(system, setup string) eval.CDFSeries {
	var sample []float64
	switch system {
	case "rfprism":
		sample = r.Prism[setup]
	case "mobitagbot":
		sample = r.Mobi[setup]
	}
	return eval.CDFSeries{Label: system + " " + setup, Sample: sample}
}

// CaseStudy2Result compares RF-Prism and Tagtag material
// identification per material under the three setups of Figs. 17–19,
// summarized in Fig. 20.
type CaseStudy2Result struct {
	Materials []string
	// PerMaterial[setup][material] accuracy for each system.
	Prism, Tagtag map[string]map[string]float64
	// Overall[setup] accuracy for each system (Fig. 20).
	PrismOverall, TagtagOverall map[string]float64
}

// caseStudy2Setups are the three setups in figure order.
var caseStudy2Setups = []string{"fixed d+o (Fig.17)", "varying d (Fig.18)", "varying d+o (Fig.19)"}

// RunCaseStudy2 runs the material campaign and evaluates both systems
// under the three setups: training always happens at the fixed
// position with 0° orientation.
func RunCaseStudy2(cfg Config, spec MatSpec) (*CaseStudy2Result, error) {
	c, err := RunMatCampaign(cfg, spec)
	if err != nil {
		return nil, err
	}
	train, fixedTest := split(c.Fixed)

	tree := NewPaperTree()
	if err := tree.Fit(featureSet(train)); err != nil {
		return nil, err
	}
	tagtag := classify.DTWNN{Window: 5}
	if err := tagtag.Fit(curveSet(train)); err != nil {
		return nil, err
	}

	out := &CaseStudy2Result{
		Materials:     c.Materials,
		Prism:         make(map[string]map[string]float64),
		Tagtag:        make(map[string]map[string]float64),
		PrismOverall:  make(map[string]float64),
		TagtagOverall: make(map[string]float64),
	}
	testSets := map[string][]*MatTrial{
		caseStudy2Setups[0]: fixedTest,
		caseStudy2Setups[1]: c.Moved0,
		caseStudy2Setups[2]: c.Moved90,
	}
	for setup, trials := range testSets {
		pAcc, tAcc, pOverall, tOverall := scoreBoth(tree, &tagtag, trials, c.Materials)
		out.Prism[setup] = pAcc
		out.Tagtag[setup] = tAcc
		out.PrismOverall[setup] = pOverall
		out.TagtagOverall[setup] = tOverall
	}
	return out, nil
}

func scoreBoth(tree classify.Classifier, tagtag classify.Classifier, trials []*MatTrial, materials []string) (map[string]float64, map[string]float64, float64, float64) {
	type bucket struct{ pc, tc, n int }
	buckets := make(map[string]*bucket)
	var pAll, tAll, n int
	for _, t := range trials {
		b := buckets[t.Material]
		if b == nil {
			b = &bucket{}
			buckets[t.Material] = b
		}
		b.n++
		n++
		if pred, err := tree.Predict(t.Features); err == nil && pred == t.Label {
			b.pc++
			pAll++
		}
		if pred, err := tagtag.Predict(t.Curve); err == nil && pred == t.Label {
			b.tc++
			tAll++
		}
	}
	pAcc := make(map[string]float64, len(materials))
	tAcc := make(map[string]float64, len(materials))
	for _, m := range materials {
		if b := buckets[m]; b != nil && b.n > 0 {
			pAcc[m] = float64(b.pc) / float64(b.n)
			tAcc[m] = float64(b.tc) / float64(b.n)
		}
	}
	if n == 0 {
		return pAcc, tAcc, 0, 0
	}
	return pAcc, tAcc, float64(pAll) / float64(n), float64(tAll) / float64(n)
}

// String renders Figs. 17–20.
func (r *CaseStudy2Result) String() string {
	var b strings.Builder
	for _, setup := range caseStudy2Setups {
		fmt.Fprintf(&b, "Material identification, %s\n", setup)
		t := eval.Table{Header: []string{"material", "RF-Prism", "Tagtag"}}
		for _, m := range r.Materials {
			t.AddRow(m,
				fmt.Sprintf("%.1f%%", r.Prism[setup][m]*100),
				fmt.Sprintf("%.1f%%", r.Tagtag[setup][m]*100))
		}
		b.WriteString(t.String())
	}
	b.WriteString("Fig. 20: overall accuracy\n")
	t := eval.Table{Header: []string{"setup", "RF-Prism", "Tagtag", "paper (P/T)"}}
	paper := []string{"88.1% / 85.0%", "88.0% / 80.7%", "~88% / ~81%"}
	for i, setup := range caseStudy2Setups {
		t.AddRow(setup,
			fmt.Sprintf("%.1f%%", r.PrismOverall[setup]*100),
			fmt.Sprintf("%.1f%%", r.TagtagOverall[setup]*100),
			paper[i])
	}
	b.WriteString(t.String())
	return b.String()
}
