package exp

import (
	"fmt"
	"strings"
	"time"

	"rfprism/internal/classify"
	"rfprism/internal/eval"
	"rfprism/internal/rf"
)

// LatencyResult is the §VI-C latency breakdown: data gathering is
// bounded by the reader's hop schedule (200 ms × 50 channels = 10 s
// on the R420); everything downstream must fit in tens of
// milliseconds (paper: preprocessing+estimation < 0.06 s, classifiers
// within dozens of ms).
type LatencyResult struct {
	DataGathering  time.Duration // nominal hop-round duration
	PipelinePerWin time.Duration // preprocess + fit + disentangle
	TreePredict    time.Duration
	KNNPredict     time.Duration
	SVMPredict     time.Duration
}

// RunLatency measures the processing latency over n windows.
func RunLatency(cfg Config, n int) (*LatencyResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 10
	}
	out := &LatencyResult{
		DataGathering: time.Duration(rf.NumChannels) * s.Scene.Cfg.DwellTime,
	}

	var pipeline time.Duration
	feats := make([][]float64, 0, n)
	labels := make([]int, 0, n)
	mats := rf.EvaluationMaterials()
	for i := 0; i < n; i++ {
		m := mats[i%len(mats)]
		w := s.Window(s.RandomPosition(), 0, m)
		start := time.Now()
		res, err := s.Sys.ProcessWindow(w)
		if err != nil {
			continue
		}
		f, err := s.Sys.MaterialFeatures(s.Tag.EPC, res)
		pipeline += time.Since(start)
		if err != nil {
			continue
		}
		feats = append(feats, f)
		labels = append(labels, i%len(mats))
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("exp: no window survived for latency measurement")
	}
	out.PipelinePerWin = pipeline / time.Duration(len(feats))

	// Classifier prediction timing.
	train := classify.Dataset{X: feats, Y: labels}
	tree := NewPaperTree()
	knn := &classify.KNN{K: 5}
	svm := &classify.SVM{Seed: 3}
	for _, c := range []classify.Classifier{tree, knn, svm} {
		if err := c.Fit(train); err != nil {
			return nil, err
		}
	}
	timePredict := func(c classify.Classifier) time.Duration {
		start := time.Now()
		const rounds = 200
		for i := 0; i < rounds; i++ {
			if _, err := c.Predict(feats[i%len(feats)]); err != nil {
				return 0
			}
		}
		return time.Since(start) / rounds
	}
	out.TreePredict = timePredict(tree)
	out.KNNPredict = timePredict(knn)
	out.SVMPredict = timePredict(svm)
	return out, nil
}

// String renders the latency table.
func (r *LatencyResult) String() string {
	var b strings.Builder
	b.WriteString("Latency of sensing (paper: gathering 10 s; processing < 0.06 s; classifiers within dozens of ms)\n")
	t := eval.Table{Header: []string{"component", "latency"}}
	t.AddRow("data gathering (hop round, hardware-bound)", r.DataGathering.String())
	t.AddRow("preprocess + fit + disentangle (per window)", r.PipelinePerWin.String())
	t.AddRow("decision tree predict", r.TreePredict.String())
	t.AddRow("KNN predict", r.KNNPredict.String())
	t.AddRow("SVM predict", r.SVMPredict.String())
	b.WriteString(t.String())
	return b.String()
}
