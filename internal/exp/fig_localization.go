package exp

import (
	"context"
	"fmt"
	"strings"

	"rfprism/internal/eval"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// LocCampaignResult holds the raw trials of the localization and
// orientation campaign (§VI-B: tags at 25 known positions rotated
// through six degrees; plus one material sweep at 0°), from which
// Figs. 8 and 9 aggregate.
type LocCampaignResult struct {
	// DegreeTrials are the orientation-sweep trials (neutral mount).
	DegreeTrials []*Trial
	// MaterialTrials are the 0° material-sweep trials.
	MaterialTrials []*Trial
	// Rejected counts windows discarded by the error detector.
	Rejected int
}

// RunLocCampaign runs the localization campaign with reps repetitions
// per (position, degree) — the paper uses 5 — and matReps repetitions
// per (position, material). Windows are collected serially (the
// campaign is a pure function of its seed) and disentangled in a
// parallel batch.
func RunLocCampaign(cfg Config, reps, matReps int) (*LocCampaignResult, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	out := &LocCampaignResult{}
	var degSpecs []TrialSpec
	for _, pos := range s.GridPositions() {
		for _, deg := range PaperDegrees {
			for r := 0; r < reps; r++ {
				degSpecs = append(degSpecs, s.CollectTrial(pos, mathx.Rad(float64(deg)), none))
			}
		}
	}
	var matSpecs []TrialSpec
	for _, m := range rf.EvaluationMaterials() {
		for _, pos := range s.GridPositions() {
			for r := 0; r < matReps; r++ {
				matSpecs = append(matSpecs, s.CollectTrial(pos, 0, m))
			}
		}
	}
	for _, o := range s.ProcessTrials(context.Background(), degSpecs) {
		if o.Err != nil {
			out.Rejected++
			continue
		}
		out.DegreeTrials = append(out.DegreeTrials, o.Trial)
	}
	for _, o := range s.ProcessTrials(context.Background(), matSpecs) {
		if o.Err != nil {
			out.Rejected++
			continue
		}
		out.MaterialTrials = append(out.MaterialTrials, o.Trial)
	}
	return out, nil
}

// degreeOf recovers the ground-truth degree bucket of a trial.
func degreeOf(tr *Trial) int {
	return int(mathx.Deg(tr.Alpha) + 0.5)
}

// Fig8Result aggregates localization error by orientation and by
// material (paper: 7.61 cm mean across degrees; 7.48 cm across
// materials, metal and conductive liquids slightly worse).
type Fig8Result struct {
	ByDegree   map[int]eval.ErrorStats
	ByMaterial map[string]eval.ErrorStats
	OverallCM  float64
}

// Fig8 aggregates the campaign into the paper's Fig. 8.
func Fig8(c *LocCampaignResult) *Fig8Result {
	r := &Fig8Result{
		ByDegree:   make(map[int]eval.ErrorStats),
		ByMaterial: make(map[string]eval.ErrorStats),
	}
	byDeg := make(map[int][]float64)
	var all []float64
	for _, tr := range c.DegreeTrials {
		byDeg[degreeOf(tr)] = append(byDeg[degreeOf(tr)], tr.LocErrM*100)
		all = append(all, tr.LocErrM*100)
	}
	for deg, errs := range byDeg {
		r.ByDegree[deg] = eval.Summarize(errs)
	}
	byMat := make(map[string][]float64)
	for _, tr := range c.MaterialTrials {
		byMat[tr.Material] = append(byMat[tr.Material], tr.LocErrM*100)
	}
	for m, errs := range byMat {
		r.ByMaterial[m] = eval.Summarize(errs)
	}
	r.OverallCM = mathx.Mean(all)
	return r
}

// String renders Fig. 8 as two tables.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: localization error (cm); overall mean %.2f cm (paper: 7.61 cm)\n", r.OverallCM)
	t1 := eval.Table{Header: []string{"degree", "mean", "median", "p90"}}
	for _, deg := range PaperDegrees {
		s := r.ByDegree[deg]
		t1.AddRow(fmt.Sprintf("%d", deg), fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
	}
	b.WriteString(t1.String())
	t2 := eval.Table{Header: []string{"material", "mean", "median", "p90"}}
	for _, m := range rf.EvaluationMaterials() {
		s := r.ByMaterial[m.Name]
		t2.AddRow(m.Name, fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
	}
	b.WriteString(t2.String())
	return b.String()
}

// Fig9Result aggregates orientation error by distance region and by
// material (paper: 8.59°/10.40°/10.50° near/medium/far; 9.83°
// overall).
type Fig9Result struct {
	ByRegion   map[geom.Region]eval.ErrorStats
	ByMaterial map[string]eval.ErrorStats
	OverallDeg float64
}

// Fig9 aggregates the campaign into the paper's Fig. 9.
func Fig9(c *LocCampaignResult) *Fig9Result {
	r := &Fig9Result{
		ByRegion:   make(map[geom.Region]eval.ErrorStats),
		ByMaterial: make(map[string]eval.ErrorStats),
	}
	byRegion := make(map[geom.Region][]float64)
	var all []float64
	for _, tr := range c.DegreeTrials {
		byRegion[tr.Region] = append(byRegion[tr.Region], tr.OrientErrDeg)
		all = append(all, tr.OrientErrDeg)
	}
	for reg, errs := range byRegion {
		r.ByRegion[reg] = eval.Summarize(errs)
	}
	byMat := make(map[string][]float64)
	for _, tr := range c.MaterialTrials {
		byMat[tr.Material] = append(byMat[tr.Material], tr.OrientErrDeg)
	}
	for m, errs := range byMat {
		r.ByMaterial[m] = eval.Summarize(errs)
	}
	r.OverallDeg = mathx.Mean(all)
	return r
}

// String renders Fig. 9 as two tables.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: orientation error (deg); overall mean %.2f deg (paper: 9.83 deg)\n", r.OverallDeg)
	t1 := eval.Table{Header: []string{"region", "mean", "median", "p90"}}
	for _, reg := range []geom.Region{geom.RegionNear, geom.RegionMedium, geom.RegionFar} {
		s := r.ByRegion[reg]
		t1.AddRow(reg.String(), fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
	}
	b.WriteString(t1.String())
	t2 := eval.Table{Header: []string{"material", "mean", "median", "p90"}}
	for _, m := range rf.EvaluationMaterials() {
		s := r.ByMaterial[m.Name]
		t2.AddRow(m.Name, fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
	}
	b.WriteString(t2.String())
	return b.String()
}
