package ingest

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzIngestNDJSON hammers the shared NDJSON report parser through the
// full HTTP ingest path. decodeReading is the single parser behind
// both POST /ingest and journal replay, so any input this fuzzer
// survives is also safe to re-read from a journal segment after a
// crash. The invariants: no panic, a well-formed HTTP status, and no
// non-finite values admitted past validation.
func FuzzIngestNDJSON(f *testing.F) {
	f.Add([]byte(`{"epc":"A","antenna":1,"channel":0,"freqHz":920e6,"phase":0.5,"rssi":-50}`))
	f.Add([]byte(`{"epc":"A","antenna":1,"channel":0}` + "\n" + `{"epc":"A","antenna":1,"channel":0}`)) // duplicates
	f.Add([]byte(`{"epc":"A","antenna":1,"chan`))                                                       // truncated mid-key
	f.Add([]byte(`{"epc":"A","channel":0,"phase":1e999}`))                                              // +Inf via overflow
	f.Add([]byte(`{"epc":"A","channel":0,"rssi":-1e999}`))                                              // -Inf
	f.Add([]byte(`{"epc":"` + strings.Repeat("Z", 4096) + `","channel":0}`))                            // giant EPC
	f.Add([]byte("\n\n\n"))                                                                             // blank lines only
	f.Add([]byte(`{"epc":"","channel":0}`))                                                             // empty EPC
	f.Add([]byte(`{"epc":"A","channel":-7}`))                                                           // channel out of range
	f.Add([]byte(`[1,2,3]`))                                                                            // wrong JSON shape

	d := NewDaemon(echoProc{}, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 3, MinAntennas: 1, Dwell: time.Hour},
		QueueSize:   64,
	})
	f.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	srv := httptest.NewServer(NewServer(d, nil).Handler())
	f.Cleanup(srv.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		// Direct parser invariant: a decoded reading never carries
		// non-finite floats (journal replay depends on this).
		for _, line := range bytes.Split(body, []byte("\n")) {
			rd, err := decodeReading(bytes.TrimSpace(line))
			if err == nil && (!finite(rd.Phase) || !finite(rd.RSSI) || !finite(rd.FreqHz)) {
				t.Fatalf("decodeReading admitted non-finite values: %+v", rd)
			}
		}

		resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /ingest: %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusBadRequest,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected /ingest status %d", resp.StatusCode)
		}
	})
}
