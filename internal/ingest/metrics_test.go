package ingest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rfprism"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsExpositionGolden pins the daemon's full /metrics page —
// every family name, TYPE line and label — against a golden file, so a
// refactor of the registry or a renamed series cannot slip through as
// a silent monitoring break. The clock is pinned and every instrument
// is driven deterministically.
func TestMetricsExpositionGolden(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	m := NewMetrics(start)
	m.ReportsAccepted.Add(5)
	m.ReportsRejected.Add(1)
	m.WindowClosed(CloseCoverage)
	m.WindowClosed(CloseDeadline)
	m.ResultsOK.Add(1)
	m.WindowsDegraded.Add(1)
	m.ObserveLatency(30 * time.Millisecond)
	m.ObserveLatency(7 * time.Second) // overflow bucket
	m.RecordWindow("epc-1", []rfprism.Span{
		{Stage: rfprism.StageSolve, Duration: 20 * time.Millisecond},
		{Stage: rfprism.StageFit, Duration: 300 * time.Microsecond},
		{Stage: rfprism.StageWindow, Duration: 25 * time.Millisecond},
		{Stage: "unknown-stage", Duration: time.Second}, // dropped, not minted
	})
	// Solver fast-path counters, sampled from the System at render time.
	m.AttachSolverStats(func() rfprism.SolveStatsSnapshot {
		return rfprism.SolveStatsSnapshot{
			CacheHits: 9, CacheMisses: 4,
			WarmAttempts: 6, WarmFallbacks: 2,
			StartsPruned: 440,
		}
	})

	var buf bytes.Buffer
	m.WriteText(&buf, start.Add(90*time.Second), Gauges{
		QueueDepth: 2, QueueCap: 64, OpenSessions: 3, BufferedReadings: 17,
		JournalEnabled: true, JournalNextSeq: 42, JournalSyncedSeq: 40, JournalSegments: 2,
	})
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("/metrics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMetricsStageHistograms: spans fed through the Tracer interface
// land in the per-stage histogram of their stage only.
func TestMetricsStageHistograms(t *testing.T) {
	m := NewMetrics(time.Now())
	var tr rfprism.Tracer = m // Metrics must satisfy rfprism.Tracer
	tr.RecordWindow("A", []rfprism.Span{
		{Stage: rfprism.StageSolve, Duration: 2 * time.Millisecond},
		{Stage: rfprism.StageSolve, Duration: 3 * time.Millisecond},
		{Stage: rfprism.StageSpectra, Duration: 100 * time.Microsecond},
	})
	if got := m.stages[rfprism.StageSolve].Count(); got != 2 {
		t.Errorf("solve histogram count %d, want 2", got)
	}
	if got := m.stages[rfprism.StageSpectra].Count(); got != 1 {
		t.Errorf("spectra histogram count %d, want 1", got)
	}
	if got := m.stages[rfprism.StageFit].Count(); got != 0 {
		t.Errorf("fit histogram count %d, want 0", got)
	}
	var buf bytes.Buffer
	m.WriteText(&buf, time.Now(), Gauges{})
	out := buf.String()
	if !strings.Contains(out, `rfprismd_stage_latency_seconds_count{stage="solve"} 2`) {
		t.Errorf("exposition missing solve stage count:\n%s", out)
	}
	if strings.Contains(out, "rfprismd_journal_next_seq") {
		t.Error("journal gauges rendered for a journal-less daemon")
	}
}
