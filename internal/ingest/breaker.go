package ingest

import (
	"sync"
	"time"
)

// BreakerConfig tunes the repeated-panic circuit breaker. A single
// solver panic is isolated per-window (the batch layer converts it to
// an error), but a burst of panics means something systemic — a bad
// deploy, a poisoned calibration — and burning a worker per window on
// known-doomed solves helps nobody. The breaker trips the daemon into
// shed-and-journal-only mode: reports are still made durable so a
// fixed binary can recover and solve them, but nothing reaches the
// solver pool until the breaker resets.
type BreakerConfig struct {
	// Threshold is the number of panics within Window that trips the
	// breaker. Default 3.
	Threshold int
	// Window is the rolling observation window. Default 1 minute.
	Window time.Duration
	// Cooldown resets a tripped breaker after this long without a
	// further panic, letting the daemon probe whether the fault
	// cleared. 0 (the default) keeps it tripped until restart — for a
	// deterministic solver fault, retrying without a new binary would
	// just re-trip it.
	Cooldown time.Duration
}

func (c *BreakerConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
}

// breaker is the sliding-window panic counter. All methods take the
// clock from the caller so tests drive time explicitly.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	times     []time.Time
	tripped   bool
	trippedAt time.Time
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg.defaults()
	return &breaker{cfg: cfg}
}

// record notes one panic at now and reports whether it newly tripped
// the breaker.
func (b *breaker) record(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(now)
	if b.tripped {
		// Every panic while tripped restarts the cooldown: the fault
		// is clearly still live.
		b.trippedAt = now
		return false
	}
	b.times = append(b.times, now)
	if len(b.times) >= b.cfg.Threshold {
		b.tripped = true
		b.trippedAt = now
		b.times = b.times[:0]
		return true
	}
	return false
}

// isTripped reports the breaker state at now, applying cooldown expiry.
func (b *breaker) isTripped(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(now)
	return b.tripped
}

// expireLocked drops observations that slid out of the window and
// resets a tripped breaker whose cooldown elapsed.
func (b *breaker) expireLocked(now time.Time) {
	if b.tripped {
		if b.cfg.Cooldown > 0 && now.Sub(b.trippedAt) >= b.cfg.Cooldown {
			b.tripped = false
			b.times = b.times[:0]
		}
		return
	}
	cut := now.Add(-b.cfg.Window)
	keep := b.times[:0]
	for _, t := range b.times {
		if t.After(cut) {
			keep = append(keep, t)
		}
	}
	b.times = keep
}
