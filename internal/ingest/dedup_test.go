package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func decodeReply(resp *http.Response, reply *wireReply) error {
	return json.NewDecoder(resp.Body).Decode(reply)
}

func TestParseStreamPos(t *testing.T) {
	t.Run("contiguous", func(t *testing.T) {
		sp, err := ParseStreamPos("17")
		if err != nil {
			t.Fatal(err)
		}
		if n := sp.Lines(); n != -1 {
			t.Fatalf("contiguous Lines() = %d, want -1", n)
		}
		for i, want := range []uint64{17, 18, 19} {
			got, err := sp.At(i)
			if err != nil || got != want {
				t.Fatalf("At(%d) = %d, %v; want %d", i, got, err, want)
			}
		}
	})
	t.Run("explicit", func(t *testing.T) {
		sp, err := ParseStreamPos("17,3,1")
		if err != nil {
			t.Fatal(err)
		}
		if n := sp.Lines(); n != 3 {
			t.Fatalf("explicit Lines() = %d, want 3", n)
		}
		for i, want := range []uint64{17, 20, 21} {
			got, err := sp.At(i)
			if err != nil || got != want {
				t.Fatalf("At(%d) = %d, %v; want %d", i, got, err, want)
			}
		}
		if _, err := sp.At(3); err == nil {
			t.Fatal("At past the encoded count should error")
		}
	})
	for _, bad := range []string{"", "0", "-1", "x", "3,0", "3,-2", "3,x"} {
		if _, err := ParseStreamPos(bad); err == nil {
			t.Fatalf("ParseStreamPos(%q) should fail", bad)
		}
	}
}

// TestIngestStreamDedup: re-delivering stream positions already
// offered (a transport retry, a resume overshoot) counts accepted
// without duplicating anything downstream.
func TestIngestStreamDedup(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(4)
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
	}, ring)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()

	lines := []string{readLine("A", 0, 0), readLine("A", 1, 1)}
	post := func(pos string) (int, wireReply) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/ingest",
			strings.NewReader(strings.Join(lines, "\n")))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderStream, "s1")
		req.Header.Set(HeaderStreamPos, pos)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply wireReply
		if err := decodeReply(resp, &reply); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, reply
	}

	if status, reply := post("1"); status != http.StatusAccepted || reply.Accepted != 2 {
		t.Fatalf("first delivery: status %d, reply %+v", status, reply)
	}
	waitFor(t, 2*time.Second, "window to close", func() bool {
		_, ok := ring.Latest("A")
		return ok
	})

	// The exact same sub-batch again (as a router retry would re-send
	// it): accepted, but skipped before the sessionizer.
	if status, reply := post("1"); status != http.StatusAccepted || reply.Accepted != 2 {
		t.Fatalf("re-delivery: status %d, reply %+v", status, reply)
	}
	if got := d.Metrics().ReportsDeduped.Load(); got != 2 {
		t.Fatalf("deduplicated = %d, want 2", got)
	}
	if got := d.Metrics().ReportsAccepted.Load(); got != 2 {
		t.Fatalf("offered = %d, want 2 (the retry must not re-offer)", got)
	}

	// Partial overlap via explicit positions: line 2 is new.
	lines = []string{readLine("A", 1, 1), readLine("A", 0, 7)}
	if status, reply := post("2,1"); status != http.StatusAccepted || reply.Accepted != 2 {
		t.Fatalf("overlap delivery: status %d, reply %+v", status, reply)
	}
	if got := d.Metrics().ReportsDeduped.Load(); got != 3 {
		t.Fatalf("deduplicated = %d, want 3", got)
	}
	if got := d.Metrics().ReportsAccepted.Load(); got != 3 {
		t.Fatalf("offered = %d, want 3", got)
	}
}

// TestIngestStreamBadHeaders pins the 400 envelope for malformed
// stream metadata.
func TestIngestStreamBadHeaders(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(4)
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
	}, ring)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name, stream, pos string
	}{
		{"oversized stream id", strings.Repeat("x", MaxStreamID+1), "1"},
		{"zero position", "s", "0"},
		{"garbage position", "s", "nope"},
		{"short explicit header", "s", "1,1"}, // 2 positions for 3 lines
	} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/ingest",
			ndjsonBody(readLine("A", 0, 0), readLine("A", 1, 1), readLine("A", 2, 2)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderStream, tc.stream)
		req.Header.Set(HeaderStreamPos, tc.pos)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var reply wireReply
		if err := decodeReply(resp, &reply); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || reply.Code != CodeBadParam {
			t.Fatalf("%s: status %d code %q, want 400 %q", tc.name, resp.StatusCode, reply.Code, CodeBadParam)
		}
	}
}

// TestIngestLineTooLarge pins the typed 413: an NDJSON line past the
// scanner limit refuses with report_too_large, not a generic 400.
func TestIngestLineTooLarge(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(4)
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
	}, ring)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()

	huge := readLine("A", 0, 0) + strings.Repeat(" ", maxReportLine)
	resp, reply := postIngest(t, srv, ndjsonBody(readLine("A", 1, 1), huge))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if reply.Code != CodeReportTooLarge {
		t.Fatalf("code %q, want %q", reply.Code, CodeReportTooLarge)
	}
	if reply.Accepted != 1 {
		t.Fatalf("accepted %d, want 1 (the line before the oversized one)", reply.Accepted)
	}
}

// TestStreamDedupEviction: TTL expiry and the stream cap both evict.
func TestStreamDedupEviction(t *testing.T) {
	now := time.Unix(0, 0)
	d := newStreamDedup(func() time.Time { return now })
	for i := 0; i < dedupMaxStreams; i++ {
		d.advance(fmt.Sprintf("s%d", i), 1)
	}
	if got := d.streams(); got != dedupMaxStreams {
		t.Fatalf("streams = %d, want %d", got, dedupMaxStreams)
	}
	// At the cap with nothing expired: the oldest single stream goes.
	now = now.Add(time.Minute)
	d.advance("fresh", 1)
	if got := d.streams(); got != dedupMaxStreams {
		t.Fatalf("after cap eviction: streams = %d, want %d", got, dedupMaxStreams)
	}
	// Everything older than the TTL goes in one sweep.
	now = now.Add(dedupTTL + time.Minute)
	d.advance("newest", 1)
	if got := d.streams(); got > 2 {
		t.Fatalf("after TTL sweep: streams = %d, want <= 2", got)
	}
	// Marks never regress.
	d.advance("newest", 9)
	d.advance("newest", 4)
	if got := d.highWater("newest"); got != 9 {
		t.Fatalf("highWater = %d, want 9", got)
	}
}
