package ingest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// TestDaemonTracingEndToEnd: with the stage tracer installed the way
// cmd/rfprismd wires it (Metrics as rfprism.Tracer on the System),
// every window the daemon serves carries a per-stage breakdown and
// /metrics exposes non-zero per-stage latency histograms.
func TestDaemonTracingEndToEnd(t *testing.T) {
	scene, sys := newCalibratedSystem(t, 11)
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	var tracked []sim.TrackedTag
	for i, p := range []geom.Vec3{{X: 0.7, Y: 1.2}, {X: 1.4, Y: 1.8}} {
		tracked = append(tracked, sim.TrackedTag{
			Tag:    scene.NewTag(fmt.Sprintf("trace-%d", i)),
			Motion: scene.Place(p, 0, none),
		})
	}
	stream, err := scene.CollectStream(tracked, 2)
	if err != nil {
		t.Fatal(err)
	}

	met := NewMetrics(time.Now())
	rfprism.WithTracer(met)(sys)
	rfprism.WithConfidence()(sys) // exercise the likelihood post-pass stage too

	cap := &captureSink{}
	ring := NewRingSink(4)
	d := NewDaemon(sys, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 45},
		Metrics:     met,
	}, cap, ring)
	if _, err := d.ReplayReports(context.Background(), stream, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	results := cap.snapshot()
	if len(results) == 0 {
		t.Fatal("no results served")
	}
	solved := 0
	for _, tr := range results {
		if len(tr.StageMS) == 0 {
			t.Fatalf("%s/%d: result carries no stage breakdown", tr.EPC, tr.Seq)
		}
		// Every window at least runs the observation front-end.
		for _, st := range []rfprism.Stage{
			rfprism.StageSpectra, rfprism.StageFit, rfprism.StageObserve, rfprism.StageWindow,
		} {
			if _, ok := tr.StageMS[string(st)]; !ok {
				t.Errorf("%s/%d: stage %q missing from breakdown %v", tr.EPC, tr.Seq, st, tr.StageMS)
			}
		}
		if tr.Estimate != nil {
			solved++
			// A solved window executed the whole pipeline.
			for _, st := range []rfprism.Stage{rfprism.StageDetector, rfprism.StageSolve} {
				if _, ok := tr.StageMS[string(st)]; !ok {
					t.Errorf("%s/%d: solved window lacks stage %q: %v", tr.EPC, tr.Seq, st, tr.StageMS)
				}
			}
		}
	}
	if solved == 0 {
		t.Fatal("no window solved")
	}

	// The same spans must have landed in the /metrics stage histograms.
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	counts := stageCounts(t, body)
	for _, st := range rfprism.Stages() {
		if counts[string(st)] == 0 {
			t.Errorf("/metrics stage %q histogram empty:\n%v", st, counts)
		}
	}
}

// httpGet fetches a URL and returns the body.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}

var stageCountRe = regexp.MustCompile(`rfprismd_stage_latency_seconds_count\{stage="([^"]+)"\} (\d+)`)

// stageCounts parses the per-stage histogram counts out of a
// Prometheus text exposition.
func stageCounts(t *testing.T, exposition string) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, m := range stageCountRe.FindAllStringSubmatch(exposition, -1) {
		n, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("bad count line %q: %v", m[0], err)
		}
		out[m[1]] = n
	}
	if len(out) == 0 && !strings.Contains(exposition, "rfprismd_stage_latency_seconds") {
		t.Fatalf("exposition has no stage histograms:\n%s", exposition)
	}
	return out
}
