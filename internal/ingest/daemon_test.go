package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// captureSink records every emitted result for assertions.
type captureSink struct {
	mu      sync.Mutex
	results []TagResult
	closed  bool
}

func (s *captureSink) Emit(r TagResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, r)
	return nil
}

func (s *captureSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *captureSink) snapshot() []TagResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TagResult(nil), s.results...)
}

// gatedProc is a Processor that holds the entire stream until its gate
// opens — the lever for deterministic backpressure tests.
type gatedProc struct {
	gate chan struct{}
}

func newGatedProc() *gatedProc { return &gatedProc{gate: make(chan struct{})} }

func (p *gatedProc) ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult {
	out := make(chan rfprism.WindowResult)
	go func() {
		defer close(out)
		select {
		case <-p.gate:
		case <-ctx.Done():
			return
		}
		i := 0
		for w := range in {
			out <- rfprism.WindowResult{Index: i, Tag: w.Tag, Result: &rfprism.Result{}}
			i++
		}
	}()
	return out
}

// fakeClock is a hand-advanced clock for deadline tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDaemonBackpressure: a full window queue refuses reports with
// ErrBusy before touching the sessionizer, and recovers once the
// solver drains.
func TestDaemonBackpressure(t *testing.T) {
	proc := newGatedProc()
	cap := &captureSink{}
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
		QueueSize:   1,
		RetryAfter:  10 * time.Millisecond,
	}, cap)

	// Close one window: it parks in the queue (the gated proc refuses
	// to read), so the queue is full.
	if err := d.Offer(mkRead("A", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Offer(mkRead("A", 0, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "queue to fill", func() bool { return d.Gauges().QueueDepth == 1 })

	if err := d.Offer(mkRead("B", 0, 0)); !errors.Is(err, ErrBusy) {
		t.Fatalf("full queue accepted a report: %v", err)
	}
	if g := d.Gauges(); g.OpenSessions != 0 {
		t.Fatalf("backpressured report opened a session: %+v", g)
	}
	if got := d.Metrics().ReportsBackpressured.Load(); got != 1 {
		t.Fatalf("backpressure counter %d, want 1", got)
	}

	// Release the solver: the queue drains and ingestion resumes.
	close(proc.gate)
	waitFor(t, time.Second, "queue to drain", func() bool { return d.Gauges().QueueDepth == 0 })
	waitFor(t, time.Second, "ingestion to resume", func() bool { return d.Offer(mkRead("B", 0, 0)) == nil })

	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	results := cap.snapshot()
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (A coverage + B drain)", len(results))
	}
	if results[0].EPC != "A" || results[0].Reason != "coverage" {
		t.Fatalf("first result: %+v", results[0])
	}
	if results[1].EPC != "B" || results[1].Reason != "drain" {
		t.Fatalf("second result: %+v", results[1])
	}
	if !cap.closed {
		t.Error("sink not closed on shutdown")
	}
}

// TestDaemonDrainAndRefuse: Shutdown flushes open sessions through the
// solver, refuses new reports, and is idempotent.
func TestDaemonDrainAndRefuse(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	cap := &captureSink{}
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{MinAntennas: 1},
		RetryAfter:  10 * time.Millisecond,
	}, cap)
	for ch := 0; ch < 5; ch++ {
		if err := d.Offer(mkRead("A", ch%2, ch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := d.Offer(mkRead("A", 0, 9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Offer: %v", err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	results := cap.snapshot()
	if len(results) != 1 || results[0].Reason != "drain" || results[0].Readings != 5 {
		t.Fatalf("drain results: %+v", results)
	}
	if got := d.Metrics().WindowsClosed(CloseDrain); got != 1 {
		t.Fatalf("drain close counter %d, want 1", got)
	}
}

// TestDaemonDeadlineExpiry: a partial window that meets the antenna
// floor is force-closed by the dwell deadline and solved; one below
// the floor is discarded and counted.
func TestDaemonDeadlineExpiry(t *testing.T) {
	clk := &fakeClock{t: t0}
	proc := newGatedProc()
	close(proc.gate)
	cap := &captureSink{}
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{Dwell: time.Second, MinAntennas: 3},
		ExpireEvery: 5 * time.Millisecond,
		Now:         clk.Now,
	}, cap)
	defer d.Shutdown(context.Background())

	// A heard through 3 antennas, B through 1.
	for ant := 0; ant < 3; ant++ {
		if err := d.Offer(mkRead("A", ant, ant)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Offer(mkRead("B", 0, 0)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	waitFor(t, 2*time.Second, "deadline window to be solved", func() bool {
		return len(cap.snapshot()) == 1
	})
	r := cap.snapshot()[0]
	if r.EPC != "A" || r.Reason != "deadline" || r.Antennas != 3 {
		t.Fatalf("deadline result: %+v", r)
	}
	waitFor(t, time.Second, "unusable partial to be discarded", func() bool {
		return d.Metrics().WindowsDiscarded.Load() == 1
	})
	if got := d.Metrics().WindowsClosed(CloseDeadline); got != 1 {
		t.Fatalf("deadline close counter %d, want 1", got)
	}
}

// newCalibratedSystem builds the paper deployment with a calibrated
// System, mirroring the offline pipelines, so daemon results are
// comparable to direct ProcessWindow calls.
func newCalibratedSystem(t *testing.T, seed int64) (*sim.Scene, *rfprism.System) {
	t.Helper()
	scene, err := sim.NewScene(sim.PaperAntennas2D(nil), rf.CleanSpace(), sim.DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rfprism.NewSystem(rfprism.DeploymentFromSim(scene.Antennas), rfprism.Bounds2D(sim.PaperRegion()))
	if err != nil {
		t.Fatal(err)
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	calTag := scene.NewTag("cal")
	var calWin []sim.Reading
	for i := 0; i < 3; i++ {
		calWin = append(calWin, scene.CollectWindow(calTag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		t.Fatal(err)
	}
	return scene, sys
}

// TestDaemonEndToEndReplayMatchesProcessWindow: the acceptance test.
// A seeded three-tag interleaved stream replayed through the daemon
// yields, per (EPC, seq), exactly the windows an offline sessionizer
// run assembles and exactly the estimates ProcessWindow computes on
// those windows — the daemon adds plumbing, not drift.
func TestDaemonEndToEndReplayMatchesProcessWindow(t *testing.T) {
	scene, sys := newCalibratedSystem(t, 42)
	none, err := rf.MaterialByName("none")
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec3{{X: 0.6, Y: 1.1}, {X: 1.2, Y: 1.6}, {X: 1.5, Y: 2.0}}
	var tracked []sim.TrackedTag
	for i, p := range positions {
		tracked = append(tracked, sim.TrackedTag{
			Tag:    scene.NewTag(fmt.Sprintf("e2e-%d", i)),
			Motion: scene.Place(p, 0.3*float64(i), none),
		})
	}
	stream, err := scene.CollectStream(tracked, 2)
	if err != nil {
		t.Fatal(err)
	}
	sessCfg := SessionizerConfig{CoverageClose: 45}

	// Expected outcomes: the same sessionizer logic offline, each
	// window solved directly with ProcessWindow.
	type outcome struct {
		est    *rfprism.Estimate
		reason CloseReason
	}
	expected := make(map[string]outcome)
	ref := NewSessionizer(sessCfg)
	var refWindows []ClosedWindow
	for _, rd := range stream {
		if cw, closed, err := ref.Add(rd, t0); err != nil {
			t.Fatal(err)
		} else if closed {
			refWindows = append(refWindows, cw)
		}
	}
	refWindows = append(refWindows, ref.Drain(t0)...)
	for _, cw := range refWindows {
		key := fmt.Sprintf("%s/%d", cw.EPC, cw.Seq)
		res, err := sys.ProcessWindow(cw.Readings)
		if err != nil {
			expected[key] = outcome{reason: cw.Reason}
			continue
		}
		est := res.Estimate
		expected[key] = outcome{est: &est, reason: cw.Reason}
	}
	if len(expected) < len(positions) {
		t.Fatalf("reference produced only %d windows", len(expected))
	}

	// Live side: replay the identical stream through the daemon.
	cap := &captureSink{}
	ring := NewRingSink(4)
	d := NewDaemon(sys, Config{
		Sessionizer: sessCfg,
		RetryAfter:  10 * time.Millisecond,
	}, cap, ring)
	if _, err := d.ReplayReports(context.Background(), stream, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	got := cap.snapshot()
	if len(got) != len(expected) {
		t.Fatalf("daemon produced %d results, reference %d", len(got), len(expected))
	}
	solved := 0
	for _, tr := range got {
		key := fmt.Sprintf("%s/%d", tr.EPC, tr.Seq)
		want, ok := expected[key]
		if !ok {
			t.Fatalf("daemon produced unexpected window %s", key)
		}
		if tr.Reason != want.reason.String() {
			t.Errorf("%s: close reason %s, want %s", key, tr.Reason, want.reason)
		}
		if (tr.Estimate != nil) != (want.est != nil) {
			t.Fatalf("%s: outcome mismatch: daemon err=%q, reference solved=%v", key, tr.Err, want.est != nil)
		}
		if want.est == nil {
			continue
		}
		solved++
		if tr.Estimate.X != want.est.Pos.X || tr.Estimate.Y != want.est.Pos.Y ||
			tr.Estimate.Kt != want.est.Kt || tr.Estimate.Bt0 != want.est.Bt0 {
			t.Errorf("%s: estimate drifted from ProcessWindow:\n daemon   %+v\n expected pos=%+v kt=%g bt0=%g",
				key, tr.Estimate, want.est.Pos, want.est.Kt, want.est.Bt0)
		}
	}
	if solved < len(positions) {
		t.Fatalf("only %d windows solved end to end, want ≥ %d", solved, len(positions))
	}
	// Each tag's latest solved estimate should localize near truth —
	// the stream really carries usable physics, not just plumbing.
	for i, tr := range tracked {
		latest, ok := ring.Latest(tr.Tag.EPC)
		if !ok {
			t.Fatalf("ring has no result for %s", tr.Tag.EPC)
		}
		if latest.Estimate == nil {
			continue // a drained partial tail may be rejected; covered above
		}
		dx, dy := latest.Estimate.X-positions[i].X, latest.Estimate.Y-positions[i].Y
		if dx*dx+dy*dy > 0.35*0.35 {
			t.Errorf("%s: localization error %.2f m", tr.Tag.EPC, dx*dx+dy*dy)
		}
	}
	if d.Metrics().ResultsOK.Load() < int64(solved) {
		t.Errorf("metrics ResultsOK %d < solved %d", d.Metrics().ResultsOK.Load(), solved)
	}
}

// TestDaemonShutdownTimeout: a context that expires mid-drain aborts
// with the context error instead of hanging, and the daemon still
// winds down its goroutines.
func TestDaemonShutdownTimeout(t *testing.T) {
	proc := newGatedProc() // gate never opens: the solver is stuck
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
		QueueSize:   1,
	})
	if err := d.Offer(mkRead("B", 0, 0)); err != nil { // stays open → drain flushes it
		t.Fatal(err)
	}
	if err := d.Offer(mkRead("A", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Offer(mkRead("A", 0, 1)); err != nil { // closes, parks in queue
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck drain returned %v, want deadline exceeded", err)
	}
}
