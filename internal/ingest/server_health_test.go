package ingest

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterJitter: the jittered Retry-After stays inside
// [0.5, 1.5]× the base pause, rounds up to whole seconds, and never
// drops below 1 s.
func TestRetryAfterJitter(t *testing.T) {
	cases := []struct {
		base time.Duration
		u    float64
		want int
	}{
		{4 * time.Second, 0, 2},        // lower bound: 0.5×
		{4 * time.Second, 0.5, 4},      // midpoint: exactly the base
		{4 * time.Second, 0.999, 6},    // upper bound: just under 1.5×
		{3 * time.Second, 0.4, 3},      // fractional product rounds up
		{time.Second, 0, 1},            // floor: never advertise 0
		{100 * time.Millisecond, 0, 1}, // sub-second base still floors at 1
		{0, 0.9, 1},                    // zero base floors at 1
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.base, c.u); got != c.want {
			t.Errorf("retryAfterSeconds(%v, %v) = %d, want %d", c.base, c.u, got, c.want)
		}
	}
}

// TestServerBreakerReadiness: three solver panics trip the breaker —
// /readyz flips to 503 while /healthz keeps answering 200 (the daemon
// is alive, journaling everything), and /metrics exposes the trip.
func TestServerBreakerReadiness(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashTestConfig(j)
	cfg.Breaker = BreakerConfig{Threshold: 3, Window: time.Minute}
	d := NewDaemon(echoProc{}, cfg, &captureSink{})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, nil).Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("healthy readyz: %d %s", code, body)
	}

	for i := 0; i < 3; i++ {
		for _, rd := range fullWindow("poison-" + string(rune('a'+i))) {
			if err := d.Offer(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, "breaker trip", func() bool {
		return d.Gauges().BreakerTripped
	})

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "breaker-tripped") {
		t.Fatalf("tripped readyz: %d %s", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "breaker-tripped") {
		t.Fatalf("tripped healthz: %d %s", code, body)
	}
	_, metrics := get("/metrics")
	for _, want := range []string{
		"rfprismd_breaker_tripped 1",
		"rfprismd_breaker_trips_total 1",
		"rfprismd_solver_panics_total 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
}
