package crashtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/ingest"
	"rfprism/internal/sim"
)

// TestMain dispatches: re-executed children run the daemon lifetime
// instead of the test suite.
func TestMain(m *testing.M) {
	if IsChild() {
		os.Exit(RunChild())
	}
	os.Exit(m.Run())
}

// childRun executes one daemon lifetime in a fresh process. crashAt < 0
// means run to a clean drain.
func childRun(t *testing.T, dir string, seed int64, resume, crashAt int, recover bool) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	rec := "0"
	if recover {
		rec = "1"
	}
	cmd.Env = append(os.Environ(),
		envChild+"=1",
		envDir+"="+dir,
		envSeed+"="+strconv.FormatInt(seed, 10),
		envCrashAt+"="+strconv.Itoa(crashAt),
		envResume+"="+strconv.Itoa(resume),
		envRecover+"="+rec,
	)
	out, err := cmd.CombinedOutput()
	if crashAt < 0 {
		if err != nil {
			t.Fatalf("clean child run failed: %v\n%s", err, out)
		}
		return
	}
	// A scheduled crash must end in the self-inflicted SIGKILL — any
	// other exit means the child never reached the crash point.
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child at crash %d: err %v (want SIGKILL)\n%s", crashAt, err, out)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child at crash %d exited %v, want SIGKILL\n%s", crashAt, ee, out)
	}
}

// countJournalLines counts durable (newline-terminated) report lines
// across every journal segment in dir — the post-crash ground truth of
// what survived.
func countJournalLines(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, path := range matches {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		n += bytes.Count(b, []byte{'\n'})
	}
	return n
}

// readLedger parses the emission ledger.
func readLedger(t *testing.T, path string) []ingest.TagResult {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []ingest.TagResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var tr ingest.TagResult
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("ledger line %q: %v", raw, err)
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// baselineWindow is one offline reference outcome.
type baselineWindow struct {
	est *rfprism.Estimate
	err error
}

// TestCrashRecovery is the chaos harness: feed a seeded two-tag
// stream, SIGKILL the daemon at seeded points, restart with -recover
// semantics, and require the union of all runs' durable output to
// match an offline baseline over the reports that survived — with zero
// duplicate (EPC, FirstSeq) windows and a loss per crash bounded by
// the journal's record-sync interval.
func TestCrashRecovery(t *testing.T) {
	const seed = int64(41)
	sys, reports, err := buildHarness(seed)
	if err != nil {
		t.Fatal(err)
	}
	crashes := sim.CrashPoints(seed, len(reports), 3)
	t.Logf("stream: %d reports, crash schedule %v", len(reports), crashes)
	dir := t.TempDir()

	// Crash/restart cycles. effective accumulates the reports that
	// survived each crash (journaled-and-durable prefix of what the
	// child fed); reports accepted after the last sync die with the
	// process, and the feed resumes past the crash point — exactly a
	// reader that kept inventorying while the daemon was down.
	var effective []sim.Reading
	feedStart := 0
	for i, crashAt := range crashes {
		childRun(t, dir, seed, feedStart, crashAt, i > 0)
		durable := countJournalLines(t, dir)
		appended := durable - len(effective)
		accepted := crashAt + 1 - feedStart
		if appended < 0 || appended > accepted {
			t.Fatalf("crash %d: %d durable lines after %d effective + %d accepted", crashAt, durable, len(effective), accepted)
		}
		if lost := accepted - appended; lost > syncRecords {
			t.Fatalf("crash %d lost %d reports, bound is %d", crashAt, lost, syncRecords)
		} else {
			t.Logf("crash at %d: %d accepted this run, %d lost", crashAt, accepted, lost)
		}
		effective = append(effective, reports[feedStart:feedStart+appended]...)
		feedStart = crashAt + 1
	}
	// Final lifetime: recover and drain cleanly.
	childRun(t, dir, seed, feedStart, -1, true)
	effective = append(effective, reports[feedStart:]...)

	// Offline baseline: the same sessionizer config over the effective
	// stream with positional sequence numbers — which is precisely what
	// journal replay plus the resumed feed presented to the daemons.
	now := time.Now()
	base := map[ingest.WindowKey]baselineWindow{}
	solve := func(cw ingest.ClosedWindow) {
		res, err := sys.ProcessWindow(cw.Readings)
		bw := baselineWindow{err: err}
		if err == nil {
			bw.est = &res.Estimate
		}
		base[cw.Key()] = bw
	}
	z := ingest.NewSessionizer(sessionizerConfig())
	for i, rd := range effective {
		cw, closed, err := z.AddSeq(rd, uint64(i), now)
		if err != nil {
			t.Fatalf("baseline rejected report %d: %v", i, err)
		}
		if closed {
			solve(cw)
		}
	}
	for _, cw := range z.Drain(now) {
		solve(cw)
	}

	// The ledger is the union of every lifetime's durable output.
	results := readLedger(t, filepath.Join(dir, "results.ndjson"))
	got := map[ingest.WindowKey]ingest.TagResult{}
	for _, tr := range results {
		key := ingest.WindowKey{EPC: tr.EPC, FirstSeq: tr.FirstSeq}
		if _, dup := got[key]; dup {
			t.Fatalf("duplicate window %+v in emission ledger", key)
		}
		got[key] = tr
	}

	// Exact key-set equality, estimate agreement per window.
	for key, bw := range base {
		tr, ok := got[key]
		if !ok {
			t.Errorf("window %+v missing from recovered output", key)
			continue
		}
		switch {
		case bw.err != nil:
			if tr.Err == "" {
				t.Errorf("window %+v: baseline failed (%v), daemon succeeded", key, bw.err)
			}
		case tr.Estimate == nil:
			t.Errorf("window %+v: baseline succeeded, daemon failed: %s", key, tr.Err)
		default:
			dx, dy, dz := tr.Estimate.X-bw.est.Pos.X, tr.Estimate.Y-bw.est.Pos.Y, tr.Estimate.Z-bw.est.Pos.Z
			if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d > 1e-6 {
				t.Errorf("window %+v: estimate drifted %g m from baseline", key, d)
			}
		}
	}
	for key := range got {
		if _, ok := base[key]; !ok {
			t.Errorf("window %+v emitted but absent from baseline", key)
		}
	}
	if len(base) == 0 {
		t.Fatal("baseline produced no windows — harness parameters are degenerate")
	}
	t.Logf("verified %d windows against baseline (%d durable reports of %d fed)", len(base), len(effective), len(reports))

	var epcs []string
	for key := range base {
		epcs = append(epcs, fmt.Sprintf("%s@%d", key.EPC, key.FirstSeq))
	}
	t.Logf("windows: %s", strings.Join(epcs, " "))
}
