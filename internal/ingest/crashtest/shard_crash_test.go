package crashtest

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/ingest"
	"rfprism/internal/router"
	"rfprism/internal/sim"
)

// shardChild is one serve-mode shard process under parent control.
type shardChild struct {
	id       string
	dir      string
	addrFile string
	cmd      *exec.Cmd
}

// startShardChild launches (or relaunches, with recover) one shard
// process and waits for its published address.
func startShardChild(t *testing.T, id, dir string, seed int64, recover bool) (*shardChild, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	sc := &shardChild{id: id, dir: dir, addrFile: filepath.Join(dir, fmt.Sprintf("addr-%d.txt", time.Now().UnixNano()))}
	rec := "0"
	if recover {
		rec = "1"
	}
	sc.cmd = exec.Command(exe)
	sc.cmd.Env = append(os.Environ(),
		envChild+"=1",
		envMode+"=serve",
		envDir+"="+dir,
		envSeed+"="+strconv.FormatInt(seed, 10),
		envAddrFile+"="+sc.addrFile,
		envRecover+"="+rec,
	)
	sc.cmd.Stderr = os.Stderr
	if err := sc.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(sc.addrFile); err == nil && len(b) > 0 {
			return sc, "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			_ = sc.cmd.Process.Kill()
			t.Fatalf("shard %s never published its address", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sigkill kills the shard process dead — no drain, no final sync —
// and reaps it so the journal directory has no writer left.
func (sc *shardChild) sigkill(t *testing.T) {
	t.Helper()
	if err := sc.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = sc.cmd.Wait()
}

// drain sends SIGTERM and requires a clean exit (the serve child
// drains its daemon on SIGTERM).
func (sc *shardChild) drain(t *testing.T) {
	t.Helper()
	if err := sc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := sc.cmd.Wait(); err != nil {
		t.Fatalf("shard %s drain exit: %v", sc.id, err)
	}
}

// readJournalReadings loads a shard's retained reports in journal
// order — the per-shard ground truth its ledger must match.
func readJournalReadings(t *testing.T, dir string) []sim.Reading {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches) // names embed the zero-padded first seq
	var out []sim.Reading
	for _, path := range matches {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var rd sim.Reading
			if err := json.Unmarshal([]byte(line), &rd); err != nil {
				t.Fatalf("journal line %q: %v", line, err)
			}
			out = append(out, rd)
		}
	}
	return out
}

// TestShardCrashChaos is the cluster chaos harness: three real shard
// processes behind the router, a seeded six-tag stream fanned out
// per EPC, one shard SIGKILLed mid-stream. The router must degrade —
// /readyz goes 503 naming the dead shard, scatter reads turn partial,
// ingest refuses with a resumable prefix — and after the shard
// restarts with journal recovery and the stream finishes, every
// shard's emission ledger must be duplicate-free and exactly equal to
// the offline baseline over its own retained journal.
func TestShardCrashChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes and solves windows; skipped in -short")
	}
	const seed = int64(43)
	stream, err := buildShardStream(seed)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(stream))
	for i, rd := range stream {
		b, err := json.Marshal(rd)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(b)
	}

	// Three shard processes behind a fresh router.
	rt := router.New(router.Config{ShardTimeout: 30 * time.Second})
	shards := make(map[string]*shardChild, 3)
	root := t.TempDir()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		dir := filepath.Join(root, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		sc, url := startShardChild(t, id, dir, seed, false)
		shards[id] = sc
		if err := rt.AddShard(id, url); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, sc := range shards {
			_ = sc.cmd.Process.Kill()
			_, _ = sc.cmd.Process.Wait()
		}
	})

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body)))
		return w
	}
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	// Phase 1: first half of the stream through a healthy cluster.
	half := len(lines) / 2
	w := post(strings.Join(lines[:half], "\n") + "\n")
	if w.Code != http.StatusAccepted {
		t.Fatalf("healthy ingest: %d %s", w.Code, w.Body.String())
	}

	// Phase 2: SIGKILL the shard owning the stream's first EPC.
	victimInfo, ok := rt.Owner(stream[0].EPC)
	if !ok {
		t.Fatal("no ring owner")
	}
	victim := victimInfo.ID
	t.Logf("killing shard %s (owner of %s) after %d/%d lines", victim, stream[0].EPC, half, len(lines))
	shards[victim].sigkill(t)

	// Degradation: /readyz 503 with the victim marked down.
	w = get("/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead shard: %d %s", w.Code, w.Body.String())
	}
	var ready struct {
		Ready  bool `json:"ready"`
		Shards []struct{ ID, State string }
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, s := range ready.Shards {
		states[s.ID] = s.State
	}
	if ready.Ready || states[victim] != "down" {
		t.Fatalf("readyz body %s", w.Body.String())
	}

	// Degradation: scatter reads answer partial, naming the victim.
	w = get("/v1/tags")
	if w.Code != http.StatusOK || w.Header().Get("X-RFPrism-Partial") != "1" {
		t.Fatalf("tags with dead shard: %d partial=%q", w.Code, w.Header().Get("X-RFPrism-Partial"))
	}
	var tags struct {
		Partial       bool     `json:"partial"`
		MissingShards []string `json:"missingShards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tags); err != nil {
		t.Fatal(err)
	}
	if !tags.Partial || len(tags.MissingShards) != 1 || tags.MissingShards[0] != victim {
		t.Fatalf("partial scatter body %s", w.Body.String())
	}

	// Degradation: ingest touching the victim refuses with a resumable
	// prefix (the second half interleaves every tag, so it must hit
	// the dead shard).
	resume := half
	w = post(strings.Join(lines[resume:], "\n") + "\n")
	if w.Code != http.StatusBadGateway {
		t.Fatalf("ingest with dead shard: %d %s", w.Code, w.Body.String())
	}
	var env struct {
		Code     string `json:"code"`
		Accepted int    `json:"accepted"`
		Shard    string `json:"shard"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != router.CodeShardUnavailable || env.Shard != victim {
		t.Fatalf("dead-shard envelope %s", w.Body.String())
	}
	resume += env.Accepted
	t.Logf("dead-shard ingest accepted %d more lines; resuming at %d after restart", env.Accepted, resume)

	// Phase 3: restart the victim with journal recovery, re-register,
	// finish the stream. Lines past the accepted prefix that a healthy
	// shard already took are re-delivered — the documented
	// at-least-once overshoot; the per-shard baselines below prove the
	// ledgers stay exact anyway.
	sc, url := startShardChild(t, victim, shards[victim].dir, seed, true)
	shards[victim] = sc
	if err := rt.RemoveShard(victim); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard(victim, url); err != nil {
		t.Fatal(err)
	}
	w = post(strings.Join(lines[resume:], "\n") + "\n")
	if w.Code != http.StatusAccepted {
		t.Fatalf("post-restart ingest: %d %s", w.Code, w.Body.String())
	}
	if w = get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz after restart: %d %s", w.Code, w.Body.String())
	}

	// Clean drain everywhere, then verify each shard's ledger against
	// the offline baseline over its own retained journal.
	ids := make([]string, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		shards[id].drain(t)
	}

	sys, _, err := buildHarness(seed)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	epcOwner := map[string]string{} // EPC → shard that emitted it
	totalWindows := 0
	for _, id := range ids {
		dir := shards[id].dir
		readings := readJournalReadings(t, dir)

		// Offline baseline: this shard's retained reports through the
		// same sessionizer, solved directly.
		type baseline struct {
			est *rfprism.Estimate
			err error
		}
		base := map[ingest.WindowKey]baseline{}
		solve := func(cw ingest.ClosedWindow) {
			res, err := sys.ProcessWindow(cw.Readings)
			bw := baseline{err: err}
			if err == nil {
				bw.est = &res.Estimate
			}
			base[cw.Key()] = bw
		}
		z := ingest.NewSessionizer(sessionizerConfig())
		for i, rd := range readings {
			if cw, closed, err := z.AddSeq(rd, uint64(i), now); err != nil {
				t.Fatalf("shard %s baseline rejected report %d: %v", id, i, err)
			} else if closed {
				solve(cw)
			}
		}
		for _, cw := range z.Drain(now) {
			solve(cw)
		}

		ledger := readLedger(t, filepath.Join(dir, "results.ndjson"))
		got := map[ingest.WindowKey]ingest.TagResult{}
		for _, tr := range ledger {
			key := ingest.WindowKey{EPC: tr.EPC, FirstSeq: tr.FirstSeq}
			if _, dup := got[key]; dup {
				t.Fatalf("shard %s: duplicate window %+v in emission ledger", id, key)
			}
			got[key] = tr
			if prev, ok := epcOwner[tr.EPC]; ok && prev != id {
				t.Fatalf("EPC %s emitted by both %s and %s — sharding leaked", tr.EPC, prev, id)
			}
			epcOwner[tr.EPC] = id
		}
		for key, bw := range base {
			tr, ok := got[key]
			if !ok {
				t.Errorf("shard %s: window %+v missing from ledger", id, key)
				continue
			}
			switch {
			case bw.err != nil:
				if tr.Err == "" {
					t.Errorf("shard %s window %+v: baseline failed (%v), daemon succeeded", id, key, bw.err)
				}
			case tr.Estimate == nil:
				t.Errorf("shard %s window %+v: baseline succeeded, daemon failed: %s", id, key, tr.Err)
			default:
				dx, dy, dz := tr.Estimate.X-bw.est.Pos.X, tr.Estimate.Y-bw.est.Pos.Y, tr.Estimate.Z-bw.est.Pos.Z
				if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d > 1e-6 {
					t.Errorf("shard %s window %+v: estimate drifted %g m", id, key, d)
				}
			}
		}
		for key := range got {
			if _, ok := base[key]; !ok {
				t.Errorf("shard %s: window %+v emitted but absent from baseline", id, key)
			}
		}
		t.Logf("shard %s: %d retained reports, %d windows verified", id, len(readings), len(base))
		totalWindows += len(base)
	}
	if totalWindows == 0 {
		t.Fatal("no windows anywhere — harness parameters are degenerate")
	}
	if len(epcOwner) < shardTags {
		t.Errorf("only %d of %d EPCs produced windows", len(epcOwner), shardTags)
	}
}
