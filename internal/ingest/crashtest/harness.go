// Package crashtest proves rfprismd's crash-safety contract end to
// end: a daemon fed a seeded multi-tag report stream is SIGKILLed at
// randomized points, restarted with journal recovery, and its combined
// output is compared against an offline baseline over the reports that
// actually survived. The invariants under test are the ones DESIGN.md
// §9 promises — no duplicate (EPC, FirstSeq) window is ever emitted,
// every surviving report ends up in exactly the window the offline
// sessionizer would have built, and a crash loses at most the journal
// sync interval's worth of reports.
//
// The kill is real: the test re-executes its own binary in a child
// mode (TestMain dispatches on an environment variable) and the child
// SIGKILLs itself mid-stream, so no defer, flush or shutdown path can
// soften the crash.
package crashtest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rfprism"
	"rfprism/internal/geom"
	"rfprism/internal/ingest"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// Child-mode environment contract between the parent test and the
// re-executed binary.
const (
	envChild   = "RFPRISM_CRASHTEST_CHILD"
	envDir     = "RFPRISM_CRASHTEST_DIR"
	envSeed    = "RFPRISM_CRASHTEST_SEED"
	envCrashAt = "RFPRISM_CRASHTEST_CRASH_AT"
	envResume  = "RFPRISM_CRASHTEST_RESUME_FROM"
	envRecover = "RFPRISM_CRASHTEST_RECOVER"
	// envMode selects the child role: "" / "feed" is the classic
	// self-feeding, self-killing daemon; "serve" runs a full rfprismd
	// shard (daemon + journal + HTTP server) that is fed — and killed —
	// from outside, which is what the router chaos test needs.
	envMode = "RFPRISM_CRASHTEST_MODE"
	// envAddrFile is where a serve-mode child publishes its bound
	// listen address (written atomically; the parent polls for it).
	envAddrFile = "RFPRISM_CRASHTEST_ADDR_FILE"
)

// Fixed harness parameters. syncRecords is the deterministic loss
// bound the parent asserts; the hour-long time triggers keep every
// sync and window close a pure function of the report stream, never of
// wall-clock scheduling.
const (
	harnessTags   = 2
	harnessRounds = 2
	coverageClose = 45
	syncRecords   = 32
	harnessDwell  = time.Hour
	harnessQueue  = 64
)

// IsChild reports whether this process was re-executed as the crash
// harness child; TestMain must then call RunChild instead of running
// the test suite.
func IsChild() bool { return os.Getenv(envChild) == "1" }

// RunChild runs the child role to completion and returns its exit
// code. A scheduled crash never returns at all — the child SIGKILLs
// itself (feed mode) or is killed from outside (serve mode).
func RunChild() int {
	run := runChild
	if os.Getenv(envMode) == "serve" {
		run = runServeChild
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		return 1
	}
	return 0
}

// sessionizerConfig is shared by the child daemon and the parent's
// offline baseline: equality of their outputs is only meaningful if
// both assemble windows identically.
func sessionizerConfig() ingest.SessionizerConfig {
	return ingest.SessionizerConfig{CoverageClose: coverageClose, Dwell: harnessDwell}
}

// buildHarness recreates the deterministic deployment: a seeded scene,
// a calibrated System over it, and the full interleaved report stream.
// Parent and child both call it with the same seed, so the child can
// regenerate "the reader's" remaining stream after a restart and the
// parent can solve an exact offline baseline.
func buildHarness(seed int64) (*rfprism.System, []sim.Reading, error) {
	hwRng := rand.New(rand.NewSource(seed))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), seed+999)
	if err != nil {
		return nil, nil, err
	}
	sys, err := rfprism.NewSystem(
		rfprism.DeploymentFromSim(scene.Antennas),
		rfprism.Bounds2D(sim.PaperRegion()),
	)
	if err != nil {
		return nil, nil, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, nil, err
	}
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	calTag := scene.NewTag("cal")
	var calWin []sim.Reading
	for i := 0; i < 3; i++ {
		calWin = append(calWin, scene.CollectWindow(calTag, scene.Place(calPos, 0, none))...)
	}
	if err := sys.CalibrateAntennas(calWin, calPos, 0); err != nil {
		return nil, nil, err
	}

	region := sim.PaperRegion()
	posRng := rand.New(rand.NewSource(seed + 7))
	tracked := make([]sim.TrackedTag, harnessTags)
	for i := range tracked {
		pos := geom.Vec3{
			X: region.XMin + posRng.Float64()*(region.XMax-region.XMin),
			Y: region.YMin + posRng.Float64()*(region.YMax-region.YMin),
		}
		tracked[i] = sim.TrackedTag{
			Tag:    scene.NewTag(fmt.Sprintf("crash-%02d", i)),
			Motion: scene.Place(pos, posRng.Float64()*3, none),
		}
	}
	reports, err := scene.CollectStream(tracked, harnessRounds)
	if err != nil {
		return nil, nil, err
	}
	return sys, reports, nil
}

// shardTags is the tag population for the sharded chaos stream — wide
// enough that a 3-shard ring spreads EPCs across every shard.
const shardTags = 6

// buildShardStream regenerates the interleaved multi-tag stream the
// shard chaos parent feeds through the router. Serve-mode children
// never see it directly (they are fed over HTTP), but it is built on
// the same seeded scene as buildHarness's calibration, so the
// children's solvers see physically consistent reports.
func buildShardStream(seed int64) ([]sim.Reading, error) {
	hwRng := rand.New(rand.NewSource(seed))
	scene, err := sim.NewScene(sim.PaperAntennas2D(hwRng), rf.CleanSpace(), sim.DefaultConfig(), seed+999)
	if err != nil {
		return nil, err
	}
	none, err := rf.MaterialByName("none")
	if err != nil {
		return nil, err
	}
	region := sim.PaperRegion()
	posRng := rand.New(rand.NewSource(seed + 13))
	tracked := make([]sim.TrackedTag, shardTags)
	for i := range tracked {
		pos := geom.Vec3{
			X: region.XMin + posRng.Float64()*(region.XMax-region.XMin),
			Y: region.YMin + posRng.Float64()*(region.YMax-region.YMin),
		}
		tracked[i] = sim.TrackedTag{
			Tag:    scene.NewTag(fmt.Sprintf("shard-%02d", i)),
			Motion: scene.Place(pos, posRng.Float64()*3, none),
		}
	}
	return scene.CollectStream(tracked, harnessRounds)
}

// runServeChild is one shard lifetime: a journaled daemon behind the
// full ingest HTTP server on an ephemeral loopback port, its address
// published through the addr file. The child serves until SIGTERM
// (clean drain) or until the parent SIGKILLs the process — the crash
// under test.
func runServeChild() error {
	dir := os.Getenv(envDir)
	addrFile := os.Getenv(envAddrFile)
	if dir == "" || addrFile == "" {
		return fmt.Errorf("serve child needs %s and %s", envDir, envAddrFile)
	}
	seed, err := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %w", envSeed, err)
	}
	sys, _, err := buildHarness(seed)
	if err != nil {
		return err
	}
	j, err := ingest.OpenJournal(ingest.JournalConfig{
		Dir:         dir,
		SyncEvery:   time.Hour, // count-triggered syncs only: deterministic loss bound
		SyncRecords: syncRecords,
	})
	if err != nil {
		return err
	}
	ring := ingest.NewRingSink(8)
	d := ingest.NewDaemon(sys, ingest.Config{
		Sessionizer: sessionizerConfig(),
		QueueSize:   harnessQueue,
		Journal:     j,
	}, ring)
	if os.Getenv(envRecover) == "1" {
		info, err := d.Recover()
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		fmt.Fprintf(os.Stderr, "crashtest shard: recovered %+v\n", info)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           ingest.NewServer(d, ring).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.Serve(ln) }()
	// Publish the bound address atomically: write-then-rename, so the
	// polling parent never reads a half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		return err
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	_ = srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return d.Shutdown(ctx)
}

// runChild is one daemon lifetime: open the journal, optionally
// recover, feed the stream from the resume index, and either SIGKILL
// at the scheduled report or drain cleanly.
func runChild() error {
	dir := os.Getenv(envDir)
	seed, err := strconv.ParseInt(os.Getenv(envSeed), 10, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %w", envSeed, err)
	}
	crashAt, err := strconv.Atoi(os.Getenv(envCrashAt))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envCrashAt, err)
	}
	resume, err := strconv.Atoi(os.Getenv(envResume))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envResume, err)
	}

	sys, reports, err := buildHarness(seed)
	if err != nil {
		return err
	}
	j, err := ingest.OpenJournal(ingest.JournalConfig{
		Dir:         dir,
		SyncEvery:   time.Hour, // count-triggered syncs only: deterministic
		SyncRecords: syncRecords,
	})
	if err != nil {
		return err
	}
	d := ingest.NewDaemon(sys, ingest.Config{
		Sessionizer: sessionizerConfig(),
		QueueSize:   harnessQueue,
		Journal:     j,
	})
	if os.Getenv(envRecover) == "1" {
		info, err := d.Recover()
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		fmt.Fprintf(os.Stderr, "crashtest child: recovered %+v\n", info)
	}

	for i := resume; i < len(reports); i++ {
		for {
			err := d.Offer(reports[i])
			if err == nil {
				break
			}
			if errors.Is(err, ingest.ErrBusy) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return fmt.Errorf("offer report %d: %w", i, err)
		}
		if i == crashAt {
			// The crash under test: no flush, no drain, no defers.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return d.Shutdown(ctx)
}
