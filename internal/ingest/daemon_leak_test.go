package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rfprism/internal/sim"
)

func mustJSON(t *testing.T, rd sim.Reading) string {
	t.Helper()
	b, err := json.Marshal(rd)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertGoroutinesSettle polls until the goroutine count drops back to
// the recorded baseline, dumping stacks if it never does (same
// contract as the root package's batch leak tests).
func assertGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		runtime.GC() // nudge finished goroutines off the scheduler
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		n, base, buf[:runtime.Stack(buf, true)])
}

// TestDaemonShutdownNoLeak: a full deployment — journal (with its
// background sync loop), daemon (sweeper, feeder, result loop) and
// HTTP server — winds down to the goroutine baseline after shutdown.
// Run under -race; a leaked sync loop or result goroutine would keep
// the journal file descriptor alive past Close.
func TestDaemonShutdownNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRingSink(4)
	d := NewDaemon(echoProc{}, crashTestConfig(j), ring)
	srv := httptest.NewServer(NewServer(d, ring).Handler())

	// Drive real traffic through every layer: HTTP ingest, journal
	// append, sessionizer close, solve, ledger append, ring emit.
	var lines []string
	for _, epc := range []string{"A", "B", "poison-x"} {
		for _, rd := range fullWindow(epc) {
			lines = append(lines, mustJSON(t, rd))
		}
	}
	resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
	waitFor(t, 5*time.Second, "all windows resolved", func() bool {
		m := d.Metrics()
		return m.ResultsOK.Load() == 2 && m.SolverPanics.Load() == 1
	})

	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	srv.Close()
	assertGoroutinesSettle(t, base)
}
