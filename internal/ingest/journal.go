package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rfprism/internal/sim"
)

// The journal is rfprismd's write-ahead log: every admitted report is
// appended (buffered, group-fsynced) before it enters the sessionizer,
// so a kill -9 loses at most the tail written since the last sync.
//
// Layout inside the journal directory:
//
//	journal-<firstSeq>.ndjson   report segments, one sim.Reading JSON
//	                            per line — the exact POST /ingest wire
//	                            format, so a segment can be re-fed to
//	                            any daemon and one fuzzer hardens both
//	                            parsers
//	results.ndjson              the emission ledger: one TagResult per
//	                            line, written with a single write(2)
//	                            per result so a line is either durable
//	                            or absent — recovery reads it to know
//	                            which windows were already served
//	quarantine/                 poisoned windows (solver panics), one
//	                            NDJSON reading file + one .panic.txt
//	                            per event, for offline reproduction
//
// Sequence numbers are positional: a report's seq is its segment's
// firstSeq plus its line index. That keeps the wire format free of
// envelope fields while still giving recovery a stable, monotonically
// increasing identity — a window is (EPC, seq of its first report),
// and replaying the same retained lines reconstructs the same keys.

// journalPrefix and journalExt frame segment file names:
// journal-%016d.ndjson, sortable lexically by first seq.
const (
	journalPrefix = "journal-"
	journalExt    = ".ndjson"
	// resultsName is the emission ledger file inside the journal dir.
	resultsName = "results.ndjson"
	// quarantineDirName holds poisoned windows.
	quarantineDirName = "quarantine"
)

// JournalConfig tunes the write-ahead journal. The zero value (plus a
// Dir) gets serving defaults.
type JournalConfig struct {
	// Dir is the journal directory, created if missing. Required.
	Dir string
	// SyncEvery is the group-fsync interval: appends are buffered and
	// synced together at most this far apart. Smaller = smaller crash
	// loss window, more fsyncs. Default 100 ms.
	SyncEvery time.Duration
	// SyncRecords additionally syncs after this many appends since the
	// last sync, giving a deterministic record-count bound on the loss
	// window (the crash harness relies on it). 0 disables the count
	// trigger.
	SyncRecords int
	// SegmentMaxRecords rotates the active segment after this many
	// lines. Default 4096.
	SegmentMaxRecords int
}

func (c *JournalConfig) defaults() {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 100 * time.Millisecond
	}
	if c.SegmentMaxRecords <= 0 {
		c.SegmentMaxRecords = 4096
	}
}

// segment is one on-disk journal file.
type segment struct {
	firstSeq uint64
	records  int
	path     string
}

// Journal is the append-only report log plus the emission ledger. All
// methods are safe for concurrent use; the background syncer group-
// fsyncs the report stream every SyncEvery.
type Journal struct {
	cfg JournalConfig

	mu        sync.Mutex
	segments  []segment // closed segments, oldest first
	active    segment
	f         *os.File
	w         *bufio.Writer
	nextSeq   uint64
	syncedSeq uint64 // every seq < syncedSeq is durable
	unsynced  int    // appends since last sync
	results   *os.File
	closed    bool

	syncStop chan struct{}
	syncDone chan struct{}
}

// WindowKey identifies one sessionized window durably: the EPC plus
// the journal sequence number of the window's first report. Unlike the
// sessionizer's per-EPC display counter, it survives restarts —
// replaying the same retained journal lines reconstructs the same
// keys — which is what makes recovery idempotent.
type WindowKey struct {
	EPC      string
	FirstSeq uint64
}

// OpenJournal opens (or creates) the journal in cfg.Dir, scans the
// existing segments to restore the sequence counter, truncates a torn
// trailing line from the emission ledger, and starts the group-sync
// loop. A new active segment is always started: a segment that was
// being written when the process died may end in a torn line, and
// recycling its tail seq for fresh reports keeps positions unambiguous.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: journal needs a directory")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, quarantineDirName), 0o755); err != nil {
		return nil, fmt.Errorf("ingest: journal dir: %w", err)
	}
	j := &Journal{
		cfg:      cfg,
		syncStop: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	segs, err := scanSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	j.segments = segs
	j.nextSeq = 0
	if n := len(segs); n > 0 {
		last := segs[n-1]
		j.nextSeq = last.firstSeq + uint64(last.records)
		if last.records == 0 {
			// The previous run died (or sat idle) with its active segment
			// holding no complete line, so nextSeq equals its firstSeq and
			// openActive below will reuse the very same path. Keeping the
			// stale entry would alias the new active segment inside
			// j.segments, and Retain — which trusts firstSeq+records —
			// would happily unlink the file fresh reports are going into.
			j.segments = segs[:n-1]
		}
	}
	j.syncedSeq = j.nextSeq // everything on disk at open is durable
	if err := j.openActive(); err != nil {
		return nil, err
	}
	results, err := openResultsLedger(filepath.Join(cfg.Dir, resultsName))
	if err != nil {
		j.f.Close()
		return nil, err
	}
	j.results = results
	go j.syncLoop()
	return j, nil
}

// scanSegments lists and counts the existing segment files, oldest
// first. Only complete lines count: a torn tail (killed mid-write)
// does not consume a sequence position.
func scanSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: journal dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, journalPrefix) || !strings.HasSuffix(name, journalExt) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, journalPrefix), journalExt)
		firstSeq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue // not ours
		}
		path := filepath.Join(dir, name)
		records, err := countCompleteLines(path)
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{firstSeq: firstSeq, records: records, path: path})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].firstSeq < segs[b].firstSeq })
	return segs, nil
}

// countCompleteLines counts newline-terminated lines in path.
func countCompleteLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	buf := make([]byte, 64*1024)
	for {
		k, err := f.Read(buf)
		n += bytes.Count(buf[:k], []byte{'\n'})
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// openResultsLedger opens the emission ledger for appending, first
// truncating a torn trailing line: a result whose line was cut by the
// crash was never durably emitted, so recovery must re-solve it.
func openResultsLedger(path string) (*os.File, error) {
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: results ledger: %w", err)
	}
	return f, nil
}

// truncateTornTail cuts path back to its last newline (no-op when the
// file is missing, empty, or newline-terminated).
func truncateTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	// Walk back from the end to the last newline.
	const chunk = 64 * 1024
	buf := make([]byte, chunk)
	end := size
	for end > 0 {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		k, err := f.ReadAt(buf[:end-start], start)
		if err != nil && err != io.EOF {
			return err
		}
		if i := bytes.LastIndexByte(buf[:k], '\n'); i >= 0 {
			keep := start + int64(i) + 1
			if keep == size {
				return nil
			}
			return f.Truncate(keep)
		}
		end = start
	}
	return f.Truncate(0)
}

func (j *Journal) openActive() error {
	j.active = segment{
		firstSeq: j.nextSeq,
		path:     filepath.Join(j.cfg.Dir, fmt.Sprintf("%s%016d%s", journalPrefix, j.nextSeq, journalExt)),
	}
	// The name can collide with a crashed run's segment that holds only
	// a torn partial line (zero complete lines → same firstSeq). Cut
	// that tail first, or O_APPEND would glue the first fresh record
	// onto the torn bytes and corrupt it.
	if err := truncateTornTail(j.active.path); err != nil {
		return fmt.Errorf("ingest: journal segment: %w", err)
	}
	f, err := os.OpenFile(j.active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: journal segment: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64*1024)
	return nil
}

// Append journals one report and returns its sequence number. The
// write is buffered: durability lags by at most SyncEvery (or
// SyncRecords appends). rotated reports whether a new segment was
// started, the caller's cue to run retention.
func (j *Journal) Append(rd sim.Reading) (seq uint64, rotated bool, err error) {
	line, err := json.Marshal(rd)
	if err != nil {
		return 0, false, fmt.Errorf("ingest: journal encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, false, fmt.Errorf("ingest: journal closed")
	}
	if _, err := j.w.Write(line); err != nil {
		return 0, false, fmt.Errorf("ingest: journal append: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return 0, false, fmt.Errorf("ingest: journal append: %w", err)
	}
	seq = j.nextSeq
	j.nextSeq++
	j.active.records++
	j.unsynced++
	if j.cfg.SyncRecords > 0 && j.unsynced >= j.cfg.SyncRecords {
		if err := j.syncLocked(); err != nil {
			return seq, false, err
		}
	}
	if j.active.records >= j.cfg.SegmentMaxRecords {
		if err := j.rotateLocked(); err != nil {
			return seq, false, err
		}
		rotated = true
	}
	return seq, rotated, nil
}

// SyncTo makes every report with sequence number ≤ seq durable,
// fsyncing only when the high-water mark has not yet passed it. This is
// the WAL rule behind the emission ledger: a window's result line may
// only be written after the reports it was computed from are on disk.
// Otherwise a crash could preserve the ledger line (its write is
// direct) while losing tail reports of that very window — recovery
// would then rebuild a shorter session under the same (EPC, FirstSeq)
// identity, close it later with fresh reports, and emit a duplicate
// key the ledger was supposed to rule out.
func (j *Journal) SyncTo(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("ingest: journal closed")
	}
	if j.syncedSeq > seq {
		return nil
	}
	return j.syncLocked()
}

// Sync flushes and fsyncs the active segment now.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("ingest: journal flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ingest: journal fsync: %w", err)
	}
	j.syncedSeq = j.nextSeq
	j.unsynced = 0
	return nil
}

func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("ingest: journal rotate: %w", err)
	}
	j.segments = append(j.segments, j.active)
	return j.openActive()
}

// NextSeq returns the sequence number the next report will get.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// SyncedSeq returns the durable high-water mark: every report with
// seq < SyncedSeq survives a crash.
func (j *Journal) SyncedSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncedSeq
}

// Segments returns the number of on-disk segment files (closed +
// active).
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segments) + 1
}

// Retain deletes closed segments every report of which has seq <
// minNeeded — i.e. segments that no open session, in-flight window or
// future replay still needs. The active segment is never deleted.
func (j *Journal) Retain(minNeeded uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	keep := j.segments[:0]
	var firstErr error
	for _, s := range j.segments {
		if s.firstSeq+uint64(s.records) <= minNeeded && s.path != j.active.path {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("ingest: journal retention: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	j.segments = keep
	return firstErr
}

// syncLoop is the group-fsync ticker.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = j.Sync()
		case <-j.syncStop:
			return
		}
	}
}

// Close stops the syncer, flushes and fsyncs the tail, and closes the
// files. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.syncDone
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if cerr := j.results.Close(); err == nil && cerr != nil {
		err = cerr
	}
	j.mu.Unlock()
	close(j.syncStop)
	<-j.syncDone
	return err
}

// AppendResult records one emitted window in the emission ledger with
// a single write(2): after a SIGKILL the line is either fully present
// (the window was served; recovery suppresses it) or absent/torn (it
// was not; recovery re-solves it). There is no in-between, which is
// what rules out both duplicates and silent gaps across a crash.
func (j *Journal) AppendResult(tr TagResult) error {
	line, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("ingest: results ledger encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("ingest: journal closed")
	}
	if _, err := j.results.Write(line); err != nil {
		return fmt.Errorf("ingest: results ledger append: %w", err)
	}
	return nil
}

// EmittedSet reads the emission ledger and returns every durably
// emitted window keyed by identity, with the journal sequence number
// of the window's last report as the value. Presence answers "was this
// identity served"; the LastSeq value lets replay detect a session
// that outgrew the served window (the live run closed it by deadline,
// drain or breaker shed — none of which replay can reproduce
// positionally). Call before serving (the ledger was torn-tail-
// truncated at open).
func (j *Journal) EmittedSet() (map[WindowKey]uint64, error) {
	f, err := os.Open(filepath.Join(j.cfg.Dir, resultsName))
	if os.IsNotExist(err) {
		return map[WindowKey]uint64{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: results ledger: %w", err)
	}
	defer f.Close()
	out := make(map[WindowKey]uint64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var tr TagResult
		if err := json.Unmarshal(raw, &tr); err != nil {
			continue // a pre-truncation torn line; never a fresh write
		}
		out[WindowKey{EPC: tr.EPC, FirstSeq: tr.FirstSeq}] = tr.LastSeq
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: results ledger: %w", err)
	}
	return out, nil
}

// ReplayStats summarizes one journal replay.
type ReplayStats struct {
	// Reports is the number of valid journaled reports replayed.
	Reports int
	// Corrupt counts undecodable complete lines (skipped; each still
	// consumes its sequence position).
	Corrupt int
	// Torn counts cut-off trailing lines (at most one per segment that
	// was active at a kill; not durable, no sequence position).
	Torn int
	// Segments is the number of segment files read.
	Segments int
}

// Replay streams every retained journaled report, oldest first, to fn
// with its sequence number. Call after OpenJournal and before any
// Append: the scan covers the on-disk segments, and the freshly opened
// active segment is still empty. Corrupt lines are skipped and
// counted; a torn trailing line is tolerated (it was never durable).
func (j *Journal) Replay(fn func(seq uint64, rd sim.Reading) error) (ReplayStats, error) {
	j.mu.Lock()
	segs := append([]segment(nil), j.segments...)
	j.mu.Unlock()
	var st ReplayStats
	for _, s := range segs {
		if err := replaySegment(s, &st, fn); err != nil {
			return st, err
		}
		st.Segments++
	}
	return st, nil
}

func replaySegment(s segment, st *ReplayStats, fn func(uint64, sim.Reading) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("ingest: journal replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	seq := s.firstSeq
	lines := 0
	for sc.Scan() {
		if lines >= s.records {
			// Past the counted complete lines: a torn tail.
			st.Torn++
			break
		}
		lines++
		raw := bytes.TrimSpace(sc.Bytes())
		rd, err := decodeReading(raw)
		if err != nil {
			st.Corrupt++
			seq++
			continue
		}
		if err := fn(seq, rd); err != nil {
			return err
		}
		st.Reports++
		seq++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ingest: journal replay %s: %w", s.path, err)
	}
	return nil
}

// QuarantinePath names the quarantine artifacts for a poisoned window.
func (j *Journal) QuarantinePath(key WindowKey) string {
	return filepath.Join(j.cfg.Dir, quarantineDirName,
		fmt.Sprintf("%s-s%016d", sanitizeEPC(key.EPC), key.FirstSeq))
}

// Quarantine writes a poisoned window to the quarantine directory: the
// readings as ingest-format NDJSON (re-feedable for offline repro) and
// the panic report alongside as <name>.panic.txt.
func (j *Journal) Quarantine(key WindowKey, readings []sim.Reading, report string) error {
	base := j.QuarantinePath(key)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rd := range readings {
		if err := enc.Encode(rd); err != nil {
			return fmt.Errorf("ingest: quarantine encode: %w", err)
		}
	}
	if err := os.WriteFile(base+journalExt, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("ingest: quarantine: %w", err)
	}
	if err := os.WriteFile(base+".panic.txt", []byte(report), 0o644); err != nil {
		return fmt.Errorf("ingest: quarantine: %w", err)
	}
	return nil
}

// sanitizeEPC makes an EPC safe as a file-name fragment.
func sanitizeEPC(epc string) string {
	const max = 64
	var b strings.Builder
	for _, r := range epc {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
		if b.Len() >= max {
			break
		}
	}
	if b.Len() == 0 {
		return "tag"
	}
	return b.String()
}

// decodeReading parses one NDJSON report line — the single parser
// shared by POST /ingest and the journal replayer, so the ingest
// fuzzer hardens both. It rejects non-finite phase/RSSI/frequency
// values at the boundary; everything else is the sessionizer's
// validation job.
func decodeReading(raw []byte) (sim.Reading, error) {
	var rd sim.Reading
	if err := json.Unmarshal(raw, &rd); err != nil {
		return sim.Reading{}, err
	}
	if !finite(rd.Phase) || !finite(rd.RSSI) || !finite(rd.FreqHz) {
		return sim.Reading{}, fmt.Errorf("ingest: non-finite field in report")
	}
	return rd, nil
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
