package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func ndjsonBody(reads ...string) io.Reader { return strings.NewReader(strings.Join(reads, "\n")) }

func readLine(epc string, ant, ch int) string {
	rd := mkRead(epc, ant, ch)
	b, _ := json.Marshal(rd)
	return string(b)
}

// wireReply decodes either side of an ingest outcome: the success body
// ({"accepted":N}) and the error envelope
// ({"error","code","retry_after_ms",...}).
type wireReply struct {
	Accepted     int    `json:"accepted"`
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
	Line         int    `json:"line"`
}

func postIngest(t *testing.T, srv *httptest.Server, body io.Reader) (*http.Response, wireReply) {
	t.Helper()
	return postIngestPath(t, srv, "/ingest", body)
}

func postIngestPath(t *testing.T, srv *httptest.Server, path string, body io.Reader) (*http.Response, wireReply) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply wireReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("decode %s reply: %v", path, err)
	}
	return resp, reply
}

// TestServerIngestAndQuery: the happy path — NDJSON reports in,
// per-tag results out of /tags/{epc}, counters on /metrics.
func TestServerIngestAndQuery(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(4)
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
		RetryAfter:  10 * time.Millisecond,
	}, ring)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()

	resp, reply := postIngest(t, srv, ndjsonBody(
		readLine("A", 0, 0),
		"",                  // blank lines are tolerated
		readLine("A", 1, 1), // closes A/0
		readLine("B", 0, 5),
	))
	if resp.StatusCode != http.StatusAccepted || reply.Accepted != 3 {
		t.Fatalf("ingest: status %d, reply %+v", resp.StatusCode, reply)
	}

	waitFor(t, 2*time.Second, "result to reach the ring", func() bool {
		_, ok := ring.Latest("A")
		return ok
	})
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp2, body := get("/tags/A")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), `"epc":"A"`) {
		t.Fatalf("/tags/A: %d %s", resp2.StatusCode, body)
	}
	resp3, body := get("/tags/A?latest=1")
	var latest TagResult
	if err := json.Unmarshal(body, &latest); err != nil || resp3.StatusCode != http.StatusOK {
		t.Fatalf("/tags/A?latest=1: %d %s (%v)", resp3.StatusCode, body, err)
	}
	if latest.Seq != 0 || latest.Reason != "coverage" {
		t.Fatalf("latest: %+v", latest)
	}
	resp4, _ := get("/tags/unknown")
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("/tags/unknown: %d, want 404", resp4.StatusCode)
	}
	resp5, body := get("/tags")
	if resp5.StatusCode != http.StatusOK || !strings.Contains(string(body), `"A"`) {
		t.Fatalf("/tags: %d %s", resp5.StatusCode, body)
	}
	resp6, body := get("/healthz")
	if resp6.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", resp6.StatusCode, body)
	}
	resp7, body := get("/metrics")
	if resp7.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp7.StatusCode)
	}
	for _, want := range []string{
		`rfprismd_reports_total{outcome="accepted"} 3`,
		`rfprismd_windows_closed_total{reason="coverage"} 1`,
		`rfprismd_results_total{outcome="ok"} 1`,
		"rfprismd_window_latency_seconds_count 1",
		"rfprismd_open_sessions 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestServerBackpressure429: a full queue turns /ingest into 429 with
// a Retry-After header and an accurate accepted count, so clients can
// resume from the first refused line.
func TestServerBackpressure429(t *testing.T) {
	proc := newGatedProc() // stuck solver
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
		QueueSize:   1,
		RetryAfter:  3 * time.Second,
	})
	s := NewServer(d, nil)
	s.jitter = func() float64 { return 0.5 } // pin: Retry-After = 1.0× base
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, reply := postIngest(t, srv, ndjsonBody(
		readLine("A", 0, 0),
		readLine("A", 1, 1), // closes A/0 → queue full
		readLine("B", 0, 2), // refused
		readLine("B", 0, 3), // never reached
	))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if reply.Accepted != 2 || reply.Line != 3 {
		t.Fatalf("reply %+v, want accepted=2 line=3", reply)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	if reply.Code != CodeBackpressure || reply.RetryAfterMS != 3000 {
		t.Fatalf("envelope %+v, want code=%s retry_after_ms=3000", reply, CodeBackpressure)
	}

	// Release and drain: ingestion answers 503 during drain.
	close(proc.gate)
	go d.Shutdown(context.Background())
	waitFor(t, 2*time.Second, "drain to start", func() bool { return d.Gauges().Draining })
	resp2, _ := postIngest(t, srv, ndjsonBody(readLine("C", 0, 0)))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest status %d, want 503", resp2.StatusCode)
	}
	// Liveness stays 200 while draining (restarting a draining daemon
	// would lose the flush); readiness flips to 503.
	resp3, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200", resp3.StatusCode)
	}
	resp4, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", resp4.StatusCode)
	}
}

// TestServerIngestMalformed: a bad line aborts with 400 and points at
// the offending line without losing the prefix.
func TestServerIngestMalformed(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	d := NewDaemon(proc, Config{Sessionizer: SessionizerConfig{MinAntennas: 1}})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, nil).Handler())
	defer srv.Close()

	resp, reply := postIngest(t, srv, ndjsonBody(readLine("A", 0, 0), "{not json"))
	if resp.StatusCode != http.StatusBadRequest || reply.Accepted != 1 || reply.Line != 2 {
		t.Fatalf("malformed line: status %d reply %+v", resp.StatusCode, reply)
	}
	resp2, reply2 := postIngest(t, srv, ndjsonBody(fmt.Sprintf(`{"epc":"A","antenna":0,"channel":%d}`, 999)))
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(reply2.Error, "channel") {
		t.Fatalf("bad channel: status %d reply %+v", resp2.StatusCode, reply2)
	}
	if reply2.Code != CodeBadReport {
		t.Fatalf("bad channel envelope code %q, want %q", reply2.Code, CodeBadReport)
	}
}

// TestServerV1Parity: every /v1 endpoint must answer byte-identically
// to its legacy alias — same status, same payload — for both successes
// and errors.
func TestServerV1Parity(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(4)
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
	}, ring)
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	defer srv.Close()

	// Ingest on /v1, then compare every GET pair.
	resp, reply := postIngestPath(t, srv, "/v1/ingest", ndjsonBody(
		readLine("A", 0, 0), readLine("A", 1, 1)))
	if resp.StatusCode != http.StatusAccepted || reply.Accepted != 2 {
		t.Fatalf("/v1/ingest: status %d reply %+v", resp.StatusCode, reply)
	}
	waitFor(t, 2*time.Second, "result to reach the ring", func() bool {
		_, ok := ring.Latest("A")
		return ok
	})
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	for _, pair := range [][2]string{
		{"/tags", "/v1/tags"},
		{"/tags/A", "/v1/tags/A"},
		{"/tags/A?latest=1", "/v1/tags/A?latest=1"},
		{"/tags/unknown", "/v1/tags/unknown"}, // error path: identical envelope
	} {
		legacyCode, legacyBody := get(pair[0])
		v1Code, v1Body := get(pair[1])
		if legacyCode != v1Code || legacyBody != v1Body {
			t.Errorf("%s and %s disagree:\n legacy %d %s\n v1     %d %s",
				pair[0], pair[1], legacyCode, legacyBody, v1Code, v1Body)
		}
	}
}

// TestServerErrorEnvelope: every error response — unknown path, unknown
// tag, missing ring, draining — must parse as the uniform envelope with
// a non-empty code.
func TestServerErrorEnvelope(t *testing.T) {
	proc := newGatedProc()
	close(proc.gate)
	d := NewDaemon(proc, Config{Sessionizer: SessionizerConfig{MinAntennas: 1}})
	defer d.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(d, nil).Handler()) // no ring
	defer srv.Close()

	for _, c := range []struct {
		path     string
		wantCode string
		status   int
	}{
		{"/no/such/endpoint", CodeNotFound, http.StatusNotFound},
		{"/tags", CodeNoRing, http.StatusNotFound},
		{"/v1/tags/ghost", CodeNoRing, http.StatusNotFound},
	} {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error        string `json:"error"`
			Code         string `json:"code"`
			RetryAfterMS *int64 `json:"retry_after_ms"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: body not a JSON envelope: %v (%s)", c.path, err, body)
			continue
		}
		if resp.StatusCode != c.status || env.Code != c.wantCode || env.Error == "" {
			t.Errorf("%s: status %d code %q error %q, want %d/%q", c.path, resp.StatusCode, env.Code, env.Error, c.status, c.wantCode)
		}
		if env.RetryAfterMS == nil {
			t.Errorf("%s: envelope missing retry_after_ms: %s", c.path, body)
		}
	}
}
