package ingest

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"rfprism/internal/sim"
)

func testJournal(t *testing.T, cfg JournalConfig) *Journal {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = time.Hour // tests drive syncs explicitly
	}
	j, err := OpenJournal(cfg)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func testReading(epc string, ch int) sim.Reading {
	return sim.Reading{EPC: epc, Antenna: 1, Channel: ch, FreqHz: 920e6, Phase: 1.25, RSSI: -52}
}

// TestJournalAppendReplayRoundTrip: appended reports come back from
// Replay in order with positional sequence numbers, across segment
// rotations.
func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir, SegmentMaxRecords: 4})
	const n = 11
	for i := 0; i < n; i++ {
		seq, _, err := j.Append(testReading("epc-1", i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d got seq %d", i, seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the sequence counter continues where the disk left off,
	// and replay yields every report with its original seq.
	j2 := testJournal(t, JournalConfig{Dir: dir})
	if got := j2.NextSeq(); got != n {
		t.Fatalf("reopened NextSeq = %d, want %d", got, n)
	}
	var seqs []uint64
	st, err := j2.Replay(func(seq uint64, rd sim.Reading) error {
		if rd.EPC != "epc-1" || rd.Channel != int(seq) {
			t.Errorf("seq %d: got %+v", seq, rd)
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Reports != n || st.Corrupt != 0 || st.Torn != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("replay order broken: %v", seqs)
		}
	}
}

// TestJournalSyncRecordsBoundary: the record-count trigger bounds the
// unsynced tail deterministically.
func TestJournalSyncRecordsBoundary(t *testing.T) {
	j := testJournal(t, JournalConfig{Dir: t.TempDir(), SyncRecords: 3})
	for i := 0; i < 7; i++ {
		if _, _, err := j.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	// 7 appends with a 3-record trigger: synced at 3 and 6.
	if got := j.SyncedSeq(); got != 6 {
		t.Fatalf("SyncedSeq = %d, want 6", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.SyncedSeq(); got != 7 {
		t.Fatalf("after Sync, SyncedSeq = %d, want 7", got)
	}
}

// TestJournalSyncTo: the WAL rule primitive — syncing "up to" a seq
// fsyncs when the durable mark has not passed it and no-ops when it
// has.
func TestJournalSyncTo(t *testing.T) {
	j := testJournal(t, JournalConfig{Dir: t.TempDir(), SyncEvery: time.Hour})
	for i := 0; i < 5; i++ {
		if _, _, err := j.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.SyncedSeq(); got != 0 {
		t.Fatalf("pre: SyncedSeq = %d, want 0", got)
	}
	if err := j.SyncTo(2); err != nil {
		t.Fatal(err)
	}
	// syncLocked flushes everything buffered, not just up to the mark.
	if got := j.SyncedSeq(); got != 5 {
		t.Fatalf("after SyncTo(2): SyncedSeq = %d, want 5", got)
	}
	if err := j.SyncTo(3); err != nil { // already durable: no-op
		t.Fatal(err)
	}
	if got := j.SyncedSeq(); got != 5 {
		t.Fatalf("after no-op SyncTo: SyncedSeq = %d, want 5", got)
	}
}

// TestJournalRetention: Retain deletes exactly the closed segments
// wholly below the needed mark, never the active one.
func TestJournalRetention(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir, SegmentMaxRecords: 2})
	for i := 0; i < 7; i++ { // segments [0,1] [2,3] [4,5], active [6]
		if _, _, err := j.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Retain(4); err != nil {
		t.Fatal(err)
	}
	// Segments [0,1] and [2,3] are wholly below 4 → gone; [4,5] stays.
	if got := j.Segments(); got != 2 {
		t.Fatalf("after Retain(4): %d segments, want 2", got)
	}
	st, err := j.Replay(func(seq uint64, rd sim.Reading) error {
		if seq < 4 {
			t.Errorf("replayed deleted seq %d", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != 2 {
		t.Fatalf("replayed %d reports after retention, want 2", st.Reports)
	}
}

// TestJournalTornTailTolerated: a segment cut mid-line (the kill -9
// shape) replays its complete lines and recycles the torn position for
// the next report after reopen.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, _, err := j.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: chop the last line in half.
	seg := filepath.Join(dir, "journal-0000000000000000.ndjson")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := testJournal(t, JournalConfig{Dir: dir})
	if got := j2.NextSeq(); got != 2 {
		t.Fatalf("NextSeq after torn tail = %d, want 2 (torn position recycled)", got)
	}
	st, err := j2.Replay(func(uint64, sim.Reading) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != 2 || st.Torn != 1 {
		t.Fatalf("stats = %+v, want 2 reports / 1 torn", st)
	}
}

// TestJournalCorruptLineSkipped: a complete-but-undecodable line is
// skipped, counted, and still consumes its sequence position so later
// reports keep their identities.
func TestJournalCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir})
	if _, _, err := j.Append(testReading("e", 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "journal-0000000000000000.ndjson")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"epc\": garbage\n{\"epc\":\"e\",\"antenna\":1,\"channel\":5,\"freqHz\":920e6,\"phase\":1,\"rssi\":-50,\"t\":0}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := testJournal(t, JournalConfig{Dir: dir})
	var got []uint64
	st, err := j2.Replay(func(seq uint64, rd sim.Reading) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != 2 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 2 reports / 1 corrupt", st)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("seqs = %v, want [0 2] (corrupt line keeps position 1)", got)
	}
}

// TestResultsLedgerTornTailTruncated: a torn trailing result line is
// removed at open (the window was never durably emitted), complete
// lines survive, and EmittedSet keys on (EPC, FirstSeq).
func TestResultsLedgerTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir})
	if err := j.AppendResult(TagResult{EPC: "e1", FirstSeq: 0, LastSeq: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendResult(TagResult{EPC: "e1", FirstSeq: 40, LastSeq: 44}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	ledger := filepath.Join(dir, resultsName)
	raw, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ledger, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := testJournal(t, JournalConfig{Dir: dir})
	emitted, err := j2.EmittedSet()
	if err != nil {
		t.Fatal(err)
	}
	last, ok := emitted[WindowKey{EPC: "e1", FirstSeq: 0}]
	if len(emitted) != 1 || !ok || last != 7 {
		t.Fatalf("emitted = %v, want only (e1, 0) with last seq 7", emitted)
	}
	// The ledger must have been physically truncated so fresh appends
	// don't splice onto the torn fragment.
	raw2, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if raw2[len(raw2)-1] != '\n' {
		t.Fatal("ledger not newline-terminated after truncation")
	}
}

// TestJournalEmptyActiveSegmentNotRetained: a run that dies (or just
// closes) before its active segment gets a single complete line leaves
// a zero-record file whose name the next run's active segment reuses.
// The reopened journal must not keep a stale duplicate entry for that
// path, or Retain would unlink the live active segment out from under
// fresh appends.
func TestJournalEmptyActiveSegmentNotRetained(t *testing.T) {
	dir := t.TempDir()
	j1 := testJournal(t, JournalConfig{Dir: dir})
	if err := j1.Close(); err != nil { // leaves journal-0 with 0 records
		t.Fatal(err)
	}

	j2 := testJournal(t, JournalConfig{Dir: dir})
	if got := j2.NextSeq(); got != 0 {
		t.Fatalf("NextSeq after empty reopen = %d, want 0", got)
	}
	if got := j2.Segments(); got != 1 {
		t.Fatalf("segments after empty reopen = %d, want 1 (no stale alias)", got)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if _, _, err := j2.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	// With the stale zero-record entry still aliased, firstSeq+0 <=
	// minNeeded holds trivially and this deletes the live active file.
	if err := j2.Retain(j2.NextSeq()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3 := testJournal(t, JournalConfig{Dir: dir})
	if got := j3.NextSeq(); got != n {
		t.Fatalf("NextSeq after retention = %d, want %d (active segment deleted?)", got, n)
	}
	st, err := j3.Replay(func(uint64, sim.Reading) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != n {
		t.Fatalf("replayed %d reports, want %d", st.Reports, n)
	}
}

// TestJournalEmptyActiveAfterRotation: the same shape right after a
// rotation — the closed, record-bearing segment must survive retention
// that the stale empty-active entry would otherwise licence.
func TestJournalEmptyActiveAfterRotation(t *testing.T) {
	dir := t.TempDir()
	j1 := testJournal(t, JournalConfig{Dir: dir, SegmentMaxRecords: 2})
	for i := 0; i < 2; i++ { // fills segment [0,1], rotates to empty journal-2
		if _, _, err := j1.Append(testReading("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := testJournal(t, JournalConfig{Dir: dir, SegmentMaxRecords: 2})
	if got := j2.NextSeq(); got != 2 {
		t.Fatalf("NextSeq = %d, want 2", got)
	}
	if _, _, err := j2.Append(testReading("e", 2)); err != nil {
		t.Fatal(err)
	}
	// Nothing below seq 2 is needed: segment [0,1] goes, but the active
	// segment holding seq 2 must not be touched by its stale alias.
	if err := j2.Retain(2); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3 := testJournal(t, JournalConfig{Dir: dir})
	var seqs []uint64
	st, err := j3.Replay(func(seq uint64, _ sim.Reading) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != 1 || len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("replay after rotation+retention = %+v seqs %v, want just seq 2", st, seqs)
	}
}

// TestJournalQuarantine: a poisoned window lands as re-feedable NDJSON
// plus the panic report.
func TestJournalQuarantine(t *testing.T) {
	dir := t.TempDir()
	j := testJournal(t, JournalConfig{Dir: dir})
	key := WindowKey{EPC: "bad/epc", FirstSeq: 7}
	readings := []sim.Reading{testReading("bad/epc", 3)}
	if err := j.Quarantine(key, readings, "panic: boom\nstack..."); err != nil {
		t.Fatal(err)
	}
	base := j.QuarantinePath(key)
	raw, err := os.ReadFile(base + ".ndjson")
	if err != nil {
		t.Fatalf("quarantined readings: %v", err)
	}
	if rd, err := decodeReading(raw[:len(raw)-1]); err != nil || rd.Channel != 3 {
		t.Fatalf("quarantined line not re-feedable: %v %+v", err, rd)
	}
	if rep, err := os.ReadFile(base + ".panic.txt"); err != nil || len(rep) == 0 {
		t.Fatalf("panic report: %v", err)
	}
}
