package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"rfprism"
	"rfprism/internal/sim"
)

// ErrBusy is returned by Offer when the window queue is full: the
// caller should back off (HTTP maps it to 429 + Retry-After). Reports
// are refused outright under backpressure — accepting them would only
// move the bulge from the bounded queue into the sessionizer buffers.
var ErrBusy = errors.New("ingest: window queue full")

// ErrDraining is returned by Offer once shutdown has begun (HTTP maps
// it to 503).
var ErrDraining = errors.New("ingest: daemon is draining")

// Processor is the solving backend: rfprism.System satisfies it, and
// tests substitute stubs to exercise queue mechanics without solves.
type Processor interface {
	ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult
}

// Config tunes the daemon. The zero value gets serving defaults.
type Config struct {
	// Sessionizer tunes window assembly.
	Sessionizer SessionizerConfig
	// QueueSize bounds the closed-window queue between the sessionizer
	// and the solver pool. Default 64.
	QueueSize int
	// ExpireEvery is the deadline-sweep period. Default 250 ms.
	ExpireEvery time.Duration
	// RetryAfter is the pause advertised to backpressured clients
	// (the Retry-After header, and the replay helper's retry pause).
	// Default 1 s.
	RetryAfter time.Duration
	// Journal, when set, makes the daemon crash-safe: every admitted
	// report is appended to the write-ahead journal before it enters
	// the sessionizer, results are recorded in the journal's emission
	// ledger, and Recover rebuilds state after a restart. The daemon
	// owns the journal from here on and closes it on Shutdown.
	Journal *Journal
	// Breaker tunes the repeated-panic circuit breaker.
	Breaker BreakerConfig
	// Logger receives the daemon's structured events: journal and
	// recovery milestones, breaker trips, solver panics, shutdown.
	// Default: discard.
	Logger *slog.Logger
	// Metrics, when set, is the instrument set the daemon records into
	// instead of building its own — callers share one registry between
	// the daemon and the pipeline's stage tracer (Metrics implements
	// rfprism.Tracer).
	Metrics *Metrics
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c *Config) defaults() {
	c.Sessionizer.defaults()
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.ExpireEvery <= 0 {
		c.ExpireEvery = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(c.Now())
	}
}

// windowMeta carries a closed window's assembly metadata from enqueue
// to result, keyed by the stream index ProcessStream assigns.
type windowMeta struct {
	cw       ClosedWindow
	enqueued time.Time
}

// Daemon is the running ingestion pipeline: reports in via Offer,
// windows through the sessionizer and the bounded queue into the
// Processor, results out to the sinks. NewDaemon starts it; Shutdown
// drains it.
type Daemon struct {
	cfg     Config
	met     *Metrics
	log     *slog.Logger
	sinks   []Sink
	journal *Journal
	breaker *breaker

	// recovery is the startup replay summary (zero until Recover ran).
	recovery RecoveryInfo

	// mu serializes report ingestion, the deadline sweep and queue
	// admission; the index counter makes enqueue order equal
	// ProcessStream's arrival order.
	mu       sync.Mutex
	sess     *Sessionizer
	draining bool
	nextIdx  int
	// replayPin, when pinned, is the lowest journal seq owned by
	// reports only a future restart's replay can serve — breaker-shed
	// reports and the sessions aborted on their behalf. Retention must
	// never delete segments at or above it; it is cleared only by the
	// process ending (the next run's Recover takes custody).
	replayPin    uint64
	replayPinned bool

	metaMu sync.Mutex
	meta   map[int]windowMeta

	windows chan rfprism.Window

	procCancel  context.CancelFunc
	expireStop  chan struct{}
	expireDone  chan struct{}
	resultsDone chan struct{}

	shutdownOnce sync.Once
	shutdownErr  error
}

// NewDaemon builds and starts a daemon over proc, delivering results
// to sinks in order. The daemon runs until Shutdown.
func NewDaemon(proc Processor, cfg Config, sinks ...Sink) *Daemon {
	cfg.defaults()
	d := &Daemon{
		cfg:         cfg,
		met:         cfg.Metrics,
		log:         cfg.Logger,
		sinks:       sinks,
		journal:     cfg.Journal,
		breaker:     newBreaker(cfg.Breaker),
		sess:        NewSessionizer(cfg.Sessionizer),
		meta:        make(map[int]windowMeta),
		windows:     make(chan rfprism.Window, cfg.QueueSize),
		expireStop:  make(chan struct{}),
		expireDone:  make(chan struct{}),
		resultsDone: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.procCancel = cancel
	results := proc.ProcessStream(ctx, d.windows)
	go d.resultLoop(results)
	go d.expireLoop()
	return d
}

// Metrics exposes the daemon's counters.
func (d *Daemon) Metrics() *Metrics { return d.met }

// Logger exposes the daemon's structured logger (never nil).
func (d *Daemon) Logger() *slog.Logger { return d.log }

// RetryAfter is the advertised backpressure pause.
func (d *Daemon) RetryAfter() time.Duration { return d.cfg.RetryAfter }

// Gauges samples the point-in-time queue, sessionizer, breaker and
// journal state.
func (d *Daemon) Gauges() Gauges {
	d.mu.Lock()
	g := Gauges{
		QueueDepth:       len(d.windows),
		QueueCap:         cap(d.windows),
		OpenSessions:     d.sess.Open(),
		BufferedReadings: d.sess.Buffered(),
		Draining:         d.draining,
		BreakerTripped:   d.breaker.isTripped(d.cfg.Now()),
	}
	d.mu.Unlock()
	if d.journal != nil {
		g.JournalEnabled = true
		g.JournalNextSeq = d.journal.NextSeq()
		g.JournalSyncedSeq = d.journal.SyncedSeq()
		g.JournalSegments = d.journal.Segments()
	}
	return g
}

// Recovery returns the startup replay summary (the zero value when the
// daemon started fresh or has no journal).
func (d *Daemon) Recovery() RecoveryInfo { return d.recovery }

// Offer ingests one raw report. It fails fast with ErrBusy when the
// window queue is full (back off and retry), ErrDraining once shutdown
// has begun, or a validation error for a malformed report. A nil
// return means the report is owned by the daemon and will reach the
// solver in some window.
func (d *Daemon) Offer(rd sim.Reading) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return ErrDraining
	}
	if err := ValidateReading(rd); err != nil {
		d.met.ReportsRejected.Add(1)
		return err
	}
	now := d.cfg.Now()
	if d.breaker.isTripped(now) {
		// Shed-and-journal-only degraded mode: the solver is known
		// poisoned, so nothing reaches it, but with a journal the
		// report is still made durable — a restarted (fixed) daemon
		// recovers and solves it. Without a journal the report is shed.
		if d.journal != nil {
			// If this EPC still has a live session, retire it un-emitted
			// first: replay regroups reports purely by journal order, so
			// a session left open here would swallow the shed report into
			// a window the ledger may later suppress. Aborting writes no
			// ledger line, so the session's reports and the shed report
			// are all recovered — together — by the next restart.
			if first, _, ok := d.sess.Abort(rd.EPC); ok {
				d.met.SessionsAborted.Add(1)
				d.pinReplayLocked(first)
				d.log.Warn("session aborted into replay custody", "epc", rd.EPC, "firstSeq", first)
			}
			seq, rotated, err := d.journal.Append(rd)
			if err != nil {
				d.met.JournalErrors.Add(1)
				d.log.Error("journal append failed", "epc", rd.EPC, "err", err)
				return err
			}
			d.pinReplayLocked(seq)
			if rotated {
				d.retainLocked()
			}
		}
		d.met.ReportsJournalOnly.Add(1)
		return nil
	}
	if len(d.windows) == cap(d.windows) {
		d.met.ReportsBackpressured.Add(1)
		return ErrBusy
	}
	var seq uint64
	rotated := false
	if d.journal != nil {
		var err error
		seq, rotated, err = d.journal.Append(rd)
		if err != nil {
			// A report that cannot be made durable is refused: callers
			// were promised journaled-then-processed, not maybe.
			d.met.JournalErrors.Add(1)
			d.log.Error("journal append failed", "epc", rd.EPC, "err", err)
			return err
		}
	}
	before := d.sess.Discarded()
	cw, closed, err := d.sess.AddSeq(rd, seq, now)
	if err != nil {
		d.met.ReportsRejected.Add(1)
		return err
	}
	d.met.ReportsAccepted.Add(1)
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	if closed {
		d.enqueueLocked(cw)
	}
	if rotated {
		d.retainLocked()
	}
	return nil
}

// pinReplayLocked marks journal reports from seq on as replay-only:
// they can no longer be served by this process (breaker-shed, or
// aborted on a shed report's behalf) and must survive retention until
// a restart's Recover takes them. Callers hold d.mu.
func (d *Daemon) pinReplayLocked(seq uint64) {
	if !d.replayPinned || seq < d.replayPin {
		d.replayPin, d.replayPinned = seq, true
	}
}

// retainLocked prunes journal segments no open session, in-flight
// window or future replay still needs. Callers hold d.mu.
func (d *Daemon) retainLocked() {
	minNeeded := d.journal.NextSeq()
	if s, ok := d.sess.MinOpenSeq(); ok && s < minNeeded {
		minNeeded = s
	}
	if d.replayPinned && d.replayPin < minNeeded {
		minNeeded = d.replayPin
	}
	d.metaMu.Lock()
	for _, m := range d.meta {
		if m.cw.FirstSeq < minNeeded {
			minNeeded = m.cw.FirstSeq
		}
	}
	d.metaMu.Unlock()
	if err := d.journal.Retain(minNeeded); err != nil {
		d.met.JournalErrors.Add(1)
	}
}

// enqueueLocked queues a closed window. Callers hold d.mu and have
// verified there is room, so the send cannot block.
func (d *Daemon) enqueueLocked(cw ClosedWindow) {
	idx := d.nextIdx
	d.nextIdx++
	d.metaMu.Lock()
	d.meta[idx] = windowMeta{cw: cw, enqueued: d.cfg.Now()}
	d.metaMu.Unlock()
	d.met.WindowClosed(cw.Reason)
	d.windows <- rfprism.Window{Tag: cw.EPC, Readings: cw.Readings}
}

// expireLoop sweeps dwell deadlines. Expired windows that do not fit
// the queue are shed (counted): under saturation the freshest data is
// worth more than a stale partial window.
func (d *Daemon) expireLoop() {
	defer close(d.expireDone)
	t := time.NewTicker(d.cfg.ExpireEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.sweepExpired()
		case <-d.expireStop:
			return
		}
	}
}

func (d *Daemon) sweepExpired() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	if d.breaker.isTripped(d.cfg.Now()) {
		// Tripped: nothing may reach the known-poisoned solver, and a
		// deadline close here would put a ledger line under an identity
		// that replay — which cannot see deadlines — would regroup with
		// any shed reports that follow. Sessions stay open: a cooldown
		// reset resumes them, a shed report for the same EPC aborts them
		// into replay custody, and shutdown drains whatever remains.
		return
	}
	before := d.sess.Discarded()
	expired := d.sess.Expire(d.cfg.Now())
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	for _, cw := range expired {
		if len(d.windows) == cap(d.windows) {
			d.met.WindowsShed.Add(1)
			continue
		}
		d.enqueueLocked(cw)
	}
}

// resultLoop fans completed windows out to the sinks and keeps the
// outcome counters.
func (d *Daemon) resultLoop(results <-chan rfprism.WindowResult) {
	defer close(d.resultsDone)
	for r := range results {
		d.metaMu.Lock()
		m, ok := d.meta[r.Index]
		d.metaMu.Unlock()
		if !ok {
			// Unreachable: every queued window has meta.
			continue
		}
		now := d.cfg.Now()
		latency := now.Sub(m.enqueued)
		d.met.ObserveLatency(latency)
		if r.Err != nil {
			d.met.ResultsErr.Add(1)
			d.log.Debug("window failed", "epc", r.Tag, "latency", latency, "err", r.Err)
		} else {
			d.met.ResultsOK.Add(1)
			d.log.Debug("window solved", "epc", r.Tag, "latency", latency, "attempts", r.Attempts())
		}
		if h := r.Health(); h != nil && h.Degraded {
			d.met.WindowsDegraded.Add(1)
			d.log.Info("window degraded", "epc", r.Tag, "health", h.String())
		}
		if errors.Is(r.Err, rfprism.ErrSolverPanic) {
			d.observePanic(m.cw, r.Err, now)
		}
		tr := makeTagResult(m.cw, r, now, latency)
		if tr.Confidence != nil {
			d.met.ObserveConfidence(tr.Confidence.RadialCI90, tr.Confidence.AmbiguityMargin)
		}
		if d.journal != nil {
			// The ledger line is the durable emission record: recovery
			// suppresses any window already written here, so it goes
			// down before the best-effort sinks see the result — and
			// only after the window's own reports are durable (SyncTo),
			// or a crash could keep the ledger line while losing the
			// reports behind it. If the journal cannot deliver that
			// ordering, skip the ledger line: recovery then re-solves
			// the window (at-least-once to sinks) instead of corrupting
			// the dedup record.
			if err := d.journal.SyncTo(m.cw.LastSeq); err != nil {
				d.met.JournalErrors.Add(1)
			} else if err := d.journal.AppendResult(tr); err != nil {
				d.met.JournalErrors.Add(1)
			}
		}
		// The meta entry is also the window's retention pin: it keeps
		// retainLocked from deleting the segments holding the window's
		// reports. Drop it only now, after the ledger line is down — in
		// the gap between delete and AppendResult a rotation-triggered
		// retention could otherwise unpin the reports, and a kill before
		// the ledger write would lose the window on both sides (nothing
		// to replay, nothing in the ledger).
		d.metaMu.Lock()
		delete(d.meta, r.Index)
		d.metaMu.Unlock()
		for _, s := range d.sinks {
			if err := s.Emit(tr); err != nil {
				d.met.SinkErrors.Add(1)
			}
		}
	}
}

// observePanic handles a window whose solve panicked: count it,
// quarantine the poisoned window for offline reproduction, and feed
// the circuit breaker.
func (d *Daemon) observePanic(cw ClosedWindow, err error, now time.Time) {
	d.met.SolverPanics.Add(1)
	d.log.Error("solver panic", "epc", cw.EPC, "firstSeq", cw.FirstSeq, "err", err)
	if d.journal != nil {
		report := err.Error()
		var pe *rfprism.SolverPanicError
		if errors.As(err, &pe) {
			report = fmt.Sprintf("%v\n\n%s", pe.Value, pe.Stack)
		}
		if qerr := d.journal.Quarantine(cw.Key(), cw.Readings, report); qerr != nil {
			d.met.JournalErrors.Add(1)
		} else {
			d.met.WindowsQuarantined.Add(1)
		}
	}
	if d.breaker.record(now) {
		d.met.BreakerTrips.Add(1)
		d.log.Warn("panic circuit breaker tripped: shed-and-journal-only mode", "epc", cw.EPC)
	}
}

// RecoveryInfo summarizes a startup journal replay.
type RecoveryInfo struct {
	// Ran reports whether Recover executed (it is false on a fresh
	// start or a journal-less daemon).
	Ran bool
	// Replay is the raw journal scan summary.
	Replay ReplayStats
	// Rejected counts journaled reports the sessionizer refused on
	// replay (possible only if validation rules tightened between
	// runs).
	Rejected int
	// Suppressed counts windows that re-closed during replay but were
	// already in the emission ledger — served before the crash, so
	// they are not solved again.
	Suppressed int
	// Requeued counts windows that closed during replay without a
	// ledger record — lost in flight at the crash — and were re-queued
	// for solving.
	Requeued int
	// OpenSessions is the number of per-EPC sessions rebuilt and left
	// open (their dwell deadline restarts at recovery time).
	OpenSessions int
	// ReplayedTo is the journal position recovery reached (the next
	// fresh report's sequence number).
	ReplayedTo uint64
}

// servedIndex answers "was this (EPC, seq) report already delivered?"
// from the emission ledger: per EPC, the sorted, disjoint
// [FirstSeq, LastSeq] spans of the served windows. Span membership is
// exact because a live session always holds the contiguous run of its
// EPC's journal positions — the daemon aborts a session rather than
// let it close across a breaker-shed gap.
type servedIndex struct {
	spans map[string][]servedSpan
	// counted tracks which served windows replay has already attributed
	// a suppression to, so a window is counted once, not per report.
	counted map[WindowKey]bool
}

type servedSpan struct{ first, last uint64 }

func newServedIndex(emitted map[WindowKey]uint64) *servedIndex {
	x := &servedIndex{
		spans:   make(map[string][]servedSpan, len(emitted)),
		counted: make(map[WindowKey]bool, len(emitted)),
	}
	for k, last := range emitted {
		if last < k.FirstSeq {
			// A ledger line from before LastSeq existed: the span is at
			// least the window's first report.
			last = k.FirstSeq
		}
		x.spans[k.EPC] = append(x.spans[k.EPC], servedSpan{first: k.FirstSeq, last: last})
	}
	for _, spans := range x.spans {
		sort.Slice(spans, func(a, b int) bool { return spans[a].first < spans[b].first })
	}
	return x
}

// lookup returns the identity of the served window containing (epc,
// seq), if any.
func (x *servedIndex) lookup(epc string, seq uint64) (WindowKey, bool) {
	spans := x.spans[epc]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].last >= seq })
	if i < len(spans) && spans[i].first <= seq {
		return WindowKey{EPC: epc, FirstSeq: spans[i].first}, true
	}
	return WindowKey{}, false
}

// Recover rebuilds the daemon's state from the write-ahead journal
// after a restart: it replays every retained journaled report through
// the sessionizer, re-queues windows that closed without a durable
// emission record, suppresses windows the emission ledger proves were
// already served (idempotent replay keyed on (EPC, FirstSeq)), and
// leaves still-incomplete sessions open for fresh reports to finish.
//
// Call it once, after NewDaemon and before exposing Offer or HTTP —
// recovery assumes it is the only producer. A daemon without a journal
// returns the zero RecoveryInfo.
func (d *Daemon) Recover() (RecoveryInfo, error) {
	if d.journal == nil {
		return RecoveryInfo{}, nil
	}
	emitted, err := d.journal.EmittedSet()
	if err != nil {
		return RecoveryInfo{}, err
	}
	info := RecoveryInfo{Ran: true}
	var requeue []ClosedWindow
	now := d.cfg.Now()
	d.mu.Lock()
	served := newServedIndex(emitted)
	st, rerr := d.journal.Replay(func(seq uint64, rd sim.Reading) error {
		// Coverage and overflow closes are positional, so replay
		// reproduces them exactly — but the live run can also close a
		// window by deadline, drain or a breaker trip, which no amount
		// of re-feeding reports will reproduce. The ledger's
		// [FirstSeq, LastSeq] span records which reports each served
		// window really contained: a report inside any served span was
		// already delivered under that identity and is excised here,
		// while everything outside the spans regroups contiguously —
		// exactly the stream the live sessionizer saw. Without the span
		// test a rebuilt session could outgrow the window the ledger
		// knows and be suppressed with unserved reports inside it.
		if key, ok := served.lookup(rd.EPC, seq); ok {
			if !served.counted[key] {
				served.counted[key] = true
				info.Suppressed++
				d.met.WindowsSuppressed.Add(1)
			}
			return nil
		}
		cw, closed, err := d.sess.AddSeq(rd, seq, now)
		if err != nil {
			info.Rejected++
			return nil
		}
		if !closed {
			return nil
		}
		if _, ok := emitted[cw.Key()]; ok {
			// Unreachable with a span-bearing ledger (a served window's
			// first report is skipped above, so no session can rebuild
			// under its key); kept as the last line of defense against a
			// ledger written before LastSeq existed.
			info.Suppressed++
			d.met.WindowsSuppressed.Add(1)
			return nil
		}
		requeue = append(requeue, cw)
		return nil
	})
	// Defense in depth: no session may stay open under an identity the
	// ledger already holds — closing it later would emit a duplicate
	// key. With span skipping above this finds nothing.
	if dropped := d.sess.DropEmittedSessions(emitted); dropped > 0 {
		info.Suppressed += dropped
		d.met.WindowsSuppressed.Add(int64(dropped))
	}
	info.OpenSessions = d.sess.Open()
	d.mu.Unlock()
	info.Replay = st
	if rerr != nil {
		return info, rerr
	}
	// Re-queue lost windows with blocking sends: the solver pool is
	// already consuming, and Offer is not yet reachable, so this is the
	// only producer and cannot deadlock with queue capacity.
	for _, cw := range requeue {
		d.mu.Lock()
		idx := d.nextIdx
		d.nextIdx++
		d.mu.Unlock()
		d.metaMu.Lock()
		d.meta[idx] = windowMeta{cw: cw, enqueued: d.cfg.Now()}
		d.metaMu.Unlock()
		d.met.WindowClosed(cw.Reason)
		d.met.WindowsRecovered.Add(1)
		d.windows <- rfprism.Window{Tag: cw.EPC, Readings: cw.Readings}
		info.Requeued++
	}
	info.ReplayedTo = d.journal.NextSeq()
	d.recovery = info
	d.log.Info("journal recovery complete",
		"replayedReports", info.Replay.Reports, "replayedTo", info.ReplayedTo,
		"suppressed", info.Suppressed, "requeued", info.Requeued,
		"openSessions", info.OpenSessions, "rejected", info.Rejected)
	return info, nil
}

// Shutdown drains the daemon gracefully: new reports are refused
// (ErrDraining), the deadline sweeper stops, every open window is
// flushed through the solver (partial windows meeting the antenna
// floor included), and the call returns once the last result has
// reached the sinks. If ctx expires first, in-flight work is cancelled
// hard and ctx's error is returned. Shutdown is idempotent.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutdownOnce.Do(func() { d.shutdownErr = d.shutdown(ctx) })
	return d.shutdownErr
}

func (d *Daemon) shutdown(ctx context.Context) error {
	d.log.Info("shutdown: draining")
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	close(d.expireStop)
	<-d.expireDone

	// With Offer refusing and the sweeper stopped, this goroutine is
	// the only producer left: flush the open sessions with blocking
	// sends (the solver is still consuming), then close the queue.
	d.mu.Lock()
	before := d.sess.Discarded()
	drained := d.sess.Drain(d.cfg.Now())
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	d.mu.Unlock()
	var err error
	for _, cw := range drained {
		idx := d.nextIdx
		d.nextIdx++
		d.metaMu.Lock()
		d.meta[idx] = windowMeta{cw: cw, enqueued: d.cfg.Now()}
		d.metaMu.Unlock()
		d.met.WindowClosed(cw.Reason)
		select {
		case d.windows <- rfprism.Window{Tag: cw.EPC, Readings: cw.Readings}:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	close(d.windows)
	if err == nil {
		select {
		case <-d.resultsDone:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	if err != nil {
		// Hard stop: cancel in-flight solves and wait for the result
		// loop to observe the closed stream.
		d.procCancel()
		<-d.resultsDone
	}
	d.procCancel()
	var closeErrs []error
	for _, s := range d.sinks {
		if cerr := s.Close(); cerr != nil {
			closeErrs = append(closeErrs, cerr)
		}
	}
	if d.journal != nil {
		if cerr := d.journal.Close(); cerr != nil {
			closeErrs = append(closeErrs, cerr)
		}
	}
	if err != nil {
		d.log.Error("shutdown: drain aborted", "err", err)
		return fmt.Errorf("ingest: drain aborted: %w", err)
	}
	d.log.Info("shutdown: drained",
		"reports", d.met.ReportsAccepted.Load(),
		"resultsOK", d.met.ResultsOK.Load(), "resultsErr", d.met.ResultsErr.Load())
	return errors.Join(closeErrs...)
}

// Kill stops the daemon without draining: open sessions are abandoned
// un-emitted, in-flight solves are cancelled, and the journal is
// closed. This is the closest an in-process daemon comes to dying —
// afterwards the retained journal plus the emission ledger are the
// only truth, exactly the state Recover (or a cluster's dead-shard
// handoff) consumes. Kill and Shutdown share the once; whichever runs
// first wins.
func (d *Daemon) Kill() {
	d.shutdownOnce.Do(func() {
		d.log.Warn("killed: abandoning open sessions")
		d.mu.Lock()
		d.draining = true
		d.mu.Unlock()
		close(d.expireStop)
		<-d.expireDone
		// Cancel solves first, then close the queue: with draining set
		// and the sweeper stopped nothing else produces, so the close
		// cannot race a send. Results already in flight may still land
		// a ledger line — a real crash can be that lucky too.
		d.procCancel()
		close(d.windows)
		<-d.resultsDone
		if d.journal != nil {
			if err := d.journal.Close(); err != nil {
				d.met.JournalErrors.Add(1)
			}
		}
		d.shutdownErr = errors.New("ingest: daemon was killed")
	})
}

// ReplayReports feeds a recorded or simulated report stream through
// Offer, honoring backpressure: ErrBusy pauses for the daemon's
// advertised Retry-After and retries the same report. pace scales the
// stream's own timing (1 = real time, 0 = as fast as backpressure
// allows). It returns the number of reports accepted; malformed
// reports abort the replay.
func (d *Daemon) ReplayReports(ctx context.Context, reports []sim.Reading, pace float64) (int, error) {
	accepted := 0
	var prev time.Duration
	for _, rd := range reports {
		if pace > 0 && rd.T > prev {
			gap := time.Duration(float64(rd.T-prev) * pace)
			if !sleepInterruptible(ctx, gap) {
				return accepted, ctx.Err()
			}
		}
		prev = rd.T
		for {
			err := d.Offer(rd)
			if err == nil {
				accepted++
				break
			}
			if !errors.Is(err, ErrBusy) {
				return accepted, err
			}
			if !sleepInterruptible(ctx, d.cfg.RetryAfter) {
				return accepted, ctx.Err()
			}
		}
	}
	return accepted, nil
}

// sleepInterruptible pauses for dur unless ctx is cancelled first,
// reporting whether the full pause elapsed.
func sleepInterruptible(ctx context.Context, dur time.Duration) bool {
	if dur <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
