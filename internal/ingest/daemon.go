package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rfprism"
	"rfprism/internal/sim"
)

// ErrBusy is returned by Offer when the window queue is full: the
// caller should back off (HTTP maps it to 429 + Retry-After). Reports
// are refused outright under backpressure — accepting them would only
// move the bulge from the bounded queue into the sessionizer buffers.
var ErrBusy = errors.New("ingest: window queue full")

// ErrDraining is returned by Offer once shutdown has begun (HTTP maps
// it to 503).
var ErrDraining = errors.New("ingest: daemon is draining")

// Processor is the solving backend: rfprism.System satisfies it, and
// tests substitute stubs to exercise queue mechanics without solves.
type Processor interface {
	ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult
}

// Config tunes the daemon. The zero value gets serving defaults.
type Config struct {
	// Sessionizer tunes window assembly.
	Sessionizer SessionizerConfig
	// QueueSize bounds the closed-window queue between the sessionizer
	// and the solver pool. Default 64.
	QueueSize int
	// ExpireEvery is the deadline-sweep period. Default 250 ms.
	ExpireEvery time.Duration
	// RetryAfter is the pause advertised to backpressured clients
	// (the Retry-After header, and the replay helper's retry pause).
	// Default 1 s.
	RetryAfter time.Duration
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c *Config) defaults() {
	c.Sessionizer.defaults()
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.ExpireEvery <= 0 {
		c.ExpireEvery = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// windowMeta carries a closed window's assembly metadata from enqueue
// to result, keyed by the stream index ProcessStream assigns.
type windowMeta struct {
	cw       ClosedWindow
	enqueued time.Time
}

// Daemon is the running ingestion pipeline: reports in via Offer,
// windows through the sessionizer and the bounded queue into the
// Processor, results out to the sinks. NewDaemon starts it; Shutdown
// drains it.
type Daemon struct {
	cfg   Config
	met   *Metrics
	sinks []Sink

	// mu serializes report ingestion, the deadline sweep and queue
	// admission; the index counter makes enqueue order equal
	// ProcessStream's arrival order.
	mu       sync.Mutex
	sess     *Sessionizer
	draining bool
	nextIdx  int

	metaMu sync.Mutex
	meta   map[int]windowMeta

	windows chan rfprism.Window

	procCancel  context.CancelFunc
	expireStop  chan struct{}
	expireDone  chan struct{}
	resultsDone chan struct{}

	shutdownOnce sync.Once
	shutdownErr  error
}

// NewDaemon builds and starts a daemon over proc, delivering results
// to sinks in order. The daemon runs until Shutdown.
func NewDaemon(proc Processor, cfg Config, sinks ...Sink) *Daemon {
	cfg.defaults()
	d := &Daemon{
		cfg:         cfg,
		met:         NewMetrics(cfg.Now()),
		sinks:       sinks,
		sess:        NewSessionizer(cfg.Sessionizer),
		meta:        make(map[int]windowMeta),
		windows:     make(chan rfprism.Window, cfg.QueueSize),
		expireStop:  make(chan struct{}),
		expireDone:  make(chan struct{}),
		resultsDone: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.procCancel = cancel
	results := proc.ProcessStream(ctx, d.windows)
	go d.resultLoop(results)
	go d.expireLoop()
	return d
}

// Metrics exposes the daemon's counters.
func (d *Daemon) Metrics() *Metrics { return d.met }

// RetryAfter is the advertised backpressure pause.
func (d *Daemon) RetryAfter() time.Duration { return d.cfg.RetryAfter }

// Gauges samples the point-in-time queue and sessionizer state.
func (d *Daemon) Gauges() Gauges {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Gauges{
		QueueDepth:       len(d.windows),
		QueueCap:         cap(d.windows),
		OpenSessions:     d.sess.Open(),
		BufferedReadings: d.sess.Buffered(),
		Draining:         d.draining,
	}
}

// Offer ingests one raw report. It fails fast with ErrBusy when the
// window queue is full (back off and retry), ErrDraining once shutdown
// has begun, or a validation error for a malformed report. A nil
// return means the report is owned by the daemon and will reach the
// solver in some window.
func (d *Daemon) Offer(rd sim.Reading) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return ErrDraining
	}
	if len(d.windows) == cap(d.windows) {
		d.met.ReportsBackpressured.Add(1)
		return ErrBusy
	}
	before := d.sess.Discarded()
	cw, closed, err := d.sess.Add(rd, d.cfg.Now())
	if err != nil {
		d.met.ReportsRejected.Add(1)
		return err
	}
	d.met.ReportsAccepted.Add(1)
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	if closed {
		d.enqueueLocked(cw)
	}
	return nil
}

// enqueueLocked queues a closed window. Callers hold d.mu and have
// verified there is room, so the send cannot block.
func (d *Daemon) enqueueLocked(cw ClosedWindow) {
	idx := d.nextIdx
	d.nextIdx++
	d.metaMu.Lock()
	d.meta[idx] = windowMeta{cw: cw, enqueued: d.cfg.Now()}
	d.metaMu.Unlock()
	d.met.WindowClosed(cw.Reason)
	d.windows <- rfprism.Window{Tag: cw.EPC, Readings: cw.Readings}
}

// expireLoop sweeps dwell deadlines. Expired windows that do not fit
// the queue are shed (counted): under saturation the freshest data is
// worth more than a stale partial window.
func (d *Daemon) expireLoop() {
	defer close(d.expireDone)
	t := time.NewTicker(d.cfg.ExpireEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.sweepExpired()
		case <-d.expireStop:
			return
		}
	}
}

func (d *Daemon) sweepExpired() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	before := d.sess.Discarded()
	expired := d.sess.Expire(d.cfg.Now())
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	for _, cw := range expired {
		if len(d.windows) == cap(d.windows) {
			d.met.WindowsShed.Add(1)
			continue
		}
		d.enqueueLocked(cw)
	}
}

// resultLoop fans completed windows out to the sinks and keeps the
// outcome counters.
func (d *Daemon) resultLoop(results <-chan rfprism.WindowResult) {
	defer close(d.resultsDone)
	for r := range results {
		d.metaMu.Lock()
		m, ok := d.meta[r.Index]
		delete(d.meta, r.Index)
		d.metaMu.Unlock()
		if !ok {
			// Unreachable: every queued window has meta.
			continue
		}
		now := d.cfg.Now()
		latency := now.Sub(m.enqueued)
		d.met.ObserveLatency(latency)
		if r.Err != nil {
			d.met.ResultsErr.Add(1)
		} else {
			d.met.ResultsOK.Add(1)
		}
		if h := r.Health(); h != nil && h.Degraded {
			d.met.WindowsDegraded.Add(1)
		}
		tr := makeTagResult(m.cw, r, now, latency)
		for _, s := range d.sinks {
			if err := s.Emit(tr); err != nil {
				d.met.SinkErrors.Add(1)
			}
		}
	}
}

// Shutdown drains the daemon gracefully: new reports are refused
// (ErrDraining), the deadline sweeper stops, every open window is
// flushed through the solver (partial windows meeting the antenna
// floor included), and the call returns once the last result has
// reached the sinks. If ctx expires first, in-flight work is cancelled
// hard and ctx's error is returned. Shutdown is idempotent.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutdownOnce.Do(func() { d.shutdownErr = d.shutdown(ctx) })
	return d.shutdownErr
}

func (d *Daemon) shutdown(ctx context.Context) error {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	close(d.expireStop)
	<-d.expireDone

	// With Offer refusing and the sweeper stopped, this goroutine is
	// the only producer left: flush the open sessions with blocking
	// sends (the solver is still consuming), then close the queue.
	d.mu.Lock()
	before := d.sess.Discarded()
	drained := d.sess.Drain(d.cfg.Now())
	d.met.WindowsDiscarded.Add(int64(d.sess.Discarded() - before))
	d.mu.Unlock()
	var err error
	for _, cw := range drained {
		idx := d.nextIdx
		d.nextIdx++
		d.metaMu.Lock()
		d.meta[idx] = windowMeta{cw: cw, enqueued: d.cfg.Now()}
		d.metaMu.Unlock()
		d.met.WindowClosed(cw.Reason)
		select {
		case d.windows <- rfprism.Window{Tag: cw.EPC, Readings: cw.Readings}:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	close(d.windows)
	if err == nil {
		select {
		case <-d.resultsDone:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	if err != nil {
		// Hard stop: cancel in-flight solves and wait for the result
		// loop to observe the closed stream.
		d.procCancel()
		<-d.resultsDone
	}
	d.procCancel()
	var closeErrs []error
	for _, s := range d.sinks {
		if cerr := s.Close(); cerr != nil {
			closeErrs = append(closeErrs, cerr)
		}
	}
	if err != nil {
		return fmt.Errorf("ingest: drain aborted: %w", err)
	}
	return errors.Join(closeErrs...)
}

// ReplayReports feeds a recorded or simulated report stream through
// Offer, honoring backpressure: ErrBusy pauses for the daemon's
// advertised Retry-After and retries the same report. pace scales the
// stream's own timing (1 = real time, 0 = as fast as backpressure
// allows). It returns the number of reports accepted; malformed
// reports abort the replay.
func (d *Daemon) ReplayReports(ctx context.Context, reports []sim.Reading, pace float64) (int, error) {
	accepted := 0
	var prev time.Duration
	for _, rd := range reports {
		if pace > 0 && rd.T > prev {
			gap := time.Duration(float64(rd.T-prev) * pace)
			if !sleepInterruptible(ctx, gap) {
				return accepted, ctx.Err()
			}
		}
		prev = rd.T
		for {
			err := d.Offer(rd)
			if err == nil {
				accepted++
				break
			}
			if !errors.Is(err, ErrBusy) {
				return accepted, err
			}
			if !sleepInterruptible(ctx, d.cfg.RetryAfter) {
				return accepted, ctx.Err()
			}
		}
	}
	return accepted, nil
}

// sleepInterruptible pauses for dur unless ctx is cancelled first,
// reporting whether the full pause elapsed.
func sleepInterruptible(ctx context.Context, dur time.Duration) bool {
	if dur <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
