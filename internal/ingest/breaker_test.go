package ingest

import (
	"testing"
	"time"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 3, Window: time.Minute})
	t0 := time.Unix(1000, 0)
	if b.record(t0) || b.record(t0.Add(time.Second)) {
		t.Fatal("tripped below threshold")
	}
	if !b.record(t0.Add(2 * time.Second)) {
		t.Fatal("third panic in window did not trip")
	}
	if !b.isTripped(t0.Add(3 * time.Second)) {
		t.Fatal("not tripped after trip")
	}
	// No cooldown configured: stays tripped arbitrarily long.
	if !b.isTripped(t0.Add(24 * time.Hour)) {
		t.Fatal("breaker reset without a cooldown")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 3, Window: 10 * time.Second})
	t0 := time.Unix(1000, 0)
	b.record(t0)
	b.record(t0.Add(time.Second))
	// The first two slide out of the window before the third lands.
	if b.record(t0.Add(30*time.Second)) || b.isTripped(t0.Add(30*time.Second)) {
		t.Fatal("stale panics counted toward the threshold")
	}
}

func TestBreakerCooldownResets(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 2, Window: time.Minute, Cooldown: 5 * time.Second})
	t0 := time.Unix(1000, 0)
	b.record(t0)
	if !b.record(t0.Add(time.Second)) {
		t.Fatal("did not trip")
	}
	// A panic during cooldown restarts it.
	b.record(t0.Add(3 * time.Second))
	if !b.isTripped(t0.Add(7 * time.Second)) {
		t.Fatal("cooldown not restarted by panic while tripped")
	}
	if b.isTripped(t0.Add(9 * time.Second)) {
		t.Fatal("breaker still tripped after quiet cooldown")
	}
}
