package ingest

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Stream-position deduplication.
//
// Ingest is exactly-once per stream even across network retries: a
// client (or the router retrying a sub-batch for it) names its
// logical stream with the X-RFPrism-Stream header and stamps every
// non-blank NDJSON line with its 1-based position in that stream via
// X-RFPrism-Stream-Pos. The daemon keeps a per-stream high-water
// mark: a line whose position is at or below the mark was already
// offered by an earlier delivery — after a mid-body connection
// reset, a timeout whose reply was lost, or a resume overshoot — and
// is skipped while still counting as accepted.
//
// The invariant that makes a plain high-water mark sufficient: per
// (stream, daemon) the delivered subsequence always arrives in
// global stream order (the router forwards per-EPC in request order,
// chunk by chunk) and acceptance is prefix-based, so the accepted
// set is exactly {pos ≤ mark}. State is in-memory and TTL-bounded: a
// daemon restart forgets marks, trading a rare post-crash duplicate
// window for zero journal coupling (the crash path already has
// exactly-once identity via the emission ledger).

// Stream header names, shared with the router tier.
const (
	HeaderStream    = "X-RFPrism-Stream"
	HeaderStreamPos = "X-RFPrism-Stream-Pos"
)

// MaxStreamID bounds the accepted stream-ID length (the router
// validates against it too before forwarding).
const MaxStreamID = 128

const (
	dedupMaxStreams = 4096
	dedupTTL        = 10 * time.Minute
)

// StreamPos yields each non-blank line's 1-based stream position.
// Contiguous form ("17"): positions 17, 18, … for any line count.
// Explicit form ("17,3,1"): first absolute, then positive deltas,
// one per line.
type StreamPos struct {
	base     uint64
	deltas   []uint64 // explicit form only
	explicit bool
}

// ParseStreamPos parses an X-RFPrism-Stream-Pos header value.
func ParseStreamPos(v string) (*StreamPos, error) {
	parts := strings.Split(v, ",")
	base, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil || base == 0 {
		return nil, fmt.Errorf("bad stream position %q", parts[0])
	}
	sp := &StreamPos{base: base}
	if len(parts) == 1 {
		return sp, nil
	}
	sp.explicit = true
	sp.deltas = make([]uint64, 0, len(parts)-1)
	for _, p := range parts[1:] {
		d, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil || d == 0 {
			return nil, fmt.Errorf("bad stream position delta %q", p)
		}
		sp.deltas = append(sp.deltas, d)
	}
	return sp, nil
}

// At returns the position of non-blank line i (0-based). For the
// explicit form, i past the encoded count is an error — the header
// must cover every line.
func (sp *StreamPos) At(i int) (uint64, error) {
	if !sp.explicit {
		return sp.base + uint64(i), nil
	}
	if i > len(sp.deltas) {
		return 0, fmt.Errorf("stream position header covers %d lines, request has more", len(sp.deltas)+1)
	}
	pos := sp.base
	for _, d := range sp.deltas[:i] {
		pos += d
	}
	return pos, nil
}

// Lines returns how many lines the explicit form covers (-1 when
// contiguous, i.e. unbounded).
func (sp *StreamPos) Lines() int {
	if !sp.explicit {
		return -1
	}
	return len(sp.deltas) + 1
}

// streamDedup tracks per-stream high-water marks with TTL and cap
// eviction.
type streamDedup struct {
	mu      sync.Mutex
	entries map[string]*dedupEntry
	now     func() time.Time
}

type dedupEntry struct {
	high uint64
	last time.Time
}

func newStreamDedup(now func() time.Time) *streamDedup {
	return &streamDedup{entries: make(map[string]*dedupEntry), now: now}
}

// highWater returns the stream's mark (0 for an unknown stream) and
// refreshes its TTL.
func (d *streamDedup) highWater(id string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.entries[id]
	if e == nil {
		return 0
	}
	e.last = d.now()
	return e.high
}

// advance raises the stream's mark to pos (never lowers it),
// creating the stream entry on first use and evicting stale or
// excess streams.
func (d *streamDedup) advance(id string, pos uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	e := d.entries[id]
	if e == nil {
		if len(d.entries) >= dedupMaxStreams {
			d.evictLocked(now)
		}
		e = &dedupEntry{}
		d.entries[id] = e
	}
	e.last = now
	if pos > e.high {
		e.high = pos
	}
}

// evictLocked drops expired streams; if none expired, the oldest one
// goes (callers hold mu).
func (d *streamDedup) evictLocked(now time.Time) {
	oldestID, oldest := "", time.Time{}
	for id, e := range d.entries {
		if now.Sub(e.last) > dedupTTL {
			delete(d.entries, id)
			continue
		}
		if oldestID == "" || e.last.Before(oldest) {
			oldestID, oldest = id, e.last
		}
	}
	if len(d.entries) >= dedupMaxStreams && oldestID != "" {
		delete(d.entries, oldestID)
	}
}

// streams reports how many streams are tracked (tests).
func (d *streamDedup) streams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
