package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func ringResult(epc string, seq int) TagResult {
	return TagResult{EPC: epc, Seq: seq, Reason: "coverage"}
}

// TestRingSinkReadsReturnCopies: the read path hands out copies (or
// fresh slices), so a reader that holds — or mutates — a result can
// never corrupt the ring or block a later writer.
func TestRingSinkReadsReturnCopies(t *testing.T) {
	ring := NewRingSink(4)
	for i := 1; i <= 3; i++ {
		if err := ring.Emit(ringResult("A", i)); err != nil {
			t.Fatal(err)
		}
	}

	hist := ring.History("A")
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	hist[0].EPC = "mutated"
	hist[0].Seq = -1

	again := ring.History("A")
	if again[0].EPC != "A" || again[0].Seq != 1 {
		t.Fatalf("ring state leaked through the returned slice: %+v", again[0])
	}
	if res, ok := ring.Latest("A"); !ok || res.Seq != 3 {
		t.Fatalf("Latest = %+v, %v", res, ok)
	}

	epcs := ring.EPCs()
	epcs[0] = "mutated"
	if got := ring.EPCs(); got[0] != "A" {
		t.Fatalf("EPC list leaked through the returned slice: %v", got)
	}
}

// TestRingSinkSlowReadersDoNotBlockEmit is the serving-tier regression
// guard: with a fleet of readers spinning on every read accessor, the
// write path must keep completing promptly — reads copy under an
// RLock instead of holding the ring across their own work.
func TestRingSinkSlowReadersDoNotBlockEmit(t *testing.T) {
	ring := NewRingSink(8)
	for i := 0; i < 16; i++ {
		_ = ring.Emit(ringResult(fmt.Sprintf("T-%d", i), 0))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				epc := fmt.Sprintf("T-%d", (r*5+i)%16)
				ring.Latest(epc)
				// Simulate a slow consumer: work on the copy outside any
				// ring lock.
				for _, res := range ring.History(epc) {
					_ = res.Seq
				}
				ring.EPCs()
			}
		}(r)
	}

	var worst time.Duration
	for i := 1; i <= 5000; i++ {
		t0 := time.Now()
		if err := ring.Emit(ringResult(fmt.Sprintf("T-%d", i%16), i)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	close(stop)
	wg.Wait()
	// An Emit is one short exclusive lock; anything near a quarter
	// second means a reader held the ring across its consumption.
	if worst > 250*time.Millisecond {
		t.Fatalf("worst Emit latency under reader fleet = %v", worst)
	}
	if res, ok := ring.Latest("T-0"); !ok || res.Seq == 0 {
		t.Fatalf("writes lost under concurrency: %+v, %v", res, ok)
	}
}
