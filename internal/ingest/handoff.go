package ingest

import (
	"sort"

	"rfprism/internal/sim"
)

// This file is the shard-handoff surface the router tier builds on.
// When a shard leaves a cluster its per-EPC state must move, not
// vanish: open sessions are extracted raw (HandoffSessions) and
// re-offered to the EPCs' new owners, and a shard that died without
// draining leaves a journal whose unserved tail (UnservedReports) is
// replayed into the survivors. Both paths deliberately return raw
// readings rather than assembled windows — the receiving shard's own
// sessionizer re-groups them, so window identity stays local to the
// journal that will serve them.

// HandoffSession is one open per-EPC session extracted from a shard
// that is leaving the ring: the raw readings in arrival order, ready
// to be re-offered to the EPC's new owner.
type HandoffSession struct {
	EPC      string
	Readings []sim.Reading
	// FirstSeq is the session's first journal position in the SOURCE
	// shard's journal (0 without a journal). It is diagnostic only —
	// the receiving shard journals the readings under its own
	// sequence numbers.
	FirstSeq uint64
}

// TakeSessions removes every open session whose EPC matches pred and
// returns them as handoff payloads, sorted by EPC. Unlike Drain the
// sessions are not emitted as windows and the antenna floor is not
// applied: the readings are going to another sessionizer, not to the
// solver. The per-EPC display counter advances as with Abort.
func (z *Sessionizer) TakeSessions(pred func(epc string) bool) []HandoffSession {
	var epcs []string
	for epc := range z.tags {
		if pred(epc) {
			epcs = append(epcs, epc)
		}
	}
	sort.Strings(epcs)
	out := make([]HandoffSession, 0, len(epcs))
	for _, epc := range epcs {
		s := z.tags[epc]
		delete(z.tags, epc)
		z.seqs[epc] = s.seq + 1
		z.buffered -= len(s.readings)
		out = append(out, HandoffSession{EPC: epc, Readings: s.readings, FirstSeq: s.firstSeq})
	}
	return out
}

// HandoffSessions extracts the open sessions whose EPC matches pred
// (nil means all) for transfer to another shard. Call it on a shard
// leaving the ring, after routing has stopped sending it new reports
// and before Shutdown — extracted sessions are gone from this daemon,
// so the drain will not emit them, and no ledger line is written for
// them (their identity moves with them to the receiving shard).
//
// The extracted readings remain in this shard's journal. That is safe
// only because a handed-off shard never runs Recover again: the
// cluster retires the journal directory with the shard. A shard that
// will restart must NOT hand off — restart-and-recover is the
// single-shard crash path.
func (d *Daemon) HandoffSessions(pred func(epc string) bool) []HandoffSession {
	if pred == nil {
		pred = func(string) bool { return true }
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.sess.TakeSessions(pred)
	for range out {
		d.met.SessionsHandedOff.Add(1)
	}
	return out
}

// UnservedReports scans a dead shard's journal and returns, in journal
// order, every retained report that is NOT covered by the emission
// ledger's served spans — the readings whose windows were never
// delivered. The router's handoff path re-offers them to the EPCs'
// new owners after a shard is removed dead (its own Recover can never
// run). The journal is only read; the caller still owns closing it.
//
// The span logic is identical to Recover's: a report inside any served
// [FirstSeq, LastSeq] span was delivered under that window's identity
// and is suppressed, everything else is live. suppressed counts the
// suppressed reports.
func UnservedReports(j *Journal) (live []sim.Reading, suppressed int, err error) {
	emitted, err := j.EmittedSet()
	if err != nil {
		return nil, 0, err
	}
	served := newServedIndex(emitted)
	_, rerr := j.Replay(func(seq uint64, rd sim.Reading) error {
		if _, ok := served.lookup(rd.EPC, seq); ok {
			suppressed++
			return nil
		}
		live = append(live, rd)
		return nil
	})
	if rerr != nil {
		return live, suppressed, rerr
	}
	return live, suppressed, nil
}
