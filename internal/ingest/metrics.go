package ingest

import (
	"io"
	"sync"
	"time"

	"rfprism"
	"rfprism/internal/obs"
)

// latencyBounds are the histogram bucket upper bounds (seconds) for
// end-to-end window latency (enqueue → result). The spread covers a
// sub-millisecond cache hit up to a multi-second saturated queue.
var latencyBounds = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// stageBounds are the bucket upper bounds (seconds) for per-stage
// pipeline latency. Stages are much faster than whole windows — a fit
// is tens of microseconds, a solve tens of milliseconds — so the grid
// starts three decades lower than latencyBounds.
var stageBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// confRadiusBounds are the bucket upper bounds (meters) for the
// per-result 90% positional confidence radius: a clean four-antenna
// window lands in single centimeters, a degraded down-weighted one
// stretches toward the decimeter buckets.
var confRadiusBounds = []float64{0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// confMarginBounds are the bucket upper bounds (dimensionless
// log-likelihood units) for the 2π-ambiguity margin; near-zero means
// a genuinely ambiguous window.
var confMarginBounds = []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128}

// Metrics is the daemon's instrument set, registered on an obs.Registry
// and exposed as Prometheus text on /metrics. All counters are
// monotonically increasing and safe for concurrent use; gauges (queue
// depth, open sessions, journal positions) are sampled from the
// caller-provided Gauges snapshot at render time.
//
// Metrics also implements rfprism.Tracer: installed on the System with
// rfprism.WithTracer, it folds every window's stage spans into the
// rfprismd_stage_latency_seconds histograms, so /metrics answers "where
// does window time go" without any span export.
type Metrics struct {
	reg   *obs.Registry
	start time.Time

	ReportsAccepted      *obs.Counter
	ReportsRejected      *obs.Counter
	ReportsBackpressured *obs.Counter
	ReportsDeduped       *obs.Counter // skipped by the stream high-water mark

	windowsClosed    [numCloseReasons]*obs.Counter
	WindowsDiscarded *obs.Counter
	WindowsShed      *obs.Counter

	ResultsOK       *obs.Counter
	ResultsErr      *obs.Counter
	WindowsDegraded *obs.Counter
	SinkErrors      *obs.Counter

	SolverPanics       *obs.Counter
	WindowsQuarantined *obs.Counter
	BreakerTrips       *obs.Counter
	ReportsJournalOnly *obs.Counter
	SessionsAborted    *obs.Counter // open sessions retired un-emitted into replay custody
	SessionsHandedOff  *obs.Counter // open sessions extracted for shard handoff
	JournalErrors      *obs.Counter
	WindowsSuppressed  *obs.Counter // replay: already in the emission ledger
	WindowsRecovered   *obs.Counter // replay: re-enqueued for solving

	latency *obs.Histogram
	stages  map[rfprism.Stage]*obs.Histogram

	// Confidence instruments (fed only when the System runs the
	// likelihood layer, see rfprism.WithConfidence / rfprismd
	// -confidence; the series render empty otherwise).
	confRadius *obs.Histogram
	confMargin *obs.Histogram

	gUptime           *obs.Gauge
	gQueueDepth       *obs.Gauge
	gQueueCap         *obs.Gauge
	gOpenSessions     *obs.Gauge
	gBufferedReadings *obs.Gauge
	gDraining         *obs.Gauge
	gBreakerTripped   *obs.Gauge

	// Journal gauges are registered lazily on the first render that sees
	// an enabled journal, so a journal-less daemon's exposition carries
	// no dead series.
	journalOnce      sync.Once
	gJournalNext     *obs.Gauge
	gJournalSynced   *obs.Gauge
	gJournalSegments *obs.Gauge
}

// NewMetrics starts a metric set; start anchors the uptime gauge.
func NewMetrics(start time.Time) *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{reg: r, start: start}

	m.ReportsAccepted = r.NewCounter("rfprismd_reports_total", "Ingested reports by outcome.", obs.L("outcome", "accepted"))
	m.ReportsRejected = r.NewCounter("rfprismd_reports_total", "", obs.L("outcome", "rejected"))
	m.ReportsBackpressured = r.NewCounter("rfprismd_reports_total", "", obs.L("outcome", "backpressured"))
	m.ReportsDeduped = r.NewCounter("rfprismd_reports_total", "", obs.L("outcome", "deduplicated"))

	for cr := CloseReason(0); int(cr) < numCloseReasons; cr++ {
		help := ""
		if cr == 0 {
			help = "Windows leaving the sessionizer by close reason."
		}
		m.windowsClosed[cr] = r.NewCounter("rfprismd_windows_closed_total", help, obs.L("reason", cr.String()))
	}
	m.WindowsDiscarded = r.NewCounter("rfprismd_windows_discarded_total", "Windows dropped below the antenna floor.")
	m.WindowsShed = r.NewCounter("rfprismd_windows_shed_total", "Expired windows shed against a full queue.")

	m.ResultsOK = r.NewCounter("rfprismd_results_total", "Solved windows by outcome.", obs.L("outcome", "ok"))
	m.ResultsErr = r.NewCounter("rfprismd_results_total", "", obs.L("outcome", "error"))
	m.WindowsDegraded = r.NewCounter("rfprismd_windows_degraded_total", "Windows solved on an antenna subset.")
	m.SinkErrors = r.NewCounter("rfprismd_sink_errors_total", "Result deliveries a sink refused.")

	m.SolverPanics = r.NewCounter("rfprismd_solver_panics_total", "Windows whose solve panicked.")
	m.WindowsQuarantined = r.NewCounter("rfprismd_windows_quarantined_total", "Panicking windows captured for offline reproduction.")
	m.BreakerTrips = r.NewCounter("rfprismd_breaker_trips_total", "Panic circuit breaker trips.")
	m.ReportsJournalOnly = r.NewCounter("rfprismd_reports_journal_only_total", "Reports journaled but shed while the breaker was tripped.")
	m.SessionsAborted = r.NewCounter("rfprismd_sessions_aborted_total", "Open sessions retired un-emitted into replay custody.")
	m.SessionsHandedOff = r.NewCounter("rfprismd_sessions_handed_off_total", "Open sessions extracted for shard handoff.")
	m.JournalErrors = r.NewCounter("rfprismd_journal_errors_total", "Journal append/sync/retention failures.")
	m.WindowsSuppressed = r.NewCounter("rfprismd_replay_windows_total", "Replayed windows by outcome.", obs.L("outcome", "suppressed"))
	m.WindowsRecovered = r.NewCounter("rfprismd_replay_windows_total", "", obs.L("outcome", "recovered"))

	m.latency = r.NewHistogram("rfprismd_window_latency_seconds", "End-to-end window latency, enqueue to result.", latencyBounds)
	m.stages = make(map[rfprism.Stage]*obs.Histogram, len(rfprism.Stages()))
	for _, st := range rfprism.Stages() {
		help := ""
		if st == rfprism.StageSpectra {
			help = "Pipeline stage latency by stage (fed by the span tracer)."
		}
		m.stages[st] = r.NewHistogram("rfprismd_stage_latency_seconds", help, stageBounds, obs.L("stage", string(st)))
	}

	m.confRadius = r.NewHistogram("solver_confidence_ci90_radius_meters",
		"Per-result 90% positional confidence radius from the likelihood layer.", confRadiusBounds)
	m.confMargin = r.NewHistogram("solver_confidence_ambiguity_margin",
		"Log-likelihood margin of the solution over the best 2π-ambiguity alternative.", confMarginBounds)

	m.gUptime = r.NewGauge("rfprismd_uptime_seconds", "Seconds since daemon start.")
	m.gQueueDepth = r.NewGauge("rfprismd_queue_depth", "Closed windows waiting for a solver.")
	m.gQueueCap = r.NewGauge("rfprismd_queue_capacity", "Window queue capacity.")
	m.gOpenSessions = r.NewGauge("rfprismd_open_sessions", "Per-EPC sessions currently assembling.")
	m.gBufferedReadings = r.NewGauge("rfprismd_buffered_readings", "Reports buffered in open sessions.")
	m.gDraining = r.NewGauge("rfprismd_draining", "1 while shutdown is draining.")
	m.gBreakerTripped = r.NewGauge("rfprismd_breaker_tripped", "1 while the panic circuit breaker is tripped.")
	return m
}

// Registry exposes the underlying obs registry so callers can attach
// extra instruments (the debug endpoint adds Go runtime gauges).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// AttachSolverStats registers the solver fast-path counters, sampled
// from stats at render time (the counters live on the System so they
// also serve programmatic callers; see rfprism.System.SolveStats).
// Call at most once per Metrics.
func (m *Metrics) AttachSolverStats(stats func() rfprism.SolveStatsSnapshot) {
	m.reg.NewCounterFunc("solver_cache_hits_total",
		"Windows served from the stationary-tag cache without solving.",
		func() int64 { return stats().CacheHits })
	m.reg.NewCounterFunc("solver_warm_fallbacks_total",
		"Warm-started solves that failed a guard and re-ran the cold path.",
		func() int64 { return stats().WarmFallbacks })
	m.reg.NewCounterFunc("solver_starts_pruned_total",
		"Multistart seeds demoted to the short iteration budget by adaptive pruning.",
		func() int64 { return stats().StartsPruned })
}

// WindowClosed counts one window leaving the sessionizer.
func (m *Metrics) WindowClosed(r CloseReason) {
	if r >= 0 && int(r) < numCloseReasons {
		m.windowsClosed[r].Add(1)
	}
}

// WindowsClosed returns the count for one close reason.
func (m *Metrics) WindowsClosed(r CloseReason) int64 {
	if r < 0 || int(r) >= numCloseReasons {
		return 0
	}
	return m.windowsClosed[r].Load()
}

// ObserveLatency records one window's enqueue→result latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.latency.Observe(d.Seconds())
}

// ObserveConfidence records one confident result's positional CI
// radius (meters) and 2π-ambiguity margin.
func (m *Metrics) ObserveConfidence(radiusM, margin float64) {
	m.confRadius.Observe(radiusM)
	m.confMargin.Observe(margin)
}

// RecordWindow implements rfprism.Tracer: each span feeds its stage's
// latency histogram. Spans from unknown stages are dropped rather than
// minted into new series mid-flight.
func (m *Metrics) RecordWindow(_ string, spans []rfprism.Span) {
	for i := range spans {
		if h, ok := m.stages[spans[i].Stage]; ok {
			h.Observe(spans[i].Duration.Seconds())
		}
	}
}

// Gauges are the point-in-time values the daemon samples for a render.
type Gauges struct {
	QueueDepth       int
	QueueCap         int
	OpenSessions     int
	BufferedReadings int
	Draining         bool
	// BreakerTripped reports the panic circuit breaker state; while
	// tripped the daemon is in shed-and-journal-only mode and readiness
	// fails.
	BreakerTripped bool
	// Journal gauges (zero when the daemon runs without a journal).
	JournalEnabled   bool
	JournalNextSeq   uint64
	JournalSyncedSeq uint64
	JournalSegments  int
}

// WriteText stamps the sampled gauges into the registry and renders
// every family in the Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, now time.Time, g Gauges) {
	m.gUptime.Set(now.Sub(m.start).Seconds())
	m.gQueueDepth.SetInt(int64(g.QueueDepth))
	m.gQueueCap.SetInt(int64(g.QueueCap))
	m.gOpenSessions.SetInt(int64(g.OpenSessions))
	m.gBufferedReadings.SetInt(int64(g.BufferedReadings))
	m.gDraining.SetBool(g.Draining)
	m.gBreakerTripped.SetBool(g.BreakerTripped)
	if g.JournalEnabled {
		m.journalOnce.Do(func() {
			m.gJournalNext = m.reg.NewGauge("rfprismd_journal_next_seq", "Next journal sequence number.")
			m.gJournalSynced = m.reg.NewGauge("rfprismd_journal_synced_seq", "Highest fsynced journal sequence number.")
			m.gJournalSegments = m.reg.NewGauge("rfprismd_journal_segments", "Retained journal segment count.")
		})
		m.gJournalNext.SetInt(int64(g.JournalNextSeq))
		m.gJournalSynced.SetInt(int64(g.JournalSyncedSeq))
		m.gJournalSegments.SetInt(int64(g.JournalSegments))
	}
	m.reg.WriteText(w)
}
