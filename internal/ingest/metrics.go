package ingest

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds (seconds) for
// end-to-end window latency (enqueue → result). The spread covers a
// sub-millisecond cache hit up to a multi-second saturated queue.
var latencyBounds = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Metrics is the daemon's counter set, exposed as Prometheus-style
// text on /metrics. All counters are monotonically increasing and safe
// for concurrent use; gauges (queue depth, open sessions) are sampled
// at render time by the caller.
type Metrics struct {
	start time.Time

	ReportsAccepted      atomic.Int64
	ReportsRejected      atomic.Int64
	ReportsBackpressured atomic.Int64

	windowsClosed    [numCloseReasons]atomic.Int64
	WindowsDiscarded atomic.Int64
	WindowsShed      atomic.Int64

	ResultsOK       atomic.Int64
	ResultsErr      atomic.Int64
	WindowsDegraded atomic.Int64
	SinkErrors      atomic.Int64

	SolverPanics       atomic.Int64
	WindowsQuarantined atomic.Int64
	BreakerTrips       atomic.Int64
	ReportsJournalOnly atomic.Int64
	SessionsAborted    atomic.Int64 // open sessions retired un-emitted into replay custody
	JournalErrors      atomic.Int64
	WindowsSuppressed  atomic.Int64 // replay: already in the emission ledger
	WindowsRecovered   atomic.Int64 // replay: re-enqueued for solving

	lat struct {
		mu      sync.Mutex
		buckets []int64 // len(latencyBounds)+1, last is overflow
		sum     float64
		count   int64
	}
}

// NewMetrics starts a metric set; start anchors the uptime gauge.
func NewMetrics(start time.Time) *Metrics {
	m := &Metrics{start: start}
	m.lat.buckets = make([]int64, len(latencyBounds)+1)
	return m
}

// WindowClosed counts one window leaving the sessionizer.
func (m *Metrics) WindowClosed(r CloseReason) {
	if r >= 0 && int(r) < numCloseReasons {
		m.windowsClosed[r].Add(1)
	}
}

// WindowsClosed returns the count for one close reason.
func (m *Metrics) WindowsClosed(r CloseReason) int64 {
	if r < 0 || int(r) >= numCloseReasons {
		return 0
	}
	return m.windowsClosed[r].Load()
}

// ObserveLatency records one window's enqueue→result latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	s := d.Seconds()
	if s < 0 || math.IsNaN(s) {
		s = 0
	}
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	m.lat.mu.Lock()
	m.lat.buckets[i]++
	m.lat.sum += s
	m.lat.count++
	m.lat.mu.Unlock()
}

// Gauges are the point-in-time values the daemon samples for a render.
type Gauges struct {
	QueueDepth       int
	QueueCap         int
	OpenSessions     int
	BufferedReadings int
	Draining         bool
	// BreakerTripped reports the panic circuit breaker state; while
	// tripped the daemon is in shed-and-journal-only mode and readiness
	// fails.
	BreakerTripped bool
	// Journal gauges (zero when the daemon runs without a journal).
	JournalEnabled   bool
	JournalNextSeq   uint64
	JournalSyncedSeq uint64
	JournalSegments  int
}

// WriteText renders the counter set plus the sampled gauges in the
// Prometheus text exposition format (no client library dependency).
func (m *Metrics) WriteText(w io.Writer, now time.Time, g Gauges) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("rfprismd_uptime_seconds %.3f\n", now.Sub(m.start).Seconds())
	p("rfprismd_reports_total{outcome=\"accepted\"} %d\n", m.ReportsAccepted.Load())
	p("rfprismd_reports_total{outcome=\"rejected\"} %d\n", m.ReportsRejected.Load())
	p("rfprismd_reports_total{outcome=\"backpressured\"} %d\n", m.ReportsBackpressured.Load())
	for r := CloseReason(0); int(r) < numCloseReasons; r++ {
		p("rfprismd_windows_closed_total{reason=%q} %d\n", r.String(), m.windowsClosed[r].Load())
	}
	p("rfprismd_windows_discarded_total %d\n", m.WindowsDiscarded.Load())
	p("rfprismd_windows_shed_total %d\n", m.WindowsShed.Load())
	p("rfprismd_results_total{outcome=\"ok\"} %d\n", m.ResultsOK.Load())
	p("rfprismd_results_total{outcome=\"error\"} %d\n", m.ResultsErr.Load())
	p("rfprismd_windows_degraded_total %d\n", m.WindowsDegraded.Load())
	p("rfprismd_sink_errors_total %d\n", m.SinkErrors.Load())
	p("rfprismd_solver_panics_total %d\n", m.SolverPanics.Load())
	p("rfprismd_windows_quarantined_total %d\n", m.WindowsQuarantined.Load())
	p("rfprismd_breaker_trips_total %d\n", m.BreakerTrips.Load())
	p("rfprismd_reports_journal_only_total %d\n", m.ReportsJournalOnly.Load())
	p("rfprismd_sessions_aborted_total %d\n", m.SessionsAborted.Load())
	p("rfprismd_journal_errors_total %d\n", m.JournalErrors.Load())
	p("rfprismd_replay_windows_total{outcome=\"suppressed\"} %d\n", m.WindowsSuppressed.Load())
	p("rfprismd_replay_windows_total{outcome=\"recovered\"} %d\n", m.WindowsRecovered.Load())
	p("rfprismd_queue_depth %d\n", g.QueueDepth)
	p("rfprismd_queue_capacity %d\n", g.QueueCap)
	p("rfprismd_open_sessions %d\n", g.OpenSessions)
	p("rfprismd_buffered_readings %d\n", g.BufferedReadings)
	draining := 0
	if g.Draining {
		draining = 1
	}
	p("rfprismd_draining %d\n", draining)
	tripped := 0
	if g.BreakerTripped {
		tripped = 1
	}
	p("rfprismd_breaker_tripped %d\n", tripped)
	if g.JournalEnabled {
		p("rfprismd_journal_next_seq %d\n", g.JournalNextSeq)
		p("rfprismd_journal_synced_seq %d\n", g.JournalSyncedSeq)
		p("rfprismd_journal_segments %d\n", g.JournalSegments)
	}

	m.lat.mu.Lock()
	cum := int64(0)
	for i, b := range latencyBounds {
		cum += m.lat.buckets[i]
		p("rfprismd_window_latency_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	cum += m.lat.buckets[len(latencyBounds)]
	p("rfprismd_window_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("rfprismd_window_latency_seconds_sum %.6f\n", m.lat.sum)
	p("rfprismd_window_latency_seconds_count %d\n", m.lat.count)
	m.lat.mu.Unlock()
}
