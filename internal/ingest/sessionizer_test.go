package ingest

import (
	"testing"
	"time"

	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

func mkRead(epc string, ant, ch int) sim.Reading {
	f, _ := rf.ChannelFreq(ch)
	return sim.Reading{EPC: epc, Antenna: ant, Channel: ch, FreqHz: f, Phase: 1.0, RSSI: -50}
}

var t0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

// feed pushes reports through Add, failing the test on validation
// errors and returning every window that closed.
func feed(t *testing.T, z *Sessionizer, now time.Time, reads ...sim.Reading) []ClosedWindow {
	t.Helper()
	var out []ClosedWindow
	for i, rd := range reads {
		cw, closed, err := z.Add(rd, now)
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if closed {
			out = append(out, cw)
		}
	}
	return out
}

// TestSessionizerCoverageClose: a window closes exactly when its
// distinct-channel coverage reaches the threshold, and duplicate
// (antenna, channel) reads count once toward coverage while still
// being kept in the window.
func TestSessionizerCoverageClose(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{CoverageClose: 3, MinAntennas: 1})
	var reads []sim.Reading
	// Channels 0 and 1, each read twice through two antennas:
	// 4 distinct (antenna, channel) pairs, repeated = 8 reports, but
	// only 2 distinct channels — must NOT close.
	for rep := 0; rep < 2; rep++ {
		for ant := 0; ant < 2; ant++ {
			reads = append(reads, mkRead("A", ant, 0), mkRead("A", ant, 1))
		}
	}
	if closed := feed(t, z, t0, reads...); len(closed) != 0 {
		t.Fatalf("window closed on duplicate reads: %+v", closed)
	}
	if z.Open() != 1 || z.Buffered() != 8 {
		t.Fatalf("open=%d buffered=%d, want 1/8", z.Open(), z.Buffered())
	}
	closed := feed(t, z, t0.Add(time.Second), mkRead("A", 0, 2))
	if len(closed) != 1 {
		t.Fatalf("third distinct channel did not close the window")
	}
	cw := closed[0]
	if cw.Reason != CloseCoverage || cw.Channels != 3 || cw.Antennas != 2 || len(cw.Readings) != 9 {
		t.Fatalf("closed window meta wrong: %+v", cw)
	}
	if cw.EPC != "A" || cw.Seq != 0 {
		t.Fatalf("identity wrong: epc=%q seq=%d", cw.EPC, cw.Seq)
	}
	if cw.Opened != t0 || cw.Closed != t0.Add(time.Second) {
		t.Fatalf("timestamps wrong: %v → %v", cw.Opened, cw.Closed)
	}
	if z.Open() != 0 || z.Buffered() != 0 {
		t.Fatalf("session not reclaimed: open=%d buffered=%d", z.Open(), z.Buffered())
	}
}

// TestSessionizerOutOfOrder: reports arriving out of reading-time
// order assemble the same window — arrival order, not timestamp
// order, drives sessionization.
func TestSessionizerOutOfOrder(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{CoverageClose: 3, MinAntennas: 1})
	late := mkRead("A", 0, 2)
	late.T = 10 * time.Second
	early := mkRead("A", 0, 0)
	early.T = time.Second
	mid := mkRead("A", 0, 1)
	mid.T = 5 * time.Second
	closed := feed(t, z, t0, late, early, mid)
	if len(closed) != 1 {
		t.Fatalf("out-of-order stream did not close a window")
	}
	if got := closed[0].Readings; got[0].T != 10*time.Second || got[1].T != time.Second {
		t.Fatalf("readings reordered: %v", got)
	}
}

// TestSessionizerInterleavedTags: two tags' interleaved reports land
// in separate windows with independent sequence numbers.
func TestSessionizerInterleavedTags(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{CoverageClose: 2, MinAntennas: 1})
	closed := feed(t, z, t0,
		mkRead("A", 0, 0), mkRead("B", 1, 5),
		mkRead("A", 0, 1), // closes A seq 0
		mkRead("B", 1, 6), // closes B seq 0
		mkRead("A", 2, 7), mkRead("B", 0, 8),
		mkRead("A", 2, 9), // closes A seq 1
	)
	if len(closed) != 3 {
		t.Fatalf("got %d closed windows, want 3", len(closed))
	}
	type key struct {
		epc string
		seq int
	}
	want := map[key][]int{
		{"A", 0}: {0, 1},
		{"B", 0}: {5, 6},
		{"A", 1}: {7, 9},
	}
	for _, cw := range closed {
		chans, ok := want[key{cw.EPC, cw.Seq}]
		if !ok {
			t.Fatalf("unexpected window %s/%d", cw.EPC, cw.Seq)
		}
		for i, rd := range cw.Readings {
			if rd.Channel != chans[i] {
				t.Errorf("%s/%d reading %d: channel %d, want %d", cw.EPC, cw.Seq, i, rd.Channel, chans[i])
			}
			if rd.EPC != cw.EPC {
				t.Errorf("window %s holds a reading from %s", cw.EPC, rd.EPC)
			}
		}
	}
	if z.Open() != 1 {
		t.Fatalf("B's second window should still be open, open=%d", z.Open())
	}
}

// TestSessionizerDeadline: the dwell deadline closes partial windows
// that meet the antenna floor and discards the ones that do not.
func TestSessionizerDeadline(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{Dwell: time.Second, MinAntennas: 3})
	// Tag A is heard through 3 antennas (usable partial); tag B only
	// through 1 (unusable — the solver needs core.MinAntennas).
	feed(t, z, t0,
		mkRead("A", 0, 0), mkRead("A", 1, 1), mkRead("A", 2, 2),
		mkRead("B", 0, 0),
	)
	if got := z.Expire(t0.Add(500 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("expired before deadline: %+v", got)
	}
	expired := z.Expire(t0.Add(2 * time.Second))
	if len(expired) != 1 {
		t.Fatalf("got %d expired windows, want 1 (A)", len(expired))
	}
	cw := expired[0]
	if cw.EPC != "A" || cw.Reason != CloseDeadline || cw.Antennas != 3 {
		t.Fatalf("wrong expired window: %+v", cw)
	}
	if z.Discarded() != 1 {
		t.Fatalf("discarded=%d, want 1 (B below antenna floor)", z.Discarded())
	}
	if z.Open() != 0 {
		t.Fatalf("sessions remain after expiry: %d", z.Open())
	}
	// B's next window starts a fresh sequence number even though its
	// first window was discarded — seq counts windows opened, so the
	// query side can spot gaps.
	closed := feed(t, z, t0.Add(3*time.Second),
		mkRead("B", 0, 0), mkRead("B", 1, 1), mkRead("B", 2, 2))
	_ = closed
	drained := z.Drain(t0.Add(4 * time.Second))
	if len(drained) != 1 || drained[0].EPC != "B" || drained[0].Seq != 1 {
		t.Fatalf("drain after discard: %+v", drained)
	}
	if drained[0].Reason != CloseDrain {
		t.Fatalf("drain reason: %v", drained[0].Reason)
	}
}

// TestSessionizerOverflow: the per-tag buffer cap closes the window
// early instead of growing without bound.
func TestSessionizerOverflow(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{MaxReadings: 4, MinAntennas: 1})
	var closed []ClosedWindow
	// 4 reports on only 2 distinct channels: coverage can't close it,
	// the cap must.
	closed = append(closed, feed(t, z, t0,
		mkRead("A", 0, 0), mkRead("A", 1, 0), mkRead("A", 0, 1), mkRead("A", 1, 1))...)
	if len(closed) != 1 || closed[0].Reason != CloseOverflow || len(closed[0].Readings) != 4 {
		t.Fatalf("overflow close wrong: %+v", closed)
	}
}

// TestSessionizerRejectsMalformed: empty EPCs and out-of-range
// channels are refused without opening sessions.
func TestSessionizerRejectsMalformed(t *testing.T) {
	z := NewSessionizer(SessionizerConfig{})
	if _, _, err := z.Add(sim.Reading{Antenna: 0, Channel: 0}, t0); err == nil {
		t.Error("empty EPC accepted")
	}
	if _, _, err := z.Add(mkRead("A", 0, rf.NumChannels), t0); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if _, _, err := z.Add(sim.Reading{EPC: "A", Channel: -1}, t0); err == nil {
		t.Error("negative channel accepted")
	}
	if z.Open() != 0 {
		t.Fatalf("malformed reports opened %d sessions", z.Open())
	}
}

// TestSessionizerDefaults: the zero config gets the documented
// serving defaults.
func TestSessionizerDefaults(t *testing.T) {
	cfg := NewSessionizer(SessionizerConfig{}).Config()
	if cfg.CoverageClose != rf.NumChannels {
		t.Errorf("CoverageClose default %d, want %d", cfg.CoverageClose, rf.NumChannels)
	}
	if cfg.MinAntennas != 3 {
		t.Errorf("MinAntennas default %d, want 3", cfg.MinAntennas)
	}
	if cfg.Dwell <= 0 || cfg.MaxReadings <= 0 {
		t.Errorf("unfilled defaults: %+v", cfg)
	}
}
