package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func TestPageEPCs(t *testing.T) {
	epcs := []string{"a", "b", "c", "d", "e"}
	cases := []struct {
		name     string
		limit    int
		cursor   string
		want     []string
		wantNext string
	}{
		{"everything", 0, "", epcs, ""},
		{"first page", 2, "", []string{"a", "b"}, "b"},
		{"middle page", 2, "b", []string{"c", "d"}, "d"},
		{"last page short", 2, "d", []string{"e"}, ""},
		{"cursor past end", 2, "e", nil, ""},
		{"cursor between keys", 2, "bb", []string{"c", "d"}, "d"},
		{"limit past end", 10, "c", []string{"d", "e"}, ""},
		{"empty list", 3, "", nil, ""},
	}
	for _, tc := range cases {
		src := epcs
		if tc.name == "empty list" {
			src = nil
		}
		page, next := PageEPCs(src, tc.limit, tc.cursor)
		if len(page) == 0 {
			page = nil
		}
		if !reflect.DeepEqual(page, tc.want) || next != tc.wantNext {
			t.Fatalf("%s: PageEPCs(limit=%d, cursor=%q) = %v, %q; want %v, %q",
				tc.name, tc.limit, tc.cursor, page, next, tc.want, tc.wantNext)
		}
	}
}

// pageServer wires a daemon whose ring is pre-seeded with sorted tags.
func pageServer(t *testing.T, epcs ...string) *httptest.Server {
	t.Helper()
	proc := newGatedProc()
	close(proc.gate)
	ring := NewRingSink(2)
	for i, epc := range epcs {
		if err := ring.Emit(TagResult{EPC: epc, Seq: i, Reason: "coverage"}); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDaemon(proc, Config{
		Sessionizer: SessionizerConfig{CoverageClose: 2, MinAntennas: 1},
	}, ring)
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	srv := httptest.NewServer(NewServer(d, ring).Handler())
	t.Cleanup(srv.Close)
	return srv
}

type tagsPage struct {
	Tags  []string `json:"tags"`
	Count *int     `json:"count"`
	Next  string   `json:"next"`
}

func getTagsPage(t *testing.T, srv *httptest.Server, query string) (int, tagsPage) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/tags" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page tagsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, page
}

func TestServerTagsPagination(t *testing.T) {
	srv := pageServer(t, "d", "b", "a", "c")

	// Legacy shape: no limit/cursor keeps the pre-pagination body —
	// tags only, no count, no next.
	code, legacy := getTagsPage(t, srv, "")
	if code != http.StatusOK || !reflect.DeepEqual(legacy.Tags, []string{"a", "b", "c", "d"}) {
		t.Fatalf("legacy list = %d %+v", code, legacy)
	}
	if legacy.Count != nil || legacy.Next != "" {
		t.Fatalf("legacy shape grew pagination fields: %+v", legacy)
	}

	code, first := getTagsPage(t, srv, "?limit=3")
	if code != http.StatusOK || !reflect.DeepEqual(first.Tags, []string{"a", "b", "c"}) {
		t.Fatalf("first page = %d %+v", code, first)
	}
	if first.Count == nil || *first.Count != 4 || first.Next != "c" {
		t.Fatalf("first page metadata = %+v", first)
	}

	code, last := getTagsPage(t, srv, "?limit=3&cursor="+first.Next)
	if code != http.StatusOK || !reflect.DeepEqual(last.Tags, []string{"d"}) || last.Next != "" {
		t.Fatalf("last page = %d %+v", code, last)
	}

	// Cursor alone (no limit) is still the paginated shape.
	code, rest := getTagsPage(t, srv, "?cursor=b")
	if code != http.StatusOK || !reflect.DeepEqual(rest.Tags, []string{"c", "d"}) || rest.Count == nil {
		t.Fatalf("cursor-only page = %d %+v", code, rest)
	}

	for _, bad := range []string{"?limit=bogus", "?limit=0", "?limit=-2"} {
		resp, err := http.Get(srv.URL + "/v1/tags" + bad)
		if err != nil {
			t.Fatal(err)
		}
		var envelope apiError
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || envelope.Code != CodeBadParam {
			t.Fatalf("GET /v1/tags%s = %d code %q, want 400 %s", bad, resp.StatusCode, envelope.Code, CodeBadParam)
		}
	}
}

// TestServerLongPollNeedsWaiterStore: a daemon running on the plain
// RingSink refuses ?wait= cleanly instead of hanging.
func TestServerLongPollNeedsWaiterStore(t *testing.T) {
	srv := pageServer(t, "a")
	resp, err := http.Get(srv.URL + "/v1/tags/a?wait=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope apiError
	_ = json.NewDecoder(resp.Body).Decode(&envelope)
	if resp.StatusCode != http.StatusBadRequest || envelope.Code != CodeBadParam {
		t.Fatalf("RingSink long-poll = %d code %q, want 400 %s", resp.StatusCode, envelope.Code, CodeBadParam)
	}
	if time.Duration(envelope.RetryAfterMS)*time.Millisecond != 0 {
		t.Fatalf("retry_after_ms = %d, want 0", envelope.RetryAfterMS)
	}
}
