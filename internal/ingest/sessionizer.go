// Package ingest turns a live stream of raw per-read reader reports
// into sessionized hop-round windows and drives them through the
// RF-Prism pipeline. It is the serving half the offline campaigns do
// not need: a real reader emits one (EPC, antenna, channel, phase,
// RSSI) tuple per singulated read, interleaved across the whole tag
// population, while the disentangler consumes one assembled hop round
// per tag per solve. The package provides the Sessionizer (per-EPC
// window assembly with coverage- and deadline-based closing), the
// Daemon (bounded queueing into System.ProcessStream, pluggable result
// sinks, explicit backpressure, graceful drain) and the HTTP Server
// (NDJSON ingest, per-tag result queries, health and metrics).
package ingest

import (
	"fmt"
	"sort"
	"time"

	"rfprism/internal/core"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// CloseReason says why a window left the sessionizer.
type CloseReason int

const (
	// CloseCoverage: the window reached the configured distinct-channel
	// coverage — a full (or full-enough) hop round was assembled.
	CloseCoverage CloseReason = iota
	// CloseDeadline: the per-window dwell deadline fired before
	// coverage was reached; the window is partial but usable.
	CloseDeadline
	// CloseOverflow: the per-tag reading buffer hit its cap; closing
	// early bounds memory against chattering or misbehaving tags.
	CloseOverflow
	// CloseDrain: the daemon is shutting down and flushed the window.
	CloseDrain

	numCloseReasons = iota
)

// String names the reason for metrics labels and logs.
func (r CloseReason) String() string {
	switch r {
	case CloseCoverage:
		return "coverage"
	case CloseDeadline:
		return "deadline"
	case CloseOverflow:
		return "overflow"
	case CloseDrain:
		return "drain"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// SessionizerConfig tunes window assembly. The zero value gets
// serving-grade defaults.
type SessionizerConfig struct {
	// CoverageClose is the distinct-channel count that closes a window
	// as complete. Default (and cap) rf.NumChannels: one full hop
	// round. Lower values trade accuracy for latency.
	CoverageClose int
	// Dwell is the deadline from a window's first report to its forced
	// close. Default 15 s — one 50×200 ms hop round plus slack.
	Dwell time.Duration
	// MaxReadings caps the per-tag reading buffer; hitting it closes
	// the window immediately (CloseOverflow). Default 8192.
	MaxReadings int
	// MinAntennas is the distinct-antenna floor below which a
	// deadline- or drain-closed partial window is discarded instead of
	// emitted — the solver cannot use it (core.MinAntennas). Default 3
	// (the 2D minimum).
	MinAntennas int
}

func (c *SessionizerConfig) defaults() {
	if c.CoverageClose <= 0 || c.CoverageClose > rf.NumChannels {
		c.CoverageClose = rf.NumChannels
	}
	if c.Dwell <= 0 {
		c.Dwell = 15 * time.Second
	}
	if c.MaxReadings <= 0 {
		c.MaxReadings = 8192
	}
	if c.MinAntennas <= 0 {
		c.MinAntennas = core.MinAntennas(false)
	}
}

// ClosedWindow is one assembled hop-round window ready for the
// pipeline, plus the assembly metadata sinks and metrics report.
type ClosedWindow struct {
	EPC      string
	Seq      int // per-EPC window sequence number, from 0 (display only)
	Readings []sim.Reading
	Reason   CloseReason
	Channels int // distinct channels covered
	Antennas int // distinct antennas heard
	Opened   time.Time
	Closed   time.Time
	// FirstSeq/LastSeq are the journal sequence numbers of the first
	// and last report in the window (0 when the daemon runs without a
	// journal). (EPC, FirstSeq) is the window's durable identity:
	// unlike Seq it is derived from journal positions, so a post-crash
	// replay of the same retained reports reconstructs the same key.
	FirstSeq uint64
	LastSeq  uint64
}

// Key returns the window's durable identity.
func (cw ClosedWindow) Key() WindowKey {
	return WindowKey{EPC: cw.EPC, FirstSeq: cw.FirstSeq}
}

// ValidateReading checks a raw report for the properties the pipeline
// depends on: a non-empty EPC, an in-range channel, and finite
// phase/RSSI/frequency values. The daemon validates before journaling
// so the write-ahead log never accumulates garbage.
func ValidateReading(rd sim.Reading) error {
	if rd.EPC == "" {
		return fmt.Errorf("ingest: report has no EPC")
	}
	if rd.Channel < 0 || rd.Channel >= rf.NumChannels {
		return fmt.Errorf("ingest: report channel %d out of [0,%d)", rd.Channel, rf.NumChannels)
	}
	if !finite(rd.Phase) || !finite(rd.RSSI) || !finite(rd.FreqHz) {
		return fmt.Errorf("ingest: report has non-finite phase/rssi/freq")
	}
	return nil
}

// session is one tag's window under assembly.
type session struct {
	readings []sim.Reading
	channels map[int]bool
	antennas map[int]bool
	opened   time.Time
	deadline time.Time
	seq      int
	firstSeq uint64
	lastSeq  uint64
}

// Sessionizer groups a mixed report stream into per-EPC hop-round
// windows. Reports may arrive out of time order and may repeat
// (antenna, channel) pairs — both are normal for a hopping reader read
// through multiple ports — and neither perturbs window assembly:
// coverage counts distinct channels once, and the solver does not care
// about intra-window report order.
//
// The Sessionizer itself is not goroutine-safe; the Daemon serializes
// access. Time is always passed in by the caller, so tests and replay
// drive the deadline clock explicitly.
type Sessionizer struct {
	cfg       SessionizerConfig
	tags      map[string]*session
	seqs      map[string]int
	buffered  int
	discarded int
}

// NewSessionizer builds a sessionizer with cfg (zero fields take
// defaults).
func NewSessionizer(cfg SessionizerConfig) *Sessionizer {
	cfg.defaults()
	return &Sessionizer{
		cfg:  cfg,
		tags: make(map[string]*session),
		seqs: make(map[string]int),
	}
}

// Config returns the effective (defaulted) configuration.
func (z *Sessionizer) Config() SessionizerConfig { return z.cfg }

// Open returns the number of windows currently under assembly.
func (z *Sessionizer) Open() int { return len(z.tags) }

// Buffered returns the total readings held across open windows.
func (z *Sessionizer) Buffered() int { return z.buffered }

// Discarded returns the count of partial windows dropped for having
// fewer than MinAntennas distinct antennas at close time.
func (z *Sessionizer) Discarded() int { return z.discarded }

// Add ingests one report at wall time now. It returns the tag's window
// when the report completed it (coverage or overflow), and an error
// when the report itself is malformed (empty EPC, out-of-range
// channel) — malformed reports are dropped without touching any
// window.
func (z *Sessionizer) Add(rd sim.Reading, now time.Time) (ClosedWindow, bool, error) {
	return z.AddSeq(rd, 0, now)
}

// AddSeq is Add with the report's journal sequence number attached, so
// the closed window carries its durable (EPC, FirstSeq) identity. A
// journal-less daemon passes 0.
func (z *Sessionizer) AddSeq(rd sim.Reading, seq uint64, now time.Time) (ClosedWindow, bool, error) {
	if err := ValidateReading(rd); err != nil {
		return ClosedWindow{}, false, err
	}
	s := z.tags[rd.EPC]
	if s == nil {
		s = &session{
			channels: make(map[int]bool),
			antennas: make(map[int]bool),
			opened:   now,
			deadline: now.Add(z.cfg.Dwell),
			seq:      z.seqs[rd.EPC],
			firstSeq: seq,
		}
		z.tags[rd.EPC] = s
	}
	s.lastSeq = seq
	s.readings = append(s.readings, rd)
	s.channels[rd.Channel] = true
	s.antennas[rd.Antenna] = true
	z.buffered++
	switch {
	case len(s.channels) >= z.cfg.CoverageClose:
		return z.close(rd.EPC, s, CloseCoverage, now)
	case len(s.readings) >= z.cfg.MaxReadings:
		return z.close(rd.EPC, s, CloseOverflow, now)
	}
	return ClosedWindow{}, false, nil
}

// close removes the session and packages it as a ClosedWindow, unless
// the window is unusable (fewer than MinAntennas distinct antennas),
// in which case it is discarded and counted.
func (z *Sessionizer) close(epc string, s *session, reason CloseReason, now time.Time) (ClosedWindow, bool, error) {
	delete(z.tags, epc)
	z.seqs[epc] = s.seq + 1
	z.buffered -= len(s.readings)
	if len(s.antennas) < z.cfg.MinAntennas {
		z.discarded++
		return ClosedWindow{}, false, nil
	}
	return ClosedWindow{
		EPC:      epc,
		Seq:      s.seq,
		Readings: s.readings,
		Reason:   reason,
		Channels: len(s.channels),
		Antennas: len(s.antennas),
		Opened:   s.opened,
		Closed:   now,
		FirstSeq: s.firstSeq,
		LastSeq:  s.lastSeq,
	}, true, nil
}

// DropEmittedSessions removes every open session whose (EPC, firstSeq)
// identity appears in emitted, returning how many were dropped. This is
// recovery's guard against re-serving drain-flushed windows: a clean
// shutdown emits open sessions as partial windows (their ledger line
// carries the session's firstSeq), so a replay that rebuilds such a
// session would later close it under an identity the ledger already
// holds — a duplicate. The dropped reports were served in the partial
// window; fresh reports start a new session with a new identity.
func (z *Sessionizer) DropEmittedSessions(emitted map[WindowKey]uint64) int {
	n := 0
	for epc, s := range z.tags {
		if _, ok := emitted[WindowKey{EPC: epc, FirstSeq: s.firstSeq}]; !ok {
			continue
		}
		delete(z.tags, epc)
		z.seqs[epc] = s.seq + 1
		z.buffered -= len(s.readings)
		n++
	}
	return n
}

// Abort removes epc's open session without emitting it, returning the
// session's firstSeq and reading count. Unlike close it produces no
// window: the daemon uses it in breaker-tripped shed mode to hand a
// session's reports wholesale to the journal replayer — they are
// durable, and with no ledger line written a restart regroups them
// with the shed reports that follow and solves everything together.
// The per-EPC display counter still advances so a later window for the
// tag is visibly a new one.
func (z *Sessionizer) Abort(epc string) (firstSeq uint64, readings int, ok bool) {
	s := z.tags[epc]
	if s == nil {
		return 0, 0, false
	}
	delete(z.tags, epc)
	z.seqs[epc] = s.seq + 1
	z.buffered -= len(s.readings)
	return s.firstSeq, len(s.readings), true
}

// MinOpenSeq returns the smallest journal sequence number any open
// session still needs (the first report of the oldest-by-seq window
// under assembly), and whether any session is open. Retention must not
// delete journal segments at or above this position.
func (z *Sessionizer) MinOpenSeq() (uint64, bool) {
	var minSeq uint64
	found := false
	for _, s := range z.tags {
		if !found || s.firstSeq < minSeq {
			minSeq = s.firstSeq
			found = true
		}
	}
	return minSeq, found
}

// Expire closes every window whose dwell deadline has passed,
// returning the usable ones sorted by EPC (deterministic order).
// Deadline-closed windows with too few antennas are discarded.
func (z *Sessionizer) Expire(now time.Time) []ClosedWindow {
	return z.sweep(now, CloseDeadline, func(s *session) bool { return !s.deadline.After(now) })
}

// Drain closes every open window regardless of deadline — the
// shutdown flush. Unusable partials are discarded as in Expire.
func (z *Sessionizer) Drain(now time.Time) []ClosedWindow {
	return z.sweep(now, CloseDrain, func(*session) bool { return true })
}

func (z *Sessionizer) sweep(now time.Time, reason CloseReason, due func(*session) bool) []ClosedWindow {
	var epcs []string
	for epc, s := range z.tags {
		if due(s) {
			epcs = append(epcs, epc)
		}
	}
	sort.Strings(epcs)
	var out []ClosedWindow
	for _, epc := range epcs {
		if cw, ok, _ := z.close(epc, z.tags[epc], reason, now); ok {
			out = append(out, cw)
		}
	}
	return out
}
