package ingest

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/sim"
)

// echoProc is an instant Processor: every window yields an empty
// Result, except tags with the "poison" prefix, which yield a
// fabricated solver panic — the daemon-side shape of a recovered
// panic without paying for real solves.
type echoProc struct{}

func (echoProc) ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult {
	out := make(chan rfprism.WindowResult)
	go func() {
		defer close(out)
		i := 0
		for w := range in {
			r := rfprism.WindowResult{Index: i, Tag: w.Tag}
			if strings.HasPrefix(w.Tag, "poison") {
				r.Err = &rfprism.SolverPanicError{Value: "synthetic", Stack: []byte("goroutine 1 [running]:\n...")}
			} else {
				r.Result = &rfprism.Result{}
			}
			select {
			case out <- r:
			case <-ctx.Done():
				return
			}
			i++
		}
	}()
	return out
}

// mkReading builds a valid report for window-assembly tests.
func mkReading(epc string, antenna, channel int) sim.Reading {
	return sim.Reading{EPC: epc, Antenna: antenna, Channel: channel, FreqHz: 920e6, Phase: 0.5, RSSI: -50}
}

// fullWindow returns readings that close a CoverageClose=3 window on
// three distinct antennas.
func fullWindow(epc string) []sim.Reading {
	return []sim.Reading{mkReading(epc, 1, 0), mkReading(epc, 2, 1), mkReading(epc, 3, 2)}
}

// crashTestConfig is the shared small-window daemon configuration.
func crashTestConfig(j *Journal) Config {
	return Config{
		Sessionizer: SessionizerConfig{CoverageClose: 3, MinAntennas: 1, Dwell: time.Hour},
		QueueSize:   8,
		Journal:     j,
	}
}

// TestDaemonRecoverReplaysJournal: after a simulated crash the daemon
// rebuilds its state from the journal — windows already in the
// emission ledger are suppressed, windows lost in flight are re-queued
// and solved, and partial sessions reopen and complete with fresh
// reports.
func TestDaemonRecoverReplaysJournal(t *testing.T) {
	dir := t.TempDir()

	// Pre-crash state, written directly: windows A0 (seqs 0-2) and
	// B0 (3-5) were emitted; A1 (6-8) closed but its result was lost;
	// B's next window (9-10) was still open.
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var reports []sim.Reading
	reports = append(reports, fullWindow("A")...)
	reports = append(reports, fullWindow("B")...)
	reports = append(reports, fullWindow("A")...)
	reports = append(reports, mkReading("B", 1, 0), mkReading("B", 2, 1))
	for _, rd := range reports {
		if _, _, err := j.Append(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendResult(TagResult{EPC: "A", FirstSeq: 0, LastSeq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendResult(TagResult{EPC: "B", FirstSeq: 3, LastSeq: 5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover, then finish B's open window with one fresh
	// report.
	j2, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureSink{}
	d := NewDaemon(echoProc{}, crashTestConfig(j2), cap)
	info, err := d.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.Suppressed != 2 || info.Requeued != 1 || info.OpenSessions != 1 {
		t.Fatalf("recovery = %+v, want 2 suppressed / 1 requeued / 1 open", info)
	}
	if info.Replay.Reports != len(reports) {
		t.Fatalf("replayed %d reports, want %d", info.Replay.Reports, len(reports))
	}
	if err := d.Offer(mkReading("B", 3, 2)); err != nil {
		t.Fatalf("Offer after recovery: %v", err)
	}
	waitFor(t, 5*time.Second, "recovered and completed windows", func() bool {
		return len(cap.snapshot()) == 2
	})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := map[WindowKey]bool{}
	for _, tr := range cap.snapshot() {
		got[WindowKey{EPC: tr.EPC, FirstSeq: tr.FirstSeq}] = true
	}
	if !got[WindowKey{EPC: "A", FirstSeq: 6}] || !got[WindowKey{EPC: "B", FirstSeq: 9}] {
		t.Fatalf("emitted windows = %v, want (A,6) and (B,9)", got)
	}

	// The emission ledger now carries all four windows: a second
	// recovery would suppress everything.
	j3, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	emitted, err := j3.EmittedSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 4 {
		t.Fatalf("ledger has %d windows, want 4: %v", len(emitted), emitted)
	}
}

// TestDaemonRecoverDropsDrainedSessions: a clean shutdown flushes open
// sessions as partial windows into the emission ledger; a later
// recovery must NOT rebuild those sessions from the journal, or they
// would re-close under an identity the ledger already holds.
func TestDaemonRecoverDropsDrainedSessions(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(echoProc{}, crashTestConfig(j), &captureSink{})
	// Two reports open a partial window for B (MinAntennas=1 lets the
	// drain emit it); Shutdown drain-flushes it → ledger gets (B, 0).
	if err := d.Offer(mkReading("B", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Offer(mkReading("B", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureSink{}
	d2 := NewDaemon(echoProc{}, crashTestConfig(j2), cap)
	info, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.Suppressed != 1 || info.OpenSessions != 0 {
		t.Fatalf("recovery = %+v, want the drained session suppressed, none open", info)
	}
	// A fresh full window for B starts a NEW identity (seq 2).
	for _, rd := range fullWindow("B") {
		if err := d2.Offer(rd); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "fresh window", func() bool { return len(cap.snapshot()) == 1 })
	if err := d2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	emitted, err := j3.EmittedSet()
	if err != nil {
		t.Fatal(err)
	}
	_, has0 := emitted[WindowKey{EPC: "B", FirstSeq: 0}]
	_, has2 := emitted[WindowKey{EPC: "B", FirstSeq: 2}]
	if len(emitted) != 2 || !has0 || !has2 {
		t.Fatalf("ledger keys = %v, want (B,0) and (B,2)", emitted)
	}
}

// TestDaemonTrippedShedReportsRecovered is the end-to-end contract of
// shed-and-journal-only mode: a report shed while the breaker is
// tripped must retire its EPC's open session un-emitted (no ledger
// line), so that a restarted daemon's replay regroups the session's
// reports and the shed report into one window and solves it — nothing
// silently vanishes into a suppressed window.
func TestDaemonTrippedShedReportsRecovered(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashTestConfig(j)
	cfg.Breaker = BreakerConfig{Threshold: 3, Window: time.Minute}
	d := NewDaemon(echoProc{}, cfg, &captureSink{})

	// A partial session for ok-A (seqs 0-1, two of three channels).
	if err := d.Offer(mkReading("ok-A", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Offer(mkReading("ok-A", 2, 1)); err != nil {
		t.Fatal(err)
	}
	// Three poisoned windows (seqs 2-10) trip the breaker.
	for _, epc := range []string{"poison-1", "poison-2", "poison-3"} {
		for _, rd := range fullWindow(epc) {
			if err := d.Offer(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, "breaker trip", func() bool { return d.Gauges().BreakerTripped })

	// The report that would have completed ok-A's window arrives while
	// tripped: journal-only, and it must take the open session with it.
	if err := d.Offer(mkReading("ok-A", 3, 2)); err != nil { // seq 11
		t.Fatal(err)
	}
	if got := d.Metrics().SessionsAborted.Load(); got != 1 {
		t.Fatalf("aborted sessions = %d, want 1", got)
	}
	if g := d.Gauges(); g.OpenSessions != 0 {
		t.Fatalf("open sessions after shed = %d, want 0 (aborted into replay custody)", g.OpenSessions)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart with a healthy solver: the three poisoned windows are in
	// the ledger (served as errors) and suppressed; ok-A's three reports
	// regroup into one window, requeue, and solve.
	j2, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureSink{}
	d2 := NewDaemon(echoProc{}, crashTestConfig(j2), cap)
	info, err := d2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.Suppressed != 3 || info.Requeued != 1 || info.OpenSessions != 0 {
		t.Fatalf("recovery = %+v, want 3 suppressed / 1 requeued / 0 open", info)
	}
	waitFor(t, 5*time.Second, "recovered shed window", func() bool { return len(cap.snapshot()) == 1 })
	if err := d2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr := cap.snapshot()[0]
	if tr.EPC != "ok-A" || tr.FirstSeq != 0 || tr.LastSeq != 11 || tr.Readings != 3 || tr.Err != "" {
		t.Fatalf("recovered window = %+v, want ok-A seqs [0,11] with 3 readings solved", tr)
	}
}

// TestDaemonRecoverSplitsAtServedLastSeq: the live run can close a
// window non-positionally (deadline, drain) and serve it; replay
// cannot reproduce that close from report positions, so it must use
// the ledger's [FirstSeq, LastSeq] span to excise exactly the served
// reports and regroup the rest under a fresh identity — not swallow
// them into a suppressed window.
func TestDaemonRecoverSplitsAtServedLastSeq(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-crash state, written directly: X's partial window (seqs 0-1)
	// was deadline-closed and served; a full window of reports (2-4)
	// followed and was still unserved at the kill.
	if _, _, err := j.Append(mkReading("X", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Append(mkReading("X", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendResult(TagResult{EPC: "X", FirstSeq: 0, LastSeq: 1}); err != nil {
		t.Fatal(err)
	}
	for _, rd := range fullWindow("X") { // seqs 2-4
		if _, _, err := j.Append(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureSink{}
	d := NewDaemon(echoProc{}, crashTestConfig(j2), cap)
	info, err := d.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.Suppressed != 1 || info.Requeued != 1 || info.OpenSessions != 0 {
		t.Fatalf("recovery = %+v, want 1 suppressed / 1 requeued / 0 open", info)
	}
	waitFor(t, 5*time.Second, "post-split window", func() bool { return len(cap.snapshot()) == 1 })
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr := cap.snapshot()[0]
	if tr.EPC != "X" || tr.FirstSeq != 2 || tr.Readings != 3 {
		t.Fatalf("recovered window = %+v, want (X,2) with the 3 unserved readings", tr)
	}
}

// TestDaemonTrippedJournalRetention: long-running journal-only mode
// must still rotate and prune — segments wholly before the first
// replay-owed report go, segments holding shed reports stay, and a
// restart recovers every shed window.
func TestDaemonTrippedJournalRetention(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour, SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashTestConfig(j)
	cfg.Breaker = BreakerConfig{Threshold: 3, Window: time.Minute}
	cap := &captureSink{}
	d := NewDaemon(echoProc{}, cfg, cap)

	for _, epc := range []string{"poison-1", "poison-2", "poison-3"} { // seqs 0-8
		for _, rd := range fullWindow(epc) {
			if err := d.Offer(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Sink emission happens after the ledger line and the meta unpin,
	// so three sunk results mean nothing pins the poison segments.
	waitFor(t, 5*time.Second, "poison results ledgered", func() bool {
		return d.Gauges().BreakerTripped && len(cap.snapshot()) == 3
	})

	// Nine shed reports (seqs 9-17) — three windows' worth. Rotations
	// while tripped must run retention: the poison segments below the
	// first shed report are pruned, the shed segments are pinned.
	for i := 0; i < 3; i++ {
		for _, rd := range fullWindow("shed-A") {
			if err := d.Offer(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := d.Metrics().ReportsJournalOnly.Load(); got != 9 {
		t.Fatalf("journal-only reports = %d, want 9", got)
	}
	// Segments: [8,9] [10,11] [12,13] [14,15] [16,17] + active = 6.
	// Without journal-only retention all 9 closed poison/shed segments
	// pile up (10 total); without the replay pin the shed segments
	// themselves would have been deleted.
	if got := j.Segments(); got != 6 {
		t.Fatalf("segments after shed rotations = %d, want 6", got)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour, SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	cap2 := &captureSink{}
	d2 := NewDaemon(echoProc{}, crashTestConfig(j2), cap2)
	info, err := d2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Seq 8 (poison-3's tail, its window served) is excised by its
	// ledger span; the three shed windows requeue and solve.
	if info.Requeued != 3 || info.Suppressed != 1 || info.OpenSessions != 0 {
		t.Fatalf("recovery = %+v, want 3 requeued / 1 suppressed / 0 open", info)
	}
	waitFor(t, 5*time.Second, "recovered shed windows", func() bool { return len(cap2.snapshot()) == 3 })
	if err := d2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := map[WindowKey]bool{}
	for _, tr := range cap2.snapshot() {
		got[WindowKey{EPC: tr.EPC, FirstSeq: tr.FirstSeq}] = true
	}
	for _, first := range []uint64{9, 12, 15} {
		if !got[WindowKey{EPC: "shed-A", FirstSeq: first}] {
			t.Fatalf("recovered windows = %v, want shed-A at 9, 12, 15", got)
		}
	}
}

// TestDaemonTrippedSweepKeepsSessions: while the breaker is tripped
// the deadline sweep must not push expired sessions into the poisoned
// solver — they stay open for a cooldown reset or the shutdown drain.
func TestDaemonTrippedSweepKeepsSessions(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Now()
	cfg := crashTestConfig(j)
	cfg.Breaker = BreakerConfig{Threshold: 3, Window: time.Minute}
	cfg.ExpireEvery = 5 * time.Millisecond
	cfg.Sessionizer.Dwell = time.Second
	cfg.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	cap := &captureSink{}
	d := NewDaemon(echoProc{}, cfg, cap)
	defer d.Shutdown(context.Background())

	if err := d.Offer(mkReading("quiet", 1, 0)); err != nil {
		t.Fatal(err)
	}
	for _, epc := range []string{"poison-1", "poison-2", "poison-3"} {
		for _, rd := range fullWindow(epc) {
			if err := d.Offer(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, "breaker trip", func() bool { return d.Gauges().BreakerTripped })
	results := len(cap.snapshot())

	// Blow way past the dwell deadline and let several sweeps run.
	mu.Lock()
	now = now.Add(time.Hour)
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	if g := d.Gauges(); g.OpenSessions != 1 {
		t.Fatalf("open sessions after tripped sweep = %d, want quiet's session kept", g.OpenSessions)
	}
	if got := len(cap.snapshot()); got != results {
		t.Fatalf("tripped sweep emitted %d extra results", got-results)
	}
}

// and quarantined while the daemon keeps solving its neighbors; three
// panics trip the breaker into shed-and-journal-only mode.
func TestDaemonPanicQuarantineAndBreaker(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureSink{}
	cfg := crashTestConfig(j)
	cfg.Breaker = BreakerConfig{Threshold: 3, Window: time.Minute}
	d := NewDaemon(echoProc{}, cfg, cap)
	defer d.Shutdown(context.Background())

	offerWindow := func(epc string) {
		t.Helper()
		for _, rd := range fullWindow(epc) {
			if err := d.Offer(rd); err != nil {
				t.Fatalf("Offer(%s): %v", epc, err)
			}
		}
	}

	// First poisoned window: isolated, quarantined, daemon keeps
	// serving the healthy tag after it.
	offerWindow("poison-1")
	offerWindow("ok-1")
	waitFor(t, 5*time.Second, "first panic + healthy result", func() bool {
		return d.Metrics().SolverPanics.Load() == 1 && d.Metrics().ResultsOK.Load() == 1
	})
	if got := d.Metrics().WindowsQuarantined.Load(); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	key := WindowKey{EPC: "poison-1", FirstSeq: 0}
	if _, err := os.Stat(j.QuarantinePath(key) + ".ndjson"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if rep, err := os.ReadFile(j.QuarantinePath(key) + ".panic.txt"); err != nil || !strings.Contains(string(rep), "synthetic") {
		t.Fatalf("panic report: %v %q", err, rep)
	}
	if d.Gauges().BreakerTripped {
		t.Fatal("breaker tripped after one panic")
	}

	// Two more poisoned windows trip the breaker.
	offerWindow("poison-2")
	offerWindow("poison-3")
	waitFor(t, 5*time.Second, "breaker trip", func() bool {
		return d.Gauges().BreakerTripped
	})
	if got := d.Metrics().BreakerTrips.Load(); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}

	// Tripped: reports are journaled, not sessionized or solved.
	beforeSeq := j.NextSeq()
	offerWindow("ok-2")
	if got := d.Metrics().ReportsJournalOnly.Load(); got != 3 {
		t.Fatalf("journal-only reports = %d, want 3", got)
	}
	if j.NextSeq() != beforeSeq+3 {
		t.Fatal("journal-only reports were not journaled")
	}
	if g := d.Gauges(); g.OpenSessions != 0 {
		t.Fatalf("tripped daemon opened a session: %+v", g)
	}
}
