package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"rfprism"
	"rfprism/internal/api"
	"rfprism/internal/mathx"
)

// EstimateOut is the JSON shape of a successful disentangled estimate
// (the canonical wire struct; see internal/api).
type EstimateOut = api.Estimate

// TagResult is one window's outcome as delivered to sinks: the window
// assembly metadata, the pipeline health summary and either the
// estimate or the error. It is the canonical /v1 wire struct (see
// internal/api) — the NDJSON sink, the journal's emission ledger, the
// snapshot store and every HTTP tier share the one shape.
type TagResult = api.TagResult

// makeTagResult merges a closed window's assembly metadata with its
// pipeline outcome.
func makeTagResult(cw ClosedWindow, r rfprism.WindowResult, at time.Time, latency time.Duration) TagResult {
	tr := TagResult{
		Schema:    api.Version,
		EPC:       cw.EPC,
		Seq:       cw.Seq,
		FirstSeq:  cw.FirstSeq,
		LastSeq:   cw.LastSeq,
		At:        at,
		Reason:    cw.Reason.String(),
		Readings:  len(cw.Readings),
		Channels:  cw.Channels,
		Antennas:  cw.Antennas,
		LatencyMS: float64(latency) / float64(time.Millisecond),
		Attempts:  r.Attempts(),
	}
	if h := r.Health(); h != nil {
		tr.Degraded = h.Degraded
		tr.DroppedAntennas = h.DroppedAntennas()
	}
	if spans := r.Spans(); len(spans) > 0 {
		tr.StageMS = make(map[string]float64, len(spans))
		for _, sp := range spans {
			tr.StageMS[string(sp.Stage)] += float64(sp.Duration) / float64(time.Millisecond)
		}
	}
	if r.Err != nil {
		tr.Err = r.Err.Error()
		return tr
	}
	est := r.Result.Estimate
	tr.Estimate = &EstimateOut{
		X:        est.Pos.X,
		Y:        est.Pos.Y,
		Z:        est.Pos.Z,
		AlphaDeg: mathx.Deg(est.Alpha),
		Kt:       est.Kt,
		Bt0:      est.Bt0,
	}
	tr.Confidence = makeConfidence(r.Result.Confidence, r.Health())
	return tr
}

// makeConfidence converts the solver's confidence block to its wire
// shape (nil in, nil out — the default pipeline runs without the
// likelihood layer).
func makeConfidence(c *rfprism.Confidence, h *rfprism.Health) *api.Confidence {
	if c == nil {
		return nil
	}
	out := &api.Confidence{
		SigmaPhase:      c.SigmaPhase,
		NormLogLik:      c.NormLogLik,
		PosCI90:         [3]float64{c.PosCI90.X, c.PosCI90.Y, c.PosCI90.Z},
		RadialCI90:      c.RadialCI90(),
		AlphaCI90Deg:    mathx.Deg(c.AlphaCI90),
		Sigma:           append([]float64(nil), c.Sigma...),
		AmbiguityMargin: c.AmbiguityMargin,
		AltBasins:       c.AltBasins,
	}
	if h != nil {
		for _, a := range h.Antennas {
			if a.Weight > 0 && a.Weight < 1 {
				out.Weights = append(out.Weights, api.AntennaWeight{ID: a.ID, Weight: a.Weight})
			}
		}
	}
	return out
}

// Sink consumes per-window results. Emit may be called from the
// daemon's result goroutine only, but Close may race a late Emit, so
// implementations guard their state. Emit errors are counted, not
// fatal: one misbehaving sink must not stall the pipeline.
type Sink interface {
	Emit(TagResult) error
	Close() error
}

// NDJSONSink writes one JSON line per result — the daemon's durable
// output and the replay mode's artifact. It does not own the
// underlying writer; the caller closes files.
type NDJSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewNDJSONSink wraps w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *NDJSONSink) Emit(r TagResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("ingest: ndjson sink: %w", err)
	}
	return nil
}

// Close implements Sink.
func (s *NDJSONSink) Close() error { return nil }

// RingSink keeps the last N results per tag in memory — the store
// behind GET /tags/{epc}. Reads and writes may race, so access is
// guarded.
type RingSink struct {
	mu   sync.RWMutex
	n    int
	tags map[string][]TagResult
}

// NewRingSink keeps up to n results per tag (minimum 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{n: n, tags: make(map[string][]TagResult)}
}

// Emit implements Sink.
func (s *RingSink) Emit(r TagResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ring := append(s.tags[r.EPC], r)
	if len(ring) > s.n {
		ring = ring[len(ring)-s.n:]
	}
	s.tags[r.EPC] = ring
	return nil
}

// Close implements Sink.
func (s *RingSink) Close() error { return nil }

// Latest returns a tag's most recent result.
func (s *RingSink) Latest(epc string) (TagResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ring := s.tags[epc]
	if len(ring) == 0 {
		return TagResult{}, false
	}
	return ring[len(ring)-1], true
}

// History returns a tag's buffered results, oldest first (a copy).
func (s *RingSink) History(epc string) []TagResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ring := s.tags[epc]
	if len(ring) == 0 {
		return nil
	}
	return append([]TagResult(nil), ring...)
}

// EPCs returns the known tags, sorted.
func (s *RingSink) EPCs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tags))
	for epc := range s.tags {
		out = append(out, epc)
	}
	sort.Strings(out)
	return out
}
