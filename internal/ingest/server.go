package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// maxReportLine bounds one NDJSON report line (a sim.Reading encodes
// to well under 1 KiB; the margin tolerates vendor extensions).
const maxReportLine = 1 << 20

// Server exposes the daemon over HTTP. The API is versioned under /v1:
//
//	POST /v1/ingest      NDJSON reports, one sim.Reading per line
//	GET  /v1/tags        known EPCs
//	GET  /v1/tags/{epc}  buffered results for one tag (?latest=1 for one)
//
// The original unversioned paths (/ingest, /tags, /tags/{epc}) remain
// mounted as aliases answering byte-identical payloads, so pre-/v1
// clients keep working. Operational endpoints are unversioned by
// convention:
//
//	GET  /healthz     liveness: 200 as long as the process serves,
//	                  with the queue/journal/breaker snapshot
//	GET  /readyz      readiness: 503 while draining or while the
//	                  panic circuit breaker is tripped
//	GET  /metrics     Prometheus text format
//
// Liveness and readiness are deliberately distinct: a draining or
// breaker-tripped daemon is still alive (restarting it would lose the
// drain or the journal-only stream) but must be taken out of the load
// balancer rotation — /healthz keeps answering 200 while /readyz
// fails.
//
// Every error response is the uniform JSON envelope
// {"error","code","retry_after_ms"} (ingest errors add accepted/line so
// clients resume from the first unaccepted report). retry_after_ms is 0
// except under backpressure. The only exception is the Go mux's own 405
// (method not allowed) plain-text reply.
//
// Backpressure is explicit: when the window queue is full, ingest
// answers 429 with a jittered Retry-After header (mirrored in
// retry_after_ms) and reports how many lines were accepted before the
// refusal.
type Server struct {
	d    *Daemon
	ring *RingSink
	mux  *http.ServeMux
	log  *slog.Logger
	// jitter yields uniform [0,1) draws for Retry-After spreading;
	// tests pin it.
	jitter func() float64
}

// NewServer wires a daemon and its query ring. ring may be nil when
// the deployment has no query endpoint (pure NDJSON export). Request
// logs go to the daemon's logger.
func NewServer(d *Daemon, ring *RingSink) *Server {
	s := &Server{d: d, ring: ring, mux: http.NewServeMux(), log: d.Logger(), jitter: rand.Float64}
	for _, prefix := range []string{"/v1", ""} {
		s.mux.HandleFunc("POST "+prefix+"/ingest", s.handleIngest)
		s.mux.HandleFunc("GET "+prefix+"/tags", s.handleTags)
		s.mux.HandleFunc("GET "+prefix+"/tags/{epc}", s.handleTag)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Catch-all: unknown paths get the JSON envelope, not the mux's
	// plain-text 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint: %s", r.URL.Path), 0)
	})
	return s
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Error codes of the uniform envelope.
const (
	CodeBadReport    = "bad_report"    // malformed or invalid report line
	CodeBackpressure = "backpressure"  // queue full, retry after the advertised pause
	CodeDraining     = "draining"      // daemon is shutting down
	CodeNotFound     = "not_found"     // unknown endpoint or tag
	CodeNoRing       = "no_query_ring" // daemon runs without a query ring
)

// apiError is the uniform JSON error envelope. Every non-2xx response
// from every endpoint carries it; "retry_after_ms" is non-zero only
// under backpressure. Ingest errors add "accepted"/"line" so clients
// resume from the first unaccepted report.
type apiError struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
	Accepted     int    `json:"accepted,omitempty"`
	Line         int    `json:"line,omitempty"`
}

// ingestReply is the JSON body of a successful ingest.
type ingestReply struct {
	Accepted int `json:"accepted"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	writeJSON(w, status, apiError{Error: msg, Code: code, RetryAfterMS: retryAfter.Milliseconds()})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	accepted, line := 0, 0
	fail := func(status int, code string, retryAfter time.Duration, msg string) {
		s.log.Debug("ingest refused", "path", r.URL.Path, "code", code,
			"accepted", accepted, "line", line, "err", msg)
		writeJSON(w, status, apiError{
			Error: msg, Code: code, RetryAfterMS: retryAfter.Milliseconds(),
			Accepted: accepted, Line: line,
		})
	}
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		rd, err := decodeReading(raw)
		if err != nil {
			fail(http.StatusBadRequest, CodeBadReport, 0, fmt.Sprintf("line %d: %v", line, err))
			return
		}
		switch err := s.d.Offer(rd); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBusy):
			secs := retryAfterSeconds(s.d.RetryAfter(), s.jitter())
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			fail(http.StatusTooManyRequests, CodeBackpressure, time.Duration(secs)*time.Second, err.Error())
			return
		case errors.Is(err, ErrDraining):
			fail(http.StatusServiceUnavailable, CodeDraining, 0, err.Error())
			return
		default:
			fail(http.StatusBadRequest, CodeBadReport, 0, fmt.Sprintf("line %d: %v", line, err))
			return
		}
	}
	if err := sc.Err(); err != nil {
		fail(http.StatusBadRequest, CodeBadReport, 0, err.Error())
		return
	}
	s.log.Debug("ingest accepted", "path", r.URL.Path, "accepted", accepted)
	writeJSON(w, http.StatusAccepted, ingestReply{Accepted: accepted})
}

func (s *Server) handleTags(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.writeError(w, http.StatusNotFound, CodeNoRing, "no query ring configured", 0)
		return
	}
	epcs := s.ring.EPCs()
	s.log.Debug("tags listed", "path", r.URL.Path, "count", len(epcs))
	writeJSON(w, http.StatusOK, map[string]any{"tags": epcs})
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.writeError(w, http.StatusNotFound, CodeNoRing, "no query ring configured", 0)
		return
	}
	epc := r.PathValue("epc")
	if r.URL.Query().Get("latest") != "" {
		res, ok := s.ring.Latest(epc)
		if !ok {
			s.log.Debug("tag query missed", "path", r.URL.Path, "epc", epc)
			s.writeError(w, http.StatusNotFound, CodeNotFound, "unknown tag", 0)
			return
		}
		s.log.Debug("tag latest served", "path", r.URL.Path, "epc", epc)
		writeJSON(w, http.StatusOK, res)
		return
	}
	history := s.ring.History(epc)
	if len(history) == 0 {
		s.log.Debug("tag query missed", "path", r.URL.Path, "epc", epc)
		s.writeError(w, http.StatusNotFound, CodeNotFound, "unknown tag", 0)
		return
	}
	s.log.Debug("tag history served", "path", r.URL.Path, "epc", epc, "results", len(history))
	writeJSON(w, http.StatusOK, map[string]any{"epc": epc, "results": history})
}

// retryAfterSeconds converts the advertised backpressure pause into a
// jittered integer Retry-After value: uniform in [0.5, 1.5]× the base,
// floored at 1 s. Without the spread, every client refused in the same
// burst would sleep the same pause and stampede back in lockstep.
func retryAfterSeconds(base time.Duration, u float64) int {
	secs := base.Seconds() * (0.5 + u)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	return n
}

// healthState names the daemon's condition for health bodies.
func healthState(g Gauges) (state string, ready bool) {
	switch {
	case g.Draining:
		return "draining", false
	case g.BreakerTripped:
		return "breaker-tripped", false
	default:
		return "ok", true
	}
}

// handleHealthz is liveness: it answers 200 whenever the process can
// serve at all — a draining or breaker-tripped daemon must NOT be
// restarted by an orchestrator, only depublished (that is /readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	body := map[string]any{
		"status":           state,
		"ready":            ready,
		"queueDepth":       g.QueueDepth,
		"queueCapacity":    g.QueueCap,
		"openSessions":     g.OpenSessions,
		"bufferedReadings": g.BufferedReadings,
	}
	if g.JournalEnabled {
		body["journal"] = map[string]any{
			"nextSeq":   g.JournalNextSeq,
			"syncedSeq": g.JournalSyncedSeq,
			"segments":  g.JournalSegments,
		}
	}
	if rec := s.d.Recovery(); rec.Ran {
		body["recovery"] = map[string]any{
			"replayedReports": rec.Replay.Reports,
			"replayedTo":      rec.ReplayedTo,
			"suppressed":      rec.Suppressed,
			"requeued":        rec.Requeued,
			"openSessions":    rec.OpenSessions,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 503 takes the instance out of rotation
// while it drains or sheds under a tripped panic breaker.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: state, Code: "not_ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": state, "ready": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.d.Metrics().WriteText(w, s.d.cfg.Now(), s.d.Gauges())
}
