package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// maxReportLine bounds one NDJSON report line (a sim.Reading encodes
// to well under 1 KiB; the margin tolerates vendor extensions).
const maxReportLine = 1 << 20

// Server exposes the daemon over HTTP:
//
//	POST /ingest      NDJSON reports, one sim.Reading per line
//	GET  /tags        known EPCs
//	GET  /tags/{epc}  buffered results for one tag (?latest=1 for one)
//	GET  /healthz     liveness: 200 as long as the process serves,
//	                  with the queue/journal/breaker snapshot
//	GET  /readyz      readiness: 503 while draining or while the
//	                  panic circuit breaker is tripped
//	GET  /metrics     Prometheus text format
//
// Liveness and readiness are deliberately distinct: a draining or
// breaker-tripped daemon is still alive (restarting it would lose the
// drain or the journal-only stream) but must be taken out of the load
// balancer rotation — /healthz keeps answering 200 while /readyz
// fails.
//
// Backpressure is explicit: when the window queue is full, /ingest
// answers 429 with a jittered Retry-After header and reports how many
// lines were accepted before the refusal, so a well-behaved client
// resumes from the first unaccepted line.
type Server struct {
	d    *Daemon
	ring *RingSink
	mux  *http.ServeMux
	// jitter yields uniform [0,1) draws for Retry-After spreading;
	// tests pin it.
	jitter func() float64
}

// NewServer wires a daemon and its query ring. ring may be nil when
// the deployment has no query endpoint (pure NDJSON export).
func NewServer(d *Daemon, ring *RingSink) *Server {
	s := &Server{d: d, ring: ring, mux: http.NewServeMux(), jitter: rand.Float64}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /tags", s.handleTags)
	s.mux.HandleFunc("GET /tags/{epc}", s.handleTag)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ingestReply is the JSON body of every /ingest response.
type ingestReply struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	Line     int    `json:"line,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	accepted, line := 0, 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		rd, err := decodeReading(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ingestReply{
				Accepted: accepted, Line: line,
				Error: fmt.Sprintf("line %d: %v", line, err),
			})
			return
		}
		switch err := s.d.Offer(rd); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBusy):
			secs := retryAfterSeconds(s.d.RetryAfter(), s.jitter())
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, ingestReply{
				Accepted: accepted, Line: line, Error: err.Error(),
			})
			return
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, ingestReply{
				Accepted: accepted, Line: line, Error: err.Error(),
			})
			return
		default:
			writeJSON(w, http.StatusBadRequest, ingestReply{
				Accepted: accepted, Line: line,
				Error: fmt.Sprintf("line %d: %v", line, err),
			})
			return
		}
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, ingestReply{
			Accepted: accepted, Error: err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusAccepted, ingestReply{Accepted: accepted})
}

func (s *Server) handleTags(w http.ResponseWriter, _ *http.Request) {
	if s.ring == nil {
		http.Error(w, "no query ring configured", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tags": s.ring.EPCs()})
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		http.Error(w, "no query ring configured", http.StatusNotFound)
		return
	}
	epc := r.PathValue("epc")
	if r.URL.Query().Get("latest") != "" {
		res, ok := s.ring.Latest(epc)
		if !ok {
			http.Error(w, "unknown tag", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	history := s.ring.History(epc)
	if len(history) == 0 {
		http.Error(w, "unknown tag", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epc": epc, "results": history})
}

// retryAfterSeconds converts the advertised backpressure pause into a
// jittered integer Retry-After value: uniform in [0.5, 1.5]× the base,
// floored at 1 s. Without the spread, every client refused in the same
// burst would sleep the same pause and stampede back in lockstep.
func retryAfterSeconds(base time.Duration, u float64) int {
	secs := base.Seconds() * (0.5 + u)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	return n
}

// healthState names the daemon's condition for health bodies.
func healthState(g Gauges) (state string, ready bool) {
	switch {
	case g.Draining:
		return "draining", false
	case g.BreakerTripped:
		return "breaker-tripped", false
	default:
		return "ok", true
	}
}

// handleHealthz is liveness: it answers 200 whenever the process can
// serve at all — a draining or breaker-tripped daemon must NOT be
// restarted by an orchestrator, only depublished (that is /readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	body := map[string]any{
		"status":           state,
		"ready":            ready,
		"queueDepth":       g.QueueDepth,
		"queueCapacity":    g.QueueCap,
		"openSessions":     g.OpenSessions,
		"bufferedReadings": g.BufferedReadings,
	}
	if g.JournalEnabled {
		body["journal"] = map[string]any{
			"nextSeq":   g.JournalNextSeq,
			"syncedSeq": g.JournalSyncedSeq,
			"segments":  g.JournalSegments,
		}
	}
	if rec := s.d.Recovery(); rec.Ran {
		body["recovery"] = map[string]any{
			"replayedReports": rec.Replay.Reports,
			"replayedTo":      rec.ReplayedTo,
			"suppressed":      rec.Suppressed,
			"requeued":        rec.Requeued,
			"openSessions":    rec.OpenSessions,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 503 takes the instance out of rotation
// while it drains or sheds under a tripped panic breaker.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"status": state, "ready": ready})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.d.Metrics().WriteText(w, s.d.cfg.Now(), s.d.Gauges())
}
