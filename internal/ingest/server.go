package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rfprism/internal/sim"
)

// maxReportLine bounds one NDJSON report line (a sim.Reading encodes
// to well under 1 KiB; the margin tolerates vendor extensions).
const maxReportLine = 1 << 20

// Server exposes the daemon over HTTP:
//
//	POST /ingest      NDJSON reports, one sim.Reading per line
//	GET  /tags        known EPCs
//	GET  /tags/{epc}  buffered results for one tag (?latest=1 for one)
//	GET  /healthz     liveness + queue snapshot
//	GET  /metrics     Prometheus text format
//
// Backpressure is explicit: when the window queue is full, /ingest
// answers 429 with a Retry-After header and reports how many lines
// were accepted before the refusal, so a well-behaved client resumes
// from the first unaccepted line.
type Server struct {
	d    *Daemon
	ring *RingSink
	mux  *http.ServeMux
}

// NewServer wires a daemon and its query ring. ring may be nil when
// the deployment has no query endpoint (pure NDJSON export).
func NewServer(d *Daemon, ring *RingSink) *Server {
	s := &Server{d: d, ring: ring, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /tags", s.handleTags)
	s.mux.HandleFunc("GET /tags/{epc}", s.handleTag)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ingestReply is the JSON body of every /ingest response.
type ingestReply struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	Line     int    `json:"line,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	accepted, line := 0, 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rd sim.Reading
		if err := json.Unmarshal(raw, &rd); err != nil {
			writeJSON(w, http.StatusBadRequest, ingestReply{
				Accepted: accepted, Line: line,
				Error: fmt.Sprintf("line %d: %v", line, err),
			})
			return
		}
		switch err := s.d.Offer(rd); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBusy):
			secs := int(s.d.RetryAfter().Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, ingestReply{
				Accepted: accepted, Line: line, Error: err.Error(),
			})
			return
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, ingestReply{
				Accepted: accepted, Line: line, Error: err.Error(),
			})
			return
		default:
			writeJSON(w, http.StatusBadRequest, ingestReply{
				Accepted: accepted, Line: line,
				Error: fmt.Sprintf("line %d: %v", line, err),
			})
			return
		}
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, ingestReply{
			Accepted: accepted, Error: err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusAccepted, ingestReply{Accepted: accepted})
}

func (s *Server) handleTags(w http.ResponseWriter, _ *http.Request) {
	if s.ring == nil {
		http.Error(w, "no query ring configured", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tags": s.ring.EPCs()})
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		http.Error(w, "no query ring configured", http.StatusNotFound)
		return
	}
	epc := r.PathValue("epc")
	if r.URL.Query().Get("latest") != "" {
		res, ok := s.ring.Latest(epc)
		if !ok {
			http.Error(w, "unknown tag", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	history := s.ring.History(epc)
	if len(history) == 0 {
		http.Error(w, "unknown tag", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epc": epc, "results": history})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	status := http.StatusOK
	state := "ok"
	if g.Draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":           state,
		"queueDepth":       g.QueueDepth,
		"queueCapacity":    g.QueueCap,
		"openSessions":     g.OpenSessions,
		"bufferedReadings": g.BufferedReadings,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.d.Metrics().WriteText(w, s.d.cfg.Now(), s.d.Gauges())
}
