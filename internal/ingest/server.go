package ingest

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rfprism/internal/api"
)

// maxReportLine bounds one NDJSON report line (a sim.Reading encodes
// to well under 1 KiB; the margin tolerates vendor extensions).
const maxReportLine = 1 << 20

// Server exposes the daemon over HTTP. The API is versioned under /v1:
//
//	POST /v1/ingest      NDJSON reports, one sim.Reading per line
//	GET  /v1/tags        known EPCs
//	GET  /v1/tags/{epc}  buffered results for one tag (?latest=1 for one)
//
// The original unversioned paths (/ingest, /tags, /tags/{epc}) remain
// mounted as aliases answering byte-identical payloads, so pre-/v1
// clients keep working. Operational endpoints are unversioned by
// convention:
//
//	GET  /healthz     liveness: 200 as long as the process serves,
//	                  with the queue/journal/breaker snapshot
//	GET  /readyz      readiness: 503 while draining or while the
//	                  panic circuit breaker is tripped
//	GET  /metrics     Prometheus text format
//
// Liveness and readiness are deliberately distinct: a draining or
// breaker-tripped daemon is still alive (restarting it would lose the
// drain or the journal-only stream) but must be taken out of the load
// balancer rotation — /healthz keeps answering 200 while /readyz
// fails.
//
// Every error response is the uniform JSON envelope
// {"error","code","retry_after_ms"} (ingest errors add accepted/line so
// clients resume from the first unaccepted report). retry_after_ms is 0
// except under backpressure. The only exception is the Go mux's own 405
// (method not allowed) plain-text reply.
//
// Backpressure is explicit: when the window queue is full, ingest
// answers 429 with a jittered Retry-After header (mirrored in
// retry_after_ms) and reports how many lines were accepted before the
// refusal.
type Server struct {
	d     *Daemon
	store TagStore
	mux   *http.ServeMux
	log   *slog.Logger
	// dedup holds the per-stream high-water marks behind the
	// X-RFPrism-Stream exactly-once retry protocol (dedup.go).
	dedup *streamDedup
	// jitter yields uniform [0,1) draws for Retry-After spreading;
	// tests pin it.
	jitter func() float64
}

// TagStore is the query surface GET /v1/tags reads from. RingSink is
// the in-memory implementation; serve.Store is the epoch-swapped
// snapshot store that replaces it in the daemon.
type TagStore interface {
	Latest(epc string) (TagResult, bool)
	History(epc string) []TagResult
	EPCs() []string
}

// EpochStore is implemented by stores with snapshot generations: reads
// then advertise the epoch in the X-RFPrism-Epoch header so clients
// can start a since=<epoch> subscription without a race.
type EpochStore interface {
	Epoch() uint64
}

// TagWaiter is implemented by stores that support long-poll: WaitTag
// blocks until the tag has a result newer than since, wait elapses, or
// ctx ends. ok reports a change; epoch is the tag's epoch either way.
type TagWaiter interface {
	WaitTag(ctx context.Context, epc string, since uint64, wait time.Duration) (TagResult, uint64, bool)
}

// NewServer wires a daemon and its query store. store may be nil when
// the deployment has no query endpoint (pure NDJSON export). Request
// logs go to the daemon's logger.
func NewServer(d *Daemon, store TagStore) *Server {
	if rs, ok := store.(*RingSink); ok && rs == nil {
		store = nil // tolerate a typed-nil ring from optional wiring
	}
	s := &Server{d: d, store: store, mux: http.NewServeMux(), log: d.Logger(),
		dedup: newStreamDedup(d.cfg.Now), jitter: rand.Float64}
	for _, prefix := range []string{"/v1", ""} {
		// The unversioned aliases serve byte-identical bodies through
		// the same handlers, but advertise their successor: responses
		// carry a Deprecation header and a Link to the /v1 path.
		wrap := func(h http.HandlerFunc) http.HandlerFunc { return h }
		if prefix == "" {
			wrap = api.Deprecated
		}
		s.mux.HandleFunc("POST "+prefix+"/ingest", wrap(s.handleIngest))
		s.mux.HandleFunc("GET "+prefix+"/tags", wrap(s.handleTags))
		s.mux.HandleFunc("GET "+prefix+"/tags/{epc}", wrap(s.handleTag))
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Catch-all: unknown paths get the JSON envelope, not the mux's
	// plain-text 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint: %s", r.URL.Path), 0)
	})
	return s
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Error codes of the uniform envelope.
const (
	CodeBadReport      = "bad_report"       // malformed or invalid report line
	CodeBackpressure   = "backpressure"     // queue full, retry after the advertised pause
	CodeDraining       = "draining"         // daemon is shutting down
	CodeNotFound       = "not_found"        // unknown endpoint or tag
	CodeNoRing         = "no_query_ring"    // daemon runs without a query ring
	CodeBadParam       = "bad_param"        // malformed query parameter
	CodeReportTooLarge = "report_too_large" // one NDJSON line exceeds maxReportLine (413)
)

// apiError is the uniform JSON error envelope (the canonical wire
// struct; see internal/api). Every non-2xx response from every
// endpoint carries it; "retry_after_ms" is non-zero only under
// backpressure. Ingest errors add "accepted"/"line" so clients resume
// from the first unaccepted report.
type apiError = api.Error

// ingestReply is the JSON body of a successful ingest.
type ingestReply = api.IngestReply

func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	api.WriteError(w, status, code, msg, retryAfter)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxReportLine)
	accepted, line := 0, 0
	fail := func(status int, code string, retryAfter time.Duration, msg string) {
		s.log.Debug("ingest refused", "path", r.URL.Path, "code", code,
			"accepted", accepted, "line", line, "err", msg)
		writeJSON(w, status, apiError{
			Schema: api.Version,
			Error:  msg, Code: code, RetryAfterMS: retryAfter.Milliseconds(),
			Accepted: accepted, Line: line,
		})
	}
	// Stream dedup (dedup.go): when the request names its stream and
	// stamps line positions, lines at or below the stream's high-water
	// mark were offered by an earlier delivery — count them accepted
	// without re-offering, so transport retries are exactly-once.
	streamID := r.Header.Get(HeaderStream)
	if len(streamID) > MaxStreamID {
		fail(http.StatusBadRequest, CodeBadParam, 0, "stream id too long")
		return
	}
	var pos *StreamPos
	if streamID != "" {
		pos = &StreamPos{base: 1} // default: positions are line order
		if raw := r.Header.Get(HeaderStreamPos); raw != "" {
			var err error
			if pos, err = ParseStreamPos(raw); err != nil {
				fail(http.StatusBadRequest, CodeBadParam, 0, err.Error())
				return
			}
		}
	}
	highWater := uint64(0)
	if streamID != "" {
		highWater = s.dedup.highWater(streamID)
	}
	idx := 0 // non-blank line index, drives position lookup
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		linePos := uint64(0)
		if pos != nil {
			p, err := pos.At(idx)
			if err != nil {
				fail(http.StatusBadRequest, CodeBadParam, 0, err.Error())
				return
			}
			linePos = p
		}
		idx++
		if linePos != 0 && linePos <= highWater {
			// Already offered by an earlier delivery of this stream: a
			// retried sub-batch, a resume overshoot. Skip, still accept.
			accepted++
			s.d.Metrics().ReportsDeduped.Inc()
			continue
		}
		rd, err := decodeReading(raw)
		if err != nil {
			fail(http.StatusBadRequest, CodeBadReport, 0, fmt.Sprintf("line %d: %v", line, err))
			return
		}
		switch err := s.d.Offer(rd); {
		case err == nil:
			accepted++
			if linePos != 0 {
				s.dedup.advance(streamID, linePos)
			}
		case errors.Is(err, ErrBusy):
			secs := retryAfterSeconds(s.d.RetryAfter(), s.jitter())
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			fail(http.StatusTooManyRequests, CodeBackpressure, time.Duration(secs)*time.Second, err.Error())
			return
		case errors.Is(err, ErrDraining):
			fail(http.StatusServiceUnavailable, CodeDraining, 0, err.Error())
			return
		default:
			fail(http.StatusBadRequest, CodeBadReport, 0, fmt.Sprintf("line %d: %v", line, err))
			return
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// Typed 413: the offending line starts past everything
			// accepted so far; a client resumes after shrinking it.
			// "line" is the resume position (the oversized line
			// itself), matching the router's envelope.
			line++
			fail(http.StatusRequestEntityTooLarge, CodeReportTooLarge, 0,
				fmt.Sprintf("line %d exceeds the %d-byte report line limit", line, maxReportLine))
			return
		}
		fail(http.StatusBadRequest, CodeBadReport, 0, err.Error())
		return
	}
	s.log.Debug("ingest accepted", "path", r.URL.Path, "accepted", accepted)
	writeJSON(w, http.StatusAccepted, ingestReply{Schema: api.Version, Accepted: accepted})
}

// setEpochHeader advertises the store's snapshot epoch so a client can
// open a since=<epoch> subscription with no gap after a plain read.
func (s *Server) setEpochHeader(w http.ResponseWriter) {
	if es, ok := s.store.(EpochStore); ok {
		w.Header().Set("X-RFPrism-Epoch", strconv.FormatUint(es.Epoch(), 10))
	}
}

// PageEPCs applies ?limit=&cursor= pagination to a sorted EPC list:
// the page starts strictly after cursor (the last EPC of the previous
// page) and holds at most limit entries; next is the cursor for the
// following page ("" when exhausted). limit <= 0 means everything
// after the cursor. Shared with the router so both tiers page
// identically.
func PageEPCs(epcs []string, limit int, cursor string) (page []string, next string) {
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(epcs, cursor)
		if start < len(epcs) && epcs[start] == cursor {
			start++
		}
	}
	end := len(epcs)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page = epcs[start:end]
	if end < len(epcs) && len(page) > 0 {
		next = page[len(page)-1]
	}
	return page, next
}

func (s *Server) handleTags(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, http.StatusNotFound, CodeNoRing, "no query ring configured", 0)
		return
	}
	epcs := s.store.EPCs()
	s.setEpochHeader(w)
	q := r.URL.Query()
	cursor := api.Cursor(q)
	if q.Get("limit") == "" && cursor == "" {
		// Unpaged shape: the pre-pagination field set plus the schema
		// stamp.
		s.log.Debug("tags listed", "path", r.URL.Path, "count", len(epcs))
		writeJSON(w, http.StatusOK, api.TagList{Schema: api.Version, Tags: epcs})
		return
	}
	limit, perr := api.ParseLimit(q)
	if perr != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadParam, perr.Error(), 0)
		return
	}
	page, next := PageEPCs(epcs, limit, cursor)
	total := len(epcs)
	reply := api.TagList{Schema: api.Version, Tags: page, Count: &total, Next: next}
	s.log.Debug("tags page served", "path", r.URL.Path, "page", len(page), "count", total)
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, http.StatusNotFound, CodeNoRing, "no query ring configured", 0)
		return
	}
	epc := r.PathValue("epc")
	q := r.URL.Query()
	if waitRaw := q.Get("wait"); waitRaw != "" {
		s.handleTagWait(w, r, epc, waitRaw)
		return
	}
	if q.Get("latest") != "" {
		res, ok := s.store.Latest(epc)
		if !ok {
			s.log.Debug("tag query missed", "path", r.URL.Path, "epc", epc)
			s.writeError(w, http.StatusNotFound, CodeNotFound, "unknown tag", 0)
			return
		}
		s.setEpochHeader(w)
		s.log.Debug("tag latest served", "path", r.URL.Path, "epc", epc)
		writeJSON(w, http.StatusOK, res)
		return
	}
	history := s.store.History(epc)
	if len(history) == 0 {
		s.log.Debug("tag query missed", "path", r.URL.Path, "epc", epc)
		s.writeError(w, http.StatusNotFound, CodeNotFound, "unknown tag", 0)
		return
	}
	s.setEpochHeader(w)
	s.log.Debug("tag history served", "path", r.URL.Path, "epc", epc, "results", len(history))
	writeJSON(w, http.StatusOK, api.TagHistory{Schema: api.Version, EPC: epc, Results: history})
}

// tagWaitReply is the long-poll response body. result is present only
// when changed.
type tagWaitReply = api.WaitReply

// handleTagWait serves GET /v1/tags/{epc}?wait=30s&since=<epoch>: it
// holds the request until the tag changes past since or wait elapses,
// so a poller fleet costs one parked request each instead of a poll
// storm. Requires a TagWaiter store (the serve tier).
func (s *Server) handleTagWait(w http.ResponseWriter, r *http.Request, epc, waitRaw string) {
	tw, ok := s.store.(TagWaiter)
	if !ok {
		s.writeError(w, http.StatusBadRequest, CodeBadParam, "long-poll not supported by this store", 0)
		return
	}
	wait, perr := api.ParseWait(waitRaw)
	if perr != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadParam, perr.Error(), 0)
		return
	}
	since, perr := api.ParseSince(r.URL.Query())
	if perr != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadParam, perr.Error(), 0)
		return
	}
	res, epoch, changed := tw.WaitTag(r.Context(), epc, since, wait)
	w.Header().Set("X-RFPrism-Epoch", strconv.FormatUint(epoch, 10))
	reply := tagWaitReply{Schema: api.Version, Epoch: epoch, Changed: changed}
	if changed {
		reply.Result = &res
	}
	s.log.Debug("long-poll answered", "path", r.URL.Path, "epc", epc,
		"since", since, "epoch", epoch, "changed", changed)
	writeJSON(w, http.StatusOK, reply)
}

// retryAfterSeconds converts the advertised backpressure pause into a
// jittered integer Retry-After value: uniform in [0.5, 1.5]× the base,
// floored at 1 s. Without the spread, every client refused in the same
// burst would sleep the same pause and stampede back in lockstep.
func retryAfterSeconds(base time.Duration, u float64) int {
	secs := base.Seconds() * (0.5 + u)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	return n
}

// healthState names the daemon's condition for health bodies.
func healthState(g Gauges) (state string, ready bool) {
	switch {
	case g.Draining:
		return "draining", false
	case g.BreakerTripped:
		return "breaker-tripped", false
	default:
		return "ok", true
	}
}

// handleHealthz is liveness: it answers 200 whenever the process can
// serve at all — a draining or breaker-tripped daemon must NOT be
// restarted by an orchestrator, only depublished (that is /readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	body := map[string]any{
		"status":           state,
		"ready":            ready,
		"queueDepth":       g.QueueDepth,
		"queueCapacity":    g.QueueCap,
		"openSessions":     g.OpenSessions,
		"bufferedReadings": g.BufferedReadings,
	}
	if g.JournalEnabled {
		body["journal"] = map[string]any{
			"nextSeq":   g.JournalNextSeq,
			"syncedSeq": g.JournalSyncedSeq,
			"segments":  g.JournalSegments,
		}
	}
	if rec := s.d.Recovery(); rec.Ran {
		body["recovery"] = map[string]any{
			"replayedReports": rec.Replay.Reports,
			"replayedTo":      rec.ReplayedTo,
			"suppressed":      rec.Suppressed,
			"requeued":        rec.Requeued,
			"openSessions":    rec.OpenSessions,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 503 takes the instance out of rotation
// while it drains or sheds under a tripped panic breaker.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	g := s.d.Gauges()
	state, ready := healthState(g)
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Schema: api.Version, Error: state, Code: "not_ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": state, "ready": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.d.Metrics().WriteText(w, s.d.cfg.Now(), s.d.Gauges())
}
