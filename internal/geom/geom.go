// Package geom provides the small amount of 2D/3D vector geometry that
// RF-Prism's antenna frames, propagation distances and region
// bucketing need.
package geom

import "math"

// Vec2 is a 2D point or direction.
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v − o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Norm() }

// Unit returns v normalized to length 1; the zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the polar angle of v in radians.
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// FromAngle returns the unit vector at the given polar angle.
func FromAngle(rad float64) Vec2 {
	return Vec2{math.Cos(rad), math.Sin(rad)}
}

// Vec3 is a 3D point or direction.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v − o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v×o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// Unit returns v normalized to length 1; the zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// FromSpherical returns the unit vector with azimuth φ (from +X toward
// +Y) and elevation θ (from the XY plane toward +Z), both in radians.
func FromSpherical(azimuth, elevation float64) Vec3 {
	ce := math.Cos(elevation)
	return Vec3{
		X: ce * math.Cos(azimuth),
		Y: ce * math.Sin(azimuth),
		Z: math.Sin(elevation),
	}
}

// Spherical returns the azimuth and elevation of v (assumed nonzero).
func (v Vec3) Spherical() (azimuth, elevation float64) {
	azimuth = math.Atan2(v.Y, v.X)
	elevation = math.Atan2(v.Z, math.Hypot(v.X, v.Y))
	return azimuth, elevation
}

// Frame is the orthonormal (U, V) polarization basis of a
// circularly-polarized reader antenna: U is the antenna's horizontal
// unit vector and V its vertical unit vector, both orthogonal to the
// boresight direction W.
type Frame struct {
	U, V, W Vec3
}

// NewFrame builds an antenna frame from a boresight direction. The
// horizontal axis U is chosen in the ground plane (perpendicular to
// both boresight and global +Z) and V completes the right-handed set.
// For a vertical boresight the frame falls back to the X axis for U.
func NewFrame(boresight Vec3) Frame {
	w := boresight.Unit()
	up := Vec3{0, 0, 1}
	u := up.Cross(w)
	if u.Norm() < 1e-9 {
		u = Vec3{1, 0, 0}
	}
	u = u.Unit()
	v := w.Cross(u).Unit()
	return Frame{U: u, V: v, W: w}
}

// Region buckets a tag position by its mean distance to the antennas,
// mirroring the paper's near / medium / far partition of the 2 m × 2 m
// working area.
type Region int

// Region values. Start at 1 so the zero value is invalid.
const (
	RegionNear Region = iota + 1
	RegionMedium
	RegionFar
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionNear:
		return "near"
	case RegionMedium:
		return "medium"
	case RegionFar:
		return "far"
	default:
		return "unknown"
	}
}

// ClassifyRegion returns the region of a point given the mean
// tag-antenna distance and the near/far thresholds in meters.
func ClassifyRegion(meanDist, nearMax, mediumMax float64) Region {
	switch {
	case meanDist <= nearMax:
		return RegionNear
	case meanDist <= mediumMax:
		return RegionMedium
	default:
		return RegionFar
	}
}
