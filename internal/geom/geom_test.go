package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Ops(t *testing.T) {
	a := Vec2{3, 4}
	b := Vec2{1, -2}
	if got := a.Add(b); got != (Vec2{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -5 {
		t.Errorf("Dot = %g", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Sqrt(4+36)) > 1e-12 {
		t.Errorf("Dist = %g", got)
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestVec2Angle(t *testing.T) {
	for _, deg := range []float64{0, 30, 90, 179, -45} {
		rad := deg * math.Pi / 180
		v := FromAngle(rad)
		if math.Abs(v.Norm()-1) > 1e-12 {
			t.Fatalf("FromAngle(%g) not unit", deg)
		}
		if got := v.Angle(); math.Abs(got-rad) > 1e-12 {
			t.Fatalf("Angle round trip %g -> %g", rad, got)
		}
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %g", got)
	}
	if got := a.Sub(b).Norm(); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Errorf("Sub/Norm = %g", got)
	}
	if got := (Vec3{}).Unit(); got != (Vec3{}) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		bound := func(v float64) bool { return math.IsNaN(v) || math.Abs(v) > 1e6 }
		if bound(ax) || bound(ay) || bound(az) || bound(bx) || bound(by) || bound(bz) {
			return true
		}
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := a.Cross(b)
		scale := math.Max(a.Norm()*b.Norm(), 1)
		return math.Abs(c.Dot(a)) < 1e-6*scale && math.Abs(c.Dot(b)) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	f := func(az, el float64) bool {
		if math.IsNaN(az) || math.IsNaN(el) {
			return true
		}
		az = math.Mod(az, math.Pi) // stay away from the ±π seam
		el = math.Mod(el, math.Pi/2) * 0.99
		v := FromSpherical(az, el)
		if math.Abs(v.Norm()-1) > 1e-9 {
			return false
		}
		gotAz, gotEl := v.Spherical()
		return math.Abs(math.Atan2(math.Sin(gotAz-az), math.Cos(gotAz-az))) < 1e-9 &&
			math.Abs(gotEl-el) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFrameOrthonormal(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		b := Vec3{x, y, z}
		if b.Norm() < 1e-6 || b.Norm() > 1e6 {
			return true
		}
		fr := NewFrame(b)
		ok := func(v float64) bool { return math.Abs(v) < 1e-9 }
		return math.Abs(fr.U.Norm()-1) < 1e-9 &&
			math.Abs(fr.V.Norm()-1) < 1e-9 &&
			math.Abs(fr.W.Norm()-1) < 1e-9 &&
			ok(fr.U.Dot(fr.V)) && ok(fr.U.Dot(fr.W)) && ok(fr.V.Dot(fr.W)) &&
			// Right-handed: U×V = W.
			fr.U.Cross(fr.V).Sub(fr.W).Norm() < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFrameVerticalBoresight(t *testing.T) {
	fr := NewFrame(Vec3{0, 0, 1})
	if math.Abs(fr.U.Norm()-1) > 1e-9 || math.Abs(fr.U.Dot(fr.W)) > 1e-9 {
		t.Fatalf("vertical boresight frame broken: %+v", fr)
	}
}

func TestNewFrameUHorizontal(t *testing.T) {
	// For a non-vertical boresight, U must lie in the ground plane.
	fr := NewFrame(Vec3{1, 2, -0.5})
	if math.Abs(fr.U.Z) > 1e-12 {
		t.Fatalf("U not horizontal: %+v", fr.U)
	}
}

func TestRegion(t *testing.T) {
	if RegionNear.String() != "near" || RegionMedium.String() != "medium" ||
		RegionFar.String() != "far" || Region(0).String() != "unknown" {
		t.Error("Region strings wrong")
	}
	if ClassifyRegion(1.0, 1.5, 2.0) != RegionNear {
		t.Error("near classification")
	}
	if ClassifyRegion(1.7, 1.5, 2.0) != RegionMedium {
		t.Error("medium classification")
	}
	if ClassifyRegion(2.5, 1.5, 2.0) != RegionFar {
		t.Error("far classification")
	}
	if ClassifyRegion(1.5, 1.5, 2.0) != RegionNear {
		t.Error("boundary belongs to near")
	}
}
