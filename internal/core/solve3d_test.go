package core

import (
	"errors"
	"math"
	"testing"

	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

var (
	testAnts3D = []geom.Vec3{
		{X: 0.5, Y: 0, Z: 1.0},
		{X: 1.0, Y: 0, Z: 1.5},
		{X: 1.5, Y: 0, Z: 1.2},
		{X: 1.0, Y: 2.8, Z: 1.8},
	}
	testAims3D = []geom.Vec3{
		{X: 1.9, Y: 1.3, Z: 0},
		{X: 1.0, Y: 1.7, Z: 0},
		{X: 0.1, Y: 1.3, Z: 0},
		{X: 1.45, Y: 1.05, Z: 0},
	}
	testBounds3D = Bounds{XMin: 0, XMax: 2, YMin: 0.5, YMax: 2.5, ZMin: 0, ZMax: 0.8}
)

func synthObs3D(pos geom.Vec3, w geom.Vec3, kt, bt0 float64) []Observation {
	obs := make([]Observation, len(testAnts3D))
	for i := range testAnts3D {
		frame := geom.NewFrame(testAims3D[i].Sub(testAnts3D[i]).Unit())
		d := testAnts3D[i].Dist(pos)
		obs[i] = Observation{
			ID:    i,
			Pos:   testAnts3D[i],
			Frame: frame,
			Line: fit.Line{
				K:      rf.PropagationSlope(d) + kt,
				B0:     mathx.Wrap2Pi(rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(frame, w) + bt0),
				SigmaK: 4e-10,
			},
		}
	}
	return obs
}

func TestSolve3DNoiseless(t *testing.T) {
	cases := []struct {
		pos    geom.Vec3
		az, el float64
	}{
		{geom.Vec3{X: 0.8, Y: 1.3, Z: 0.35}, mathx.Rad(40), mathx.Rad(25)},
		{geom.Vec3{X: 1.3, Y: 1.8, Z: 0.1}, mathx.Rad(120), mathx.Rad(-15)},
		{geom.Vec3{X: 1.0, Y: 1.0, Z: 0.6}, 0, 0},
	}
	for _, c := range cases {
		w := rf.TagPolarization3D(c.az, c.el)
		obs := synthObs3D(c.pos, w, 0.7e-8, 2.5)
		est, err := Solve3D(obs, testBounds3D, Options{})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if d := est.Pos.Dist(c.pos); d > 0.03 {
			t.Errorf("%+v: position error %.3f m", c, d)
		}
		if pe := PolarizationError(est.Azimuth, est.Elevation, c.az, c.el); mathx.Deg(pe) > 5 {
			t.Errorf("%+v: polarization error %.1f°", c, mathx.Deg(pe))
		}
	}
}

func TestSolve3DTooFewAntennas(t *testing.T) {
	obs := synthObs3D(geom.Vec3{X: 1, Y: 1, Z: 0.2}, rf.TagPolarization3D(0, 0), 0, 0)
	if _, err := Solve3D(obs[:3], testBounds3D, Options{}); !errors.Is(err, ErrTooFewAntennas) {
		t.Fatalf("want ErrTooFewAntennas, got %v", err)
	}
}

func TestSolve3DInvalidBounds(t *testing.T) {
	obs := synthObs3D(geom.Vec3{X: 1, Y: 1, Z: 0.2}, rf.TagPolarization3D(0, 0), 0, 0)
	bad := testBounds3D
	bad.ZMin, bad.ZMax = 1, 0
	if _, err := Solve3D(obs, bad, Options{}); err == nil {
		t.Fatal("inverted z bounds must error")
	}
}

func TestPolarizationError(t *testing.T) {
	// Same dipole through the 180° ambiguity: zero error.
	if e := PolarizationError(0.3, 0.2, 0.3+math.Pi, -0.2); e > 1e-9 {
		t.Fatalf("antipodal error = %g", e)
	}
	// Orthogonal dipoles: π/2.
	if e := PolarizationError(0, 0, math.Pi/2, 0); math.Abs(e-math.Pi/2) > 1e-9 {
		t.Fatalf("orthogonal error = %g", e)
	}
}

func TestNormalizePolar3DCanonical(t *testing.T) {
	// Any direction and its negation must normalize identically.
	for _, c := range []struct{ az, el float64 }{
		{0.5, 0.3}, {2.5, -0.7}, {-1.2, 0.1},
	} {
		az1, el1 := normalizePolar3D(c.az, c.el)
		az2, el2 := normalizePolar3D(c.az+math.Pi, -c.el)
		if math.Abs(mathx.WrapPi(az1-az2)) > 1e-9 || math.Abs(el1-el2) > 1e-9 {
			t.Errorf("(%g,%g): canonical forms differ: (%g,%g) vs (%g,%g)",
				c.az, c.el, az1, el1, az2, el2)
		}
		if el1 < 0 {
			t.Errorf("canonical elevation negative: %g", el1)
		}
	}
}
