package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// TestSolve2DRoundTripProperty: for random tag states the solver must
// invert the noiseless forward model (the defining property of a
// disentangler). Uses the unbiased (prior-free) configuration.
func TestSolve2DRoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep too slow for -short")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := geom.Vec3{
			X: 0.25 + rng.Float64()*1.5,
			Y: 0.75 + rng.Float64()*1.5,
		}
		alpha := rng.Float64() * math.Pi
		kt := rng.Float64() * 2e-8
		bt0 := rng.Float64() * 2 * math.Pi
		obs := synthObs(testAnts, testAims, pos, alpha, kt, bt0)
		est, err := Solve2D(obs, testBounds, Options{NoKtPrior: true})
		if err != nil {
			return false
		}
		if est.Pos.Dist(pos) > 0.02 {
			return false
		}
		if math.Abs(mathx.AngDiffPeriod(est.Alpha, alpha, math.Pi)) > mathx.Rad(3) {
			return false
		}
		return math.Abs(est.Kt-kt) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSolve2DTranslationConsistency: shifting the whole geometry (tag
// and antennas) must shift the estimate identically — the solver has
// no absolute-frame dependence beyond the supplied coordinates.
func TestSolve2DTranslationConsistency(t *testing.T) {
	shift := geom.Vec3{X: 0.2, Y: 0.3}
	pos := geom.Vec3{X: 0.9, Y: 1.4}
	alpha := mathx.Rad(70)

	base := synthObs(testAnts, testAims, pos, alpha, 1e-8, 2)
	estA, err := Solve2D(base, testBounds, Options{NoKtPrior: true})
	if err != nil {
		t.Fatal(err)
	}

	shiftedAnts := make([]geom.Vec3, len(testAnts))
	shiftedAims := make([]geom.Vec3, len(testAims))
	for i := range testAnts {
		shiftedAnts[i] = testAnts[i].Add(shift)
		shiftedAims[i] = testAims[i].Add(shift)
	}
	shiftedBounds := testBounds
	shiftedBounds.XMin += shift.X
	shiftedBounds.XMax += shift.X
	shiftedBounds.YMin += shift.Y
	shiftedBounds.YMax += shift.Y
	moved := synthObs(shiftedAnts, shiftedAims, pos.Add(shift), alpha, 1e-8, 2)
	estB, err := Solve2D(moved, shiftedBounds, Options{NoKtPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := estB.Pos.Sub(shift).Dist(estA.Pos); d > 0.01 {
		t.Fatalf("translation inconsistency: %.4f m", d)
	}
	if oe := math.Abs(mathx.AngDiffPeriod(estA.Alpha, estB.Alpha, math.Pi)); mathx.Deg(oe) > 1 {
		t.Fatalf("translation changed orientation by %.2f°", mathx.Deg(oe))
	}
}

// TestSolve2DMLPolishStaysInBasin: the per-channel polish must not
// move the estimate away from an already-correct solution.
func TestSolve2DMLPolishStaysInBasin(t *testing.T) {
	pos := geom.Vec3{X: 1.2, Y: 1.1}
	alpha := mathx.Rad(40)
	kt, bt0 := 0.6e-8, 1.4
	obs := synthObs(testAnts, testAims, pos, alpha, kt, bt0)
	// Attach per-channel synthetic phases consistent with the model.
	w := rf.TagPolarization2D(alpha)
	for i := range obs {
		d := obs[i].Pos.Dist(pos)
		orient := rf.OrientationPhase(obs[i].Frame, w)
		for _, f := range rf.Channels() {
			obs[i].Freqs = append(obs[i].Freqs, f)
			obs[i].Phases = append(obs[i].Phases,
				rf.PropagationPhase(d, f)+orient+kt*(f-rf.CenterFrequencyHz)+bt0)
		}
	}
	est, err := Solve2D(obs, testBounds, Options{NoKtPrior: true, MLPolish: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Pos.Dist(pos); d > 0.01 {
		t.Fatalf("polish drifted: %.4f m", d)
	}
	if oe := mathx.Deg(math.Abs(mathx.AngDiffPeriod(est.Alpha, alpha, math.Pi))); oe > 2 {
		t.Fatalf("polish orientation error %.2f°", oe)
	}
}
