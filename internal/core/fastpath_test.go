package core

import (
	"math"
	"math/rand"
	"testing"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// TestScratchCostsMatchReference: the scratch kernels are the solver's
// hot path and the package-level functions the reference — they must
// agree bit-for-bit, not approximately, or the precomputation changed
// the objective.
func TestScratchCostsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 0.9, Y: 1.4}, mathx.Rad(70), 1e-8, 2)
	obs3 := synthObs3D(geom.Vec3{X: 1.1, Y: 1.3, Z: 0.4}, rf.TagPolarization3D(0.8, 0.3), 0.5e-8, 1)
	prior := ktPrior{mean: rf.KtPhysicalMean, wp: 1 / (rf.KtPhysicalSigma * rf.KtPhysicalSigma)}
	sigmaB := 0.04
	sc := newCostScratch(obs, sigmaB, prior)
	sc3 := newCostScratch(obs3, sigmaB, prior)
	for i := 0; i < 50; i++ {
		p := geom.Vec3{X: rng.Float64() * 2, Y: 0.5 + rng.Float64()*2, Z: rng.Float64() * 0.8}
		cRef, ktRef := slopeCost(obs, p, prior)
		cGot, ktGot := sc.slopeCost(p)
		if cGot != cRef || ktGot != ktRef {
			t.Fatalf("slopeCost(%+v): scratch (%v, %v) != reference (%v, %v)", p, cGot, ktGot, cRef, ktRef)
		}
		p2 := []float64{p.X, p.Y, rng.Float64() * math.Pi, rng.Float64() * 2e-8, rng.Float64() * 2 * math.Pi}
		if got, ref := sc.jointCost2D(p2), jointCost2D(obs, p2, sigmaB, prior); got != ref {
			t.Fatalf("jointCost2D(%v): scratch %v != reference %v", p2, got, ref)
		}
		p3 := []float64{p.X, p.Y, p.Z, rng.Float64() * 2 * math.Pi, (rng.Float64() - 0.5) * math.Pi,
			rng.Float64() * 2e-8, rng.Float64() * 2 * math.Pi}
		if got, ref := sc3.jointCost3D(p3), jointCost3D(obs3, p3, sigmaB, prior); got != ref {
			t.Fatalf("jointCost3D(%v): scratch %v != reference %v", p3, got, ref)
		}
	}
}

// TestScratchPsiMatchesMakePsi: setPsi must fill exactly what makePsi
// allocates.
func TestScratchPsiMatchesMakePsi(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1.2, Y: 1.1}, 0.4, 1e-8, 3)
	sc := newCostScratch(obs, 0.04, ktPrior{})
	for _, pos := range []geom.Vec3{{X: 0.4, Y: 0.9}, {X: 1.6, Y: 2.2}} {
		sc.setPsi(pos)
		ref := makePsi(obs, pos)
		for i := range ref {
			if sc.psi[i] != ref[i] {
				t.Fatalf("psi[%d] at %+v: %v != %v", i, pos, sc.psi[i], ref[i])
			}
		}
	}
}

// TestOrientTermMatchesOrientationPhase: the trig-free scan kernel must
// reproduce cos/sin of rf.OrientationPhase to rounding error.
func TestOrientTermMatchesOrientationPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		fr := geom.NewFrame(geom.Vec3{
			X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.Float64()*2 - 1,
		}.Unit())
		w := geom.FromSpherical(rng.Float64()*2*math.Pi, (rng.Float64()-0.5)*math.Pi)
		theta := rf.OrientationPhase(fr, w)
		st, ct := math.Sincos(theta)
		gotC, gotS := orientTerm(&fr, w)
		if math.Abs(gotC-ct) > 1e-12 || math.Abs(gotS-st) > 1e-12 {
			t.Fatalf("orientTerm: (%v, %v), want (%v, %v)", gotC, gotS, ct, st)
		}
	}
	// Degenerate case: tag orthogonal to the frame has θ = 0.
	fr := geom.NewFrame(geom.Vec3{X: 1})
	if c, s := orientTerm(&fr, fr.W); c != 1 || s != 0 {
		t.Fatalf("orthogonal tag: (%v, %v), want (1, 0)", c, s)
	}
}

// TestAdaptiveSigmaBScratchMatchesMedianRule: the in-place form must
// compute the exact historical widening rule.
func TestAdaptiveSigmaBScratchMatchesMedianRule(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1, Y: 1.5}, 1, 0, 0)
	for i, r := range []float64{0.09, 0.02, 0.13} {
		obs[i].Line.ResidStd = r
	}
	sc := newCostScratch(obs, 0.04, ktPrior{})
	if got := sc.adaptiveSigmaB(0.04); got != 0.09 {
		t.Fatalf("adaptive σ_B = %v, want median 0.09", got)
	}
	if got := sc.adaptiveSigmaB(0.2); got != 0.2 {
		t.Fatalf("adaptive σ_B = %v, want floor 0.2", got)
	}
}

// TestKernelsZeroAlloc: the scratch kernels run inside the NelderMead
// inner loops and the dense scans — a single allocation there
// multiplies by the tens of thousands of evaluations per solve.
func TestKernelsZeroAlloc(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 0.8, Y: 1.6}, 0.7, 1e-8, 2)
	obs3 := synthObs3D(geom.Vec3{X: 1.0, Y: 1.2, Z: 0.3}, rf.TagPolarization3D(1, 0.2), 0.5e-8, 1)
	sc := newCostScratch(obs, 0.04, ktPrior{mean: rf.KtPhysicalMean, wp: 1e18})
	sc3 := newCostScratch(obs3, 0.04, ktPrior{})
	p2 := []float64{0.8, 1.6, 0.7, 1e-8, 2}
	p3 := []float64{1.0, 1.2, 0.3, 1, 0.2, 0.5e-8, 1}
	pos := geom.Vec3{X: 1.1, Y: 1.4}
	sc.setPsi(pos)
	// Warm the lazily built tables before measuring.
	alphaGrid()
	polarRefineGrid()
	polarCoarseGrid()
	cases := []struct {
		name string
		fn   func()
	}{
		{"slopeCost", func() { sc.slopeCost(pos) }},
		{"jointCost2D", func() { sc.jointCost2D(p2) }},
		{"jointCost3D", func() { sc3.jointCost3D(p3) }},
		{"setPsi", func() { sc.setPsi(pos) }},
		{"scanOrient/alpha", func() { sc.scanOrient(alphaGrid()) }},
		{"scanOrient/polar", func() { sc3.setPsi(p3pos(p3)); sc3.scanOrient(polarRefineGrid()) }},
		{"adaptiveSigmaB", func() { sc.adaptiveSigmaB(0.04) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(10, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run, want 0", c.name, allocs)
		}
	}
}

func p3pos(p []float64) geom.Vec3 { return geom.Vec3{X: p[0], Y: p[1], Z: p[2]} }

// TestSolve2DWarmTracksStationaryTag: with a trustworthy previous
// estimate the warm path must land on (essentially) the cold answer
// without falling back.
func TestSolve2DWarmTracksStationaryTag(t *testing.T) {
	pos := geom.Vec3{X: 0.7, Y: 1.2}
	obs := synthObs(testAnts, testAims, pos, mathx.Rad(60), 0.9e-8, 1.2)
	cold, err := Solve2D(obs, testBounds, Options{NoKtPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats SolveStats
	warm, err := Solve2D(obs, testBounds, Options{NoKtPrior: true, WarmStart: &cold, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmAttempts.Load() != 1 || stats.WarmFallbacks.Load() != 0 {
		t.Fatalf("warm attempts=%d fallbacks=%d, want 1/0",
			stats.WarmAttempts.Load(), stats.WarmFallbacks.Load())
	}
	if d := warm.Pos.Dist(cold.Pos); d > 0.005 {
		t.Errorf("warm position %.4f m from cold", d)
	}
	if oe := math.Abs(mathx.AngDiffPeriod(warm.Alpha, cold.Alpha, math.Pi)); mathx.Deg(oe) > 2 {
		t.Errorf("warm orientation %.2f° from cold", mathx.Deg(oe))
	}
}

// TestSolve2DWarmFallsBackOnTeleport: a stale seed from a tag that
// jumped across the region must trip a guard and still produce the
// cold-path answer.
func TestSolve2DWarmFallsBackOnTeleport(t *testing.T) {
	posA := geom.Vec3{X: 0.4, Y: 0.9}
	posB := geom.Vec3{X: 1.6, Y: 2.2}
	obsA := synthObs(testAnts, testAims, posA, mathx.Rad(30), 0.9e-8, 1.2)
	obsB := synthObs(testAnts, testAims, posB, mathx.Rad(110), 0.9e-8, 1.2)
	stale, err := Solve2D(obsA, testBounds, Options{NoKtPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats SolveStats
	est, err := Solve2D(obsB, testBounds, Options{NoKtPrior: true, WarmStart: &stale, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmFallbacks.Load() != 1 {
		t.Fatalf("fallbacks=%d, want 1 (teleport must not be served warm)", stats.WarmFallbacks.Load())
	}
	if d := est.Pos.Dist(posB); d > 0.01 {
		t.Errorf("post-fallback position error %.3f m", d)
	}
}

// TestSolve3DWarmStationaryAndTeleport: same contract for the
// seven-unknown solver (one case each — 3D solves are expensive).
func TestSolve3DWarmStationaryAndTeleport(t *testing.T) {
	posA := geom.Vec3{X: 0.8, Y: 1.3, Z: 0.35}
	obsA := synthObs3D(posA, rf.TagPolarization3D(mathx.Rad(40), mathx.Rad(25)), 0.7e-8, 2.5)
	cold, err := Solve3D(obsA, testBounds3D, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var stats SolveStats
	warm, err := Solve3D(obsA, testBounds3D, Options{WarmStart: &cold, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmFallbacks.Load() != 0 {
		t.Fatalf("stationary 3D warm fell back")
	}
	if d := warm.Pos.Dist(cold.Pos); d > 0.01 {
		t.Errorf("3D warm position %.4f m from cold", d)
	}
	posB := geom.Vec3{X: 1.4, Y: 2.1, Z: 0.1}
	obsB := synthObs3D(posB, rf.TagPolarization3D(mathx.Rad(130), mathx.Rad(-10)), 0.7e-8, 2.5)
	est, err := Solve3D(obsB, testBounds3D, Options{WarmStart: &cold, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmFallbacks.Load() != 1 {
		t.Fatalf("3D teleport served warm (fallbacks=%d)", stats.WarmFallbacks.Load())
	}
	if d := est.Pos.Dist(posB); d > 0.02 {
		t.Errorf("3D post-fallback position error %.3f m", d)
	}
}

// TestFastPathParallelMatchesSerial: pruning and warm starts must keep
// the serial==parallel bit-identity contract — budgets and seeds are
// fixed before the fan-out, so Parallelism must not change the answer.
func TestFastPathParallelMatchesSerial(t *testing.T) {
	pos := geom.Vec3{X: 1.3, Y: 1.7}
	obs := synthObs(testAnts, testAims, pos, mathx.Rad(75), 1.1e-8, 4.0)
	warmSeed, err := Solve2D(obs, testBounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{PruneStarts: true},
		{WarmStart: &warmSeed},
		{WarmStart: &warmSeed, PruneStarts: true},
	} {
		serialOpts, parOpts := opts, opts
		serialOpts.Parallelism = 1
		parOpts.Parallelism = 8
		serial, err := Solve2D(obs, testBounds, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve2D(obs, testBounds, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		if serial != par {
			t.Errorf("opts %+v: serial and parallel estimates differ:\n%+v\n%+v", opts, serial, par)
		}
	}
}

// TestSolve2DPruneStaysAccurate: pruning may only cut iteration
// budgets of bad starts, not accuracy — noiseless windows must still
// solve near-exactly, and the pruned-start counter must fire.
func TestSolve2DPruneStaysAccurate(t *testing.T) {
	var stats SolveStats
	for _, c := range []struct {
		pos      geom.Vec3
		alphaDeg float64
	}{
		{geom.Vec3{X: 0.7, Y: 1.2}, 60},
		{geom.Vec3{X: 1.5, Y: 2.1}, 10},
	} {
		obs := synthObs(testAnts, testAims, c.pos, mathx.Rad(c.alphaDeg), 0.9e-8, 1.2)
		est, err := Solve2D(obs, testBounds, Options{NoKtPrior: true, PruneStarts: true, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		if d := est.Pos.Dist(c.pos); d > 0.01 {
			t.Errorf("%+v: pruned solve position error %.3f m", c, d)
		}
	}
	// 294 starts, keep ceil(0.25·294) = 74 → 220 pruned per solve.
	if got := stats.StartsPruned.Load(); got != 2*220 {
		t.Errorf("StartsPruned = %d, want 440", got)
	}
}

// TestPruneBudgets pins the deterministic ranking: budgets depend only
// on (cost, index), the keep fraction rounds up, and pruning off means
// a nil plan.
func TestPruneBudgets(t *testing.T) {
	starts := [][]float64{{3}, {1}, {2}, {1}, {5}}
	costAt := func(p []float64) float64 { return p[0] }
	opts := Options{PruneStarts: true, PruneKeep: 0.4, PruneIters: 7}
	opts.defaults()
	budgets := pruneBudgets(starts, costAt, opts)
	// keep = ceil(0.4·5) = 2: costs 1 (idx 1) and 1 (idx 3) — the tie
	// breaks toward the lower index, but both are in the kept set.
	want := []int{7, 0, 7, 0, 7}
	for i := range want {
		if budgets[i] != want[i] {
			t.Fatalf("budgets = %v, want %v", budgets, want)
		}
	}
	if pruneBudgets(starts, costAt, Options{}) != nil {
		t.Fatal("pruning off must return a nil plan")
	}
	if budgetFor(budgets, 0, 200) != 7 || budgetFor(budgets, 1, 200) != 200 || budgetFor(nil, 3, 200) != 200 {
		t.Fatal("budgetFor resolution wrong")
	}
}

// TestVerifyEstimateAgreesWithSolveCost: verifying a solver's own
// output must reproduce (essentially) the solver's reported cost —
// that is what makes it usable as the cache's consistency check.
func TestVerifyEstimateAgreesWithSolveCost(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1.0, Y: 1.5}, mathx.Rad(45), 1e-8, 2.0)
	est, err := Solve2D(obs, testBounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := VerifyEstimate(obs, est, false, Options{})
	if math.Abs(v-est.Cost) > 1e-9*(1+math.Abs(est.Cost)) {
		t.Fatalf("VerifyEstimate = %v, solve cost = %v", v, est.Cost)
	}
}
