// Package core implements RF-Prism's phase disentangling: the
// multi-frequency multi-antenna model of §IV and its solver, which
// separates one hop round of phase readings into the propagation,
// orientation and material components, yielding simultaneous
// localization, orientation sensing and material parameters.
//
// The solver follows the paper's two observations per antenna — the
// slope k_i and intercept b_i of the phase-vs-frequency line (Eq. 7)
// — and solves the 2N-equation system in two stages:
//
//  1. a slope-only grid search localizes the tag coarsely (the slopes
//     are wrap-free, so this stage has no ambiguity), and
//  2. a joint Levenberg–Marquardt multistart refines all unknowns
//     (x, y, α, k_t, b_t) against both the slope equations and the
//     *wrapped* intercept equations.
//
// The intercepts carry sub-wavelength information (ψ changes by 2π
// per λ/2 of distance), which is why the joint stage both sharpens the
// position to the nearest phase-consistent basin and recovers the
// orientation: a basin error displaces distance by exactly λ/2, i.e.
// shifts the intercept residual by exactly 2π — leaving orientation
// estimation unaffected.
package core

import (
	"errors"
	"fmt"
	"math"

	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// ErrTooFewAntennas is returned when fewer antennas than the model
// needs are observed (3 for 2D, 4 for 3D).
var ErrTooFewAntennas = errors.New("core: too few antennas")

// MinAntennas returns the observation count the solver model needs:
// 3 for the 2D model, 4 for the 3D model. Deployments with more
// antennas than this are redundant — the solvers accept any subset of
// at least this size, which is what lets the pipeline keep running
// when antennas die (degraded mode, DESIGN.md §7).
func MinAntennas(mode3D bool) int {
	if mode3D {
		return 4
	}
	return 3
}

// Observation is the per-antenna input to the disentangler: the
// antenna's surveyed geometry and the fitted phase-vs-frequency line
// of the current window. Freqs/Phases optionally carry the surviving
// channel samples for the per-channel maximum-likelihood polish.
type Observation struct {
	ID     int
	Pos    geom.Vec3
	Frame  geom.Frame
	Line   fit.Line
	Freqs  []float64
	Phases []float64
	// Weight soft-scales this antenna's residual terms in every
	// objective (slope and intercept alike). Zero means "unset" and is
	// treated as 1 so existing constructors keep full weight; the
	// likelihood layer assigns fractional weights to noisy or
	// nonlinear antennas instead of hard-dropping them. A weight of
	// exactly 1 (or 0) leaves every cost bit-identical to the
	// unweighted objective — the factor multiplies by exactly 1.0.
	Weight float64
}

// obsWeight returns the effective soft weight of o: Weight, with the
// zero value mapped to full weight.
func obsWeight(o *Observation) float64 {
	if o.Weight > 0 {
		return o.Weight
	}
	return 1
}

// Bounds is the rectangular (2D) or box (3D) search region for the
// tag position.
type Bounds struct {
	XMin, XMax float64
	YMin, YMax float64
	ZMin, ZMax float64 // used by Solve3D only
}

// Estimate is the disentangled state of one tag window.
type Estimate struct {
	// Pos is the tag position (Z = 0 for Solve2D).
	Pos geom.Vec3
	// Alpha is the in-plane polarization angle in [0, π) (2D).
	Alpha float64
	// Azimuth and Elevation describe the 3D polarization (Solve3D).
	Azimuth, Elevation float64
	// Kt is the residual slope common to all antennas: the material
	// slope k_t (plus per-tag diversity until tag calibration).
	Kt float64
	// Bt0 is the residual band-center intercept: the material
	// intercept b_t (plus per-tag diversity), in [0, 2π).
	Bt0 float64
	// Cost is the weighted joint residual at the solution; a
	// solution-quality indicator comparable across windows.
	Cost float64
}

// Options tunes the solver. The zero value uses defaults.
type Options struct {
	// GridStep is the coarse position search step in meters.
	// Default 0.05.
	GridStep float64
	// SigmaB is the assumed intercept model error (rad) weighting
	// the wrapped intercept equations against the slope equations.
	// Default 0.04.
	SigmaB float64
	// DisableFinePhase turns the joint intercept refinement off,
	// reducing the solver to the slope-only stage plus a detached
	// orientation fit — the ablation showing what the wrapped
	// intercept equations buy.
	DisableFinePhase bool
	// MLPolish additionally refines against the raw per-channel
	// phases (requires Freqs/Phases in the observations). Off by
	// default; exposed for the ablation benches.
	MLPolish bool
	// NoKtPrior disables the weak physical prior on the common
	// slope offset k_t. The prior (rf.KtPhysicalMean ± Sigma)
	// suppresses the radial position/k_t near-ambiguity at the far
	// edge of the region; disabling it is an ablation.
	NoKtPrior bool
	// KtPriorMean/KtPriorSigma override the default k_t prior.
	KtPriorMean, KtPriorSigma float64
	// Parallelism bounds the solver's worker count for the grid
	// search and the joint multistart: 0 uses GOMAXPROCS, 1 forces
	// the serial path. Parallel and serial runs produce bit-identical
	// estimates (each start is an independent optimizer run and the
	// reduction is deterministic: min cost, ties to the lowest start
	// index).
	Parallelism int
	// WarmStart, when non-nil, seeds the joint stage from a previous
	// window's estimate of the same tag: the coarse grid is skipped
	// and the multistart collapses to a small basin-local set around
	// the warm position. Guarded both ways — an inconsistent slope
	// surface (the tag moved) or a warm solution whose joint cost
	// regresses past WarmGuardFactor falls back to the full cold
	// path, so a stale seed costs time, never accuracy. Ignored by
	// the DisableFinePhase ablation (there is no joint stage to
	// seed).
	WarmStart *Estimate
	// WarmGuardFactor bounds the warm solution's joint cost relative
	// to max(previous cost, WarmCostFloor); above it the solver falls
	// back cold. Default 4.
	WarmGuardFactor float64
	// WarmRadius is how far the freshly refined slope-only fix may
	// wander from the warm position before the slope-cost consistency
	// check must also pass. Default 0.12 m (within one wrap basin).
	WarmRadius float64
	// PruneStarts enables adaptive multistart pruning: seeds are
	// ranked by their start-point joint cost and the bottom tranche
	// runs with a short iteration cap. Changes which candidate wins
	// in rare cases, so it is opt-in; serial/parallel determinism is
	// preserved (budgets are fixed before the fan-out).
	PruneStarts bool
	// PruneKeep is the fraction of starts keeping the full iteration
	// budget under PruneStarts. Default 0.25.
	PruneKeep float64
	// PruneIters is the short iteration cap for pruned starts.
	// Default 60.
	PruneIters int
	// Stats, when non-nil, receives the fast-path counters (warm
	// attempts/fallbacks, pruned starts). Safe to share across
	// concurrent solves.
	Stats *SolveStats
}

func (o *Options) defaults() {
	if o.GridStep <= 0 {
		o.GridStep = 0.05
	}
	if o.SigmaB <= 0 {
		o.SigmaB = 0.04
	}
	if o.KtPriorSigma <= 0 {
		o.KtPriorMean = rf.KtPhysicalMean
		o.KtPriorSigma = rf.KtPhysicalSigma
	}
	if o.NoKtPrior {
		o.KtPriorSigma = 0
	}
	if o.WarmGuardFactor <= 0 {
		o.WarmGuardFactor = 4
	}
	if o.WarmRadius <= 0 {
		o.WarmRadius = 0.12
	}
	if o.PruneKeep <= 0 || o.PruneKeep > 1 {
		o.PruneKeep = 0.25
	}
	if o.PruneIters <= 0 {
		o.PruneIters = 60
	}
}

// Iteration budgets of the joint multistart stages (per start) and the
// final fine pass.
const (
	jointIters2D = 200
	jointIters3D = 600
	fineIters2D  = 500
)

// AntennaCal holds the per-antenna hardware corrections of §IV-C,
// relative to the first antenna: after subtraction every antenna has
// the same effective reader phase, which the model absorbs into
// (k_t, b_t).
type AntennaCal struct {
	// DK and DB are per-antenna slope (rad/Hz) and band-center
	// intercept (rad) corrections, keyed by antenna ID.
	DK map[int]float64
	DB map[int]float64
}

// Apply returns a copy of obs with the calibration subtracted.
// Antennas whose corrections are both zero keep their phase slices
// as-is (subtracting zero is a no-op), so fully-zero calibrations
// allocate nothing beyond the observation copy.
func (c AntennaCal) Apply(obs []Observation) []Observation {
	if c.DK == nil && c.DB == nil {
		return obs
	}
	out := make([]Observation, len(obs))
	copy(out, obs)
	for i := range out {
		dk, db := c.DK[out[i].ID], c.DB[out[i].ID]
		if dk == 0 && db == 0 {
			continue
		}
		out[i].Line.K -= dk
		out[i].Line.B0 -= db
		if len(out[i].Phases) > 0 {
			ph := make([]float64, len(out[i].Phases))
			for j, p := range out[i].Phases {
				ph[j] = p - dk*(out[i].Freqs[j]-rf.CenterFrequencyHz) - db
			}
			out[i].Phases = ph
		}
	}
	return out
}

// CalibrateAntennas derives the per-antenna corrections from a
// calibration window: a bare tag at a known position with known
// in-plane polarization angle (the paper's pre-deployment procedure,
// §IV-C). The correction is absolute — it removes each port's full
// hardware line (plus the calibration tag's own diversity, which
// simply re-references every other tag's k_t/b_t). Keeping the
// corrected k_t small is what makes the physical k_t prior in the
// solver meaningful.
func CalibrateAntennas(obs []Observation, truthPos geom.Vec3, truthAlpha float64) (AntennaCal, error) {
	if len(obs) == 0 {
		return AntennaCal{}, fmt.Errorf("core: calibration needs observations")
	}
	w := rf.TagPolarization2D(truthAlpha)
	dk := make(map[int]float64, len(obs))
	db := make(map[int]float64, len(obs))
	for _, o := range obs {
		d := o.Pos.Dist(truthPos)
		expK := rf.PropagationSlope(d)
		expB := mathx.Wrap2Pi(rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(o.Frame, w))
		residK := o.Line.K - expK
		residB := mathx.WrapPi(o.Line.B0 - expB)
		dk[o.ID] = residK
		db[o.ID] = residB
	}
	return AntennaCal{DK: dk, DB: db}, nil
}

// slopeCost evaluates the stage-1 objective at position p: the
// weighted variance of e_i = k_i − 4π·d_i/c across antennas (the
// common offset k_t is profiled out). It returns the cost and the
// profiled k_t.
// ktPrior is the (mean, 1/σ²) of the k_t prior; wp = 0 disables it.
type ktPrior struct {
	mean, wp float64
}

func (o Options) prior() ktPrior {
	if o.KtPriorSigma <= 0 {
		return ktPrior{}
	}
	return ktPrior{mean: o.KtPriorMean, wp: 1 / (o.KtPriorSigma * o.KtPriorSigma)}
}

func slopeCost(obs []Observation, p geom.Vec3, prior ktPrior) (cost, kt float64) {
	// Two passes over the (3–4) observations, recomputing the residual
	// in the second: cheaper than heap-allocating scratch slices in
	// what is the innermost loop of the grid search.
	var sw, swe float64
	for i := range obs {
		o := &obs[i]
		d := o.Pos.Dist(p)
		e := o.Line.K - rf.PropagationSlope(d)
		w := obsWeight(o)
		if o.Line.SigmaK > 0 {
			w /= o.Line.SigmaK * o.Line.SigmaK
		}
		sw += w
		swe += w * e
	}
	// The common offset k_t is profiled analytically, shrunk toward
	// the physical prior when one is configured.
	kt = (swe + prior.mean*prior.wp) / (sw + prior.wp)
	for i := range obs {
		o := &obs[i]
		d := o.Pos.Dist(p)
		e := o.Line.K - rf.PropagationSlope(d)
		w := obsWeight(o)
		if o.Line.SigmaK > 0 {
			w /= o.Line.SigmaK * o.Line.SigmaK
		}
		r := e - kt
		cost += w * r * r
	}
	dp := kt - prior.mean
	cost += prior.wp * dp * dp
	return cost / sw, kt
}

// orientCost evaluates the detached orientation objective at
// polarization vector w given residual intercepts psi: the circular
// variance of ψ_i − θorient_i(w). It returns the cost and the
// profiled b_t (circular mean of the residuals).
func orientCost(obs []Observation, psi []float64, w geom.Vec3) (cost, bt0 float64) {
	var s, c, sw float64
	for i := range obs {
		o := &obs[i]
		r := psi[i] - rf.OrientationPhase(o.Frame, w)
		ww := obsWeight(o)
		s += ww * math.Sin(r)
		c += ww * math.Cos(r)
		sw += ww
	}
	resultant := math.Hypot(s/sw, c/sw)
	return 1 - resultant, mathx.Wrap2Pi(math.Atan2(s, c))
}

// jointCost2D is the full 2N-equation objective of Eq. (7) at
// parameter vector p = (x, y, α, k_t, b_t): weighted slope residuals
// plus weighted *wrapped* intercept residuals.
func jointCost2D(obs []Observation, p []float64, sigmaB float64, prior ktPrior) float64 {
	pos := geom.Vec3{X: p[0], Y: p[1]}
	w := rf.TagPolarization2D(p[2])
	kt, bt0 := p[3], p[4]
	var cost float64
	for i := range obs {
		o := &obs[i]
		d := o.Pos.Dist(pos)
		rk := o.Line.K - rf.PropagationSlope(d) - kt
		wb := obsWeight(o)
		wk := wb
		if o.Line.SigmaK > 0 {
			wk /= o.Line.SigmaK * o.Line.SigmaK
		}
		pred := rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(o.Frame, w) + bt0
		rb := mathx.WrapPi(o.Line.B0 - pred)
		cost += wk*rk*rk + wb*rb*rb/(sigmaB*sigmaB)
	}
	dp := kt - prior.mean
	cost += prior.wp * dp * dp
	return cost
}

// Solve2D disentangles a window observed by ≥3 antennas for a tag on
// the z = 0 working plane with in-plane polarization. It implements
// Eq. (7): position and material slope from the per-antenna slopes,
// orientation and material intercept from the per-antenna intercepts.
func Solve2D(obs []Observation, bounds Bounds, opts Options) (Estimate, error) {
	opts.defaults()
	if len(obs) < MinAntennas(false) {
		return Estimate{}, fmt.Errorf("%w: have %d, need 3 for 2D", ErrTooFewAntennas, len(obs))
	}

	// The scratch hoists the per-observation invariants (slope
	// weights, k_t prior, σ_B²) and widens σ_B adaptively: under
	// multipath the per-antenna residuals inflate, the intercepts are
	// no longer trustworthy to σ_B, and over-weighting them makes the
	// joint stage jump to far wrong wrap basins.
	sc := newSolveScratch(obs, &opts)

	// Warm fast path: a consistent previous-window seed replaces the
	// coarse grid and the full multistart; guard failures fall
	// through to the cold path below.
	if opts.WarmStart != nil && !opts.DisableFinePhase {
		opts.countWarmAttempt()
		if est, ok := solve2DWarm(sc, bounds, opts); ok {
			return est, nil
		}
		opts.countWarmFallback()
	}

	// Stage 1: wrap-free coarse position from the slopes alone.
	posA := gridSearch2D(sc, bounds, opts.GridStep, opts.Parallelism)
	posA = refinePos2D(sc, posA, bounds, opts.GridStep)

	if opts.DisableFinePhase {
		return solveDetached2D(sc, posA), nil
	}

	// Stage 2: joint multistart over position offsets (to cover the
	// λ/2 wrap basins around the coarse fix) and orientation starts.
	// Every start is an independent optimizer run, so the 294 starts
	// fan out across the worker pool; the reduction keeps the
	// lowest-cost candidate with ties broken toward the lowest start
	// index, which is exactly what the serial scan produced.
	starts := make([][]float64, 0, len(jointOffsets)*len(jointOffsets)*6)
	for _, dx := range jointOffsets {
		for _, dy := range jointOffsets {
			x0 := clamp(posA.X+dx, bounds.XMin, bounds.XMax)
			y0 := clamp(posA.Y+dy, bounds.YMin, bounds.YMax)
			_, kt0 := sc.slopeCost(geom.Vec3{X: x0, Y: y0})
			// Profile bt0 at each start for a good basin entry; psi
			// depends only on the position, so compute it once per
			// offset rather than per orientation start.
			sc.setPsi(geom.Vec3{X: x0, Y: y0})
			for a := 0; a < 6; a++ {
				alpha0 := float64(a) * math.Pi / 6
				_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization2D(alpha0))
				starts = append(starts, []float64{x0, y0, alpha0, kt0, bt0})
			}
		}
	}
	budgets := pruneBudgets(starts, sc.jointCost2D, opts)
	cands := make([]Estimate, len(starts))
	parallelFor(len(starts), workerCount(opts.Parallelism, len(starts)), func(i int) {
		cands[i] = runJoint2D(sc, starts[i], bounds, budgetFor(budgets, i, jointIters2D), 0)
	})
	return finish2D(sc, reduceMinCost(cands), bounds, opts), nil
}

// finish2D is the shared tail of the cold and warm 2D paths: dense
// orientation refinement, the final fine simplex (the coarse
// multistart runs are iteration-capped and can stall a few
// millimeters short of the minimum), and the optional ML polish.
func finish2D(sc *solveScratch, best Estimate, bounds Bounds, opts Options) Estimate {
	best = refineAlpha2D(sc, best)
	if fine := runJoint2DFine(sc, best, bounds); fine.Cost < best.Cost {
		best = fine
	}
	best = refineAlpha2D(sc, best)
	if opts.MLPolish {
		best = polish2D(sc.obs, best, bounds)
		best = refineAlpha2D(sc, best)
	}
	return best
}

// runJoint2DFine is a tighter, longer simplex pass around an
// already-good candidate.
func runJoint2DFine(sc *solveScratch, est Estimate, bounds Bounds) Estimate {
	p0 := []float64{est.Pos.X, est.Pos.Y, est.Alpha, est.Kt, est.Bt0}
	q := make([]float64, 5)
	obj := func(p []float64) float64 {
		q[0] = clamp(p[0], bounds.XMin, bounds.XMax)
		q[1] = clamp(p[1], bounds.YMin, bounds.YMax)
		q[2], q[3], q[4] = p[2], p[3], p[4]
		return sc.jointCost2D(q)
	}
	p, cost := mathx.NelderMead(obj, p0, 0.004, fineIters2D)
	return Estimate{
		Pos:   geom.Vec3{X: clamp(p[0], bounds.XMin, bounds.XMax), Y: clamp(p[1], bounds.YMin, bounds.YMax)},
		Alpha: normalizeAlpha(p[2]),
		Kt:    p[3],
		Bt0:   mathx.Wrap2Pi(p[4]),
		Cost:  cost,
	}
}

// refineAlpha2D re-estimates the orientation with a dense grid at the
// solved position: the joint simplex can stall in a local minimum of
// the angle-doubled orientation response, and a 1-degree grid over
// [0, pi) is cheap insurance — trig-free via the precomputed
// polarization table. The result is kept only if it lowers the joint
// cost.
func refineAlpha2D(sc *solveScratch, est Estimate) Estimate {
	sc.setPsi(est.Pos)
	g := alphaGrid()
	bi, _ := sc.scanOrient(g)
	alpha := refineAngle(func(a float64) float64 {
		c, _ := orientCost(sc.obs, sc.psi, rf.TagPolarization2D(a))
		return c
	}, g.az[bi], mathx.Rad(1))
	_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization2D(alpha))
	cand := []float64{est.Pos.X, est.Pos.Y, alpha, est.Kt, bt0}
	if c := sc.jointCost2D(cand); c < est.Cost {
		est.Alpha = normalizeAlpha(alpha)
		est.Bt0 = bt0
		est.Cost = c
	}
	return est
}

// refineAngle golden-sections a 1D angular objective around a coarse
// minimum.
func refineAngle(f func(float64) float64, center, halfWidth float64) float64 {
	const phi = 0.6180339887498949
	a, b := center-halfWidth, center+halfWidth
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 40 && (b-a) > 1e-6; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// jointOffsets covers the wrap basins around the slope-only fix in
// each axis: ±24 cm at 8 cm (≈λ/4) steps. At the far corners of the
// region the slope-only fix can be 20+ cm off, so the multistart must
// reach past one basin.
var jointOffsets = []float64{-0.24, -0.16, -0.08, 0, 0.08, 0.16, 0.24}

func makePsi(obs []Observation, pos geom.Vec3) []float64 {
	psi := make([]float64, len(obs))
	for i, o := range obs {
		prop := rf.PropagationPhase(o.Pos.Dist(pos), rf.CenterFrequencyHz)
		psi[i] = mathx.Wrap2Pi(o.Line.B0 - prop)
	}
	return psi
}

// runJoint2D runs a budgeted Nelder–Mead refinement of the joint
// objective from p0 and packages the result. target > 0 additionally
// stops a start once it matches that cost (the warm path passes the
// previous window's cost — no point iterating past it when the fine
// pass will polish anyway). The clamp buffer q is reused across the
// hundreds of objective evaluations of one start; each start owns its
// buffer, so concurrent starts never share state.
func runJoint2D(sc *solveScratch, p0 []float64, bounds Bounds, maxIter int, target float64) Estimate {
	q := make([]float64, 5)
	obj := func(p []float64) float64 {
		q[0] = clamp(p[0], bounds.XMin, bounds.XMax)
		q[1] = clamp(p[1], bounds.YMin, bounds.YMax)
		q[2], q[3], q[4] = p[2], p[3], p[4]
		return sc.jointCost2D(q)
	}
	p, cost := mathx.NelderMeadOpt(obj, p0, 0.02, mathx.NMOptions{MaxIter: maxIter, Target: target})
	return Estimate{
		Pos:   geom.Vec3{X: clamp(p[0], bounds.XMin, bounds.XMax), Y: clamp(p[1], bounds.YMin, bounds.YMax)},
		Alpha: normalizeAlpha(p[2]),
		Kt:    p[3],
		Bt0:   mathx.Wrap2Pi(p[4]),
		Cost:  cost,
	}
}

// solveDetached2D is the fine-phase-off ablation: slope-only position
// plus an orientation fit against the (position-error-contaminated)
// intercept residuals.
func solveDetached2D(sc *solveScratch, pos geom.Vec3) Estimate {
	costK, kt := sc.slopeCost(pos)
	sc.setPsi(pos)
	g := alphaGrid()
	bi, bestCost := sc.scanOrient(g)
	_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization2D(g.az[bi]))
	return Estimate{
		Pos:   pos,
		Alpha: normalizeAlpha(g.az[bi]),
		Kt:    kt,
		Bt0:   bt0,
		Cost:  costK + bestCost,
	}
}

// gridAxis reproduces the solver's historical scan sequence
// lo, lo+step, ... — by accumulation, not multiplication, so the
// parallel row sharding visits bit-identical coordinates.
func gridAxis(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// gridSearch2D scans the bounds for the minimum slope cost. The scan
// is sharded by row (fixed x) across the worker pool; each row
// records its own first-minimum and the rows are reduced in scan
// order, which keeps the result identical to the serial raster scan.
func gridSearch2D(sc *solveScratch, bounds Bounds, step float64, parallelism int) geom.Vec3 {
	xs := gridAxis(bounds.XMin, bounds.XMax, step)
	ys := gridAxis(bounds.YMin, bounds.YMax, step)
	type rowBest struct {
		cost float64
		pos  geom.Vec3
	}
	rows := make([]rowBest, len(xs))
	parallelFor(len(xs), workerCount(parallelism, len(xs)), func(i int) {
		rb := rowBest{cost: math.Inf(1)}
		for _, y := range ys {
			p := geom.Vec3{X: xs[i], Y: y}
			c, _ := sc.slopeCost(p)
			if c < rb.cost {
				rb = rowBest{cost: c, pos: p}
			}
		}
		rows[i] = rb
	})
	best := math.Inf(1)
	var bestPos geom.Vec3
	for _, rb := range rows {
		if rb.cost < best {
			best, bestPos = rb.cost, rb.pos
		}
	}
	return bestPos
}

func refinePos2D(sc *solveScratch, start geom.Vec3, bounds Bounds, scale float64) geom.Vec3 {
	refined, _ := mathx.NelderMead(func(v []float64) float64 {
		x := clamp(v[0], bounds.XMin, bounds.XMax)
		y := clamp(v[1], bounds.YMin, bounds.YMax)
		c, _ := sc.slopeCost(geom.Vec3{X: x, Y: y})
		return c
	}, []float64{start.X, start.Y}, scale, 300)
	return geom.Vec3{
		X: clamp(refined[0], bounds.XMin, bounds.XMax),
		Y: clamp(refined[1], bounds.YMin, bounds.YMax),
	}
}

// polish2D jointly refines all five unknowns against the raw
// per-channel phases with wrapped residuals — the maximum-likelihood
// finish documented in DESIGN.md §5 (ablation: MLPolish).
func polish2D(obs []Observation, est Estimate, bounds Bounds) Estimate {
	var n int
	for _, o := range obs {
		n += len(o.Freqs)
	}
	if n < 10 {
		return est
	}
	prob := mathx.LMProblem{
		NumResiduals: n + len(obs),
		NumParams:    5,
		Step:         []float64{1e-4, 1e-4, 1e-4, 1e-11, 1e-4},
		Residuals: func(p, out []float64) {
			pos := geom.Vec3{X: p[0], Y: p[1]}
			w := rf.TagPolarization2D(p[2])
			kt, bt0 := p[3], p[4]
			idx := 0
			for _, o := range obs {
				d := o.Pos.Dist(pos)
				orient := rf.OrientationPhase(o.Frame, w)
				for j, f := range o.Freqs {
					pred := rf.PropagationPhase(d, f) + orient + kt*(f-rf.CenterFrequencyHz) + bt0
					out[idx] = mathx.WrapPi(o.Phases[j] - pred)
					idx++
				}
				// Slope anchor keeps the polish in the right basin.
				out[idx] = (o.Line.K - rf.PropagationSlope(d) - kt) * 2e7
				idx++
			}
		},
	}
	p0 := []float64{est.Pos.X, est.Pos.Y, est.Alpha, est.Kt, est.Bt0}
	res, err := mathx.LevenbergMarquardt(prob, p0, mathx.LMOptions{MaxIterations: 60})
	if err != nil && !errors.Is(err, mathx.ErrNoConvergence) {
		return est
	}
	x := clamp(res.Params[0], bounds.XMin, bounds.XMax)
	y := clamp(res.Params[1], bounds.YMin, bounds.YMax)
	// Reject a polish that wandered to another wrap basin.
	if math.Hypot(x-est.Pos.X, y-est.Pos.Y) > 0.12 {
		return est
	}
	est.Pos = geom.Vec3{X: x, Y: y}
	est.Alpha = normalizeAlpha(res.Params[2])
	est.Kt = res.Params[3]
	est.Bt0 = mathx.Wrap2Pi(res.Params[4])
	return est
}

// normalizeAlpha maps an in-plane polarization angle to [0, π): a
// dipole is symmetric under 180° rotation.
func normalizeAlpha(a float64) float64 {
	a = math.Mod(a, math.Pi)
	if a < 0 {
		a += math.Pi
	}
	return a
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Test hooks: exported thin wrappers used by the root-package
// diagnostics to probe the internal objectives.

// SlopeCostForTest exposes slopeCost for diagnostics.
func SlopeCostForTest(obs []Observation, p geom.Vec3) (float64, float64) {
	return slopeCost(obs, p, ktPrior{})
}

// MakePsiForTest exposes makePsi for diagnostics.
func MakePsiForTest(obs []Observation, p geom.Vec3) []float64 { return makePsi(obs, p) }

// OrientCostForTest exposes orientCost for diagnostics.
func OrientCostForTest(obs []Observation, psi []float64, w geom.Vec3) (float64, float64) {
	return orientCost(obs, psi, w)
}

// JointCost2DForTest exposes jointCost2D for diagnostics.
func JointCost2DForTest(obs []Observation, p []float64, sigmaB float64) float64 {
	return jointCost2D(obs, p, sigmaB, ktPrior{})
}
