package core

import (
	"math/rand"
	"testing"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// TestSolve2DParallelMatchesSerial: the parallel multistart must be a
// pure reimplementation of the serial scan — byte-identical Estimates,
// not merely close ones. Each start is an independent optimizer run
// and the reduction is (cost, start index)-deterministic, so any
// difference is a scheduling leak.
func TestSolve2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		pos := geom.Vec3{
			X: 0.2 + rng.Float64()*1.6,
			Y: 0.6 + rng.Float64()*1.8,
		}
		alpha := rng.Float64() * 3.14
		kt := rng.Float64() * 2e-8
		bt0 := rng.Float64() * 6.28
		obs := synthObs(testAnts, testAims, pos, alpha, kt, bt0)
		for _, opts := range []Options{
			{},
			{NoKtPrior: true},
			{DisableFinePhase: true},
		} {
			serialOpts, parOpts := opts, opts
			serialOpts.Parallelism = 1
			parOpts.Parallelism = 8
			serial, err := Solve2D(obs, testBounds, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Solve2D(obs, testBounds, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if serial != par {
				t.Errorf("trial %d opts %+v: serial and parallel estimates differ:\n%+v\n%+v",
					trial, opts, serial, par)
			}
		}
	}
}

// TestSolve3DParallelMatchesSerial: same bit-for-bit contract for the
// seven-unknown solver.
func TestSolve3DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		pos := geom.Vec3{
			X: 0.3 + rng.Float64()*1.4,
			Y: 0.8 + rng.Float64()*1.2,
			Z: rng.Float64() * 0.6,
		}
		az := rng.Float64() * 6.28
		el := (rng.Float64() - 0.5) * 1.8
		obs := synthObs3D(pos, rf.TagPolarization3D(az, el), 0.7e-8, 2.5)
		serial, err := Solve3D(obs, testBounds3D, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve3D(obs, testBounds3D, Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial != par {
			t.Errorf("trial %d: serial and parallel estimates differ:\n%+v\n%+v", trial, serial, par)
		}
	}
}

// TestGridSearchParallelMatchesSerial pins the row-sharded grid scan
// to the serial raster scan (first minimum in scan order wins).
func TestGridSearchParallelMatchesSerial(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1.1, Y: 1.7}, mathx.Rad(30), 1e-8, 1)
	sc := newCostScratch(obs, 0.04, ktPrior{})
	serial := gridSearch2D(sc, testBounds, 0.05, 1)
	par := gridSearch2D(sc, testBounds, 0.05, 8)
	if serial != par {
		t.Fatalf("grid scan differs: serial %+v parallel %+v", serial, par)
	}
	obs3 := synthObs3D(geom.Vec3{X: 1.0, Y: 1.4, Z: 0.3}, rf.TagPolarization3D(1, 0.4), 0.5e-8, 2)
	sc3 := newCostScratch(obs3, 0.04, ktPrior{})
	serial3 := gridSearch3D(sc3, testBounds3D, 0.1, 1)
	par3 := gridSearch3D(sc3, testBounds3D, 0.1, 8)
	if serial3 != par3 {
		t.Fatalf("3D grid scan differs: serial %+v parallel %+v", serial3, par3)
	}
}

// TestParallelForCoversAllIndices: the dynamic work counter must hand
// out every index exactly once at any worker count.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		const n = 100
		hits := make([]int, n)
		parallelFor(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestParallelForPanicReachesCaller: a panic on a worker goroutine
// must surface on the calling goroutine as *PoolPanic with the
// original value and a captured stack — otherwise it crashes the whole
// process and no fence above the pool can contain it.
func TestParallelForPanicReachesCaller(t *testing.T) {
	defer func() {
		v := recover()
		pp, ok := v.(*PoolPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PoolPanic", v, v)
		}
		if pp.Value != "worker exploded" {
			t.Errorf("panic value = %v", pp.Value)
		}
		if len(pp.Stack) == 0 {
			t.Error("panic stack not captured")
		}
	}()
	parallelFor(64, 4, func(i int) {
		if i == 17 {
			panic("worker exploded")
		}
	})
	t.Fatal("parallelFor returned instead of panicking")
}

// TestWorkerCount pins the Parallelism resolution rules.
func TestWorkerCount(t *testing.T) {
	if got := workerCount(1, 100); got != 1 {
		t.Fatalf("parallelism 1 → %d workers", got)
	}
	if got := workerCount(4, 2); got != 2 {
		t.Fatalf("4 workers over 2 items → %d", got)
	}
	if got := workerCount(0, 100); got < 1 {
		t.Fatalf("GOMAXPROCS default → %d", got)
	}
	if got := workerCount(-3, 100); got < 1 {
		t.Fatalf("negative parallelism → %d", got)
	}
}
