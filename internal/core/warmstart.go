package core

import (
	"math"
	"sort"
	"sync/atomic"

	"rfprism/internal/geom"
	"rfprism/internal/rf"
)

// SolveStats aggregates the solver fast-path counters. All fields are
// atomic so one instance can be shared by concurrent solves (the batch
// workers do); a nil Options.Stats disables counting entirely.
type SolveStats struct {
	// WarmAttempts counts solves that entered the warm fast path.
	WarmAttempts atomic.Int64
	// WarmFallbacks counts warm attempts that failed a guard and
	// re-ran the full cold path.
	WarmFallbacks atomic.Int64
	// StartsPruned counts multistart seeds demoted to the short
	// iteration budget by adaptive pruning.
	StartsPruned atomic.Int64
}

func (o Options) countWarmAttempt() {
	if o.Stats != nil {
		o.Stats.WarmAttempts.Add(1)
	}
}

func (o Options) countWarmFallback() {
	if o.Stats != nil {
		o.Stats.WarmFallbacks.Add(1)
	}
}

func (o Options) countPruned(n int) {
	if o.Stats != nil && n > 0 {
		o.Stats.StartsPruned.Add(int64(n))
	}
}

// warmOffsets covers the warm wrap basin and its immediate neighbors:
// ±8 cm (≈λ/4) around the previous position — 9 starts in 2D instead
// of the cold path's 294.
var warmOffsets = []float64{-0.08, 0, 0.08}

const (
	// warmSlopeFactor/warmSlopeSlack bound how much worse the warm
	// position's slope cost may be than the freshly refined slope
	// minimum before the entry guard declares the tag moved. The slack
	// keeps the test meaningful when the refined cost is ~0.
	warmSlopeFactor = 10.0
	warmSlopeSlack  = 1e-12
)

// WarmCostFloor is the joint-cost scale of a well-fit window: the
// objective has 2N residual terms of unit expected size, so a healthy
// solution costs ≈2N. Guard thresholds floor the previous window's
// cost at this scale so a lucky near-zero-cost window doesn't make
// its successor's guard impossibly tight.
func WarmCostFloor(n int) float64 { return 2 * float64(n) }

func warmCostCeiling(factor, warmCost float64, n int) float64 {
	return factor * math.Max(warmCost, WarmCostFloor(n))
}

// warmConsistent2D/3D is the entry guard: refine the slope-only fix
// starting from the warm position; if the refined fix walks away from
// the warm position AND the warm position's slope cost is far above
// the refined minimum, the tag moved basins and the warm seed is
// stale. The refined fix wandering alone is not disqualifying — at the
// far corners of the region the slope surface is shallow and its
// minimum sits 20+ cm from the true (and warm) position even for a
// stationary tag.
func warmConsistent(sc *solveScratch, warmPos, refined geom.Vec3, radius float64) bool {
	if refined.Dist(warmPos) <= radius {
		return true
	}
	cWarm, _ := sc.slopeCost(warmPos)
	cRef, _ := sc.slopeCost(refined)
	return cWarm <= warmSlopeFactor*cRef+warmSlopeSlack
}

// solve2DWarm is the warm fast path: skip the coarse grid, trust the
// previous window's estimate to be in (or adjacent to) the right wrap
// basin, and run a 9-start basin-local joint multistart seeded with
// the warm orientation. Returns ok = false when either guard fails;
// the caller then runs the cold path.
func solve2DWarm(sc *solveScratch, bounds Bounds, opts Options) (Estimate, bool) {
	warm := *opts.WarmStart
	posW := refinePos2D(sc, warm.Pos, bounds, opts.GridStep)
	if !warmConsistent(sc, warm.Pos, posW, opts.WarmRadius) {
		return Estimate{}, false
	}
	starts := make([][]float64, 0, len(warmOffsets)*len(warmOffsets))
	for _, dx := range warmOffsets {
		for _, dy := range warmOffsets {
			x0 := clamp(warm.Pos.X+dx, bounds.XMin, bounds.XMax)
			y0 := clamp(warm.Pos.Y+dy, bounds.YMin, bounds.YMax)
			p0 := geom.Vec3{X: x0, Y: y0}
			_, kt0 := sc.slopeCost(p0)
			sc.setPsi(p0)
			_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization2D(warm.Alpha))
			starts = append(starts, []float64{x0, y0, warm.Alpha, kt0, bt0})
		}
	}
	cands := make([]Estimate, len(starts))
	parallelFor(len(starts), workerCount(opts.Parallelism, len(starts)), func(i int) {
		cands[i] = runJoint2D(sc, starts[i], bounds, jointIters2D, warm.Cost)
	})
	best := finish2D(sc, reduceMinCost(cands), bounds, opts)
	if best.Cost > warmCostCeiling(opts.WarmGuardFactor, warm.Cost, len(sc.obs)) {
		return Estimate{}, false
	}
	return best, true
}

// solve3DWarm mirrors solve2DWarm with a 7-start axis star (center
// ± one wrap basin per axis) instead of the cold path's 486 starts.
func solve3DWarm(sc *solveScratch, bounds Bounds, opts Options) (Estimate, bool) {
	warm := *opts.WarmStart
	posW := refinePos3D(sc, warm.Pos, bounds, opts.GridStep*2)
	if !warmConsistent(sc, warm.Pos, posW, opts.WarmRadius) {
		return Estimate{}, false
	}
	const basin = 0.11
	offs := [][3]float64{
		{0, 0, 0},
		{-basin, 0, 0}, {basin, 0, 0},
		{0, -basin, 0}, {0, basin, 0},
		{0, 0, -basin}, {0, 0, basin},
	}
	starts := make([][]float64, 0, len(offs))
	for _, d := range offs {
		x0 := clamp(warm.Pos.X+d[0], bounds.XMin, bounds.XMax)
		y0 := clamp(warm.Pos.Y+d[1], bounds.YMin, bounds.YMax)
		z0 := clamp(warm.Pos.Z+d[2], bounds.ZMin, bounds.ZMax)
		p0 := geom.Vec3{X: x0, Y: y0, Z: z0}
		_, kt0 := sc.slopeCost(p0)
		sc.setPsi(p0)
		_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization3D(warm.Azimuth, warm.Elevation))
		starts = append(starts, []float64{x0, y0, z0, warm.Azimuth, warm.Elevation, kt0, bt0})
	}
	cands := make([]Estimate, len(starts))
	parallelFor(len(starts), workerCount(opts.Parallelism, len(starts)), func(i int) {
		cands[i] = runJoint3D(sc, starts[i], bounds, jointIters3D, warm.Cost)
	})
	best := refinePolar3D(sc, reduceMinCost(cands))
	if best.Cost > warmCostCeiling(opts.WarmGuardFactor, warm.Cost, len(sc.obs)) {
		return Estimate{}, false
	}
	return best, true
}

// pruneBudgets assigns per-start NelderMead budgets for adaptive
// pruning: rank the starts by their start-point joint cost and keep
// the full budget only for the best PruneKeep fraction — the rest get
// the short PruneIters cap. A start that must traverse a high-cost
// entry to win is rare (the multistart exists to *begin* near every
// basin), so the bottom tranche almost never produces the winner and
// cutting it early is nearly free. Returns nil (all starts full) when
// pruning is off. The budgets are fixed deterministically before the
// parallel fan-out — ranking ties break toward the lower start index —
// so serial and parallel runs still produce identical candidates.
func pruneBudgets(starts [][]float64, costAt func([]float64) float64, opts Options) []int {
	if !opts.PruneStarts || len(starts) <= 1 {
		return nil
	}
	type ranked struct {
		cost float64
		idx  int
	}
	rk := make([]ranked, len(starts))
	for i, s := range starts {
		rk[i] = ranked{cost: costAt(s), idx: i}
	}
	sort.Slice(rk, func(a, b int) bool {
		if rk[a].cost != rk[b].cost {
			return rk[a].cost < rk[b].cost
		}
		return rk[a].idx < rk[b].idx
	})
	keep := int(math.Ceil(opts.PruneKeep * float64(len(starts))))
	if keep < 1 {
		keep = 1
	}
	if keep > len(starts) {
		keep = len(starts)
	}
	budgets := make([]int, len(starts))
	for r, e := range rk {
		if r >= keep {
			budgets[e.idx] = opts.PruneIters
		}
	}
	opts.countPruned(len(starts) - keep)
	return budgets
}

// budgetFor resolves one start's iteration budget against the pruning
// plan (nil plan or a zero entry means the full budget).
func budgetFor(budgets []int, i, full int) int {
	if budgets != nil && budgets[i] > 0 {
		return budgets[i]
	}
	return full
}
