package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// PoolPanic carries a panic that fired on a parallelFor worker
// goroutine across to the calling goroutine. A recover() placed around
// the caller (the per-window fence in the batch layer) would otherwise
// never see worker panics — recover only works on the panicking
// goroutine — so the pool captures the first panic with its stack and
// re-throws it after the pool winds down.
type PoolPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack at capture time.
	Stack []byte
}

// Error lets a PoolPanic double as an error for callers that convert
// rather than re-panic.
func (p *PoolPanic) Error() string {
	return fmt.Sprintf("core: solver pool worker panicked: %v", p.Value)
}

// reduceMinCost returns the lowest-cost candidate, breaking ties
// toward the lowest index. Scanning in index order with a strict
// comparison reproduces exactly what the serial multistart loop kept,
// so parallel and serial solves agree bit-for-bit.
func reduceMinCost(cands []Estimate) Estimate {
	best := Estimate{Cost: math.Inf(1)}
	for _, c := range cands {
		if c.Cost < best.Cost {
			best = c
		}
	}
	return best
}

// workerCount resolves an Options.Parallelism value: 0 means one
// worker per GOMAXPROCS, anything below 1 is clamped to serial, and n
// is never larger than the number of work items.
func workerCount(parallelism, items int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) across the given number
// of workers. Work is handed out through an atomic counter, so the
// assignment of indices to goroutines is dynamic — callers must make
// fn(i) independent of execution order and write results into
// index-addressed slots to stay deterministic. With workers <= 1 the
// loop runs inline on the calling goroutine (the serial path: no
// goroutines, no synchronization).
// A panic inside fn on a worker goroutine is re-thrown on the calling
// goroutine as a *PoolPanic; sibling workers finish their current item
// and stop. The serial path stays a bare loop — its panics already
// reach the caller directly, and the hot grid scans cannot afford a
// defer per item.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var firstPanic atomic.Pointer[PoolPanic]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstPanic.Load() != nil {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							buf := make([]byte, 64<<10)
							firstPanic.CompareAndSwap(nil, &PoolPanic{
								Value: v,
								Stack: buf[:runtime.Stack(buf, false)],
							})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
}
