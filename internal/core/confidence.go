package core

import (
	"errors"
	"fmt"
	"math"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
)

// ErrConfidence is wrapped by every EvaluateConfidence failure.
var ErrConfidence = errors.New("core: confidence evaluation failed")

// z90 is the two-sided 90% normal quantile: P(|Z| < z90) = 0.90.
const z90 = 1.6448536269514722

// t90 returns the two-sided 90% Student-t quantile for dof residual
// degrees of freedom. The covariance is inflated by a variance
// estimate s² = cost/dof computed from very few equations, so the
// interval half-widths must carry the small-sample penalty — with
// dof=3 (four antennas, 2D) the honest quantile is 2.35, not 1.64.
func t90(dof float64) float64 {
	table := []struct{ nu, q float64 }{
		{1, 6.3138}, {2, 2.9200}, {3, 2.3534}, {4, 2.1318},
		{5, 2.0150}, {6, 1.9432}, {7, 1.8946}, {8, 1.8595},
		{10, 1.8125}, {12, 1.7823}, {15, 1.7531}, {20, 1.7247},
		{30, 1.6973}, {60, 1.6706}, {120, 1.6577},
	}
	if dof <= table[0].nu {
		return table[0].q
	}
	for i := 1; i < len(table); i++ {
		if dof <= table[i].nu {
			lo, hi := table[i-1], table[i]
			f := (dof - lo.nu) / (hi.nu - lo.nu)
			return lo.q + f*(hi.q-lo.q)
		}
	}
	return z90
}

// Confidence is the likelihood-level description of one estimate: the
// local curvature of the joint objective at the optimum turned into a
// covariance, plus the explicit 2π-ambiguity score the wrap-basin
// multistart otherwise resolves silently. The joint cost is 2× the
// negative log-likelihood of the phase observations under the
// per-antenna noise model (slope σ_k from the line fit, intercept σ_B
// after adaptive widening), so the observed Fisher information is
// H/2 and Cov = 2·H⁻¹.
type Confidence struct {
	// Cov is the parameter covariance at the optimum, row-major over
	// the solver's parameter order: (x, y, α, k_t, b_t) for 2D,
	// (x, y, z, az, el, k_t, b_t) for 3D. Positive-semidefinite by
	// construction (inverse of a jittered-Cholesky-factored Hessian).
	Cov *mathx.Mat
	// Sigma is sqrt(diag(Cov)) in the same parameter order.
	Sigma []float64
	// PosCI90 is the per-axis 90% confidence half-width of the
	// position, meters; Z is 0 for 2D solves.
	PosCI90 geom.Vec3
	// AlphaCI90 is the 90% half-width of the orientation angle
	// (α for 2D, azimuth for 3D), radians.
	AlphaCI90 float64
	// NormLogLik is the average per-equation log-likelihood at the
	// optimum, −cost/(2·2N): comparable across windows regardless of
	// how many antennas survived. Closer to 0 is better.
	NormLogLik float64
	// AmbiguityMargin is the cost gap, in negative-log-likelihood
	// units, between the solution's wrap basin and the best
	// alternative λ/2 basin found by the probe multistart. Small or
	// negative margins mean the 2π ambiguity is not firmly resolved.
	AmbiguityMargin float64
	// AltBasins is how many probes escaped to a distinct basin (the
	// margin is measured against the best of them).
	AltBasins int
	// SigmaPhase is the intercept noise σ_B (radians) actually used,
	// after adaptive widening to the median fit residual.
	SigmaPhase float64
	// Cost is the joint objective re-evaluated at the estimate under
	// this confidence pass's weighting (2× total NLL).
	Cost float64
	// N is the number of observations scored.
	N int
}

// RadialCI90 is the 90% confidence radius in the XY plane — the
// conservative circular bound max(x, y half-widths).
func (c *Confidence) RadialCI90() float64 {
	return math.Max(c.PosCI90.X, c.PosCI90.Y)
}

// confidence Hessian step sizes per parameter kind. Position steps sit
// well under the centimeter curvature scale of the intercept term;
// the k_t step matches its ~1e-8 rad/Hz dynamic range.
const (
	hStepPos   = 5e-4
	hStepAngle = 1e-3
	hStepKt    = 2e-11
	hStepBt    = 1e-3
)

// EvaluateConfidence computes the Confidence block for an estimate
// already produced by Solve2D/Solve3D over the same observations. It
// is a pure post-pass: the solver's result is not modified, and the
// evaluation costs a few hundred objective calls (numerical Hessian +
// short ambiguity probes) — small next to the multistart itself.
func EvaluateConfidence(obs []Observation, est Estimate, mode3D bool, bounds Bounds, opts Options) (*Confidence, error) {
	opts.defaults()
	if len(obs) < MinAntennas(mode3D) {
		return nil, fmt.Errorf("%w: %v", ErrConfidence, ErrTooFewAntennas)
	}
	// The per-antenna offsets applied upstream were estimated from a
	// single calibration window, so that window's noise realization
	// rides along fully correlated in every later window: one extra
	// nominal intercept variance, added in quadrature.
	opts.SigmaB *= math.Sqrt2
	sc := newSolveScratch(obs, &opts)

	var p []float64
	var steps []float64
	var f func([]float64) float64
	if mode3D {
		p = []float64{est.Pos.X, est.Pos.Y, est.Pos.Z, est.Azimuth, est.Elevation, est.Kt, est.Bt0}
		steps = []float64{hStepPos, hStepPos, hStepPos, hStepAngle, hStepAngle, hStepKt, hStepBt}
		f = sc.jointCost3D
	} else {
		p = []float64{est.Pos.X, est.Pos.Y, est.Alpha, est.Kt, est.Bt0}
		steps = []float64{hStepPos, hStepPos, hStepAngle, hStepKt, hStepBt}
		f = sc.jointCost2D
	}
	baseCost := f(p)
	if !isFinite(baseCost) {
		return nil, fmt.Errorf("%w: non-finite cost at estimate", ErrConfidence)
	}

	h, err := numericHessian(f, p, steps, baseCost)
	if err != nil {
		return nil, err
	}
	cov, err := invertPSD(h)
	if err != nil {
		return nil, err
	}
	// Cost = 2·NLL, so the observed information is H/2 and the
	// covariance is 2·H⁻¹.
	//
	// The raw inverse only describes the in-window phase scatter; the
	// dominant real-world error sources (calibration bias, orientation
	// model misfit, residual multipath) show up instead as excess cost
	// at the optimum. Inflate by the reduced chi-square s² = cost/dof
	// — the classic least-squares variance estimate — floored at 1 so
	// a lucky window never claims better than the nominal noise model.
	dof := float64(2*len(obs) - len(p))
	if dof < 1 {
		dof = 1
	}
	s2 := baseCost / dof
	if s2 < 1 {
		s2 = 1
	}
	for i := range cov.Data {
		cov.Data[i] *= 2 * s2
	}

	n := len(p)
	sigma := make([]float64, n)
	for i := 0; i < n; i++ {
		v := cov.At(i, i)
		if v < 0 {
			v = 0
		}
		sigma[i] = math.Sqrt(v)
	}

	conf := &Confidence{
		Cov:        cov,
		Sigma:      sigma,
		SigmaPhase: sc.sigmaB,
		Cost:       baseCost,
		N:          len(obs),
		NormLogLik: -baseCost / (2 * float64(2*len(obs))),
	}
	q := t90(dof)
	if mode3D {
		conf.PosCI90 = geom.Vec3{X: q * sigma[0], Y: q * sigma[1], Z: q * sigma[2]}
		conf.AlphaCI90 = q * sigma[3]
	} else {
		conf.PosCI90 = geom.Vec3{X: q * sigma[0], Y: q * sigma[1]}
		conf.AlphaCI90 = q * sigma[2]
	}
	conf.AmbiguityMargin, conf.AltBasins = ambiguityMargin(sc, est, mode3D, bounds, baseCost)
	return conf, nil
}

// numericHessian is the symmetric central-difference Hessian of f at
// p. f0 is f(p), already evaluated.
func numericHessian(f func([]float64) float64, p, steps []float64, f0 float64) (*mathx.Mat, error) {
	n := len(p)
	h := mathx.NewMat(n, n)
	q := make([]float64, n)
	eval := func(di, dj int, si, sj float64) float64 {
		copy(q, p)
		q[di] += si * steps[di]
		if dj >= 0 {
			q[dj] += sj * steps[dj]
		}
		return f(q)
	}
	for i := 0; i < n; i++ {
		fp := eval(i, -1, 1, 0)
		fm := eval(i, -1, -1, 0)
		h.Set(i, i, (fp-2*f0+fm)/(steps[i]*steps[i]))
		for j := i + 1; j < n; j++ {
			fpp := eval(i, j, 1, 1)
			fpm := eval(i, j, 1, -1)
			fmp := eval(i, j, -1, 1)
			fmm := eval(i, j, -1, -1)
			v := (fpp - fpm - fmp + fmm) / (4 * steps[i] * steps[j])
			h.Set(i, j, v)
			h.Set(j, i, v)
		}
	}
	for _, v := range h.Data {
		if !isFinite(v) {
			return nil, fmt.Errorf("%w: non-finite Hessian entry", ErrConfidence)
		}
	}
	return h, nil
}

// invertPSD inverts a symmetric matrix through a Cholesky
// factorization, escalating a diagonal jitter until the factorization
// succeeds — so the inverse is positive-definite by construction even
// when numerical noise (or a genuinely flat direction) leaves the raw
// Hessian indefinite.
func invertPSD(h *mathx.Mat) (*mathx.Mat, error) {
	n := h.Rows
	scale := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(h.At(i, i)); d > scale {
			scale = d
		}
	}
	if scale == 0 {
		return nil, fmt.Errorf("%w: zero-curvature Hessian", ErrConfidence)
	}
	jitters := []float64{0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1}
	for _, j := range jitters {
		a := h.Clone()
		for i := 0; i < n; i++ {
			a.Add(i, i, j*scale)
		}
		inv, err := choleskyInverse(a)
		if err == nil {
			return inv, nil
		}
	}
	return nil, fmt.Errorf("%w: Hessian not invertible even with jitter", ErrConfidence)
}

func choleskyInverse(a *mathx.Mat) (*mathx.Mat, error) {
	n := a.Rows
	inv := mathx.NewMat(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := range e {
			e[k] = 0
		}
		e[j] = 1
		col, err := mathx.SolveCholesky(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	// Symmetrize: the column solves agree only to rounding.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (inv.At(i, j) + inv.At(j, i)) / 2
			inv.Set(i, j, v)
			inv.Set(j, i, v)
		}
	}
	return inv, nil
}

// ambiguityOffsets are the λ/2 wrap-basin probe displacements: one and
// two basins out along each axis.
var ambiguityOffsets = []float64{-0.16, -0.08, 0.08, 0.16}

// ambiguityEscape is how far (m) a probe must land from the solution
// to count as a distinct basin rather than the same minimum re-found.
const ambiguityEscape = 0.04

// ambiguityProbeIters budgets each short probe refinement.
const ambiguityProbeIters = 80

// ambiguityMargin scores the 2π ambiguity explicitly: short
// Nelder–Mead probes started one and two wrap basins away on each
// position axis either fall back into the solution's basin (strong
// margin) or settle in an alternative basin whose cost gap — in NLL
// units, (altCost − baseCost)/2 — is the margin. Probes that all
// collapse home fall back to the unoptimized offset-point costs, which
// upper-bound how good any alternative basin could look.
func ambiguityMargin(sc *solveScratch, est Estimate, mode3D bool, bounds Bounds, baseCost float64) (margin float64, altBasins int) {
	bestAlt := math.Inf(1)
	bestRaw := math.Inf(1)
	axes := 2
	if mode3D {
		axes = 3
	}
	for axis := 0; axis < axes; axis++ {
		for _, off := range ambiguityOffsets {
			pos := est.Pos
			switch axis {
			case 0:
				pos.X = clamp(pos.X+off, bounds.XMin, bounds.XMax)
			case 1:
				pos.Y = clamp(pos.Y+off, bounds.YMin, bounds.YMax)
			case 2:
				pos.Z = clamp(pos.Z+off, bounds.ZMin, bounds.ZMax)
			}
			if pos.Dist(est.Pos) < ambiguityEscape {
				continue // clamped back onto the solution
			}
			var cand Estimate
			if mode3D {
				p0 := []float64{pos.X, pos.Y, pos.Z, est.Azimuth, est.Elevation, est.Kt, est.Bt0}
				if raw := sc.jointCost3D(p0); raw < bestRaw {
					bestRaw = raw
				}
				cand = runJoint3D(sc, p0, bounds, ambiguityProbeIters, 0)
			} else {
				p0 := []float64{pos.X, pos.Y, est.Alpha, est.Kt, est.Bt0}
				if raw := sc.jointCost2D(p0); raw < bestRaw {
					bestRaw = raw
				}
				cand = runJoint2D(sc, p0, bounds, ambiguityProbeIters, 0)
			}
			if cand.Pos.Dist(est.Pos) >= ambiguityEscape {
				altBasins++
				if cand.Cost < bestAlt {
					bestAlt = cand.Cost
				}
			}
		}
	}
	if altBasins == 0 {
		// Every probe collapsed back home: the nearest basins are so
		// much worse that even their unoptimized entry cost bounds the
		// margin. Keeps the margin finite for the wire format.
		bestAlt = bestRaw
	}
	if math.IsInf(bestAlt, 1) {
		return 0, 0
	}
	return (bestAlt - baseCost) / 2, altBasins
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
