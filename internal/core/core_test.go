package core

import (
	"errors"
	"math"
	"testing"

	"rfprism/internal/fit"
	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// synthObs builds noiseless observations for a tag at pos with
// in-plane polarization alpha, material slope kt and intercept bt0,
// observed by the given antenna geometries.
func synthObs(ants []geom.Vec3, aims []geom.Vec3, pos geom.Vec3, alpha, kt, bt0 float64) []Observation {
	w := rf.TagPolarization2D(alpha)
	obs := make([]Observation, len(ants))
	for i := range ants {
		frame := geom.NewFrame(aims[i].Sub(ants[i]).Unit())
		d := ants[i].Dist(pos)
		obs[i] = Observation{
			ID:    i,
			Pos:   ants[i],
			Frame: frame,
			Line: fit.Line{
				K:      rf.PropagationSlope(d) + kt,
				B0:     mathx.Wrap2Pi(rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(frame, w) + bt0),
				SigmaK: 4e-10,
			},
		}
	}
	return obs
}

var (
	testAnts = []geom.Vec3{
		{X: 0.5, Y: 0, Z: 1.0},
		{X: 1.0, Y: 0, Z: 1.5},
		{X: 1.5, Y: 0, Z: 1.2},
	}
	testAims = []geom.Vec3{
		{X: 1.9, Y: 1.3, Z: 0},
		{X: 1.0, Y: 1.7, Z: 0},
		{X: 0.1, Y: 1.3, Z: 0},
	}
	testBounds = Bounds{XMin: 0, XMax: 2, YMin: 0.5, YMax: 2.5}
)

func TestSolve2DNoiselessExact(t *testing.T) {
	cases := []struct {
		pos      geom.Vec3
		alphaDeg float64
		kt, bt0  float64
	}{
		{geom.Vec3{X: 0.7, Y: 1.2}, 60, 0.9e-8, 1.2},
		{geom.Vec3{X: 1.5, Y: 2.1}, 0, 0.2e-8, 5.5},
		{geom.Vec3{X: 0.3, Y: 0.8}, 150, 1.8e-8, 0.1},
		{geom.Vec3{X: 1.0, Y: 1.5}, 90, 0, 3.0},
	}
	for _, c := range cases {
		obs := synthObs(testAnts, testAims, c.pos, mathx.Rad(c.alphaDeg), c.kt, c.bt0)
		// Without the kt prior the solver is an unbiased estimator and
		// must be near-exact on noiseless data.
		est, err := Solve2D(obs, testBounds, Options{NoKtPrior: true})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if d := est.Pos.Dist(c.pos); d > 0.01 {
			t.Errorf("%+v: position error %.3f m", c, d)
		}
		if oe := math.Abs(mathx.AngDiffPeriod(est.Alpha, mathx.Rad(c.alphaDeg), math.Pi)); mathx.Deg(oe) > 2 {
			t.Errorf("%+v: orientation error %.2f°", c, mathx.Deg(oe))
		}
		if math.Abs(est.Kt-c.kt) > 5e-10 {
			t.Errorf("%+v: kt %.3g, want %.3g", c, est.Kt, c.kt)
		}
		if be := math.Abs(mathx.WrapPi(est.Bt0 - c.bt0)); be > 0.15 {
			t.Errorf("%+v: bt0 error %.3f rad", c, be)
		}
	}
}

func TestSolve2DPriorBiasBounded(t *testing.T) {
	// The physical kt prior trades a small radial bias for robustness
	// at the far edge; on noiseless data that bias must stay small.
	for _, c := range []struct {
		pos geom.Vec3
		kt  float64
	}{
		{geom.Vec3{X: 1.0, Y: 1.5}, 0},
		{geom.Vec3{X: 0.7, Y: 1.2}, 2e-8},
	} {
		obs := synthObs(testAnts, testAims, c.pos, mathx.Rad(45), c.kt, 1)
		est, err := Solve2D(obs, testBounds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d := est.Pos.Dist(c.pos); d > 0.06 {
			t.Errorf("prior bias %.3f m at %+v", d, c)
		}
		if oe := mathx.Deg(math.Abs(mathx.AngDiffPeriod(est.Alpha, mathx.Rad(45), math.Pi))); oe > 6 {
			t.Errorf("prior orientation bias %.1f° at %+v", oe, c)
		}
	}
}

func TestSolve2DTooFewAntennas(t *testing.T) {
	obs := synthObs(testAnts[:2], testAims[:2], geom.Vec3{X: 1, Y: 1}, 0, 0, 0)
	if _, err := Solve2D(obs, testBounds, Options{}); !errors.Is(err, ErrTooFewAntennas) {
		t.Fatalf("want ErrTooFewAntennas, got %v", err)
	}
}

func TestSolve2DDisableFinePhase(t *testing.T) {
	pos := geom.Vec3{X: 0.9, Y: 1.4}
	obs := synthObs(testAnts, testAims, pos, mathx.Rad(30), 0.5e-8, 2)
	est, err := Solve2D(obs, testBounds, Options{DisableFinePhase: true})
	if err != nil {
		t.Fatal(err)
	}
	// Slope-only is still accurate on noiseless data.
	if d := est.Pos.Dist(pos); d > 0.02 {
		t.Fatalf("slope-only position error %.3f", d)
	}
}

func TestSolve2DKtPriorShrinksOnly(t *testing.T) {
	// With an extreme true kt far outside the prior, the prior biases
	// the estimate toward its mean but the position must survive.
	pos := geom.Vec3{X: 1.1, Y: 1.3}
	obs := synthObs(testAnts, testAims, pos, 0, 4e-8, 1)
	withPrior, err := Solve2D(obs, testBounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noPrior, err := Solve2D(obs, testBounds, Options{NoKtPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noPrior.Kt-4e-8) > 5e-10 {
		t.Fatalf("no-prior kt = %g, want 4e-8", noPrior.Kt)
	}
	if withPrior.Pos.Dist(pos) > 0.25 {
		t.Fatalf("prior destroyed localization: err %.3f", withPrior.Pos.Dist(pos))
	}
}

func TestCalibrateAntennasRemovesOffsets(t *testing.T) {
	calPos := geom.Vec3{X: 1.0, Y: 1.5}
	// Inject per-antenna hardware offsets on top of the physics.
	offsets := []struct{ dk, db float64 }{{2e-8, 0.5}, {-1e-8, 1.2}, {3e-8, -0.7}}
	obs := synthObs(testAnts, testAims, calPos, 0, 0, 0)
	for i := range obs {
		obs[i].Line.K += offsets[i].dk
		obs[i].Line.B0 = mathx.Wrap2Pi(obs[i].Line.B0 + offsets[i].db)
	}
	cal, err := CalibrateAntennas(obs, calPos, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range offsets {
		if math.Abs(cal.DK[i]-offsets[i].dk) > 1e-12 {
			t.Errorf("DK[%d] = %g, want %g", i, cal.DK[i], offsets[i].dk)
		}
		if math.Abs(mathx.WrapPi(cal.DB[i]-offsets[i].db)) > 1e-9 {
			t.Errorf("DB[%d] = %g, want %g", i, cal.DB[i], offsets[i].db)
		}
	}
	// Applying the calibration and solving at another pose must work.
	target := geom.Vec3{X: 0.6, Y: 1.9}
	obs2 := synthObs(testAnts, testAims, target, mathx.Rad(120), 1e-8, 2)
	for i := range obs2 {
		obs2[i].Line.K += offsets[i].dk
		obs2[i].Line.B0 = mathx.Wrap2Pi(obs2[i].Line.B0 + offsets[i].db)
	}
	est, err := Solve2D(cal.Apply(obs2), testBounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Pos.Dist(target); d > 0.02 {
		t.Fatalf("calibrated solve error %.3f m", d)
	}
	if oe := mathx.Deg(math.Abs(mathx.AngDiffPeriod(est.Alpha, mathx.Rad(120), math.Pi))); oe > 3 {
		t.Fatalf("calibrated orientation error %.1f°", oe)
	}
}

func TestCalibrateAntennasEmpty(t *testing.T) {
	if _, err := CalibrateAntennas(nil, geom.Vec3{}, 0); err == nil {
		t.Fatal("empty observations must error")
	}
}

func TestAntennaCalApplyNoop(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1, Y: 1}, 0, 0, 0)
	out := (AntennaCal{}).Apply(obs)
	for i := range obs {
		if out[i].Line.K != obs[i].Line.K || out[i].Line.B0 != obs[i].Line.B0 {
			t.Fatal("zero calibration must be a no-op")
		}
	}
}

func TestAntennaCalApplyAdjustsPhases(t *testing.T) {
	obs := synthObs(testAnts, testAims, geom.Vec3{X: 1, Y: 1}, 0, 0, 0)
	obs[0].Freqs = []float64{rf.CenterFrequencyHz, rf.CenterFrequencyHz + 1e6}
	obs[0].Phases = []float64{1.0, 2.0}
	cal := AntennaCal{DK: map[int]float64{0: 1e-9}, DB: map[int]float64{0: 0.25}}
	out := cal.Apply(obs)
	if math.Abs(out[0].Phases[0]-(1.0-0.25)) > 1e-12 {
		t.Fatalf("phase at f0: %g", out[0].Phases[0])
	}
	if math.Abs(out[0].Phases[1]-(2.0-1e-9*1e6-0.25)) > 1e-12 {
		t.Fatalf("phase at f0+1MHz: %g", out[0].Phases[1])
	}
	// The input must be untouched.
	if obs[0].Phases[0] != 1.0 {
		t.Fatal("Apply mutated its input")
	}
}

func TestNormalizeAlpha(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, 0},
		{math.Pi + 0.3, 0.3},
		{-0.2, math.Pi - 0.2},
		{2*math.Pi + 0.1, 0.1},
	}
	for _, c := range cases {
		if got := normalizeAlpha(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("normalizeAlpha(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
