package core

import (
	"math"
	"sync"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// solveScratch hoists the per-observation invariants of one solve —
// slope weights 1/σ_k², their sum, the k_t prior and the intercept
// weight — so the objectives evaluated thousands of times inside the
// NelderMead inner loops run allocation-free. The psi/sinPsi/cosPsi
// buffers hold the residual intercepts of the most recent setPsi
// position for the dense orientation scans.
//
// Concurrency: the precomputed fields (obs, wk, sw, prior, sigB2) are
// read-only after construction, so slopeCost/jointCost2D/jointCost3D
// are safe to call from parallel workers. setPsi and everything that
// reads psi/sinPsi/cosPsi/resids mutate shared buffers and must only
// run in the serial sections of a solve (start construction and the
// post-reduction refinements).
type solveScratch struct {
	obs    []Observation
	prior  ktPrior
	sigmaB float64
	sigB2  float64 // sigmaB², hoisted out of the intercept residual term
	wk     []float64
	sw     float64 // Σ wk, accumulated in observation order
	wb     []float64 // per-antenna soft weight (Observation.Weight, 1 default)
	swb    float64   // Σ wb
	psi    []float64
	sinPsi []float64
	cosPsi []float64
	resids []float64 // adaptiveSigmaB scratch
}

// newCostScratch builds a scratch around obs with an explicit σ_B (no
// adaptive widening) — the form the exported cost probes use.
func newCostScratch(obs []Observation, sigmaB float64, prior ktPrior) *solveScratch {
	n := len(obs)
	buf := make([]float64, 6*n)
	sc := &solveScratch{
		obs:    obs,
		prior:  prior,
		wk:     buf[0:n:n],
		psi:    buf[n : 2*n : 2*n],
		sinPsi: buf[2*n : 3*n : 3*n],
		cosPsi: buf[3*n : 4*n : 4*n],
		resids: buf[4*n : 5*n : 5*n],
		wb:     buf[5*n : 6*n : 6*n],
	}
	for i := range obs {
		o := &obs[i]
		soft := obsWeight(o)
		w := soft
		if o.Line.SigmaK > 0 {
			w /= o.Line.SigmaK * o.Line.SigmaK
		}
		sc.wk[i] = w
		sc.sw += w
		sc.wb[i] = soft
		sc.swb += soft
	}
	sc.setSigmaB(sigmaB)
	return sc
}

// newSolveScratch is the solver entry form: it widens opts.SigmaB with
// the adaptive rule and writes the result back so every downstream
// stage of the solve weights the intercepts identically.
func newSolveScratch(obs []Observation, opts *Options) *solveScratch {
	sc := newCostScratch(obs, opts.SigmaB, opts.prior())
	opts.SigmaB = sc.adaptiveSigmaB(opts.SigmaB)
	sc.setSigmaB(opts.SigmaB)
	return sc
}

func (sc *solveScratch) setSigmaB(sigmaB float64) {
	sc.sigmaB = sigmaB
	sc.sigB2 = sigmaB * sigmaB
}

// adaptiveSigmaB widens the assumed intercept error to the median
// per-antenna fit residual when that exceeds the floor — same rule as
// the package-level adaptiveSigmaB, but sorting the reusable resids
// buffer in place instead of allocating.
func (sc *solveScratch) adaptiveSigmaB(floor float64) float64 {
	for i := range sc.obs {
		sc.resids[i] = sc.obs[i].Line.ResidStd
	}
	if m := mathx.MedianInPlace(sc.resids); m > floor {
		return m
	}
	return floor
}

// slopeCost is slopeCost over the precomputed weights: bit-identical
// to the package-level function (same accumulation order, same
// profiled k_t) with the weight recomputation hoisted out.
func (sc *solveScratch) slopeCost(p geom.Vec3) (cost, kt float64) {
	var swe float64
	for i := range sc.obs {
		o := &sc.obs[i]
		d := o.Pos.Dist(p)
		e := o.Line.K - rf.PropagationSlope(d)
		swe += sc.wk[i] * e
	}
	kt = (swe + sc.prior.mean*sc.prior.wp) / (sc.sw + sc.prior.wp)
	for i := range sc.obs {
		o := &sc.obs[i]
		d := o.Pos.Dist(p)
		e := o.Line.K - rf.PropagationSlope(d)
		r := e - kt
		cost += sc.wk[i] * r * r
	}
	dp := kt - sc.prior.mean
	cost += sc.prior.wp * dp * dp
	return cost / sc.sw, kt
}

// jointCost2D is the full 2N-equation objective at p = (x, y, α, k_t,
// b_t) — the same expression as the package-level jointCost2D with the
// slope weights and σ_B² precomputed.
func (sc *solveScratch) jointCost2D(p []float64) float64 {
	pos := geom.Vec3{X: p[0], Y: p[1]}
	w := rf.TagPolarization2D(p[2])
	kt, bt0 := p[3], p[4]
	var cost float64
	for i := range sc.obs {
		o := &sc.obs[i]
		d := o.Pos.Dist(pos)
		rk := o.Line.K - rf.PropagationSlope(d) - kt
		pred := rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(o.Frame, w) + bt0
		rb := mathx.WrapPi(o.Line.B0 - pred)
		cost += sc.wk[i]*rk*rk + sc.wb[i]*rb*rb/sc.sigB2
	}
	dp := kt - sc.prior.mean
	cost += sc.prior.wp * dp * dp
	return cost
}

// jointCost3D is the objective at p = (x, y, z, az, el, k_t, b_t).
func (sc *solveScratch) jointCost3D(p []float64) float64 {
	pos := geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
	w := rf.TagPolarization3D(p[3], p[4])
	kt, bt0 := p[5], p[6]
	var cost float64
	for i := range sc.obs {
		o := &sc.obs[i]
		d := o.Pos.Dist(pos)
		rk := o.Line.K - rf.PropagationSlope(d) - kt
		pred := rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(o.Frame, w) + bt0
		rb := mathx.WrapPi(o.Line.B0 - pred)
		cost += sc.wk[i]*rk*rk + sc.wb[i]*rb*rb/sc.sigB2
	}
	dp := kt - sc.prior.mean
	cost += sc.prior.wp * dp * dp
	return cost
}

// setPsi fills the residual-intercept buffers for pos: ψ_i and its
// sine/cosine, which the table-driven orientation scans consume.
// Serial sections only (shared buffers).
func (sc *solveScratch) setPsi(pos geom.Vec3) {
	for i := range sc.obs {
		o := &sc.obs[i]
		prop := rf.PropagationPhase(o.Pos.Dist(pos), rf.CenterFrequencyHz)
		sc.psi[i] = mathx.Wrap2Pi(o.Line.B0 - prop)
		sc.sinPsi[i], sc.cosPsi[i] = math.Sincos(sc.psi[i])
	}
}

// orientTerm returns (cos θ, sin θ) of the orientation phase
// θ = atan2(2ab, a²−b²) without evaluating any trig: since
// (2ab)² + (a²−b²)² = (a²+b²)², dividing by h = a²+b² yields the
// sine/cosine directly. A tag orthogonal to the frame (a = b = 0) has
// θ = 0 by convention, i.e. (1, 0) — matching rf.OrientationPhase.
func orientTerm(fr *geom.Frame, w geom.Vec3) (cosT, sinT float64) {
	a := fr.U.Dot(w)
	b := fr.V.Dot(w)
	h := a*a + b*b
	if h == 0 {
		return 1, 0
	}
	return (a*a - b*b) / h, 2 * a * b / h
}

// scanOrient finds the grid entry minimizing the detached orientation
// cost against the scratch's current ψ (set by setPsi). The residual
// sin/cos come from the angle-difference identities over orientTerm,
// so the whole dense scan runs without a single trig call or
// allocation. Returns the best entry index and its cost.
func (sc *solveScratch) scanOrient(g *angleGrid) (best int, bestCost float64) {
	n := sc.swb
	bestCost = math.Inf(1)
	for gi := range g.pol {
		w := g.pol[gi]
		var s, c float64
		for i := range sc.obs {
			ct, st := orientTerm(&sc.obs[i].Frame, w)
			s += sc.wb[i] * (sc.sinPsi[i]*ct - sc.cosPsi[i]*st)
			c += sc.wb[i] * (sc.cosPsi[i]*ct + sc.sinPsi[i]*st)
		}
		if cost := 1 - math.Hypot(s/n, c/n); cost < bestCost {
			bestCost, best = cost, gi
		}
	}
	return best, bestCost
}

// angleGrid is a precomputed dense grid of candidate polarization
// vectors with their generating angles (az carries α for the 2D
// grids). Grids are built once, integer-stepped — the grid point k is
// exactly start + k·step, with no float accumulation drift — and
// shared read-only by all solves.
type angleGrid struct {
	az, el []float64
	pol    []geom.Vec3
}

var (
	alphaGridOnce   sync.Once
	alphaGridTab    *angleGrid
	polarRefineOnce sync.Once
	polarRefineTab  *angleGrid
	polarCoarseOnce sync.Once
	polarCoarseTab  *angleGrid
)

// alphaGrid is the 1° grid over α ∈ [0, π) used by the 2D orientation
// refinement and the detached 2D ablation.
func alphaGrid() *angleGrid {
	alphaGridOnce.Do(func() {
		g := &angleGrid{}
		step := mathx.Rad(1)
		for i := 0; i < 180; i++ {
			a := float64(i) * step
			g.az = append(g.az, a)
			g.el = append(g.el, 0)
			g.pol = append(g.pol, rf.TagPolarization2D(a))
		}
		alphaGridTab = g
	})
	return alphaGridTab
}

// polarRefineGrid is the 2° grid over az ∈ [0, 2π) × el ∈ [−π/2, π/2]
// used by refinePolar3D, in the same az-outer/el-inner scan order as
// the historical loop (ties resolve identically).
func polarRefineGrid() *angleGrid {
	polarRefineOnce.Do(func() {
		polarRefineTab = buildPolarGrid(2*math.Pi, mathx.Rad(2))
	})
	return polarRefineTab
}

// polarCoarseGrid is the 5° grid over az ∈ [0, π) × el ∈ [−π/2, π/2]
// used by the detached 3D ablation.
func polarCoarseGrid() *angleGrid {
	polarCoarseOnce.Do(func() {
		polarCoarseTab = buildPolarGrid(math.Pi, mathx.Rad(5))
	})
	return polarCoarseTab
}

func buildPolarGrid(azSpan, step float64) *angleGrid {
	nAz := int(math.Round(azSpan / step))
	nEl := int(math.Round(math.Pi/step)) + 1 // el range inclusive of +π/2
	g := &angleGrid{
		az:  make([]float64, 0, nAz*nEl),
		el:  make([]float64, 0, nAz*nEl),
		pol: make([]geom.Vec3, 0, nAz*nEl),
	}
	for ai := 0; ai < nAz; ai++ {
		az := float64(ai) * step
		for ei := 0; ei < nEl; ei++ {
			el := -math.Pi/2 + float64(ei)*step
			g.az = append(g.az, az)
			g.el = append(g.el, el)
			g.pol = append(g.pol, rf.TagPolarization3D(az, el))
		}
	}
	return g
}

// VerifyEstimate evaluates the full joint objective for est against
// obs with exactly the weighting Solve2D/Solve3D would use (including
// the adaptive σ_B widening) — the cheap consistency check the
// stationary-tag cache runs before serving a cached estimate instead
// of re-solving.
func VerifyEstimate(obs []Observation, est Estimate, mode3D bool, opts Options) float64 {
	opts.defaults()
	sc := newSolveScratch(obs, &opts)
	if mode3D {
		return sc.jointCost3D([]float64{est.Pos.X, est.Pos.Y, est.Pos.Z, est.Azimuth, est.Elevation, est.Kt, est.Bt0})
	}
	return sc.jointCost2D([]float64{est.Pos.X, est.Pos.Y, est.Alpha, est.Kt, est.Bt0})
}
