package core

import (
	"fmt"
	"math"

	"rfprism/internal/geom"
	"rfprism/internal/mathx"
	"rfprism/internal/rf"
)

// Solve3D disentangles a window observed by ≥4 antennas for a tag
// anywhere in the bounds box with arbitrary 3D polarization — the
// seven-unknown extension the paper describes in §IV-C and lists as
// future work in §VII (four antennas suffice: 8 equations, 7
// unknowns).
func Solve3D(obs []Observation, bounds Bounds, opts Options) (Estimate, error) {
	opts.defaults()
	if len(obs) < MinAntennas(true) {
		return Estimate{}, fmt.Errorf("%w: have %d, need 4 for 3D", ErrTooFewAntennas, len(obs))
	}
	if bounds.ZMax < bounds.ZMin {
		return Estimate{}, fmt.Errorf("core: invalid z bounds [%g, %g]", bounds.ZMin, bounds.ZMax)
	}

	sc := newSolveScratch(obs, &opts)

	// Warm fast path, guarded exactly like the 2D one.
	if opts.WarmStart != nil && !opts.DisableFinePhase {
		opts.countWarmAttempt()
		if est, ok := solve3DWarm(sc, bounds, opts); ok {
			return est, nil
		}
		opts.countWarmFallback()
	}

	// Stage 1: wrap-free coarse position from the slopes.
	posA := gridSearch3D(sc, bounds, opts.GridStep*2, opts.Parallelism)
	posA = refinePos3D(sc, posA, bounds, opts.GridStep*2)

	if opts.DisableFinePhase {
		return solveDetached3D(sc, posA), nil
	}

	// Stage 2: joint multistart over wrap-basin position offsets and
	// polarization starts. As in Solve2D, the starts are independent
	// optimizer runs fanned out across the worker pool and reduced
	// deterministically (min cost, ties to the lowest start index).
	offsets := []float64{-0.11, 0, 0.11}
	azStarts := 6
	elStarts := []float64{-mathx.Rad(45), 0, mathx.Rad(45)}
	starts := make([][]float64, 0, len(offsets)*len(offsets)*len(offsets)*azStarts*len(elStarts))
	for _, dx := range offsets {
		for _, dy := range offsets {
			for _, dz := range offsets {
				x0 := clamp(posA.X+dx, bounds.XMin, bounds.XMax)
				y0 := clamp(posA.Y+dy, bounds.YMin, bounds.YMax)
				z0 := clamp(posA.Z+dz, bounds.ZMin, bounds.ZMax)
				start := geom.Vec3{X: x0, Y: y0, Z: z0}
				_, kt0 := sc.slopeCost(start)
				sc.setPsi(start)
				for a := 0; a < azStarts; a++ {
					az0 := float64(a) * math.Pi / float64(azStarts)
					for _, el0 := range elStarts {
						_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization3D(az0, el0))
						starts = append(starts, []float64{x0, y0, z0, az0, el0, kt0, bt0})
					}
				}
			}
		}
	}
	budgets := pruneBudgets(starts, sc.jointCost3D, opts)
	cands := make([]Estimate, len(starts))
	parallelFor(len(starts), workerCount(opts.Parallelism, len(starts)), func(i int) {
		cands[i] = runJoint3D(sc, starts[i], bounds, budgetFor(budgets, i, jointIters3D), 0)
	})
	return refinePolar3D(sc, reduceMinCost(cands)), nil
}

// refinePolar3D re-estimates the 3D polarization with a dense grid at
// the solved position (the joint simplex can stall in a local minimum
// of the angle-doubled response), keeping the result only when it
// lowers the joint cost. The 2° scan runs trig-free over the
// precomputed polarization table; the simplex refinement and the final
// b_t profile use the exact objective.
func refinePolar3D(sc *solveScratch, est Estimate) Estimate {
	sc.setPsi(est.Pos)
	g := polarRefineGrid()
	bi, _ := sc.scanOrient(g)
	step := mathx.Rad(2)
	angles, _ := mathx.NelderMead(func(v []float64) float64 {
		c, _ := orientCost(sc.obs, sc.psi, rf.TagPolarization3D(v[0], v[1]))
		return c
	}, []float64{g.az[bi], g.el[bi]}, step, 200)
	_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization3D(angles[0], angles[1]))
	cand := []float64{est.Pos.X, est.Pos.Y, est.Pos.Z, angles[0], angles[1], est.Kt, bt0}
	if c := sc.jointCost3D(cand); c < est.Cost {
		est.Azimuth, est.Elevation = normalizePolar3D(angles[0], angles[1])
		est.Bt0 = mathx.Wrap2Pi(bt0)
		est.Cost = c
	}
	return est
}

// jointCost3D is the 2N-equation objective at parameter vector
// p = (x, y, z, azimuth, elevation, k_t, b_t).
func jointCost3D(obs []Observation, p []float64, sigmaB float64, prior ktPrior) float64 {
	pos := geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
	w := rf.TagPolarization3D(p[3], p[4])
	kt, bt0 := p[5], p[6]
	var cost float64
	for i := range obs {
		o := &obs[i]
		d := o.Pos.Dist(pos)
		rk := o.Line.K - rf.PropagationSlope(d) - kt
		wb := obsWeight(o)
		wk := wb
		if o.Line.SigmaK > 0 {
			wk /= o.Line.SigmaK * o.Line.SigmaK
		}
		pred := rf.PropagationPhase(d, rf.CenterFrequencyHz) + rf.OrientationPhase(o.Frame, w) + bt0
		rb := mathx.WrapPi(o.Line.B0 - pred)
		cost += wk*rk*rk + wb*rb*rb/(sigmaB*sigmaB)
	}
	dp := kt - prior.mean
	cost += prior.wp * dp * dp
	return cost
}

// runJoint3D runs one budgeted start of the joint 3D multistart;
// target > 0 stops it early once it matches that cost (warm path).
func runJoint3D(sc *solveScratch, p0 []float64, bounds Bounds, maxIter int, target float64) Estimate {
	// Per-start clamp buffer, reused across this start's objective
	// evaluations (concurrent starts each own theirs).
	q := make([]float64, 7)
	obj := func(p []float64) float64 {
		q[0] = clamp(p[0], bounds.XMin, bounds.XMax)
		q[1] = clamp(p[1], bounds.YMin, bounds.YMax)
		q[2] = clamp(p[2], bounds.ZMin, bounds.ZMax)
		q[3], q[4], q[5], q[6] = p[3], p[4], p[5], p[6]
		return sc.jointCost3D(q)
	}
	p, cost := mathx.NelderMeadOpt(obj, p0, 0.02, mathx.NMOptions{MaxIter: maxIter, Target: target})
	az, el := normalizePolar3D(p[3], p[4])
	return Estimate{
		Pos: geom.Vec3{
			X: clamp(p[0], bounds.XMin, bounds.XMax),
			Y: clamp(p[1], bounds.YMin, bounds.YMax),
			Z: clamp(p[2], bounds.ZMin, bounds.ZMax),
		},
		Azimuth:   az,
		Elevation: el,
		Kt:        p[5],
		Bt0:       mathx.Wrap2Pi(p[6]),
		Cost:      cost,
	}
}

func solveDetached3D(sc *solveScratch, pos geom.Vec3) Estimate {
	costK, kt := sc.slopeCost(pos)
	sc.setPsi(pos)
	g := polarCoarseGrid()
	bi, best := sc.scanOrient(g)
	_, bt0 := orientCost(sc.obs, sc.psi, rf.TagPolarization3D(g.az[bi], g.el[bi]))
	return Estimate{
		Pos:       pos,
		Azimuth:   g.az[bi],
		Elevation: g.el[bi],
		Kt:        kt,
		Bt0:       bt0,
		Cost:      costK + best,
	}
}

// gridSearch3D scans the bounds box for the minimum slope cost,
// sharded by x-slab across the worker pool with the same
// order-preserving reduction as gridSearch2D.
func gridSearch3D(sc *solveScratch, bounds Bounds, step float64, parallelism int) geom.Vec3 {
	xs := gridAxis(bounds.XMin, bounds.XMax, step)
	ys := gridAxis(bounds.YMin, bounds.YMax, step)
	zs := gridAxis(bounds.ZMin, bounds.ZMax, step)
	type rowBest struct {
		cost float64
		pos  geom.Vec3
	}
	rows := make([]rowBest, len(xs))
	parallelFor(len(xs), workerCount(parallelism, len(xs)), func(i int) {
		rb := rowBest{cost: math.Inf(1)}
		for _, y := range ys {
			for _, z := range zs {
				p := geom.Vec3{X: xs[i], Y: y, Z: z}
				c, _ := sc.slopeCost(p)
				if c < rb.cost {
					rb = rowBest{cost: c, pos: p}
				}
			}
		}
		rows[i] = rb
	})
	best := math.Inf(1)
	var bestPos geom.Vec3
	for _, rb := range rows {
		if rb.cost < best {
			best, bestPos = rb.cost, rb.pos
		}
	}
	return bestPos
}

func refinePos3D(sc *solveScratch, start geom.Vec3, bounds Bounds, scale float64) geom.Vec3 {
	refined, _ := mathx.NelderMead(func(v []float64) float64 {
		p := geom.Vec3{
			X: clamp(v[0], bounds.XMin, bounds.XMax),
			Y: clamp(v[1], bounds.YMin, bounds.YMax),
			Z: clamp(v[2], bounds.ZMin, bounds.ZMax),
		}
		c, _ := sc.slopeCost(p)
		return c
	}, []float64{start.X, start.Y, start.Z}, scale, 400)
	return geom.Vec3{
		X: clamp(refined[0], bounds.XMin, bounds.XMax),
		Y: clamp(refined[1], bounds.YMin, bounds.YMax),
		Z: clamp(refined[2], bounds.ZMin, bounds.ZMax),
	}
}

// normalizePolar3D maps a polarization direction to its canonical
// representative (a dipole and its negation are the same
// polarization): the hemisphere with z ≥ 0, ties broken toward
// y ≥ 0 then x ≥ 0.
func normalizePolar3D(az, el float64) (float64, float64) {
	v := rf.TagPolarization3D(az, el)
	if v.Z < 0 || (v.Z == 0 && v.Y < 0) || (v.Z == 0 && v.Y == 0 && v.X < 0) {
		v = v.Scale(-1)
	}
	return v.Spherical()
}

// PolarizationError returns the angular error (radians, in [0, π/2])
// between two dipole polarization directions, accounting for the 180°
// ambiguity.
func PolarizationError(az1, el1, az2, el2 float64) float64 {
	a := rf.TagPolarization3D(az1, el1)
	b := rf.TagPolarization3D(az2, el2)
	d := math.Abs(a.Dot(b))
	if d > 1 {
		d = 1
	}
	return math.Acos(d)
}

// JointCost3DForTest exposes jointCost3D for diagnostics.
func JointCost3DForTest(obs []Observation, p []float64, sigmaB float64) float64 {
	return jointCost3D(obs, p, sigmaB, ktPrior{})
}
