package preprocess

import (
	"encoding/binary"
	"math"
	"testing"

	"rfprism/internal/sim"
)

// fuzzRecordLen is the wire size of one fuzzed reading: antenna byte,
// channel byte, then phase/freq/RSSI as raw float64 bits (so NaN, ±Inf
// and subnormals are all reachable).
const fuzzRecordLen = 2 + 3*8

func decodeReadings(data []byte) []sim.Reading {
	var out []sim.Reading
	for len(data) >= fuzzRecordLen {
		out = append(out, sim.Reading{
			Antenna: int(data[0] % 8),
			Channel: int(int8(data[1])), // negative channels included
			Phase:   math.Float64frombits(binary.LittleEndian.Uint64(data[2:])),
			FreqHz:  math.Float64frombits(binary.LittleEndian.Uint64(data[10:])),
			RSSI:    math.Float64frombits(binary.LittleEndian.Uint64(data[18:])),
		})
		data = data[fuzzRecordLen:]
	}
	return out
}

func encodeReadings(readings []sim.Reading) []byte {
	out := make([]byte, 0, len(readings)*fuzzRecordLen)
	var buf [fuzzRecordLen]byte
	for _, r := range readings {
		buf[0] = byte(r.Antenna)
		buf[1] = byte(r.Channel)
		binary.LittleEndian.PutUint64(buf[2:], math.Float64bits(r.Phase))
		binary.LittleEndian.PutUint64(buf[10:], math.Float64bits(r.FreqHz))
		binary.LittleEndian.PutUint64(buf[18:], math.Float64bits(r.RSSI))
		out = append(out, buf[:]...)
	}
	return out
}

// seedWindow synthesizes a plausible clean window: reps reads on each
// of nch channels of one antenna, phases on a gentle line.
func seedWindow(nch, reps int, corrupt func(i int, r *sim.Reading)) []byte {
	var rs []sim.Reading
	i := 0
	for ch := 0; ch < nch; ch++ {
		for k := 0; k < reps; k++ {
			r := sim.Reading{
				Antenna: 1,
				Channel: ch,
				FreqHz:  920e6 + float64(ch)*500e3,
				Phase:   math.Mod(0.3+0.05*float64(ch), 2*math.Pi),
				RSSI:    -55,
			}
			if corrupt != nil {
				corrupt(i, &r)
			}
			rs = append(rs, r)
			i++
		}
	}
	return encodeReadings(rs)
}

// FuzzBuildSpectra feeds hostile reading lists — NaN/Inf phases and
// frequencies, duplicate and negative channels, empty and one-sample
// antennas — through the preprocessing stage. The stage must never
// panic: it either errors or returns well-formed finite spectra.
func FuzzBuildSpectra(f *testing.F) {
	f.Add([]byte{})
	f.Add(seedWindow(16, 3, nil))
	f.Add(seedWindow(16, 1, nil)) // below MinReads everywhere
	f.Add(seedWindow(16, 3, func(i int, r *sim.Reading) {
		if i%3 == 0 {
			r.Phase = math.NaN()
		}
	}))
	f.Add(seedWindow(16, 3, func(i int, r *sim.Reading) {
		if i%4 == 0 {
			r.Phase = math.Inf(1)
		}
		if i%5 == 0 {
			r.FreqHz = math.Inf(-1)
		}
	}))
	f.Add(seedWindow(16, 3, func(i int, r *sim.Reading) {
		r.Channel = i % 2 // everything collapsed onto two channels
	}))
	f.Add(seedWindow(12, 2, func(i int, r *sim.Reading) {
		r.RSSI = math.NaN()
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		readings := decodeReadings(data)
		spectra, err := BuildSpectra(readings, Options{})
		if err != nil {
			return
		}
		if len(spectra) == 0 {
			t.Fatal("nil error but no spectra")
		}
		for _, s := range spectra {
			if len(s.Samples) < 10 {
				t.Fatalf("antenna %d kept with %d samples", s.Antenna, len(s.Samples))
			}
			for i, c := range s.Samples {
				if math.IsNaN(c.Phase) || math.IsInf(c.Phase, 0) {
					t.Fatalf("antenna %d channel %d: non-finite phase %v", s.Antenna, c.Channel, c.Phase)
				}
				if math.IsNaN(c.FreqHz) || math.IsInf(c.FreqHz, 0) {
					t.Fatalf("antenna %d channel %d: non-finite freq %v", s.Antenna, c.Channel, c.FreqHz)
				}
				if i > 0 && s.Samples[i-1].Channel >= c.Channel {
					t.Fatalf("antenna %d: channels not strictly ascending", s.Antenna)
				}
				if c.Count < 2 {
					t.Fatalf("antenna %d channel %d: %d reads below MinReads", s.Antenna, c.Channel, c.Count)
				}
			}
		}
	})
}
