package preprocess

import (
	"math"
	"math/rand"
	"testing"

	"rfprism/internal/mathx"
	"rfprism/internal/rf"
	"rfprism/internal/sim"
)

// synthWindow builds raw readings for one antenna from a phase
// function of frequency, with reads-per-dwell copies, optional π
// flips and outliers driven by rng.
func synthWindow(phaseAt func(f float64) float64, reads int, flipProb, outlierProb float64, rng *rand.Rand) []sim.Reading {
	var out []sim.Reading
	for ch := 0; ch < rf.NumChannels; ch++ {
		f, _ := rf.ChannelFreq(ch)
		for r := 0; r < reads; r++ {
			p := phaseAt(f)
			if rng != nil && rng.Float64() < flipProb {
				p += math.Pi
			}
			if rng != nil && rng.Float64() < outlierProb {
				p = rng.Float64() * 2 * math.Pi
			}
			out = append(out, sim.Reading{
				Antenna: 0, Channel: ch, FreqHz: f,
				Phase: mathx.Wrap2Pi(p), RSSI: -50,
			})
		}
	}
	return out
}

func TestBuildSpectraCleanLine(t *testing.T) {
	k := 6e-8 // rad/Hz
	phaseAt := func(f float64) float64 { return k*(f-rf.CenterFrequencyHz) + 1.2 }
	win := synthWindow(phaseAt, 6, 0, 0, nil)
	spectra, err := BuildSpectra(win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spectra) != 1 || len(spectra[0].Samples) != rf.NumChannels {
		t.Fatalf("spectra shape: %d antennas, %d samples", len(spectra), len(spectra[0].Samples))
	}
	// The unwrapped phases must match the synthetic line up to one
	// global 2π offset.
	ph := spectra[0].Phases()
	off := ph[0] - phaseAt(spectra[0].Samples[0].FreqHz)
	if k2 := math.Round(off/(2*math.Pi)) * 2 * math.Pi; math.Abs(off-k2) > 1e-9 {
		t.Fatalf("offset %g not a 2π multiple", off)
	}
	for i, s := range spectra[0].Samples {
		want := phaseAt(s.FreqHz) + off
		if math.Abs(ph[i]-want) > 1e-9 {
			t.Fatalf("channel %d: %g, want %g", i, ph[i], want)
		}
	}
}

func TestBuildSpectraResolvesPiFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	phaseAt := func(f float64) float64 { return 5e-8*(f-rf.CenterFrequencyHz) + 0.7 }
	win := synthWindow(phaseAt, 12, 0.15, 0, rng)
	spectra, err := BuildSpectra(win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ph := spectra[0].Phases()
	off := ph[0] - phaseAt(spectra[0].Samples[0].FreqHz)
	for i, s := range spectra[0].Samples {
		if math.Abs(ph[i]-phaseAt(s.FreqHz)-off) > 0.05 {
			t.Fatalf("π flips leaked into channel %d: err %g", i, ph[i]-phaseAt(s.FreqHz)-off)
		}
	}
}

func TestBuildSpectraRejectsInterference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	phaseAt := func(f float64) float64 { return 4e-8 * (f - rf.CenterFrequencyHz) }
	win := synthWindow(phaseAt, 12, 0, 0.1, rng)
	spectra, err := BuildSpectra(win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ph := spectra[0].Phases()
	off := ph[0] - phaseAt(spectra[0].Samples[0].FreqHz)
	bad := 0
	for i, s := range spectra[0].Samples {
		if math.Abs(ph[i]-phaseAt(s.FreqHz)-off) > 0.1 {
			bad++
			_ = i
		}
	}
	if bad > 2 {
		t.Fatalf("%d channels corrupted by interference outliers", bad)
	}
}

func TestBuildSpectraEmpty(t *testing.T) {
	if _, err := BuildSpectra(nil, Options{}); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestBuildSpectraDropsSparseAntennas(t *testing.T) {
	// An antenna with only a handful of channels must be dropped.
	var win []sim.Reading
	for ch := 0; ch < 5; ch++ {
		f, _ := rf.ChannelFreq(ch)
		for r := 0; r < 4; r++ {
			win = append(win, sim.Reading{Antenna: 3, Channel: ch, FreqHz: f, Phase: 1})
		}
	}
	if _, err := BuildSpectra(win, Options{}); err == nil {
		t.Fatal("an all-sparse window must error")
	}
}

func TestBuildSpectraMultipleAntennasSorted(t *testing.T) {
	phaseAt := func(f float64) float64 { return 3e-8 * (f - rf.CenterFrequencyHz) }
	win := synthWindow(phaseAt, 4, 0, 0, nil)
	// Duplicate onto antenna 2 and 1 (insertion order scrambled).
	n := len(win)
	for i := 0; i < n; i++ {
		r := win[i]
		r.Antenna = 2
		win = append(win, r)
	}
	for i := 0; i < n; i++ {
		r := win[i]
		r.Antenna = 1
		win = append(win, r)
	}
	spectra, err := BuildSpectra(win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spectra) != 3 {
		t.Fatalf("want 3 spectra, got %d", len(spectra))
	}
	for i, sp := range spectra {
		if sp.Antenna != i {
			t.Fatalf("spectra not sorted by antenna: %v", []int{spectra[0].Antenna, spectra[1].Antenna, spectra[2].Antenna})
		}
	}
}

func TestSpectrumAccessors(t *testing.T) {
	sp := Spectrum{Antenna: 0, Samples: []ChannelSample{
		{Channel: 0, FreqHz: 903e6, Phase: 1, RSSI: -50},
		{Channel: 1, FreqHz: 903.5e6, Phase: 2, RSSI: -52},
	}}
	if f := sp.Freqs(); f[1] != 903.5e6 {
		t.Error("Freqs")
	}
	if p := sp.Phases(); p[0] != 1 {
		t.Error("Phases")
	}
	if r := sp.MeanRSSI(); r != -51 {
		t.Errorf("MeanRSSI = %g", r)
	}
	if (Spectrum{}).MeanRSSI() != 0 {
		t.Error("empty MeanRSSI")
	}
}

func TestAggregateMinReads(t *testing.T) {
	// A dwell with a single read must be rejected under MinReads 2.
	f, _ := rf.ChannelFreq(0)
	win := []sim.Reading{{Antenna: 0, Channel: 0, FreqHz: f, Phase: 1}}
	for ch := 1; ch < 20; ch++ {
		fc, _ := rf.ChannelFreq(ch)
		for r := 0; r < 3; r++ {
			win = append(win, sim.Reading{Antenna: 0, Channel: ch, FreqHz: fc, Phase: 1})
		}
	}
	spectra, err := BuildSpectra(win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spectra[0].Samples {
		if s.Channel == 0 {
			t.Fatal("single-read dwell survived MinReads")
		}
	}
}
