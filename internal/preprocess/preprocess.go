// Package preprocess turns raw reader reports into per-antenna phase
// spectra: it resolves the reader's π sign ambiguity inside each
// channel dwell, rejects transient interference outliers, averages
// repeated reads circularly, and unwraps the per-channel phases across
// the frequency band (the paper's "signal pre-processing module").
package preprocess

import (
	"fmt"
	"math"
	"sort"

	"rfprism/internal/mathx"
	"rfprism/internal/sim"
)

// ChannelSample is the aggregated measurement of one channel through
// one antenna.
type ChannelSample struct {
	Channel int
	FreqHz  float64
	// Phase is the per-dwell aggregated phase. In a Spectrum the
	// value is unwrapped across channels (so it can exceed [0, 2π)).
	Phase float64
	// RSSI is the mean RSSI of the dwell in dBm.
	RSSI float64
	// Spread is the post-alignment standard deviation of the reads
	// (rad) — a per-channel quality indicator.
	Spread float64
	// Count is the number of reads aggregated.
	Count int
}

// Spectrum is the unwrapped phase-vs-frequency curve of one antenna
// over one collection window.
type Spectrum struct {
	Antenna int
	Samples []ChannelSample // ascending channel order
}

// Freqs returns the sample frequencies in Hz.
func (s Spectrum) Freqs() []float64 {
	out := make([]float64, len(s.Samples))
	for i, c := range s.Samples {
		out[i] = c.FreqHz
	}
	return out
}

// Phases returns the unwrapped sample phases in rad.
func (s Spectrum) Phases() []float64 {
	out := make([]float64, len(s.Samples))
	for i, c := range s.Samples {
		out[i] = c.Phase
	}
	return out
}

// RSSIs returns the per-channel RSSI values in dBm.
func (s Spectrum) RSSIs() []float64 {
	out := make([]float64, len(s.Samples))
	for i, c := range s.Samples {
		out[i] = c.RSSI
	}
	return out
}

// MeanRSSI returns the mean RSSI across channels.
func (s Spectrum) MeanRSSI() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var t float64
	for _, c := range s.Samples {
		t += c.RSSI
	}
	return t / float64(len(s.Samples))
}

// Options tunes the preprocessing stage. The zero value is usable.
type Options struct {
	// OutlierThreshold is the residual (rad) beyond which an
	// individual read inside a dwell is discarded as interference.
	// Default 0.6 rad.
	OutlierThreshold float64
	// MinReads is the minimum surviving reads a dwell needs to
	// produce a sample. Default 2.
	MinReads int
}

func (o *Options) defaults() {
	if o.OutlierThreshold <= 0 {
		o.OutlierThreshold = 0.6
	}
	if o.MinReads <= 0 {
		o.MinReads = 2
	}
}

// BuildSpectra groups raw readings by antenna, aggregates each channel
// dwell and unwraps across channels. Antennas with fewer than 10
// usable channels are dropped. The result is sorted by antenna ID.
func BuildSpectra(readings []sim.Reading, opts Options) ([]Spectrum, error) {
	opts.defaults()
	if len(readings) == 0 {
		return nil, fmt.Errorf("preprocess: no readings")
	}
	type key struct{ ant, ch int }
	byDwell := make(map[key][]sim.Reading)
	antennas := make(map[int]bool)
	for _, r := range readings {
		byDwell[key{r.Antenna, r.Channel}] = append(byDwell[key{r.Antenna, r.Channel}], r)
		antennas[r.Antenna] = true
	}
	antIDs := make([]int, 0, len(antennas))
	for id := range antennas {
		antIDs = append(antIDs, id)
	}
	sort.Ints(antIDs)

	out := make([]Spectrum, 0, len(antIDs))
	for _, ant := range antIDs {
		var samples []ChannelSample
		for ch := 0; ch < 64; ch++ {
			reads := byDwell[key{ant, ch}]
			if len(reads) == 0 {
				continue
			}
			s, ok := aggregateDwell(reads, opts)
			if ok {
				samples = append(samples, s)
			}
		}
		if len(samples) < 10 {
			continue
		}
		unwrapAcrossChannels(samples)
		out = append(out, Spectrum{Antenna: ant, Samples: samples})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("preprocess: no antenna produced a usable spectrum")
	}
	return out, nil
}

// finite reports whether x is a usable measurement value. A faulted
// reader can surface NaN/±Inf phases or frequencies; such reads are
// dropped before any arithmetic touches them.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// aggregateDwell resolves π flips, trims interference outliers and
// circularly averages the reads of one dwell. Reads carrying
// non-finite phase, frequency or RSSI are discarded up front.
func aggregateDwell(reads []sim.Reading, opts Options) (ChannelSample, bool) {
	fin := make([]sim.Reading, 0, len(reads))
	for _, r := range reads {
		if finite(r.Phase) && finite(r.FreqHz) && finite(r.RSSI) {
			fin = append(fin, r)
		}
	}
	if len(fin) < opts.MinReads {
		return ChannelSample{}, false
	}
	reads = fin
	phases := make([]float64, len(reads))
	for i, r := range reads {
		phases[i] = r.Phase
	}
	// Align every read to the first one modulo π: each raw phase is
	// shifted by the multiple of π that brings it within ±π/2 of the
	// reference, collapsing the reader's sign ambiguity.
	ref := phases[0]
	aligned := make([]float64, len(phases))
	for i, p := range phases {
		k := math.Round((ref - p) / math.Pi)
		aligned[i] = p + k*math.Pi
	}
	// Robust pass: discard reads far from the median (transient
	// interference), then average.
	med := mathx.Median(aligned)
	kept := aligned[:0]
	keptIdx := make([]int, 0, len(aligned))
	for i, p := range aligned {
		if math.Abs(mathx.WrapPi(p-med)) <= opts.OutlierThreshold {
			kept = append(kept, p)
			keptIdx = append(keptIdx, i)
		}
	}
	if len(kept) < opts.MinReads {
		return ChannelSample{}, false
	}
	mean := mathx.Mean(kept)
	spread := mathx.Std(kept)

	// Majority vote on the absolute branch: the aligned mean is
	// either the true phase or true+π. Count raw reads supporting
	// each candidate; flips are a minority, so majority wins.
	support := 0
	for _, i := range keptIdx {
		if math.Abs(mathx.WrapPi(reads[i].Phase-mean)) < math.Pi/2 {
			support++
		}
	}
	if support*2 < len(keptIdx) {
		mean += math.Pi
	}

	var rssi float64
	for _, i := range keptIdx {
		rssi += reads[i].RSSI
	}
	rssi /= float64(len(keptIdx))

	return ChannelSample{
		Channel: reads[0].Channel,
		FreqHz:  reads[0].FreqHz,
		Phase:   mathx.Wrap2Pi(mean),
		RSSI:    rssi,
		Spread:  spread,
		Count:   len(kept),
	}, true
}

// unwrapAcrossChannels removes 2π folds between adjacent channel
// samples in place. Genuine phase steps between 500 kHz-spaced
// channels are far below π, so nearest-fold continuity is safe.
//
// Channels aggregated from very few reads cannot resolve the reader's
// π sign ambiguity reliably by majority vote (a 1–1 tie is a coin
// flip), so for those the branch is additionally repaired by
// continuity: if flipping by π brings the sample closer to its
// predecessor, it was mis-branched. Channels with enough reads keep
// their absolute majority branch, which stops a mis-branched run from
// cascading through the whole band.
func unwrapAcrossChannels(samples []ChannelSample) {
	const reliableCount = 4
	for i := 1; i < len(samples); i++ {
		prev := samples[i-1].Phase
		p := samples[i].Phase
		if samples[i].Count < reliableCount {
			// Choose among p + kπ the value closest to the previous
			// channel (branch repair + fold correction in one step).
			k := math.Round((prev - p) / math.Pi)
			samples[i].Phase = p + k*math.Pi
			continue
		}
		k := math.Round((prev - p) / (2 * math.Pi))
		samples[i].Phase = p + k*2*math.Pi
	}
}
