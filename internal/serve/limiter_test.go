package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source for limiter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{RatePerSec: 1, Burst: 2, Now: clk.now})

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatalf("request %d inside the burst refused", i)
		}
	}
	ok, retryAfter := l.Allow("k")
	if ok {
		t.Fatal("request past the burst admitted")
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retryAfter)
	}
	if l.Throttled() != 1 {
		t.Fatalf("Throttled = %d, want 1", l.Throttled())
	}

	clk.advance(time.Second) // one token refills at 1/s
	if ok, _ := l.Allow("k"); !ok {
		t.Fatal("request after refill refused")
	}
	if ok, _ := l.Allow("k"); ok {
		t.Fatal("second request after a one-token refill admitted")
	}

	// Buckets are per client key.
	if ok, _ := l.Allow("other"); !ok {
		t.Fatal("fresh client key refused")
	}
}

func TestLimiterStreamQuota(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MaxStreams: 2, Now: clk.now})

	if !l.AcquireStream("k") || !l.AcquireStream("k") {
		t.Fatal("streams inside the quota refused")
	}
	if l.AcquireStream("k") {
		t.Fatal("stream past the quota admitted")
	}
	if l.StreamRejects() != 1 {
		t.Fatalf("StreamRejects = %d, want 1", l.StreamRejects())
	}
	if !l.AcquireStream("other") {
		t.Fatal("quota leaked across client keys")
	}
	l.ReleaseStream("k")
	if !l.AcquireStream("k") {
		t.Fatal("released slot not reusable")
	}
	l.ReleaseStream("never-acquired") // must not panic or underflow
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if ok, _ := l.Allow("k"); !ok {
		t.Fatal("nil limiter refused a request")
	}
	if !l.AcquireStream("k") {
		t.Fatal("nil limiter refused a stream")
	}
	l.ReleaseStream("k")
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusTeapot) })
	rec := httptest.NewRecorder()
	l.Middleware(inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tags", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("nil limiter middleware did not pass through: %d", rec.Code)
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/v1/tags", nil)
	r.RemoteAddr = "192.0.2.7:4242"
	if got := ClientKey(r); got != "addr:192.0.2.7" {
		t.Fatalf("ClientKey by addr = %q", got)
	}
	r.Header.Set("X-API-Key", "abc")
	if got := ClientKey(r); got != "key:abc" {
		t.Fatalf("ClientKey by header = %q", got)
	}
}

// TestLimiterMiddleware pins the refusal wire contract: 429, a
// Retry-After header, and the same JSON envelope ingest backpressure
// uses — plus the ops-endpoint exemption.
func TestLimiterMiddleware(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{RatePerSec: 1, Burst: 1, Now: clk.now})
	var served int
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))

	get := func(path, key string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if key != "" {
			r.Header.Set("X-API-Key", key)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}

	if rec := get("/v1/tags", "a"); rec.Code != http.StatusOK {
		t.Fatalf("first request refused: %d", rec.Code)
	}
	rec := get("/v1/tags", "a")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request status = %d, want 429", rec.Code)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", rec.Header().Get("Retry-After"))
	}
	var envelope struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("refusal body is not the JSON envelope: %v", err)
	}
	if envelope.Code != CodeRateLimited || envelope.Error == "" || envelope.RetryAfterMS <= 0 {
		t.Fatalf("envelope = %+v", envelope)
	}

	// Another client's bucket is untouched.
	if rec := get("/v1/tags", "b"); rec.Code != http.StatusOK {
		t.Fatalf("other client refused: %d", rec.Code)
	}
	// Ops endpoints are exempt even for a drained client.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := get(path, "a"); rec.Code != http.StatusOK {
			t.Fatalf("exempt path %s throttled: %d", path, rec.Code)
		}
	}
	if served != 5 {
		t.Fatalf("inner handler served %d requests, want 5", served)
	}
}
