package serve

import (
	"rfprism/internal/obs"
)

// RegisterMetrics exposes the serving tier's counters on an obs
// registry (the daemon's /metrics). srv and lim may be nil when that
// piece is not wired. Call once per registry — obs panics on duplicate
// series by design.
func RegisterMetrics(reg *obs.Registry, st *Store, srv *Server, lim *Limiter) {
	reg.NewCounterFunc("serve_snapshot_swaps_total",
		"Snapshot generations published by the epoch swapper.",
		st.Swaps)
	reg.NewCounterFunc("serve_results_published_total",
		"Tag results made visible to readers via snapshot swaps.",
		st.Published)
	reg.NewGaugeFunc("serve_snapshot_epoch",
		"Current snapshot epoch (0 = no results yet).",
		func() float64 { return float64(st.Epoch()) })
	reg.NewGaugeFunc("serve_snapshot_tags",
		"Tags in the current snapshot.",
		func() float64 { return float64(st.Snapshot().Len()) })

	hub := st.Hub()
	reg.NewGaugeFunc("serve_subscribers",
		"Live subscription-hub subscribers (SSE streams and long-polls).",
		func() float64 { return float64(hub.Subscribers()) })
	reg.NewCounterFunc("serve_events_delivered_total",
		"Events enqueued to subscriber queues.",
		hub.Delivered)
	reg.NewCounterFunc("serve_subscriber_drops_total",
		"Subscribers evicted from the hub, by reason.",
		func() int64 { return hub.Drops(DropSlowConsumer) },
		obs.L("reason", DropSlowConsumer.String()))
	reg.NewCounterFunc("serve_subscriber_drops_total",
		"Subscribers evicted from the hub, by reason.",
		func() int64 { return hub.Drops(DropShutdown) },
		obs.L("reason", DropShutdown.String()))

	reg.NewCounterFunc("serve_longpolls_total",
		"Long-poll rounds, by outcome.",
		func() int64 { c, _ := st.LongPolls(); return c },
		obs.L("outcome", "changed"))
	reg.NewCounterFunc("serve_longpolls_total",
		"Long-poll rounds, by outcome.",
		func() int64 { _, t := st.LongPolls(); return t },
		obs.L("outcome", "timeout"))

	if srv != nil {
		reg.NewGaugeFunc("serve_sse_streams",
			"Live SSE streams.",
			func() float64 { return float64(srv.Streams()) })
	}
	if lim != nil {
		reg.NewCounterFunc("serve_throttled_total",
			"Requests refused by the per-client token bucket.",
			lim.Throttled)
		reg.NewCounterFunc("serve_stream_rejects_total",
			"Stream opens refused by the per-client concurrent-stream quota.",
			lim.StreamRejects)
	}
}
