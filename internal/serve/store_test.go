package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfprism/internal/ingest"
)

// tr builds a minimal TagResult for store tests.
func tr(epc string, seq int) ingest.TagResult {
	return ingest.TagResult{EPC: epc, Seq: seq, Reason: "coverage"}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newTestStore builds a store with a fast swapper and closes it with
// the test.
func newTestStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	if cfg.SwapInterval == 0 {
		cfg.SwapInterval = time.Millisecond
	}
	st := NewStore(cfg)
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// emitVisible publishes one result and waits for it to land in a
// snapshot, returning the tag's new epoch.
func emitVisible(t *testing.T, st *Store, r ingest.TagResult) uint64 {
	t.Helper()
	before := st.Published()
	if err := st.Emit(r); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, fmt.Sprintf("%s/%d to swap in", r.EPC, r.Seq), func() bool {
		return st.Published() > before
	})
	return st.Snapshot().TagEpoch(r.EPC)
}

func TestStoreSwapVisibility(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	if _, ok := st.Latest("A"); ok {
		t.Fatal("empty store claims a result")
	}
	if st.Epoch() != 0 {
		t.Fatalf("empty store epoch = %d, want 0", st.Epoch())
	}

	emitVisible(t, st, tr("B", 1))
	emitVisible(t, st, tr("A", 1))

	res, ok := st.Latest("A")
	if !ok || res.Seq != 1 || res.EPC != "A" {
		t.Fatalf("Latest(A) = %+v, %v", res, ok)
	}
	if got := st.EPCs(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("EPCs = %v, want sorted [A B]", got)
	}
	if st.Epoch() < 1 {
		t.Fatalf("epoch did not advance: %d", st.Epoch())
	}
	if st.Swaps() < 1 || st.Published() != 2 {
		t.Fatalf("swaps=%d published=%d", st.Swaps(), st.Published())
	}
}

func TestStoreHistoryTrim(t *testing.T) {
	st := newTestStore(t, StoreConfig{History: 3})
	for i := 1; i <= 5; i++ {
		emitVisible(t, st, tr("A", i))
	}
	hist := st.History("A")
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	for i, want := range []int{3, 4, 5} {
		if hist[i].Seq != want {
			t.Fatalf("history[%d].Seq = %d, want %d (oldest first)", i, hist[i].Seq, want)
		}
	}
}

// TestSnapshotImmutable is the copy-on-write contract: a held snapshot
// never changes, no matter what the store publishes afterwards.
func TestSnapshotImmutable(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	emitVisible(t, st, tr("A", 1))
	old := st.Snapshot()
	oldEpoch := old.Epoch()

	emitVisible(t, st, tr("A", 2))
	emitVisible(t, st, tr("B", 1))

	if old.Epoch() != oldEpoch {
		t.Fatal("held snapshot's epoch moved")
	}
	if res, _, ok := old.Latest("A"); !ok || res.Seq != 1 {
		t.Fatalf("held snapshot Latest(A) = %+v, %v; want seq 1", res, ok)
	}
	if old.Len() != 1 {
		t.Fatalf("held snapshot Len = %d, want 1", old.Len())
	}
	if res, _, ok := st.Snapshot().Latest("A"); !ok || res.Seq != 2 {
		t.Fatalf("current snapshot Latest(A) = %+v, %v; want seq 2", res, ok)
	}
}

// TestSnapshotSinceWindow pins the catch-up/resync boundary: clients
// inside the retained window get batches, clients behind it get
// ok=false (resync), clients at the head get nothing.
func TestSnapshotSinceWindow(t *testing.T) {
	st := newTestStore(t, StoreConfig{RecentEpochs: 2})
	for i := 1; i <= 4; i++ {
		emitVisible(t, st, tr("A", i))
	}
	snap := st.Snapshot()
	head := snap.Epoch()
	if head < 4 {
		t.Fatalf("expected at least 4 epochs, got %d", head)
	}

	if batches, ok := snap.Since(head); !ok || len(batches) != 0 {
		t.Fatalf("Since(head) = %v, %v; want empty, true", batches, ok)
	}
	batches, ok := snap.Since(head - 1)
	if !ok || len(batches) != 1 || batches[0].Epoch != head {
		t.Fatalf("Since(head-1) = %v, %v; want the head batch", batches, ok)
	}
	if batches, ok := snap.Since(head - 2); !ok || len(batches) != 2 {
		t.Fatalf("Since(head-2) = %v, %v; want both retained batches", batches, ok)
	}
	if _, ok := snap.Since(head - 3); ok {
		t.Fatal("Since behind the retained window must demand a resync")
	}
	if _, ok := snap.Since(0); ok {
		t.Fatal("Since(0) behind the window must demand a resync")
	}
}

func TestWaitTagImmediate(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	epoch := emitVisible(t, st, tr("A", 1))
	res, got, ok := st.WaitTag(context.Background(), "A", 0, time.Second)
	if !ok || res.Seq != 1 || got != epoch {
		t.Fatalf("WaitTag = %+v, %d, %v; want seq 1 at epoch %d", res, got, ok, epoch)
	}
	changed, _ := st.LongPolls()
	if changed == 0 {
		t.Fatal("changed long-poll not counted")
	}
}

func TestWaitTagWakesOnPublish(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	since := emitVisible(t, st, tr("A", 1))

	type reply struct {
		res   ingest.TagResult
		epoch uint64
		ok    bool
	}
	got := make(chan reply, 1)
	go func() {
		res, epoch, ok := st.WaitTag(context.Background(), "A", since, 5*time.Second)
		got <- reply{res, epoch, ok}
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	if err := st.Emit(tr("A", 2)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.ok || r.res.Seq != 2 || r.epoch <= since {
			t.Fatalf("woken WaitTag = %+v; want seq 2 past epoch %d", r, since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitTag did not wake on publish")
	}
}

func TestWaitTagTimeout(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	start := time.Now()
	_, _, ok := st.WaitTag(context.Background(), "ghost", 0, 30*time.Millisecond)
	if ok {
		t.Fatal("WaitTag reported a change for an unknown tag")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout WaitTag took %v", elapsed)
	}
	_, timeouts := st.LongPolls()
	if timeouts == 0 {
		t.Fatal("timeout long-poll not counted")
	}
}

func TestWaitTagCancel(t *testing.T) {
	st := newTestStore(t, StoreConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, _, ok := st.WaitTag(ctx, "ghost", 0, time.Minute); ok {
		t.Fatal("cancelled WaitTag reported a change")
	}
}

// TestStoreCloseFlushesPending: a drain's tail must become visible even
// when the swap interval never fires again.
func TestStoreCloseFlushesPending(t *testing.T) {
	st := NewStore(StoreConfig{SwapInterval: time.Hour, BatchSize: 1 << 20})
	if err := st.Emit(tr("A", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Latest("A"); ok {
		t.Fatal("result visible before any swap with an hour-long interval")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if res, ok := st.Latest("A"); !ok || res.Seq != 1 {
		t.Fatalf("Close did not flush pending results: %+v, %v", res, ok)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	sub := st.Hub().Subscribe(Filter{}, 1)
	if _, open := <-sub.C; open || sub.Dropped() != DropShutdown {
		t.Fatalf("subscribe after close: open=%v reason=%v, want closed shutdown", open, sub.Dropped())
	}
}

// TestStoreBatchSizeTriggersEarlySwap: a burst past BatchSize becomes
// visible without waiting out a long interval.
func TestStoreBatchSizeTriggersEarlySwap(t *testing.T) {
	st := NewStore(StoreConfig{SwapInterval: time.Hour, BatchSize: 4})
	t.Cleanup(func() { _ = st.Close() })
	for i := 1; i <= 4; i++ {
		if err := st.Emit(tr("A", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "batch-size wake to swap", func() bool {
		_, ok := st.Latest("A")
		return ok
	})
}

// TestStoreReadPathNoMutexContention is the zero-lock hot-path
// assertion from the acceptance criteria: with mutex profiling at
// fraction 1 and writers hammering Emit under a reader fleet, the
// contention profile must show no snapshot read-path frames — reader
// throughput comes from the atomic pointer load alone. (Emit/swap
// frames are expected: the write path owns the only mutex.)
func TestStoreReadPathNoMutexContention(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	st := newTestStore(t, StoreConfig{SwapInterval: time.Millisecond, RecentEpochs: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = st.Emit(tr(fmt.Sprintf("TAG-%d", (w*37+i)%32), i))
				time.Sleep(50 * time.Microsecond)
			}
		}(w)
	}
	var reads atomic.Int64
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				snap.Latest("TAG-1")
				snap.History("TAG-2")
				snap.EPCs()
				snap.Since(snap.Epoch())
				reads.Add(1)
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	for _, sym := range []string{
		"(*Store).Snapshot",
		"(*Store).Latest",
		"(*Snapshot).Latest",
		"(*Snapshot).History",
		"(*Snapshot).EPCs",
		"(*Snapshot).Since",
	} {
		if strings.Contains(prof, sym) {
			t.Fatalf("snapshot read path appears in the mutex contention profile (%s):\n%s", sym, prof)
		}
	}
}
