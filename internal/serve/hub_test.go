package serve

import (
	"testing"

	"rfprism/internal/ingest"
)

func batch(results ...ingest.TagResult) []ingest.TagResult { return results }

// drain pulls every currently-queued event off a subscriber.
func drain(s *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-s.C:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestHubFiltering(t *testing.T) {
	h := NewHub()
	exact := h.Subscribe(Filter{EPC: "A"}, 8)
	prefix := h.Subscribe(Filter{Prefix: "B-"}, 8)
	wide := h.Subscribe(Filter{}, 8)

	h.Publish(1, batch(tr("A", 1), tr("B-1", 1), tr("C", 1)))

	if got := drain(exact); len(got) != 1 || got[0].Result.EPC != "A" || got[0].Epoch != 1 {
		t.Fatalf("exact subscriber got %v, want only A@1", got)
	}
	if got := drain(prefix); len(got) != 1 || got[0].Result.EPC != "B-1" {
		t.Fatalf("prefix subscriber got %v, want only B-1", got)
	}
	if got := drain(wide); len(got) != 3 {
		t.Fatalf("firehose subscriber got %d events, want 3", len(got))
	}
	if h.Subscribers() != 3 {
		t.Fatalf("Subscribers = %d, want 3", h.Subscribers())
	}
	if h.Delivered() != 5 {
		t.Fatalf("Delivered = %d, want 5", h.Delivered())
	}
}

func TestHubSlowConsumerEviction(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(Filter{EPC: "A"}, 1)
	fast := h.Subscribe(Filter{EPC: "A"}, 8)

	// Two events for a queue of one: the second delivery finds the
	// queue full and evicts on the spot.
	h.Publish(1, batch(tr("A", 1), tr("A", 2)))

	got := drain(slow)
	if len(got) != 1 {
		t.Fatalf("evicted subscriber drained %d events, want the 1 it had room for", len(got))
	}
	if _, open := <-slow.C; open {
		t.Fatal("evicted subscriber's channel still open")
	}
	if slow.Dropped() != DropSlowConsumer {
		t.Fatalf("drop reason = %v, want slow_consumer", slow.Dropped())
	}
	if h.Drops(DropSlowConsumer) != 1 {
		t.Fatalf("Drops(slow_consumer) = %d, want 1", h.Drops(DropSlowConsumer))
	}
	if got := drain(fast); len(got) != 2 {
		t.Fatalf("healthy subscriber got %d events, want 2", len(got))
	}
	if h.Subscribers() != 1 {
		t.Fatalf("Subscribers after eviction = %d, want 1", h.Subscribers())
	}
	// The eviction already detached it; Unsubscribe must be a no-op,
	// not a double close.
	h.Unsubscribe(slow)
}

func TestHubUnsubscribe(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Filter{EPC: "A"}, 4)
	h.Unsubscribe(s)
	if _, open := <-s.C; open {
		t.Fatal("unsubscribed channel still open")
	}
	if s.Dropped() != DropNone {
		t.Fatalf("voluntary unsubscribe recorded drop reason %v", s.Dropped())
	}
	h.Unsubscribe(s) // idempotent
	h.Publish(2, batch(tr("A", 1)))
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d, want 0", h.Subscribers())
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(Filter{EPC: "A"}, 4)
	w := h.Subscribe(Filter{}, 4)
	h.Close()
	h.Close() // idempotent

	for _, s := range []*Subscriber{a, w} {
		if _, open := <-s.C; open {
			t.Fatal("channel open after hub close")
		}
		if s.Dropped() != DropShutdown {
			t.Fatalf("drop reason = %v, want shutdown", s.Dropped())
		}
	}
	if h.Drops(DropShutdown) != 2 {
		t.Fatalf("Drops(shutdown) = %d, want 2", h.Drops(DropShutdown))
	}
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d, want 0", h.Subscribers())
	}

	// Late joiners and publishes are clean no-ops.
	late := h.Subscribe(Filter{}, 4)
	if _, open := <-late.C; open || late.Dropped() != DropShutdown {
		t.Fatal("subscribe on a closed hub must return an already-dropped subscriber")
	}
	h.Publish(9, batch(tr("A", 9)))
}

func TestDropReasonStrings(t *testing.T) {
	cases := map[DropReason]string{
		DropNone:         "none",
		DropSlowConsumer: "slow_consumer",
		DropShutdown:     "shutdown",
		DropReason(99):   "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Fatalf("DropReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}
