package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rfprism"
	"rfprism/internal/ingest"
)

// drainProc is a stub solver: it consumes windows and produces
// nothing, so read-load tests feed the store directly via Emit.
type drainProc struct{}

func (drainProc) ProcessStream(ctx context.Context, in <-chan rfprism.Window) <-chan rfprism.WindowResult {
	out := make(chan rfprism.WindowResult)
	go func() {
		defer close(out)
		for range in {
		}
	}()
	return out
}

// wrappedSurface builds the full daemon read surface the way rfprismd
// does: serve.Server streaming endpoints over the ingest API handler,
// both backed by the snapshot store.
func wrappedSurface(t *testing.T, st *Store, lim *Limiter) http.Handler {
	t.Helper()
	d := ingest.NewDaemon(drainProc{}, ingest.Config{}, st)
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	return NewServer(st, lim, nil).Wrap(ingest.NewServer(d, st).Handler())
}

// TestRunReadLoadSmoke drives the mixed client population (pollers,
// long-pollers, SSE subscribers) against a live surface while results
// keep publishing, and checks every fleet made progress with zero
// errors and zero slow-consumer evictions — the scaled-down version of
// the 100k acceptance run in cmd/rfprism-bench.
func TestRunReadLoadSmoke(t *testing.T) {
	st := newTestStore(t, StoreConfig{SwapInterval: 2 * time.Millisecond})
	h := wrappedSurface(t, st, nil)

	epcs := make([]string, 4)
	for i := range epcs {
		epcs[i] = fmt.Sprintf("T-%d", i)
		emitVisible(t, st, tr(epcs[i], 0))
	}

	// Keep results flowing for the duration so long-polls change and
	// subscribers see events.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for seq := 1; ; seq++ {
			for _, epc := range epcs {
				_ = st.Emit(tr(epc, seq))
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	rep, err := RunReadLoad(context.Background(), h, ReadLoadConfig{
		Pollers:      40,
		LongPollers:  20,
		Subscribers:  20,
		EPCs:         epcs,
		Duration:     600 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
		Wait:         100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != 80 {
		t.Fatalf("Clients = %d, want 80", rep.Clients)
	}
	if rep.Requests == 0 || rep.LongPolls == 0 || rep.Events == 0 {
		t.Fatalf("a fleet made no progress: %+v", rep)
	}
	if rep.Changed == 0 {
		t.Fatalf("no long-poll observed a change: %+v", rep)
	}
	if rep.Streams != 20 {
		t.Fatalf("Streams = %d, want 20", rep.Streams)
	}
	if rep.Errors != 0 || rep.Dropped != 0 || rep.Throttled != 0 {
		t.Fatalf("errors=%d dropped=%d throttled=%d, want all zero: %+v",
			rep.Errors, rep.Dropped, rep.Throttled, rep)
	}
	if rep.QPS <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("throughput not reported: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.P999 < rep.P99 {
		t.Fatalf("latency percentiles out of order: p50=%v p99=%v p999=%v", rep.P50, rep.P99, rep.P999)
	}
}

func TestRunReadLoadValidation(t *testing.T) {
	if _, err := RunReadLoad(context.Background(), http.NotFoundHandler(), ReadLoadConfig{Pollers: 1}); err == nil {
		t.Fatal("no EPCs must be an error")
	}
	if _, err := RunReadLoad(context.Background(), http.NotFoundHandler(), ReadLoadConfig{EPCs: []string{"A"}}); err == nil {
		t.Fatal("no clients must be an error")
	}
}

// TestReadLoadThrottleCounted: a rate-limited surface shows up as
// Throttled, not Errors — the loadgen distinguishes refusals from
// failures.
func TestReadLoadThrottleCounted(t *testing.T) {
	st := newTestStore(t, StoreConfig{SwapInterval: 2 * time.Millisecond})
	lim := NewLimiter(LimiterConfig{RatePerSec: 0.5, Burst: 1})
	h := wrappedSurface(t, st, lim)
	emitVisible(t, st, tr("A", 1))

	rep, err := RunReadLoad(context.Background(), h, ReadLoadConfig{
		Pollers:      4,
		EPCs:         []string{"A"},
		Duration:     300 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled == 0 {
		t.Fatalf("rate-limited run recorded no throttles: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("429s must not count as errors: %+v", rep)
	}
}

// TestLongPollHTTP pins the GET /v1/tags/{epc}?wait=&since= wire
// contract through the real ingest handler backed by the store.
func TestLongPollHTTP(t *testing.T) {
	st := newTestStore(t, StoreConfig{SwapInterval: 2 * time.Millisecond})
	h := wrappedSurface(t, st, nil)
	since := emitVisible(t, st, tr("A", 1))

	// Unchanged within the wait: changed=false at the current epoch.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/v1/tags/A?wait=30ms&since=%d", since), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("timeout long-poll status = %d: %s", rec.Code, rec.Body)
	}
	var reply struct {
		Epoch   uint64          `json:"epoch"`
		Changed bool            `json:"changed"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Changed || reply.Result != nil || reply.Epoch != since {
		t.Fatalf("timeout reply = %+v, want changed=false at epoch %d", reply, since)
	}
	if rec.Header().Get("X-RFPrism-Epoch") != fmt.Sprint(since) {
		t.Fatalf("X-RFPrism-Epoch = %q", rec.Header().Get("X-RFPrism-Epoch"))
	}

	// A publish during the hold answers promptly with the result.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/tags/A?wait=5s&since=%d", since), nil))
		done <- rec
	}()
	time.Sleep(10 * time.Millisecond)
	if err := st.Emit(tr("A", 2)); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-done:
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatal(err)
		}
		if !reply.Changed || reply.Epoch <= since || reply.Result == nil {
			t.Fatalf("changed reply = %+v", reply)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long-poll did not wake on publish")
	}

	// Malformed parameters get the uniform envelope.
	for _, path := range []string{"/v1/tags/A?wait=bogus", "/v1/tags/A?wait=1s&since=bogus"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", path, rec.Code)
		}
	}
}

// TestEmitNotStalledByReaders is the solver-isolation guarantee in
// miniature: Emit stays fast while a full read fleet hammers the
// surface, because readers touch only the atomic snapshot pointer.
func TestEmitNotStalledByReaders(t *testing.T) {
	st := newTestStore(t, StoreConfig{SwapInterval: 2 * time.Millisecond})
	h := wrappedSurface(t, st, nil)
	emitVisible(t, st, tr("A", 1))

	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		_, _ = RunReadLoad(context.Background(), h, ReadLoadConfig{
			Pollers:      200,
			LongPollers:  50,
			Subscribers:  50,
			EPCs:         []string{"A"},
			Duration:     400 * time.Millisecond,
			PollInterval: 5 * time.Millisecond,
			Wait:         50 * time.Millisecond,
		})
	}()

	time.Sleep(50 * time.Millisecond) // let the fleet ramp
	var worst time.Duration
	for i := 0; i < 2000; i++ {
		t0 := time.Now()
		if err := st.Emit(tr("A", i+2)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	<-loadDone
	// Emit is a mutex-guarded append; even under the full fleet a
	// quarter second would mean readers are blocking the write path.
	if worst > 250*time.Millisecond {
		t.Fatalf("worst Emit latency under read load = %v", worst)
	}
}
