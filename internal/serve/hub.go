package serve

import (
	"strings"
	"sync"
	"sync/atomic"

	"rfprism/internal/ingest"
)

// DropReason says why the hub closed a subscriber's channel.
type DropReason int32

const (
	// DropNone: the subscriber has not been dropped.
	DropNone DropReason = iota
	// DropSlowConsumer: the subscriber's queue was full when the hub
	// needed to deliver — it could not keep up with the swap rate.
	DropSlowConsumer
	// DropShutdown: the store is closing.
	DropShutdown
)

func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropSlowConsumer:
		return "slow_consumer"
	case DropShutdown:
		return "shutdown"
	default:
		return "unknown"
	}
}

// Event is one tag update fanned out to subscribers.
type Event struct {
	Epoch  uint64
	Result ingest.TagResult
}

// Filter selects which results a subscriber receives. Zero value =
// firehose (every result). EPC wins over Prefix when both are set.
type Filter struct {
	EPC    string // exact match
	Prefix string // EPC prefix match (firehose narrowing)
}

func (f Filter) matches(epc string) bool {
	if f.EPC != "" {
		return epc == f.EPC
	}
	if f.Prefix != "" {
		return strings.HasPrefix(epc, f.Prefix)
	}
	return true
}

// Subscriber is one registered consumer. Receive from C until it is
// closed, then consult Dropped for why. The hub never blocks on a
// subscriber: a full queue at delivery time evicts it.
type Subscriber struct {
	C      <-chan Event
	c      chan Event
	filter Filter
	drop   atomic.Int32
}

// Dropped reports why the channel was closed (DropNone while live).
func (s *Subscriber) Dropped() DropReason { return DropReason(s.drop.Load()) }

// Hub fans swap batches out to subscribers. Exact-EPC subscribers are
// indexed so a swap touching k tags only visits their subscriber sets;
// wide (firehose / prefix) subscribers see every batch.
type Hub struct {
	mu     sync.Mutex
	byEPC  map[string]map[*Subscriber]struct{}
	wide   map[*Subscriber]struct{}
	closed bool

	subscribers atomic.Int64                 // current live subscribers
	delivered   atomic.Int64                 // events enqueued
	drops       [DropShutdown + 1]atomic.Int64 // by DropReason
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{
		byEPC: make(map[string]map[*Subscriber]struct{}),
		wide:  make(map[*Subscriber]struct{}),
	}
}

// Subscribers returns the number of live subscribers.
func (h *Hub) Subscribers() int64 { return h.subscribers.Load() }

// Delivered returns the number of events enqueued to subscribers.
func (h *Hub) Delivered() int64 { return h.delivered.Load() }

// Drops returns the eviction count for a reason.
func (h *Hub) Drops(r DropReason) int64 {
	if r < 0 || int(r) >= len(h.drops) {
		return 0
	}
	return h.drops[r].Load()
}

// Subscribe registers a consumer with a bounded queue. On a closed hub
// the returned subscriber's channel is already closed with
// DropShutdown, so callers need no special case.
func (h *Hub) Subscribe(f Filter, buf int) *Subscriber {
	if buf < 1 {
		buf = 1
	}
	s := &Subscriber{c: make(chan Event, buf), filter: f}
	s.C = s.c
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		s.drop.Store(int32(DropShutdown))
		close(s.c)
		return s
	}
	if f.EPC != "" {
		set := h.byEPC[f.EPC]
		if set == nil {
			set = make(map[*Subscriber]struct{})
			h.byEPC[f.EPC] = set
		}
		set[s] = struct{}{}
	} else {
		h.wide[s] = struct{}{}
	}
	h.subscribers.Add(1)
	return s
}

// Unsubscribe removes a live subscriber and closes its channel. Safe to
// call for already-evicted subscribers (no-op).
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.removeLocked(s) {
		close(s.c)
	}
}

// removeLocked detaches s from the index. Reports whether it was still
// registered (meaning the caller owns closing the channel).
func (h *Hub) removeLocked(s *Subscriber) bool {
	if s.filter.EPC != "" {
		set := h.byEPC[s.filter.EPC]
		if _, ok := set[s]; !ok {
			return false
		}
		delete(set, s)
		if len(set) == 0 {
			delete(h.byEPC, s.filter.EPC)
		}
	} else {
		if _, ok := h.wide[s]; !ok {
			return false
		}
		delete(h.wide, s)
	}
	h.subscribers.Add(-1)
	return true
}

// Publish fans one swap batch out. Delivery is non-blocking: a
// subscriber whose queue is full is evicted on the spot (channel
// closed, DropSlowConsumer) rather than ever stalling the swapper.
func (h *Hub) Publish(epoch uint64, batch []ingest.TagResult) {
	if len(batch) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	var evicted []*Subscriber
	for _, r := range batch {
		ev := Event{Epoch: epoch, Result: r}
		for s := range h.byEPC[r.EPC] {
			if !h.offerLocked(s, ev) {
				evicted = append(evicted, s)
			}
		}
		for s := range h.wide {
			if !s.filter.matches(r.EPC) {
				continue
			}
			if !h.offerLocked(s, ev) {
				evicted = append(evicted, s)
			}
		}
	}
	for _, s := range evicted {
		if h.removeLocked(s) {
			s.drop.Store(int32(DropSlowConsumer))
			h.drops[DropSlowConsumer].Add(1)
			close(s.c)
		}
	}
}

func (h *Hub) offerLocked(s *Subscriber, ev Event) bool {
	select {
	case s.c <- ev:
		h.delivered.Add(1)
		return true
	default:
		return false
	}
}

// Close evicts every subscriber with DropShutdown. Subsequent
// Subscribe calls return an already-closed subscriber; Publish becomes
// a no-op. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	closeAll := func(set map[*Subscriber]struct{}) {
		for s := range set {
			s.drop.Store(int32(DropShutdown))
			h.drops[DropShutdown].Add(1)
			close(s.c)
		}
	}
	for _, set := range h.byEPC {
		closeAll(set)
	}
	closeAll(h.wide)
	h.byEPC = make(map[string]map[*Subscriber]struct{})
	h.wide = make(map[*Subscriber]struct{})
	h.subscribers.Store(0)
}
