package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Read-side load driver.
//
// RunReadLoad is the query half of the loadgen harness: it aims a
// population of plain pollers (GET ?latest=1), long-pollers
// (?wait&since) and SSE subscribers at an http.Handler — a wrapped
// rfprismd surface or the router — while ingest runs elsewhere, and
// reports request/event throughput plus a poll-latency distribution.
// Like router.RunLoad it drives the handler in-process, so a hundred
// thousand concurrent clients cost goroutines, not sockets.

// ReadLoadConfig tunes one RunReadLoad run.
type ReadLoadConfig struct {
	// Pollers is the number of plain GET ?latest=1 clients.
	Pollers int
	// LongPollers is the number of ?wait=&since= clients.
	LongPollers int
	// Subscribers is the number of SSE stream clients.
	Subscribers int
	// EPCs is the tag population clients target (round-robin). Must be
	// non-empty.
	EPCs []string
	// Duration is how long the load runs (default 3s).
	Duration time.Duration
	// PollInterval is each poller's period (default 1s), staggered so
	// the fleet's requests spread uniformly instead of thundering.
	PollInterval time.Duration
	// Wait is the long-poll hold (default 2s).
	Wait time.Duration
	// PathPrefix selects the API mount (default "/v1").
	PathPrefix string
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *ReadLoadConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.Wait <= 0 {
		c.Wait = 2 * time.Second
	}
	if c.PathPrefix == "" {
		c.PathPrefix = "/v1"
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// ReadReport summarizes one RunReadLoad run.
type ReadReport struct {
	Clients   int           // total concurrent clients driven
	Requests  int64         // poll GETs completed
	LongPolls int64         // long-poll rounds completed
	Changed   int64         // long-poll rounds that returned a change
	Events    int64         // SSE result events received
	Streams   int64         // SSE streams opened
	Dropped   int64         // SSE streams ended by a hub eviction
	Throttled int64         // 429 responses observed (bucket or quota)
	Errors    int64         // unexpected statuses / transport failures
	Elapsed   time.Duration // wall time of the run
	QPS       float64       // (Requests + LongPolls) / Elapsed
	P50       time.Duration // poll-GET latency percentiles
	P99       time.Duration
	P999      time.Duration
}

// RunReadLoad drives the configured client population against h until
// Duration elapses or ctx ends.
func RunReadLoad(ctx context.Context, h http.Handler, cfg ReadLoadConfig) (ReadReport, error) {
	cfg.defaults()
	if len(cfg.EPCs) == 0 {
		return ReadReport{}, fmt.Errorf("serve: readload: no target EPCs")
	}
	total := cfg.Pollers + cfg.LongPollers + cfg.Subscribers
	if total == 0 {
		return ReadReport{}, fmt.Errorf("serve: readload: no clients configured")
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		rep  = ReadReport{Clients: total}
		hist latHist
		wg   sync.WaitGroup
	)
	counters := &readCounters{}
	start := cfg.Now()

	for i := 0; i < cfg.Pollers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			poller(runCtx, h, &cfg, id, &hist, counters)
		}(i)
	}
	for i := 0; i < cfg.LongPollers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			longPoller(runCtx, h, &cfg, cfg.Pollers+id, counters)
		}(i)
	}
	for i := 0; i < cfg.Subscribers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			subscriber(runCtx, h, &cfg, cfg.Pollers+cfg.LongPollers+id, counters)
		}(i)
	}
	wg.Wait()

	rep.Elapsed = cfg.Now().Sub(start)
	rep.Requests = counters.requests.Load()
	rep.LongPolls = counters.longpolls.Load()
	rep.Changed = counters.changed.Load()
	rep.Events = counters.events.Load()
	rep.Streams = counters.streams.Load()
	rep.Dropped = counters.dropped.Load()
	rep.Throttled = counters.throttled.Load()
	rep.Errors = counters.errors.Load()
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Requests+rep.LongPolls) / secs
	}
	rep.P50 = hist.percentile(0.50)
	rep.P99 = hist.percentile(0.99)
	rep.P999 = hist.percentile(0.999)
	return rep, nil
}

type readCounters struct {
	requests  atomic.Int64
	longpolls atomic.Int64
	changed   atomic.Int64
	events    atomic.Int64
	streams   atomic.Int64
	dropped   atomic.Int64
	throttled atomic.Int64
	errors    atomic.Int64
}

// clientEPC spreads clients round-robin over the tag population. The
// EPC comes back path-escaped: cloned populations use EPCs like
// "t31#c000042", and an unescaped '#' would silently truncate the
// request path to a fragment.
func clientEPC(cfg *ReadLoadConfig, id int) string {
	return url.PathEscape(cfg.EPCs[id%len(cfg.EPCs)])
}

// stagger returns client id's phase offset within the interval so the
// fleet's requests spread uniformly.
func stagger(id, fleet int, interval time.Duration) time.Duration {
	if fleet <= 1 {
		return 0
	}
	return interval * time.Duration(id%fleet) / time.Duration(fleet)
}

// sleepCtx pauses interruptibly; false means the run is over.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func poller(ctx context.Context, h http.Handler, cfg *ReadLoadConfig, id int, hist *latHist, c *readCounters) {
	epc := clientEPC(cfg, id)
	path := cfg.PathPrefix + "/tags/" + epc + "?latest=1"
	key := fmt.Sprintf("load-%d", id)
	if !sleepCtx(ctx, stagger(id, cfg.Pollers, cfg.PollInterval)) {
		return
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
		if err != nil {
			c.errors.Add(1)
			return
		}
		req.Header.Set("X-API-Key", key)
		w := &discardResponse{}
		t0 := time.Now()
		h.ServeHTTP(w, req)
		hist.observe(time.Since(t0))
		switch w.status() {
		case http.StatusOK, http.StatusNotFound:
			c.requests.Add(1)
		case http.StatusTooManyRequests:
			c.throttled.Add(1)
		default:
			c.errors.Add(1)
		}
		if !sleepCtx(ctx, cfg.PollInterval) {
			return
		}
	}
}

func longPoller(ctx context.Context, h http.Handler, cfg *ReadLoadConfig, id int, c *readCounters) {
	epc := clientEPC(cfg, id)
	key := fmt.Sprintf("load-%d", id)
	since := uint64(0)
	if !sleepCtx(ctx, stagger(id, cfg.LongPollers, cfg.Wait)) {
		return
	}
	for ctx.Err() == nil {
		path := fmt.Sprintf("%s/tags/%s?wait=%s&since=%d", cfg.PathPrefix, epc, cfg.Wait, since)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
		if err != nil {
			c.errors.Add(1)
			return
		}
		req.Header.Set("X-API-Key", key)
		w := &bufResponse{}
		h.ServeHTTP(w, req)
		switch w.status() {
		case http.StatusOK:
			var reply struct {
				Epoch   uint64 `json:"epoch"`
				Changed bool   `json:"changed"`
			}
			if json.Unmarshal(w.body, &reply) != nil {
				c.errors.Add(1)
				continue
			}
			c.longpolls.Add(1)
			if reply.Changed {
				c.changed.Add(1)
			}
			if reply.Epoch > since {
				since = reply.Epoch
			}
		case http.StatusTooManyRequests:
			c.throttled.Add(1)
			sleepCtx(ctx, 50*time.Millisecond)
		case http.StatusNotFound:
			// Tag not known yet (ingest still warming): back off briefly.
			c.longpolls.Add(1)
			sleepCtx(ctx, 50*time.Millisecond)
		default:
			if ctx.Err() == nil {
				c.errors.Add(1)
			}
			return
		}
	}
}

func subscriber(ctx context.Context, h http.Handler, cfg *ReadLoadConfig, id int, c *readCounters) {
	epc := clientEPC(cfg, id)
	path := cfg.PathPrefix + "/tags/" + epc + "/stream"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		c.errors.Add(1)
		return
	}
	req.Header.Set("X-API-Key", fmt.Sprintf("load-%d", id))

	pr, pw := io.Pipe()
	w := &streamResponse{pw: pw}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
		pw.Close()
	}()
	c.streams.Add(1)

	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: result"):
			c.events.Add(1)
		case strings.HasPrefix(line, "event: dropped"):
			c.dropped.Add(1)
		}
	}
	<-done
	if w.status() == http.StatusTooManyRequests {
		c.throttled.Add(1)
		c.streams.Add(-1)
	} else if w.status() != http.StatusOK && ctx.Err() == nil {
		c.errors.Add(1)
	}
}

// discardResponse is the cheapest possible ResponseWriter: pollers
// only need the status code, so the body is dropped without buffering
// — at 100k clients the encode cost stays, the alloc churn goes.
type discardResponse struct {
	header http.Header
	code   int
}

func (d *discardResponse) Header() http.Header {
	if d.header == nil {
		d.header = make(http.Header)
	}
	return d.header
}

func (d *discardResponse) WriteHeader(code int) {
	if d.code == 0 {
		d.code = code
	}
}

func (d *discardResponse) Write(b []byte) (int, error) {
	d.WriteHeader(http.StatusOK)
	return len(b), nil
}

func (d *discardResponse) status() int {
	if d.code == 0 {
		return http.StatusOK
	}
	return d.code
}

// bufResponse buffers the body (long-poll replies are one small JSON
// object).
type bufResponse struct {
	header http.Header
	code   int
	body   []byte
}

func (b *bufResponse) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}

func (b *bufResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufResponse) status() int {
	if b.code == 0 {
		return http.StatusOK
	}
	return b.code
}

// streamResponse adapts an SSE handler to an io.Pipe so a loadgen
// client can consume the stream while the handler is still writing.
// Flush is a no-op: pipe writes are already synchronous.
type streamResponse struct {
	header http.Header
	code   atomic.Int32
	pw     *io.PipeWriter
}

func (s *streamResponse) Header() http.Header {
	if s.header == nil {
		s.header = make(http.Header)
	}
	return s.header
}

func (s *streamResponse) WriteHeader(code int) {
	s.code.CompareAndSwap(0, int32(code))
}

func (s *streamResponse) Write(b []byte) (int, error) {
	s.WriteHeader(http.StatusOK)
	return s.pw.Write(b)
}

func (s *streamResponse) Flush() {}

func (s *streamResponse) status() int {
	if c := s.code.Load(); c != 0 {
		return int(c)
	}
	return http.StatusOK
}

// latHist is a lock-free log₂-bucketed latency histogram: bucket i
// counts samples in [2^i, 2^(i+1)) microseconds. Percentiles come back
// as the matching bucket's upper bound — ±2× resolution, which is
// plenty for a load report, at the cost of one atomic add per sample
// across a hundred thousand concurrent clients.
type latHist struct {
	buckets [40]atomic.Int64
	count   atomic.Int64
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	idx := bits.Len64(uint64(us)) - 1
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
}

func (h *latHist) percentile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(1<<(i+1)) * time.Microsecond
		}
	}
	return time.Duration(1<<len(h.buckets)) * time.Microsecond
}
